"""Unit tests for repro.core.matching."""

import numpy as np
import pytest

from repro.core import Trial, match_trials, occurrence_ranks

from .conftest import comb_trial, make_trial


class TestOccurrenceRanks:
    def test_doc_example(self):
        np.testing.assert_array_equal(
            occurrence_ranks(np.array([7, 3, 7, 7, 3])), [0, 0, 1, 2, 1]
        )

    def test_all_unique(self):
        np.testing.assert_array_equal(occurrence_ranks(np.arange(5)), np.zeros(5))

    def test_all_equal(self):
        np.testing.assert_array_equal(
            occurrence_ranks(np.zeros(4, dtype=np.int64)), [0, 1, 2, 3]
        )

    def test_empty(self):
        assert occurrence_ranks(np.array([], dtype=np.int64)).shape == (0,)

    def test_preserves_input_order_within_groups(self, rng):
        tags = rng.integers(0, 10, 200)
        ranks = occurrence_ranks(tags)
        for v in np.unique(tags):
            # Ranks of a value's occurrences must be 0..k-1 in input order.
            np.testing.assert_array_equal(
                ranks[tags == v], np.arange(np.count_nonzero(tags == v))
            )


class TestMatchTrials:
    def test_identical(self):
        a = comb_trial(10, label="A")
        m = match_trials(a, a)
        assert m.is_permutation
        assert m.n_common == 10
        np.testing.assert_array_equal(m.idx_a, m.idx_b)

    def test_empty_sides(self):
        a, e = comb_trial(3), make_trial([])
        assert match_trials(a, e).n_common == 0
        assert match_trials(e, a).n_common == 0
        assert match_trials(e, e).n_common == 0

    def test_disjoint(self):
        a = make_trial([0.0, 1.0], tags=[1, 2])
        b = make_trial([0.0, 1.0], tags=[3, 4])
        m = match_trials(a, b)
        assert m.n_common == 0
        assert not m.is_permutation

    def test_partial_overlap_alignment(self):
        a = make_trial([0, 1, 2, 3], tags=[10, 11, 12, 13])
        b = make_trial([0, 1, 2], tags=[12, 10, 99])
        m = match_trials(a, b)
        assert m.n_common == 2
        # Rows are in A order: tag 10 (a idx 0, b idx 1), tag 12 (a 2, b 0).
        np.testing.assert_array_equal(m.idx_a, [0, 2])
        np.testing.assert_array_equal(m.idx_b, [1, 0])

    def test_duplicate_tags_match_by_occurrence(self):
        # A has tag 5 twice; B has it three times: two match, one is extra.
        a = make_trial([0, 1, 2], tags=[5, 5, 7])
        b = make_trial([0, 1, 2, 3], tags=[5, 8, 5, 5])
        m = match_trials(a, b)
        assert m.n_common == 2  # the two 5s; 7 and 8 and the third 5 don't
        np.testing.assert_array_equal(m.idx_a, [0, 1])
        np.testing.assert_array_equal(m.idx_b, [0, 2])

    def test_a_ranks_in_b_order_is_permutation(self, rng):
        perm = rng.permutation(50)
        a = comb_trial(50)
        b = make_trial(np.arange(50) * 10.0, tags=perm)
        m = match_trials(a, b)
        seq = m.a_ranks_in_b_order()
        assert sorted(seq.tolist()) == list(range(50))

    def test_a_ranks_reversed(self):
        a = make_trial([0, 1, 2], tags=[1, 2, 3])
        b = make_trial([0, 1, 2], tags=[3, 2, 1])
        m = match_trials(a, b)
        np.testing.assert_array_equal(m.a_ranks_in_b_order(), [2, 1, 0])

    def test_b_order(self):
        a = make_trial([0, 1, 2], tags=[1, 2, 3])
        b = make_trial([0, 1, 2], tags=[3, 1, 2])
        ia, ib = match_trials(a, b).b_order()
        np.testing.assert_array_equal(ib, [0, 1, 2])
        np.testing.assert_array_equal(ia, [2, 0, 1])

    def test_negative_tags_supported(self):
        a = make_trial([0, 1], tags=[-5, -1])
        b = make_trial([0, 1], tags=[-1, -5])
        assert match_trials(a, b).n_common == 2


class TestArgsortCache:
    """The B-order argsort is computed once per matching, then memoized.

    ``b_order``, ``a_ranks_in_b_order`` and the engine's ordering
    permutation all need the stable argsort of ``idx_b``; the
    ``match.b_order_argsorts`` counter proves every path shares one
    compute per pair.
    """

    def _argsorts(self) -> int:
        from repro.obs import metrics

        return metrics.counter("match.b_order_argsorts").value

    def test_one_argsort_across_accessors(self, rng):
        perm = rng.permutation(500)
        a = comb_trial(500)
        b = make_trial(np.arange(500) * 10.0, tags=perm)
        m = match_trials(a, b)
        before = self._argsorts()
        m.b_order()
        m.a_ranks_in_b_order()
        m.b_order()
        m.a_ranks_in_b_order()
        assert self._argsorts() - before == 1

    def test_cache_preserves_values(self, rng):
        perm = rng.permutation(64)
        a = comb_trial(64)
        b = make_trial(np.arange(64) * 10.0, tags=perm)
        m = match_trials(a, b)
        first = m.a_ranks_in_b_order()
        ia1, ib1 = m.b_order()
        again = m.a_ranks_in_b_order()
        ia2, ib2 = m.b_order()
        np.testing.assert_array_equal(first, again)
        np.testing.assert_array_equal(ia1, ia2)
        np.testing.assert_array_equal(ib1, ib2)
        # The cached permutation is the argsort the accessors are defined by.
        np.testing.assert_array_equal(
            first, np.argsort(m.idx_b, kind="stable").astype(np.int64)
        )

    def test_full_comparison_is_one_argsort_per_pair(self):
        from repro.core import compare_trials

        rng2 = np.random.default_rng(4242)
        tags = rng2.integers(0, 40, size=300).astype(np.int64)
        times = np.cumsum(rng2.exponential(100.0, size=300))
        a = make_trial(times, tags, label="A")
        run_times = times + rng2.normal(0, 150, 300)
        order = np.argsort(run_times, kind="stable")
        b = make_trial(run_times[order], tags[order], label="B")
        before = self._argsorts()
        compare_trials(a, b)
        assert self._argsorts() - before == 1
