"""Unit tests for the Choir replay package."""

import numpy as np
import pytest

from repro.net import PacketArray, TxNicModel
from repro.replay import (
    MAX_BURST,
    MBUF_BYTES,
    MIN_BUFFER_BYTES,
    ChoirNode,
    ChoirState,
    PollLoopCost,
    Recording,
    Replayer,
    ReplayTimingModel,
    TransparentMiddlebox,
    burst_bounds,
    burstify_fixed,
    burstify_poll_loop,
)
from repro.timing import TSC


def cbr_batch(n=1000, gap=284.0, size=1400, rid=0):
    return PacketArray.uniform(n, size, np.arange(n) * gap, replayer_id=rid)


class TestBurstify:
    def test_max_burst_respected(self):
        ids = burstify_poll_loop(np.zeros(500), PollLoopCost(100, 10))
        _, ends = burst_bounds(ids)
        starts, ends = burst_bounds(ids)
        assert np.max(ends - starts) <= MAX_BURST

    def test_slow_loop_grows_bursts(self):
        t = np.arange(2000) * 284.0
        small = burstify_poll_loop(t, PollLoopCost(500, 40))
        large = burstify_poll_loop(t, PollLoopCost(4500, 40))
        mean = lambda ids: 2000 / (ids.max() + 1)
        assert mean(large) > mean(small)

    def test_equilibrium_burst_size(self):
        """b = iteration / (iat - per_packet) at steady state."""
        t = np.arange(20000) * 284.0
        ids = burstify_poll_loop(t, PollLoopCost(4500, 40))
        mean = 20000 / (ids.max() + 1)
        assert mean == pytest.approx(4500 / (284 - 40), rel=0.15)

    def test_sparse_arrivals_single_packet_bursts(self):
        t = np.arange(100) * 1e6  # 1 ms apart: loop always idle
        ids = burstify_poll_loop(t, PollLoopCost(250, 55))
        assert np.unique(ids).shape[0] == 100

    def test_ids_non_decreasing_and_contiguous(self):
        t = np.sort(np.random.default_rng(0).uniform(0, 1e6, 3000))
        ids = burstify_poll_loop(t)
        assert np.all(np.diff(ids) >= 0)
        assert np.unique(ids).shape[0] == ids.max() + 1

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            burstify_poll_loop(np.array([1.0, 0.0]))

    def test_fixed(self):
        ids = burstify_fixed(10, 4)
        np.testing.assert_array_equal(ids, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2])

    def test_burst_bounds(self):
        starts, ends = burst_bounds(np.array([0, 0, 1, 2, 2, 2]))
        np.testing.assert_array_equal(starts, [0, 2, 3])
        np.testing.assert_array_equal(ends, [2, 3, 6])

    def test_burst_bounds_empty(self):
        starts, ends = burst_bounds(np.array([]))
        assert starts.shape == (0,) and ends.shape == (0,)


class TestRecording:
    def _rec(self, n=1000, buffer=MIN_BUFFER_BYTES):
        batch = cbr_batch(n)
        ids = burstify_fixed(n, 8)
        return Recording.capture(batch, ids, batch.times_ns, TSC(), buffer_bytes=buffer)

    def test_capture_roundtrip(self):
        rec = self._rec()
        assert len(rec) == 1000
        assert rec.n_bursts == 125
        assert not rec.truncated

    def test_memory_accounting(self):
        rec = self._rec()
        assert rec.memory_bytes == 1000 * MBUF_BYTES

    def test_min_buffer_enforced(self):
        with pytest.raises(ValueError, match="at least"):
            self._rec(buffer=1024)

    def test_truncation_on_burst_boundary(self):
        # Capacity for ~493k packets; offer more.
        n = MIN_BUFFER_BYTES // MBUF_BYTES + 1000
        batch = cbr_batch(n)
        ids = burstify_fixed(n, 64)
        rec = Recording.capture(batch, ids, batch.times_ns, TSC())
        assert rec.truncated
        assert len(rec) <= MIN_BUFFER_BYTES // MBUF_BYTES
        assert len(rec) % 64 == 0  # cut on a burst boundary

    def test_relative_burst_times(self):
        rec = self._rec()
        rel = rec.relative_burst_times_ns()
        assert rel[0] == 0.0
        assert np.all(np.diff(rel) >= 0)
        # Burst spacing is 8 packets * 284 ns, quantized to TSC cycles.
        assert rel[1] == pytest.approx(8 * 284.0, abs=1.0)

    def test_duration(self):
        rec = self._rec()
        assert rec.duration_ns == pytest.approx(999 * 284.0, rel=0.01)

    def test_burst_sizes(self):
        rec = self._rec()
        np.testing.assert_array_equal(rec.burst_sizes(), np.full(125, 8))

    def test_validation_rejects_bad_tsc_count(self):
        batch = cbr_batch(10)
        with pytest.raises(ValueError, match="stamps"):
            Recording(batch, burstify_fixed(10, 5), np.array([0]), TSC())


class TestMiddlebox:
    def test_transparent_forwarding_preserves_packets(self, rng):
        mb = TransparentMiddlebox(tx_nic=TxNicModel(rate_bps=100e9))
        batch = cbr_batch(500)
        res = mb.forward(batch, rng)
        np.testing.assert_array_equal(res.egress.tags, batch.tags)
        assert res.recording is None
        assert np.all(res.egress.times_ns >= batch.times_ns)

    def test_record_produces_recording(self, rng):
        mb = TransparentMiddlebox(tx_nic=TxNicModel(rate_bps=100e9))
        batch = cbr_batch(500)
        res = mb.forward(batch, rng, record=True)
        assert res.recording is not None
        assert len(res.recording) == 500

    def test_empty_ingress(self, rng):
        mb = TransparentMiddlebox(tx_nic=TxNicModel(rate_bps=100e9))
        res = mb.forward(cbr_batch(0), rng, record=True)
        assert len(res.egress) == 0
        assert res.recording is None


class TestReplayer:
    def _recording(self, n=2000):
        batch = cbr_batch(n)
        ids = burstify_poll_loop(batch.times_ns, PollLoopCost(4500, 40))
        return Recording.capture(batch, ids, batch.times_ns, TSC())

    def test_replay_preserves_packets_and_order(self, rng):
        rec = self._recording()
        rp = Replayer(tx_nic=TxNicModel(rate_bps=100e9))
        out = rp.replay(rec, 1e9, rng)
        np.testing.assert_array_equal(out.egress.tags, rec.packets.tags)
        assert np.all(np.diff(out.egress.times_ns) >= 0)

    def test_replay_starts_after_schedule(self, rng):
        rec = self._recording()
        rp = Replayer(tx_nic=TxNicModel(rate_bps=100e9))
        out = rp.replay(rec, 1e9, rng)
        assert out.achieved_start_ns >= 1e9
        assert out.egress.times_ns[0] >= 1e9

    def test_ideal_replay_tracks_recorded_gaps(self, rng):
        """With all noise off, replayed inter-burst gaps match the record."""
        rec = self._recording()
        rp = Replayer(
            tx_nic=TxNicModel(rate_bps=100e9, pull_jitter=0.0),
            timing=ReplayTimingModel(
                poll_granularity_ns=0.0, stall_prob=0.0,
                freq_error_ppm=0.0, start_latency_median_ns=0.0,
            ),
        )
        a = rp.replay(rec, 1e9, rng).egress.times_ns
        b = rp.replay(rec, 1e9, rng).egress.times_ns
        np.testing.assert_allclose(a, b, atol=1e-6)

    def test_freq_error_stretches_schedule(self, rng):
        rec = self._recording(5000)
        rp = Replayer(
            tx_nic=TxNicModel(rate_bps=100e9, pull_jitter=0.0),
            timing=ReplayTimingModel(
                poll_granularity_ns=0.0, stall_prob=0.0,
                freq_error_ppm=100.0, start_latency_median_ns=0.0,
            ),
        )
        out = rp.replay(rec, 1e9, rng)
        expected = rec.duration_ns * (1 + out.freq_error_ppm * 1e-6)
        got = out.egress.times_ns[-1] - out.egress.times_ns[0]
        # The egress span also includes the final burst's on-wire length
        # (~burst_size * 112 ns), which the doorbell-to-doorbell recording
        # duration does not; allow for it.
        assert got == pytest.approx(expected, abs=64 * 112.0)

    def test_stalls_counted_and_first_burst_exempt(self, rng):
        rec = self._recording(5000)
        rp = Replayer(
            tx_nic=TxNicModel(rate_bps=100e9),
            timing=ReplayTimingModel(stall_prob=0.5, stall_scale_ns=10_000.0),
        )
        out = rp.replay(rec, 1e9, rng)
        assert out.n_stalls > 0
        assert out.n_stalls < rec.n_bursts  # burst 0 never stalls

    def test_sustainable_pps_increases_with_burst(self):
        rp = Replayer(tx_nic=TxNicModel(rate_bps=100e9),
                      loop_cost=PollLoopCost(800, 20))
        assert rp.sustainable_pps(64) > rp.sustainable_pps(1)

    def test_empty_recording(self, rng):
        batch = cbr_batch(0)
        rec = Recording.capture(batch, np.array([], dtype=np.int64),
                                np.array([]), TSC())
        rp = Replayer(tx_nic=TxNicModel(rate_bps=100e9))
        out = rp.replay(rec, 1e9, rng)
        assert len(out) == 0


class TestChoirNode:
    def test_lifecycle(self, rng):
        node = ChoirNode("n1", TxNicModel(rate_bps=100e9))
        assert node.state is ChoirState.STANDBY
        node.record(cbr_batch(300), rng)
        assert node.state is ChoirState.ARMED
        out = node.replay(1e9, rng)
        assert len(out) == 300
        node.standby()
        assert node.state is ChoirState.STANDBY

    def test_replay_without_recording_raises(self, rng):
        node = ChoirNode("n1", TxNicModel(rate_bps=100e9))
        with pytest.raises(RuntimeError, match="no recording"):
            node.replay(1e9, rng)

    def test_clock_offset_shifts_start(self, rng):
        """A fast clock reaches the scheduled value early (true time)."""
        timing = ReplayTimingModel(
            start_latency_median_ns=0.0, freq_error_ppm=0.0,
            poll_granularity_ns=0.0, stall_prob=0.0,
        )
        fast = ChoirNode("f", TxNicModel(rate_bps=100e9, pull_jitter=0.0), timing=timing)
        slow = ChoirNode("s", TxNicModel(rate_bps=100e9, pull_jitter=0.0), timing=timing)
        fast.clock.set_offset(+5000.0)
        batch = cbr_batch(100)
        fast.record(batch, rng)
        slow.record(batch, rng)
        t_fast = fast.replay(1e9, rng).achieved_start_ns
        t_slow = slow.replay(1e9, rng).achieved_start_ns
        assert t_slow - t_fast == pytest.approx(5000.0)

    def test_throughput_exceeds_100g_requirement(self):
        """Section 5/10: the loop must sustain 8.9 Mpps at full bursts."""
        node = ChoirNode("n", TxNicModel(rate_bps=100e9))
        assert node.sustainable_pps_at_full_burst > 8.9e6
