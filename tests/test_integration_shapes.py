"""Integration tests: the paper's qualitative results hold in the model.

These run the actual scenario pipelines (at reduced duration for speed —
the metrics are duration-invariant, see test_scaling_invariance) and
assert the *shape* claims of the evaluation: who is more consistent than
whom, which metrics light up where, and the characteristic statistics the
running text quotes.
"""

import numpy as np
import pytest

from repro.experiments import run_scenario, scenario

SCALE = 0.05  # 15 ms captures: ~53k packets per run at 40 Gbps

# Reports are memoized by the runner, so each scenario simulates once for
# this whole module.
run = lambda key, n=5: run_scenario(key, duration_scale=SCALE, n_runs=n)


class TestLocalSingle:
    """Section 6.1."""

    def test_no_drops_or_reordering(self):
        rep = run("local-single")
        assert np.all(rep.values("U") == 0.0)
        assert np.all(rep.values("O") == 0.0)

    def test_iat_cluster_at_ten_ns(self):
        """'Between 92.23% and 92.51% of packets were within 10 ns.'"""
        pct = run("local-single").pct_iat_within_10ns()
        assert np.all(pct > 85.0) and np.all(pct < 97.0)

    def test_metric_magnitudes(self):
        rep = run("local-single")
        paper = scenario("local-single").paper
        assert rep.values("I").mean() == pytest.approx(paper.i, rel=0.5)
        assert rep.values("kappa").mean() == pytest.approx(paper.kappa, abs=0.01)


class TestLocalDual:
    """Section 6.2: parallelism introduces reordering."""

    def test_reordering_appears(self):
        rep = run("local-dual")
        assert np.all(rep.values("O") > 0.0)
        assert np.all(rep.values("U") == 0.0)  # still no drops

    def test_half_the_packets_move(self):
        """'This is 49.8% of the captured packets.'"""
        rep = run("local-dual")
        for p in rep.pairs:
            frac = p.move_stats.n_moved / p.n_common
            assert 0.35 < frac < 0.55

    def test_moves_are_block_shaped(self):
        """Whole bursts move together: distances cluster tightly."""
        rep = run("local-dual")
        for p in rep.pairs:
            ms = p.move_stats
            if ms.n_moved == 0:
                continue
            # Most packets move a similar distance (paper Section 6.2).
            assert ms.abs_std < ms.abs_mean

    def test_worse_than_single(self):
        single = run("local-single").values("kappa").mean()
        dual = run("local-dual").values("kappa").mean()
        assert dual < single - 0.01

    def test_i_roughly_an_order_worse_than_single(self):
        single = run("local-single").values("I").mean()
        dual = run("local-dual").values("I").mean()
        assert 3 * single < dual < 30 * single


class TestFabricVsLocal:
    """Section 8.1: FABRIC adds IAT deviation over the local testbed."""

    def test_fabric_shared_less_consistent_than_local(self):
        local = run("local-single")
        fabric = run("fabric-shared-40g")
        assert fabric.values("I").mean() > 1.5 * local.values("I").mean()
        assert fabric.values("kappa").mean() < local.values("kappa").mean()

    def test_fabric_iat_core_much_smaller(self):
        """Only ~26-48% within 10 ns on FABRIC vs ~92% locally."""
        local = run("local-single").pct_iat_within_10ns().mean()
        fabric = run("fabric-shared-40g").pct_iat_within_10ns().mean()
        assert fabric < local - 30.0

    def test_dedicated_anomaly(self):
        """The paper's surprise: dedicated NICs measured *worse* than shared."""
        ded = run("fabric-dedicated-40g").values("kappa").mean()
        shd = run("fabric-shared-40g").values("kappa").mean()
        assert ded < shd - 0.05

    def test_anomaly_confirmed_by_retest(self):
        t1 = run("fabric-dedicated-40g").values("I").mean()
        t3 = run("fabric-dedicated-40g-2").values("I").mean()
        assert t3 == pytest.approx(t1, rel=0.5)

    def test_no_drops_in_quiet_fabric(self):
        for key in ("fabric-dedicated-40g", "fabric-shared-40g",
                    "fabric-dedicated-80g", "fabric-shared-80g"):
            assert np.all(run(key).values("U") == 0.0)


class TestEightyGbps:
    """Section 7: 80 Gbps runs."""

    def test_dedicated_and_shared_similar(self):
        ded = run("fabric-dedicated-80g").values("I").mean()
        shd = run("fabric-shared-80g").values("I").mean()
        assert shd == pytest.approx(ded, rel=0.3)

    def test_more_consistent_than_anomalous_40g(self):
        """'At 80 Gbps the IATs get a little more consistent.'"""
        i80 = run("fabric-dedicated-80g").values("I").mean()
        i40 = run("fabric-dedicated-40g").values("I").mean()
        assert i80 < i40

    def test_kappa_band(self):
        for key in ("fabric-dedicated-80g", "fabric-shared-80g"):
            k = run(key).values("kappa").mean()
            assert 0.90 < k < 0.97  # paper: 0.945-0.947


class TestNoise:
    """Section 7.1."""

    def test_dedicated_unaffected_by_noise(self):
        quiet = run("fabric-dedicated-80g").values("I").mean()
        noisy = run("fabric-dedicated-80g-noisy").values("I").mean()
        assert noisy == pytest.approx(quiet, rel=0.25)

    def test_shared_collapses_under_noise(self):
        quiet = run("fabric-shared-40g").values("I").mean()
        noisy = run("fabric-shared-40g-noisy").values("I").mean()
        assert noisy > 3 * quiet

    def test_first_drops_appear_here(self):
        """The only environment with non-zero U."""
        noisy = run("fabric-shared-40g-noisy")
        assert np.any(noisy.values("U") > 0.0)

    def test_drops_barely_dent_kappa(self):
        """'Relatively few drops ... very little impact on the kappa.'"""
        rep = run("fabric-shared-40g-noisy")
        for p in rep.pairs:
            v = p.metrics
            k_without_u = 1 - np.sqrt(v.o**2 + v.l**2 + v.i**2) / 2
            assert abs(p.kappa - k_without_u) < 1e-3


class TestTableTwoOrdering:
    """The overall consistency ranking of Table 2 is preserved."""

    def test_kappa_ranking(self):
        k = {key: run(key).values("kappa").mean() for key in (
            "local-single", "fabric-shared-40g", "fabric-dedicated-80g",
            "fabric-dedicated-40g", "fabric-shared-40g-noisy",
        )}
        # Local best; quiet shared/80G next; anomalous + noisy worst.
        assert k["local-single"] > k["fabric-shared-40g"]
        assert k["fabric-shared-40g"] > k["fabric-dedicated-40g"]
        assert k["fabric-shared-40g"] > k["fabric-shared-40g-noisy"]
        assert abs(k["fabric-dedicated-40g"] - k["fabric-shared-40g-noisy"]) < 0.1
