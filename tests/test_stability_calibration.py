"""Calibration suite: the stability layer's statistics tested *as statistics*.

Coverage claims are meaningless untested: a "95% bootstrap interval"
whose empirical coverage is 70% would silently turn the Table-2 interval
columns and the CI-aware validation tolerances into noise.  This suite
replays the interval construction many times over distributions with
*known* truth (seeded from ``REPRO_TEST_SEED`` via
:func:`tests.conftest.suite_rng`) and pins:

* the 95% bootstrap CI covers the true mean at ≈ the nominal rate;
* the minimal-runs rule stops on stable series well under the fixed-N
  cap, and refuses to stop on a series with an injected mean shift —
  the same shift :func:`repro.analysis.changepoints.detect_series_steps`
  flags, so "no tight interval" and "changepoint detected" agree;
* the MAD screen flags planted outliers, never flags clean or constant
  samples, and degrades safely (MeanAD fallback, small-sample quorum).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.changepoints import detect_series_steps
from repro.analysis.stability import (
    DEFAULT_EPSILON,
    ci_half_width,
    minimal_runs_mean,
    screen_outliers,
    stability_seed_plan,
)
from repro.analysis.stats import bootstrap_ci

from .conftest import suite_rng

#: Replications for the coverage experiment.  300 keeps the binomial
#: noise on the coverage estimate to ~±1.3% (one sigma) at p=0.95.
N_REPLICATIONS = 300
#: Per-replication sample size — the stability screen's working regime
#: (a dozen-ish seeded sessions).
SAMPLE_N = 15
TRUE_MEAN = 0.8
TRUE_SIGMA = 0.05


class TestBootstrapCoverage:
    def test_nominal_coverage_on_normal_samples(self):
        """Empirical 95% coverage lands near 95% (bootstrap-typical band).

        The percentile bootstrap undercovers slightly at small n, so the
        acceptance band is asymmetric: [0.88, 0.99] tolerates the known
        small-sample bias without tolerating a broken interval.
        """
        rng = suite_rng(salt=201)
        hits = 0
        for k in range(N_REPLICATIONS):
            sample = rng.normal(TRUE_MEAN, TRUE_SIGMA, size=SAMPLE_N)
            lo, _, hi = bootstrap_ci(sample, seed=k)
            hits += lo <= TRUE_MEAN <= hi
        coverage = hits / N_REPLICATIONS
        assert 0.88 <= coverage <= 0.99, f"coverage {coverage:.3f}"

    def test_coverage_tracks_confidence_level(self):
        """An 80% interval covers less often than a 95% one."""
        rng = suite_rng(salt=202)
        hits80 = hits95 = 0
        for k in range(N_REPLICATIONS):
            sample = rng.normal(TRUE_MEAN, TRUE_SIGMA, size=SAMPLE_N)
            lo, _, hi = bootstrap_ci(sample, confidence=0.80, seed=k)
            hits80 += lo <= TRUE_MEAN <= hi
            lo, _, hi = bootstrap_ci(sample, confidence=0.95, seed=k)
            hits95 += lo <= TRUE_MEAN <= hi
        assert hits80 < hits95
        assert 0.70 <= hits80 / N_REPLICATIONS <= 0.92

    def test_half_width_is_half_the_interval(self):
        sample = suite_rng(salt=203).normal(0.5, 0.1, size=20)
        lo, _, hi = bootstrap_ci(sample, seed=3)
        assert ci_half_width(sample, seed=3) == pytest.approx((hi - lo) / 2)


class TestMinimalRuns:
    def test_stable_series_stops_under_the_cap(self):
        """A quiet series needs far fewer sessions than the fixed-N cap —
        the economy claim behind making the stopping rule the default."""
        rng = suite_rng(salt=204)
        cap = 32
        values, decision = minimal_runs_mean(
            lambda k: rng.normal(TRUE_MEAN, 0.004),
            eps=DEFAULT_EPSILON,
            max_runs=cap,
        )
        assert decision.stopped
        assert decision.n_used < cap // 2
        assert decision.n_used == values.size
        assert decision.half_width <= DEFAULT_EPSILON
        # One half-width per check from min_runs onward, ending at stop.
        assert len(decision.history) == decision.n_used - 3
        assert decision.history[-1] == decision.half_width

    def test_stopping_rule_mostly_stops_early_across_replications(self):
        """The early stop is the rule, not a lucky draw."""
        rng = suite_rng(salt=205)
        stops = 0
        used = []
        for _ in range(25):
            _, decision = minimal_runs_mean(
                lambda k: rng.normal(TRUE_MEAN, 0.004),
                eps=DEFAULT_EPSILON,
                max_runs=32,
            )
            stops += decision.stopped
            used.append(decision.n_used)
        assert stops >= 23
        assert float(np.mean(used)) < 10

    def test_shifted_series_refuses_to_stop(self):
        """An injected mean shift keeps the interval wide to the cap.

        Drift must be answered with "unstable", never a tight interval
        around a meaningless mean — and the very shift the rule balks at
        is one the changepoint detector localizes, so both diagnostics
        tell the same story.
        """
        rng = suite_rng(salt=206)
        shift_at, cap = 10, 24

        def drifting(k: int) -> float:
            center = TRUE_MEAN if k < shift_at else TRUE_MEAN - 0.2
            return rng.normal(center, 0.003)

        # min_runs places the first check after the shift is in-window;
        # a pre-shift check could stop on the (genuinely stable) prefix.
        values, decision = minimal_runs_mean(
            drifting, eps=DEFAULT_EPSILON, min_runs=shift_at + 2,
            max_runs=cap,
        )
        assert not decision.stopped
        assert decision.n_used == cap
        assert decision.half_width > DEFAULT_EPSILON
        steps = detect_series_steps(values, min_step=0.1)
        assert len(steps) == 1
        assert steps[0].step_ns < 0  # a downward shift...
        assert abs(steps[0].index - shift_at) <= 1  # ...where injected

    def test_parameter_validation(self):
        draw = lambda k: 0.5  # noqa: E731
        with pytest.raises(ValueError, match="eps"):
            minimal_runs_mean(draw, eps=0.0)
        with pytest.raises(ValueError, match="min_runs"):
            minimal_runs_mean(draw, min_runs=2)
        with pytest.raises(ValueError, match="max_runs"):
            minimal_runs_mean(draw, min_runs=5, max_runs=4)


class TestOutlierScreen:
    def test_flags_a_planted_outlier(self):
        rng = suite_rng(salt=207)
        values = rng.normal(0.9, 0.005, size=11)
        values[4] = 0.5  # a crashed/degenerate session
        screen = screen_outliers(values)
        assert screen.n_flagged == 1
        assert bool(screen.flags[4])
        kept = screen.kept()
        assert kept.size == 10
        assert 0.5 not in kept

    def test_clean_sample_unflagged(self):
        rng = suite_rng(salt=208)
        screen = screen_outliers(rng.normal(0.9, 0.01, size=20))
        assert screen.n_flagged == 0
        assert np.array_equal(screen.kept(), screen.values)

    def test_constant_sample_unflagged(self):
        screen = screen_outliers([0.7] * 9)
        assert screen.n_flagged == 0
        assert screen.mad == 0.0

    def test_meanad_fallback_when_mad_degenerates(self):
        """Half-identical samples zero the MAD; MeanAD still catches the
        outlier instead of dividing by zero or going blind."""
        screen = screen_outliers([1.0, 1.0, 1.0, 1.0, 10.0])
        assert screen.mad == 0.0
        assert screen.n_flagged == 1
        assert bool(screen.flags[-1])

    def test_small_samples_never_flag(self):
        """Two points cannot outvote each other: no quorum, no flags."""
        screen = screen_outliers([0.1, 99.0])
        assert screen.n_flagged == 0

    def test_kept_never_empty(self):
        """Even a screen that flags everything must leave the estimator
        with the full sample, not an empty one."""
        from dataclasses import replace

        screen = screen_outliers([1.0, 1.0, 1.0, 1.0, 10.0])
        all_flagged = replace(screen, flags=np.ones_like(screen.flags))
        assert np.array_equal(all_flagged.kept(), screen.values)

    def test_validation(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            screen_outliers([])
        with pytest.raises(ValueError, match="one-dimensional"):
            screen_outliers([[1.0, 2.0]])
        with pytest.raises(ValueError, match="threshold"):
            screen_outliers([1.0, 2.0, 3.0], threshold=0.0)


class TestSeedPlan:
    def test_consecutive_from_base(self):
        assert stability_seed_plan(7, 4) == (7, 8, 9, 10)

    def test_count_validated(self):
        with pytest.raises(ValueError, match="at least one seed"):
            stability_seed_plan(0, 0)
