"""Unit suite for :mod:`repro.analysis.stats` — the bootstrap layer.

The stability screen (:mod:`repro.analysis.stability`) and the Table-2
interval columns are built directly on ``bootstrap_ci`` and
``SeedSweepResult``; this suite pins the exact behaviors those layers
assume: seeded determinism, the small-sample range degeneration, the
input validation, and the row schema.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import SeedSweepResult, bootstrap_ci, seed_sweep
from repro.testbeds import local_single_replayer

from .conftest import suite_rng


class TestBootstrapCi:
    def test_seeded_determinism(self):
        """Same sample + same seed: the identical interval, bit-for-bit."""
        sample = suite_rng(salt=101).normal(0.9, 0.02, size=12)
        first = bootstrap_ci(sample, seed=7)
        again = bootstrap_ci(sample, seed=7)
        assert first == again  # exact float equality, not approx

    def test_seed_changes_resample_plan(self):
        """Different bootstrap seeds draw different resamples."""
        sample = suite_rng(salt=102).normal(0.9, 0.02, size=12)
        lo_a, mean_a, hi_a = bootstrap_ci(sample, seed=0)
        lo_b, mean_b, hi_b = bootstrap_ci(sample, seed=1)
        assert mean_a == mean_b  # the point estimate is seed-free
        assert (lo_a, hi_a) != (lo_b, hi_b)

    def test_interval_brackets_the_mean(self):
        sample = suite_rng(salt=103).normal(0.5, 0.1, size=30)
        lo, mean, hi = bootstrap_ci(sample)
        assert lo <= mean <= hi
        assert mean == pytest.approx(sample.mean())

    def test_tightens_with_sample_size(self):
        """More data, narrower interval — the property the stopping rule
        of the stability screen relies on."""
        rng = suite_rng(salt=104)
        small = rng.normal(0.8, 0.05, size=5)
        large = np.concatenate([small, rng.normal(0.8, 0.05, size=45)])
        lo_s, _, hi_s = bootstrap_ci(small)
        lo_l, _, hi_l = bootstrap_ci(large)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    @pytest.mark.parametrize("sample", [[0.7], [0.7, 0.9]])
    def test_small_samples_degenerate_to_range(self, sample):
        """n < 3 cannot support a bootstrap: the interval is the range."""
        lo, mean, hi = bootstrap_ci(sample)
        assert lo == min(sample)
        assert hi == max(sample)
        assert mean == pytest.approx(np.mean(sample))

    def test_constant_sample_collapses(self):
        lo, mean, hi = bootstrap_ci([0.25] * 8)
        assert lo == mean == hi == 0.25

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            bootstrap_ci([])

    @pytest.mark.parametrize("confidence", [0.0, 1.0, -0.5, 1.5])
    def test_confidence_must_be_open_unit_interval(self, confidence):
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_ci([1.0, 2.0, 3.0], confidence=confidence)

    def test_wider_confidence_wider_interval(self):
        sample = suite_rng(salt=105).normal(0.0, 1.0, size=25)
        lo90, _, hi90 = bootstrap_ci(sample, confidence=0.90)
        lo99, _, hi99 = bootstrap_ci(sample, confidence=0.99)
        assert (hi99 - lo99) > (hi90 - lo90)


class TestSeedSweepResult:
    def _result(self):
        return SeedSweepResult(
            environment="synthetic",
            seeds=(0, 1, 2, 3),
            kappa=np.array([0.90, 0.94, 0.92, 0.96]),
            i_values=np.array([0.10, 0.12, 0.11, 0.13]),
            l_values=np.array([1.0, 2.0, 1.5, 2.5]),
        )

    def test_row_schema(self):
        """The exact column set the seed-variance reporting consumes."""
        row = self._result().row()
        assert set(row) == {
            "environment",
            "n_seeds",
            "kappa_mean",
            "kappa_ci_low",
            "kappa_ci_high",
            "kappa_spread",
            "I_mean",
        }
        assert row["environment"] == "synthetic"
        assert row["n_seeds"] == 4

    def test_row_values_match_the_arrays(self):
        res = self._result()
        row = res.row()
        lo, mean, hi = bootstrap_ci(res.kappa)
        assert row["kappa_mean"] == mean
        assert row["kappa_ci_low"] == lo
        assert row["kappa_ci_high"] == hi
        assert row["I_mean"] == pytest.approx(res.i_values.mean())

    def test_kappa_spread_is_range(self):
        res = self._result()
        assert res.kappa_spread() == pytest.approx(0.96 - 0.90)
        assert res.row()["kappa_spread"] == res.kappa_spread()


class TestSeedSweep:
    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            seed_sweep(local_single_replayer(), [])

    def test_sweep_shape_and_determinism(self):
        """One mean per seed, and the whole sweep replays exactly."""
        profile = local_single_replayer().at_duration(2e6)
        res = seed_sweep(profile, [3, 5], n_runs=2)
        assert res.environment == profile.name
        assert res.seeds == (3, 5)
        assert res.kappa.shape == (2,)
        assert res.i_values.shape == (2,)
        assert res.l_values.shape == (2,)
        # Distinct seeds are distinct realizations...
        assert res.kappa[0] != res.kappa[1]
        # ...but the same seed is the same bits, every time.
        again = seed_sweep(profile, [3, 5], n_runs=2)
        assert np.array_equal(res.kappa, again.kappa)
        assert np.array_equal(res.i_values, again.i_values)
        assert np.array_equal(res.l_values, again.l_values)
