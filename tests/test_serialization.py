"""Unit tests for JSON profile serialization."""

import json

import pytest

from repro.experiments import SCENARIOS
from repro.generators import IMIXGenerator
from repro.testbeds import (
    load_profile,
    local_single_replayer,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from repro.testbeds.fabric import fabric_intersite_40g, fabric_shared_40g_noisy


class TestRoundtrip:
    @pytest.mark.parametrize("sc", SCENARIOS, ids=lambda s: s.key)
    def test_all_scenarios_roundtrip(self, sc):
        p = sc.build()
        assert profile_from_dict(profile_to_dict(p)) == p

    def test_wan_profile_roundtrips(self):
        p = fabric_intersite_40g(ecmp_paths=4)
        assert profile_from_dict(profile_to_dict(p)) == p

    def test_json_serializable(self):
        d = profile_to_dict(fabric_shared_40g_noisy())
        json.dumps(d)  # no numpy scalars / objects leak through

    def test_file_roundtrip(self, tmp_path):
        p = local_single_replayer()
        path = save_profile(p, tmp_path / "env.json")
        assert load_profile(path) == p

    def test_equivalent_simulation(self, tmp_path):
        """A reloaded profile produces bit-identical trials."""
        import numpy as np

        from repro.testbeds import Testbed

        p = local_single_replayer().at_duration(2e6)
        q = load_profile(save_profile(p, tmp_path / "env.json"))
        a = Testbed(p, seed=4).run_series(2)
        b = Testbed(q, seed=4).run_series(2)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x.times_ns, y.times_ns)


class TestValidation:
    def test_workload_rejected(self):
        from dataclasses import replace

        p = replace(local_single_replayer(), workload=IMIXGenerator(pps=1e6))
        with pytest.raises(ValueError, match="workload"):
            profile_to_dict(p)

    def test_unknown_profile_key_rejected(self):
        d = profile_to_dict(local_single_replayer())
        d["surprise"] = 1
        with pytest.raises(ValueError, match="unknown keys"):
            profile_from_dict(d)

    def test_unknown_nested_key_rejected(self):
        d = profile_to_dict(local_single_replayer())
        d["loop_cost"]["warp_factor"] = 9
        with pytest.raises(ValueError, match="loop_cost.*unknown"):
            profile_from_dict(d)

    def test_unknown_stamper_type_rejected(self):
        d = profile_to_dict(local_single_replayer())
        d["rx_stamper"]["type"] = "quantum"
        with pytest.raises(ValueError, match="unknown type"):
            profile_from_dict(d)

    def test_stamper_type_tag_distinguishes(self):
        local = profile_to_dict(local_single_replayer())
        assert local["rx_stamper"]["type"] == "realtime-hw"
        from repro.testbeds import fabric_shared_40g

        fabric = profile_to_dict(fabric_shared_40g())
        assert fabric["rx_stamper"]["type"] == "sampled-clock"

    def test_hand_written_minimal_profile(self):
        """A minimal JSON (name + rate) builds with defaults."""
        p = profile_from_dict({"name": "mini", "rate_bps": 10e9})
        assert p.name == "mini"
        assert p.n_replayers == 1
