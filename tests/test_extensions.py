"""Unit tests for the extension modules: rolling capture, B&S reorder
metric, GapReplay raw metrics, statistics, and metric balancing."""

import numpy as np
import pytest

from repro.analysis import (
    balanced_scaling,
    bootstrap_ci,
    component_ranges,
    seed_sweep,
)
from repro.core import (
    Trial,
    compare_series,
    cumulative_latency_ns,
    iat_deviation_ns,
    iat_variation,
    latency_variation,
    match_trials,
    mean_absolute_iat_delta_ns,
    mean_absolute_latency_delta_ns,
    reorder_probability_by_spacing,
)
from repro.net import PacketArray, make_tags
from repro.replay import MBUF_BYTES, MIN_BUFFER_BYTES, Recording, burstify_fixed
from repro.testbeds import local_single_replayer
from repro.timing import TSC

from .conftest import comb_trial, make_trial


class TestRollingCapture:
    def _offer(self, n):
        batch = PacketArray.uniform(n, 1400, np.arange(n) * 112.0)
        return batch, burstify_fixed(n, 64)

    def test_keeps_tail(self):
        cap = MIN_BUFFER_BYTES // MBUF_BYTES
        batch, bids = self._offer(cap + 5000)
        rec = Recording.capture_rolling(batch, bids, batch.times_ns, TSC())
        assert rec.truncated
        assert rec.packets.tags[-1] == batch.tags[-1]  # newest kept
        assert rec.packets.tags[0] != batch.tags[0]  # oldest discarded
        assert rec.memory_bytes <= MIN_BUFFER_BYTES

    def test_no_truncation_when_fits(self):
        batch, bids = self._offer(1000)
        rec = Recording.capture_rolling(batch, bids, batch.times_ns, TSC())
        assert not rec.truncated
        assert len(rec) == 1000

    def test_cut_on_burst_boundary(self):
        cap = MIN_BUFFER_BYTES // MBUF_BYTES
        batch, bids = self._offer(cap + 100)
        rec = Recording.capture_rolling(batch, bids, batch.times_ns, TSC())
        assert rec.burst_ids[0] == 0
        # First burst kept whole: 64 packets of burst 0.
        assert int((rec.burst_ids == 0).sum()) == 64

    def test_replayable(self, rng):
        from repro.net import TxNicModel
        from repro.replay import Replayer

        cap = MIN_BUFFER_BYTES // MBUF_BYTES
        batch, bids = self._offer(cap + 2000)
        rec = Recording.capture_rolling(batch, bids, batch.times_ns, TSC())
        out = Replayer(tx_nic=TxNicModel(rate_bps=100e9)).replay(rec, 1e9, rng)
        assert len(out) == len(rec)


class TestReorderBySpacing:
    def _trial(self, arrival_order, rid=1):
        """Packets tagged seq 0..n-1; arrival order given explicitly."""
        n = len(arrival_order)
        tags = make_tags(n, replayer_id=rid)[np.asarray(arrival_order)]
        return Trial(tags, np.arange(n, dtype=float) * 100.0)

    def test_in_order_stream(self):
        r = reorder_probability_by_spacing(self._trial(range(50)))
        assert not r.any_reordering
        assert np.all(r.probability == 0.0)

    def test_adjacent_swap_hits_lag_one(self):
        order = list(range(20))
        order[5], order[6] = order[6], order[5]
        r = reorder_probability_by_spacing(self._trial(order), max_lag=3)
        assert r.probability[0] == pytest.approx(1 / 19)
        assert r.probability[1] == 0.0  # lag-2 pairs unaffected by a swap

    def test_late_packet_affects_many_lags(self):
        # Packet 0 arrives after packets 1..8: inversions at many lags.
        order = [1, 2, 3, 4, 5, 6, 7, 8, 0, 9]
        r = reorder_probability_by_spacing(self._trial(order), max_lag=8)
        assert r.any_reordering
        assert np.count_nonzero(r.probability) >= 5

    def test_multi_replayer_sequences_independent(self):
        # Two nodes' streams interleaved: each internally ordered.
        a = make_tags(10, replayer_id=1)
        b = make_tags(10, replayer_id=2)
        tags = np.empty(20, dtype=np.int64)
        tags[0::2] = a
        tags[1::2] = b
        t = Trial(tags, np.arange(20, dtype=float))
        r = reorder_probability_by_spacing(t)
        assert not r.any_reordering

    def test_drops_break_pairs(self):
        # Sequence 0,1,3 (2 missing): only (0,1) forms a lag-1 pair.
        tags = make_tags(4, replayer_id=1)[[0, 1, 3]]
        t = Trial(tags, np.arange(3, dtype=float))
        r = reorder_probability_by_spacing(t, max_lag=1)
        assert r.n_pairs[0] == 1

    def test_rows_and_validation(self):
        r = reorder_probability_by_spacing(self._trial(range(5)), max_lag=2)
        assert len(r.rows()) == 2
        with pytest.raises(ValueError):
            reorder_probability_by_spacing(self._trial(range(5)), max_lag=0)


class TestGapReplayRawMetrics:
    def test_latency_identity_with_normalized(self):
        a = make_trial([0.0, 100.0, 250.0], label="A")
        b = make_trial([0.0, 130.0, 240.0], label="B")
        m = match_trials(a, b)
        raw = cumulative_latency_ns(a, b)
        span = max(b.end_ns - a.start_ns, a.end_ns - b.start_ns,
                   a.duration_ns, b.duration_ns)
        assert latency_variation(a, b) == pytest.approx(raw / (m.n_common * span))

    def test_iat_identity_with_normalized(self):
        a = make_trial([0.0, 100.0, 250.0], label="A")
        b = make_trial([0.0, 130.0, 240.0], label="B")
        raw = iat_deviation_ns(a, b)
        denom = (a.end_ns - a.start_ns) + (b.end_ns - b.start_ns)
        assert iat_variation(a, b) == pytest.approx(raw / denom)

    def test_mean_absolute_forms(self):
        a = make_trial([0.0, 100.0], tags=[1, 2])
        b = make_trial([0.0, 150.0], tags=[1, 2])
        assert mean_absolute_latency_delta_ns(a, b) == pytest.approx(25.0)
        assert mean_absolute_iat_delta_ns(a, b) == pytest.approx(25.0)

    def test_empty_overlap(self):
        a = make_trial([0.0], tags=[1])
        b = make_trial([0.0], tags=[2])
        assert mean_absolute_latency_delta_ns(a, b) == 0.0
        assert mean_absolute_iat_delta_ns(a, b) == 0.0


class TestBootstrap:
    def test_degenerate_small_samples(self):
        lo, mean, hi = bootstrap_ci([1.0, 3.0])
        assert (lo, mean, hi) == (1.0, 2.0, 3.0)

    def test_interval_brackets_mean(self, rng):
        v = rng.normal(10.0, 1.0, 30)
        lo, mean, hi = bootstrap_ci(v)
        assert lo < mean < hi
        assert hi - lo < 2.0  # ~CI width for n=30, sigma=1

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_deterministic_given_seed(self):
        v = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert bootstrap_ci(v, seed=1) == bootstrap_ci(v, seed=1)


class TestSeedSweep:
    def test_sweep_structure(self):
        p = local_single_replayer().at_duration(2e6)
        res = seed_sweep(p, seeds=[1, 2, 3], n_runs=2)
        assert res.kappa.shape == (3,)
        assert res.kappa_spread() >= 0.0
        row = res.row()
        assert row["n_seeds"] == 3
        assert row["kappa_ci_low"] <= row["kappa_mean"] <= row["kappa_ci_high"]

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            seed_sweep(local_single_replayer(), seeds=[])


class TestBalancedScaling:
    def _reports(self):
        # Two synthetic series with very different component scales.
        t1 = [comb_trial(50, label=l) for l in "AB"]
        rep = compare_series(t1, environment="x")
        return [rep]

    def test_component_ranges(self):
        ranges = component_ranges(self._reports())
        assert set(ranges) == {"U", "O", "L", "I"}

    def test_balancing_amplifies_small_components(self):
        from repro.core import MetricVector

        # Observed maxima: L tiny, I large.
        class FakeReport:
            def __init__(self, vals):
                self._v = vals

            def values(self, c):
                return np.array([self._v[c]])

        reports = [FakeReport({"U": 0.0, "O": 0.0, "L": 3e-4, "I": 0.5})]
        scaling = balanced_scaling(reports)
        v = MetricVector(0.0, 0.0, 3e-4, 0.5)
        su, so, sl, si = scaling.apply(v.u, v.o, v.l, v.i)
        # After balancing, the worst observed L maps to the target 0.5 —
        # the same as I, so L no longer vanishes from kappa.
        assert sl == pytest.approx(0.5, rel=1e-6)
        assert si == pytest.approx(0.5, rel=1e-6)

    def test_zero_components_not_amplified(self):
        class FakeReport:
            def values(self, c):
                return np.array([0.0])

        scaling = balanced_scaling([FakeReport()])
        assert scaling.u_exponent == 1.0

    def test_target_validation(self):
        with pytest.raises(ValueError):
            balanced_scaling(self._reports(), target=1.5)
        with pytest.raises(ValueError):
            component_ranges([])
