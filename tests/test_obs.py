"""The observability subsystem: spans, metrics, exporters, inertness.

Four contracts under test, mirroring the priority order documented in
:mod:`repro.obs.trace`:

1. disabled tracing is a shared no-op (no records, sub-microsecond);
2. span records carry correct nesting, attributes and error annotation;
3. the metric registry's log2 histograms bucket exactly at powers of two
   and its drain/merge delta cycle is lossless;
4. tracing changes **nothing** — every MetricVector and κ of a traced
   comparison is bit-identical to the untraced one, on the serial and
   the forced-sharded paths alike.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from .conftest import make_trial, suite_rng
from repro.core.report import compare_trials
from repro.obs import export, metrics, trace
from repro.obs.metrics import (
    N_HIST_BUCKETS,
    Registry,
    bucket_bounds,
    bucket_index,
)
from repro.obs.trace import span, traced
from repro.obs.worker import TaskEnvelope, TaskTelemetry, absorb, run_local
from repro.parallel import ParallelComparator


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with tracing off and stores empty."""
    from repro.obs.live import COUNTER_EVENTS, LIVE_GAUGES

    trace.reset()
    metrics.REGISTRY.reset()
    COUNTER_EVENTS.reset()
    LIVE_GAUGES.reset()
    yield
    trace.reset()
    metrics.REGISTRY.reset()
    COUNTER_EVENTS.reset()
    LIVE_GAUGES.reset()


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

class TestSpans:
    def test_disabled_records_nothing(self):
        with span("analysis.pair", run="B"):
            pass
        assert trace.records() == []

    def test_disabled_returns_shared_noop(self):
        assert span("a") is span("b")

    def test_records_name_attrs_and_ids(self):
        import os
        import threading

        trace.enable()
        with span("analysis.shard.timing", lo=0, hi=65536):
            pass
        (rec,) = trace.records()
        assert rec.name == "analysis.shard.timing"
        assert rec.attrs == {"lo": 0, "hi": 65536}
        assert rec.pid == os.getpid()
        assert rec.tid == threading.get_ident()
        assert rec.dur_ns >= 0 and rec.start_ns > 0

    def test_nesting_inner_closes_first_and_is_contained(self):
        trace.enable()
        with span("outer"):
            with span("inner"):
                time.sleep(0.001)
        inner, outer = trace.records()
        assert (inner.name, outer.name) == ("inner", "outer")
        assert outer.start_ns <= inner.start_ns
        assert outer.dur_ns >= inner.dur_ns

    def test_exception_annotates_and_propagates(self):
        trace.enable()
        with pytest.raises(ValueError, match="boom"):
            with span("analysis.match"):
                raise ValueError("boom")
        (rec,) = trace.records()
        assert rec.attrs["error"] == "ValueError"

    def test_decorator_respects_flag_per_call(self):
        @traced("stage.decorated")
        def fn(x):
            return x * 2

        assert fn(2) == 4
        assert trace.records() == []
        trace.enable()
        assert fn(3) == 6
        (rec,) = trace.records()
        assert rec.name == "stage.decorated"

    def test_drain_empties_buffer(self):
        trace.enable()
        with span("s"):
            pass
        assert len(trace.drain()) == 1
        assert trace.records() == []

    def test_buffer_cap_counts_drops(self):
        buf = trace.TraceBuffer(max_spans=2)
        rec = trace.SpanRecord("s", 1, 1, 1, 1, 1)
        for _ in range(4):
            buf.append(rec)
        assert len(buf) == 2
        assert buf.dropped == 2
        buf2 = trace.TraceBuffer(max_spans=3)
        buf2.extend([rec] * 5)
        assert len(buf2) == 3 and buf2.dropped == 2

    def test_disabled_overhead_is_negligible(self):
        # Stage-granular call sites rely on the no-op fast path; budget
        # 2 us/call — an order of magnitude above the observed cost, but
        # still far below any real span body, so a regression to record
        # allocation on the disabled path trips it.
        n = 20_000
        t0 = time.perf_counter_ns()
        for _ in range(n):
            with span("noop.overhead", lo=0, hi=1):
                pass
        per_call_ns = (time.perf_counter_ns() - t0) / n
        assert per_call_ns < 2_000, f"{per_call_ns:.0f} ns per disabled span"


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

class TestMetrics:
    @pytest.mark.parametrize("k", [1, 4, 10, 30, 62])
    def test_bucket_edges_at_powers_of_two(self, k):
        # 2^(k-1) .. 2^k - 1 share bucket k; 2^k starts bucket k+1.
        assert bucket_index(1 << (k - 1)) == k
        assert bucket_index((1 << k) - 1) == k
        assert bucket_index(1 << k) == k + 1

    def test_bucket_zero_and_saturation(self):
        assert bucket_index(0) == 0
        assert bucket_index(-5) == 0
        assert bucket_index(1) == 1
        assert bucket_index(1 << 70) == N_HIST_BUCKETS - 1

    def test_bucket_bounds_cover_index(self):
        for v in (1, 2, 3, 1000, 123456789):
            lo, hi = bucket_bounds(bucket_index(v))
            assert lo <= v < hi

    def test_counter_monotonic(self):
        c = metrics.counter("t.count")
        c.add()
        c.add(4)
        with pytest.raises(ValueError):
            c.add(-1)
        assert metrics.REGISTRY.snapshot()["counters"]["t.count"] == 5

    def test_histogram_snapshot(self):
        h = metrics.histogram("t.hist")
        for v in (1, 2, 3, 1024):
            h.observe(v)
        snap = metrics.REGISTRY.snapshot()["histograms"]["t.hist"]
        assert snap["count"] == 4
        assert snap["total"] == 1030
        assert snap["min"] == 1 and snap["max"] == 1024
        assert sum(snap["counts"]) == 4

    def test_drain_merge_round_trip(self):
        metrics.counter("t.c").add(7)
        metrics.histogram("t.h").observe(100)
        deltas = metrics.REGISTRY.drain_deltas()
        # Drained: local registry zeroed.
        assert metrics.REGISTRY.snapshot()["counters"]["t.c"] == 0
        other = Registry()
        other.counter("t.c").add(2)
        other.merge_deltas(deltas)
        snap = other.snapshot()
        assert snap["counters"]["t.c"] == 9
        assert snap["histograms"]["t.h"]["count"] == 1
        assert snap["histograms"]["t.h"]["total"] == 100

    def test_gauges_do_not_travel_in_deltas(self):
        metrics.gauge("t.g").set(3)
        deltas = metrics.REGISTRY.drain_deltas()
        assert "gauges" not in deltas or not deltas.get("gauges")
        # The gauge itself survives the drain (it is a level, not a flow).
        assert metrics.REGISTRY.snapshot()["gauges"]["t.g"] == 3


# ----------------------------------------------------------------------
# Worker envelope plumbing (in-process; the live-pool path is covered in
# test_pool_lifecycle.py)
# ----------------------------------------------------------------------

class TestWorkerTelemetry:
    def test_absorb_merges_spans_and_deltas(self):
        rec = trace.SpanRecord("sim.run", 10, 5, 3, pid=999, tid=1)
        tel = TaskTelemetry(
            pid=999,
            queue_wait_ns=1000,
            task_wall_ns=2000,
            spans=(rec,),
            metric_deltas={"counters": {"sim.runs": 4}},
        )
        absorb(tel)
        assert [s.pid for s in trace.records()] == [999]
        snap = metrics.REGISTRY.snapshot()
        assert snap["counters"]["sim.runs"] == 4
        assert snap["histograms"]["pool.queue_wait_ns"]["count"] == 1
        assert snap["histograms"]["pool.task_wall_ns"]["count"] == 1

    def test_run_local_matches_pool_naming(self):
        assert run_local(lambda t: t + 1, 1, "stage.x") == 2
        assert trace.records() == []  # disabled: straight call
        trace.enable()
        assert run_local(lambda t: t + 1, 1, "stage.x", lo=0) == 2
        (rec,) = trace.records()
        assert rec.name == "stage.x" and rec.attrs == {"lo": 0}

    def test_envelope_is_plain_data(self):
        env = TaskEnvelope("payload", TaskTelemetry(1, 0, 0))
        assert env.payload == "payload"
        assert env.telemetry.pid == 1


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

def _sample_spans():
    import os

    parent = os.getpid()
    return [
        trace.SpanRecord("testbed.record", 1_000, 500, 400, parent, 1),
        trace.SpanRecord("sim.run", 1_200, 200, 150, parent + 1, 1, {"run": 0}),
        trace.SpanRecord("sim.run", 1_300, 210, 160, parent + 2, 1, {"run": 1}),
    ]


class TestExport:
    def test_chrome_trace_is_valid_and_relative(self):
        doc = export.chrome_trace(_sample_spans(), meta={"seed": 7})
        summary = export.validate_chrome_trace(
            doc, min_worker_pids=2, require_spans=("testbed.record", "sim.run")
        )
        assert summary["n_spans"] == 3
        assert len(summary["worker_pids"]) == 2
        assert doc["otherData"]["seed"] == 7
        # Timeline starts at zero: earliest ts is 0 us.
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0

    def test_chrome_trace_names_processes(self):
        doc = export.chrome_trace(_sample_spans())
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        import os

        assert names[os.getpid()] == "repro (parent)"
        assert sum(1 for v in names.values() if v.startswith("worker ")) == 2

    def test_write_and_validate_file(self, tmp_path):
        trace.enable()
        trace.set_meta("seed", 42)
        with span("cli.test"):
            pass
        path = export.write_chrome_trace(tmp_path / "t.json")
        summary = export.validate_chrome_trace(path, require_spans=("cli.test",))
        assert summary["meta"]["seed"] == 42

    def test_jsonl_round_trips(self):
        lines = export.spans_jsonl(_sample_spans()).splitlines()
        assert len(lines) == 3
        objs = [json.loads(line) for line in lines]
        assert objs[0]["name"] == "testbed.record"
        assert objs[1]["attrs"] == {"run": 0}

    def test_stats_table_mentions_stages_and_counters(self):
        metrics.counter("engine.pairs_compared").add(3)
        table = export.stats_table(_sample_spans())
        assert "testbed.record" in table
        assert "sim.run" in table
        assert "engine.pairs_compared" in table

    @pytest.mark.parametrize(
        "doc, msg",
        [
            ({"events": []}, "traceEvents"),
            ({"traceEvents": [{"ph": "X"}]}, "missing required key"),
            (
                {"traceEvents": [
                    {"name": "s", "ph": "X", "pid": 1, "tid": 1, "ts": 0}
                ]},
                "numeric 'dur'",
            ),
            ({"traceEvents": []}, "no complete"),
        ],
    )
    def test_validator_rejects_malformed(self, doc, msg):
        with pytest.raises(ValueError, match=msg):
            export.validate_chrome_trace(doc)

    def test_validator_enforces_required_spans_and_pids(self):
        doc = export.chrome_trace(_sample_spans())
        with pytest.raises(ValueError, match="missing required span"):
            export.validate_chrome_trace(doc, require_spans=("analysis.match",))
        with pytest.raises(ValueError, match="worker pids"):
            export.validate_chrome_trace(doc, min_worker_pids=5)


# ----------------------------------------------------------------------
# Counter (ph:"C") events through export and validation
# ----------------------------------------------------------------------

def _counter_event(name="pool.tasks_inflight", ts=5.0, value=3.0, pid=1):
    return {
        "name": name, "cat": "repro", "ph": "C",
        "ts": ts, "pid": pid, "tid": 0, "args": {"value": value},
    }


def _span_event(ts=0.0):
    return {
        "name": "cli.test", "cat": "repro", "ph": "X",
        "ts": ts, "dur": 10.0, "pid": 1, "tid": 1, "args": {},
    }


class TestCounterEventValidation:
    def test_mixed_span_and_counter_stream_validates(self):
        doc = {"traceEvents": [
            _span_event(),
            _counter_event(ts=1.0, value=1),
            _counter_event(ts=2.0, value=2),
            _counter_event(name="sweep.units_done", ts=1.5, value=4),
        ]}
        summary = export.validate_chrome_trace(
            doc,
            require_counters=("pool.tasks_inflight", "sweep.units_done"),
            min_counter_events=3,
        )
        assert summary["n_counter_events"] == 3
        assert summary["counter_names"] == [
            "pool.tasks_inflight", "sweep.units_done"
        ]
        assert summary["n_spans"] == 1

    def test_array_format_with_trailing_meta(self):
        events = [
            _span_event(),
            _counter_event(),
            {
                "name": "trace_meta", "ph": "i", "s": "g", "ts": 9.0,
                "pid": 1, "tid": 0,
                "args": {"seed": 11, "parent_pid": 1, "sink_dropped": 2,
                         "sink_high_water": 7},
            },
        ]
        summary = export.validate_chrome_trace(events)
        assert summary["meta"]["seed"] == 11
        assert summary["dropped_spans"] == 2
        assert summary["buffer_high_water"] == 7
        assert summary["parent_pid"] == 1
        assert summary["worker_pids"] == []

    @pytest.mark.parametrize(
        "ev, msg",
        [
            ({**_counter_event(), "ts": "soon"}, "numeric 'ts'"),
            ({**_counter_event(), "ts": -1.0}, "negative ts"),
            ({**_counter_event(), "args": {}}, "non-empty args"),
            ({**_counter_event(), "args": {"value": "high"}}, "not numeric"),
            ({**_counter_event(), "args": {"value": True}}, "not numeric"),
        ],
    )
    def test_validator_rejects_malformed_counters(self, ev, msg):
        with pytest.raises(ValueError, match=msg):
            export.validate_chrome_trace({"traceEvents": [_span_event(), ev]})

    def test_counter_track_ts_must_be_monotonic_per_pid_and_name(self):
        doc = {"traceEvents": [
            _span_event(),
            _counter_event(ts=5.0),
            _counter_event(ts=4.0),
        ]}
        with pytest.raises(ValueError, match="goes backwards"):
            export.validate_chrome_trace(doc)
        # Distinct tracks (other pid, other name) are independent.
        ok = {"traceEvents": [
            _span_event(),
            _counter_event(ts=5.0),
            _counter_event(ts=4.0, pid=2),
            _counter_event(name="other", ts=1.0),
        ]}
        export.validate_chrome_trace(ok)

    def test_counter_coverage_requirements(self):
        doc = {"traceEvents": [_span_event(), _counter_event()]}
        with pytest.raises(ValueError, match="missing required counter"):
            export.validate_chrome_trace(doc, require_counters=("nope",))
        with pytest.raises(ValueError, match="counter events"):
            export.validate_chrome_trace(doc, min_counter_events=5)

    def test_chrome_trace_merges_counter_buffer(self):
        from repro.obs.live import COUNTER_EVENTS

        spans = _sample_spans()
        # Sample timestamps interleaved with the span epoch (ns).
        COUNTER_EVENTS.offer_counter("pool.tasks_inflight", 900, 1.0, pid=7)
        COUNTER_EVENTS.offer_counter("pool.tasks_inflight", 1_400, 2.0, pid=7)
        doc = export.chrome_trace(spans)
        cs = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert [c["args"]["value"] for c in cs] == [1.0, 2.0]
        # The origin includes counter samples: earliest event is ts 0.
        assert min(e["ts"] for e in doc["traceEvents"] if "ts" in e) == 0.0
        assert doc["otherData"]["n_counter_events"] == 2
        assert doc["otherData"]["dropped_counter_events"] == 0
        summary = export.validate_chrome_trace(
            doc, require_counters=("pool.tasks_inflight",)
        )
        assert summary["n_counter_events"] == 2

    def test_trace_meta_carries_drop_count_and_high_water(self):
        trace.enable()
        small = trace.TraceBuffer(max_spans=2)
        for s in _sample_spans():
            small.append(s)
        assert small.dropped == 1
        assert small.high_water == 2
        # The export surfaces the global buffer's accounting the same way.
        doc = export.chrome_trace(_sample_spans())
        assert doc["otherData"]["dropped_spans"] == 0
        assert "buffer_high_water" in doc["otherData"]
        summary = export.validate_chrome_trace(doc)
        assert summary["dropped_spans"] == 0


# ----------------------------------------------------------------------
# The differential guard: tracing is inert
# ----------------------------------------------------------------------

def _noisy_pair(n=30_000):
    """A pair with drops, reorders and jitter — all metric paths active."""
    rng = suite_rng(salt=0xB5)
    base = np.cumsum(rng.uniform(50, 150, size=n))
    a = make_trial(base, label="A")
    keep = rng.random(n) > 0.01
    times = base[keep] + rng.normal(0, 30, size=int(keep.sum()))
    tags = np.arange(n)[keep]
    order = np.argsort(times, kind="stable")
    b = make_trial(times[order], tags=tags[order], label="B")
    return a, b


class TestTracingIsInert:
    def test_serial_compare_bit_identical(self):
        a, b = _noisy_pair()
        ref = compare_trials(a, b)
        trace.enable()
        traced_rep = compare_trials(a, b)
        assert traced_rep.metrics == ref.metrics
        assert traced_rep.kappa == ref.kappa

    def test_sharded_compare_bit_identical_and_staged(self):
        a, b = _noisy_pair()
        ref = compare_trials(a, b)

        def sharded():
            return ParallelComparator(
                jobs=1,
                shard_packets=4096,
                order_block_packets=4096,
                match_buckets=4,
            ).compare(a, b)

        untraced = sharded()
        trace.enable()
        traced_rep = sharded()

        for rep in (untraced, traced_rep):
            assert rep.metrics == ref.metrics
            assert rep.kappa == ref.kappa
            assert rep.pct_iat_within_10ns == ref.pct_iat_within_10ns

        names = {r.name for r in trace.records()}
        # Every sharded stage shows up, at stage/task granularity.
        for required in (
            "analysis.pair",
            "analysis.match",
            "analysis.match.bucket",
            "analysis.shard.timing",
            "analysis.order.block",
            "analysis.merge.order",
            "analysis.merge.timings",
        ):
            assert required in names, f"missing span {required}"
        # Stage granularity, not per-packet: far fewer spans than rows.
        assert len(trace.records()) < 100

    def test_testbed_series_bit_identical(self):
        from repro.testbeds import Testbed, local_single_replayer

        profile = local_single_replayer().at_duration(2e6)
        ref = [t.times_ns for t in Testbed(profile, seed=3).run_series(2)]
        trace.enable()
        got = [t.times_ns for t in Testbed(profile, seed=3).run_series(2)]
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(r, g)
        names = {r.name for r in trace.records()}
        assert {"testbed.record", "sim.series", "sim.run"} <= names
