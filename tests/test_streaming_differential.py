"""Differential: streaming κ versus the batch analysis path, bit for bit.

Every case asserts ``StreamKappa.result() == compare_trials(...).metrics``
with dataclass equality — raw float comparison on all four components and
on κ itself, no tolerance.  The grid crosses:

* **profiles**: quiet (aligned, light jitter), reordered (jitter large
  enough to permute arrivals), droppy (drops plus non-baseline extras) —
  the three regimes of the paper's Section-3 comparisons;
* **adversarial permutations**: the :data:`~tests.test_ordershard_corpus.CORPUS`
  sequences re-expressed as trial pairs, so the splice/replay worst cases
  of the prefix-patience merge flow through the full metric stack;
* **chunk sizes**: 1 and 13 always, 4096/65536 when the stream is long
  enough (the CI matrix feeds those via ``REPRO_STREAM_CHUNK``).

One case round-trips through ``save_series``/``analyze_directory`` so the
reference really is the batch *analysis* pipeline, files and all.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis import analyze_directory, save_series
from repro.analysis.streamkappa import StreamKappa
from repro.core import Trial, compare_trials

from .conftest import make_trial, suite_rng
from .test_ordershard_corpus import CORPUS


def _chunk_sizes(n: int) -> list[int]:
    sizes = {1, 13, 4096, 65536}
    raw = os.environ.get("REPRO_STREAM_CHUNK", "")
    if raw.strip():
        sizes.add(int(raw))
    return sorted(s for s in sizes if s <= n) or [max(n, 1)]


def _stream(baseline: Trial, run: Trial, chunk: int) -> StreamKappa:
    sk = StreamKappa(baseline)
    for lo in range(0, len(run), chunk):
        sk.update(run.tags[lo : lo + chunk], run.times_ns[lo : lo + chunk])
    return sk


def _assert_differential(a: Trial, b: Trial, context: object = "") -> None:
    want = compare_trials(a, b).metrics
    for chunk in _chunk_sizes(len(b)):
        got = _stream(a, b, chunk).result()
        assert got.u == want.u, (context, chunk, "U")
        assert got.o == want.o, (context, chunk, "O")
        assert got.l == want.l, (context, chunk, "L")
        assert got.i == want.i, (context, chunk, "I")
        assert got.kappa() == want.kappa(), (context, chunk, "kappa")
        assert got == want, (context, chunk)


def profile_pair(profile: str, n: int, salt: int) -> tuple[Trial, Trial]:
    """A (baseline, run) pair in one of the paper's three regimes."""
    rng = suite_rng(salt)
    tags = rng.integers(0, max(3, n // 4), size=n).astype(np.int64)
    gap = 500.0
    times = np.cumsum(rng.exponential(gap, size=n))
    a = make_trial(times, tags, label="A")
    if profile == "quiet":
        # Same packets, same order: jitter far below the smallest gap.
        bt = times + rng.uniform(0.0, 1e-3, size=n)
        return a, make_trial(bt, tags, label="B")
    if profile == "reordered":
        # Jitter of several mean gaps permutes arrivals but drops nothing.
        bt = times + rng.normal(0.0, 4 * gap, size=n)
        return a, Trial.from_arrival_events(tags, bt, label="B")
    if profile == "droppy":
        keep = rng.random(n) > rng.uniform(0.005, 0.1)
        bt = times[keep] + rng.normal(0.0, 2 * gap, size=int(keep.sum()))
        extra_n = max(2, n // 25)
        extra = rng.integers(1 << 20, (1 << 20) + 16, size=extra_n).astype(np.int64)
        extra_t = rng.uniform(times[0], times[-1], size=extra_n)
        return a, Trial.from_arrival_events(
            np.concatenate([tags[keep], extra]),
            np.concatenate([bt, extra_t]),
            label="B",
        )
    raise AssertionError(profile)


class TestProfileGrid:
    @pytest.mark.parametrize("profile", ["quiet", "reordered", "droppy"])
    @pytest.mark.parametrize("n,salt", [(120, 201), (400, 202)])
    def test_profile_times_chunks(self, profile, n, salt):
        a, b = profile_pair(profile, n, salt)
        _assert_differential(a, b, (profile, n))

    def test_large_stream_covers_big_chunks(self):
        """One pair long enough that 4096 enters the chunk grid unfiltered."""
        a, b = profile_pair("droppy", 5000, 203)
        assert 4096 in _chunk_sizes(len(b))
        _assert_differential(a, b, "droppy-5000")


class TestAdversarialPermutations:
    """The ordershard corpus as trial pairs: B arrives in the permutation's
    order, so the matched A-positions in B order *are* the corpus sequence
    and the streaming O exercises exactly its splice/replay worst cases."""

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_corpus_sequence_end_to_end(self, name):
        seq = CORPUS[name]
        n = seq.shape[0]
        rng = suite_rng(211)
        a = make_trial(np.cumsum(rng.exponential(200.0, size=n)), label="A")
        # B presents tag `seq[i]` as its i-th arrival; tags duplicated in
        # the corpus stream stress the occurrence matcher on top.
        bt = np.cumsum(rng.exponential(200.0, size=n))
        b = make_trial(bt, seq, label="B")
        _assert_differential(a, b, name)

    @pytest.mark.parametrize("name", ["block-rotation", "far-moved-packet"])
    def test_corpus_with_drops_on_top(self, name):
        seq = CORPUS[name]
        n = seq.shape[0]
        rng = suite_rng(212)
        a = make_trial(np.cumsum(rng.exponential(150.0, size=n)), label="A")
        keep = rng.random(n) > 0.07
        bt = np.cumsum(rng.exponential(150.0, size=int(keep.sum())))
        b = make_trial(bt, seq[keep], label="B")
        _assert_differential(a, b, (name, "droppy"))


class TestDegenerateShapes:
    def test_identical_trials(self):
        a, _ = profile_pair("quiet", 80, 221)
        _assert_differential(a, a.relabel("B"), "identical")

    def test_empty_run(self):
        a, _ = profile_pair("quiet", 40, 222)
        b = Trial(np.empty(0, dtype=np.int64), np.empty(0), label="B")
        _assert_differential(a, b, "empty-run")

    def test_empty_baseline(self):
        _, b = profile_pair("quiet", 40, 223)
        a = Trial(np.empty(0, dtype=np.int64), np.empty(0), label="A")
        _assert_differential(a, b, "empty-baseline")

    def test_disjoint_tag_sets(self):
        rng = suite_rng(224)
        a = make_trial(np.cumsum(rng.exponential(100.0, size=30)), label="A")
        b = make_trial(
            np.cumsum(rng.exponential(100.0, size=30)),
            np.arange(1000, 1030),
            label="B",
        )
        _assert_differential(a, b, "disjoint")

    def test_single_packet(self):
        a = make_trial([0.0], [7], label="A")
        b = make_trial([3.0], [7], label="B")
        _assert_differential(a, b, "single")


class TestAgainstAnalysisPipeline:
    """The reference is the full batch pipeline: captures written to disk,
    reloaded, and analyzed by ``analyze_directory``."""

    def test_streaming_equals_analyzed_directory(self, tmp_path):
        a, b1 = profile_pair("reordered", 200, 231)
        _, b2 = profile_pair("droppy", 200, 232)
        b2 = Trial(b2.tags, b2.times_ns, label="C")
        save_series([a, b1, b2], tmp_path / "series")
        report = analyze_directory(tmp_path / "series")
        assert len(report.pairs) == 2
        for pair, run in zip(report.pairs, (b1, b2)):
            got = _stream(a, run, 13).result()
            assert got == pair.metrics, pair.run_label
            assert got.kappa() == pair.kappa
