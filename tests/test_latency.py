"""Unit tests for the L metric (Equation 3)."""

import numpy as np
import pytest

from repro.core import (
    latency_deltas_ns,
    latency_variation,
    max_latency_construction,
)

from .conftest import comb_trial, make_trial


class TestLatency:
    def test_identical_is_zero(self):
        a = comb_trial(10)
        assert latency_variation(a, a) == 0.0

    def test_uniform_shift_is_zero(self):
        """l is relative to the trial start, so a pure shift cancels."""
        a = comb_trial(10)
        b = a.shift_ns(5_000.0)
        assert latency_variation(a, b) == pytest.approx(0.0, abs=1e-15)

    def test_known_value(self):
        # A: packets at 0, 100; B: 0, 150 -> |delta l| = 50 for packet 1.
        a = make_trial([0.0, 100.0], tags=[1, 2])
        b = make_trial([0.0, 150.0], tags=[1, 2])
        # denominator: 2 * max(150 - 0, 100 - 0) = 300.
        assert latency_variation(a, b) == pytest.approx(50.0 / 300.0)

    def test_symmetry(self, rng):
        a = make_trial(np.sort(rng.uniform(0, 1e6, 50)))
        b = make_trial(np.sort(rng.uniform(0, 1e6, 50)))
        assert latency_variation(a, b) == pytest.approx(latency_variation(b, a))

    def test_figure2_construction_attains_one(self):
        for n in (1, 2, 10, 137):
            a, b = max_latency_construction(n)
            assert latency_variation(a, b) == pytest.approx(1.0)

    def test_figure2_rejects_bad_args(self):
        with pytest.raises(ValueError):
            max_latency_construction(0)
        with pytest.raises(ValueError):
            max_latency_construction(5, span_ns=0.0)

    def test_bounded_by_one(self, rng):
        for _ in range(20):
            a = make_trial(np.sort(rng.uniform(0, 1e6, 30)))
            b = make_trial(np.sort(rng.uniform(0, 1e6, 30)))
            assert 0.0 <= latency_variation(a, b) <= 1.0 + 1e-12

    def test_deltas_series(self):
        a = make_trial([0.0, 100.0, 200.0], tags=[1, 2, 3])
        b = make_trial([0.0, 120.0, 190.0], tags=[1, 2, 3])
        np.testing.assert_allclose(latency_deltas_ns(a, b), [0.0, 20.0, -10.0])

    def test_deltas_only_common(self):
        a = make_trial([0.0, 100.0], tags=[1, 2])
        b = make_trial([0.0, 100.0], tags=[1, 9])
        assert latency_deltas_ns(a, b).shape == (1,)

    def test_no_common_is_zero(self):
        a = make_trial([0.0], tags=[1])
        b = make_trial([0.0], tags=[2])
        assert latency_variation(a, b) == 0.0

    def test_instantaneous_trials(self):
        a = make_trial([5.0, 5.0], tags=[1, 2])
        assert latency_variation(a, a) == 0.0

    def test_nested_trial_counterexample_stays_bounded(self):
        """Regression: Eq. 3 as printed exceeds 1 when B nests inside A.

        A = {tag0@0, tag1@2}, B = {tag1@1}: the common packet has
        |l_A - l_B| = 2 but both cross spans are 1, so the paper's
        denominator gives L = 2.  Our span-extended denominator keeps the
        metric in [0, 1] (here: 2/2 = 1, the true worst case).
        """
        a = make_trial([0.0, 2.0], tags=[0, 1])
        b = make_trial([1.0], tags=[1])
        assert latency_variation(a, b) == pytest.approx(1.0)

    def test_extension_matches_paper_on_aligned_trials(self):
        """For co-starting trials the extended denominator is the paper's."""
        a = make_trial([0.0, 100.0], tags=[1, 2])
        b = make_trial([0.0, 150.0], tags=[1, 2])
        # max(150, 100, 100, 150) == max(150, 100): unchanged.
        assert latency_variation(a, b) == pytest.approx(50.0 / 300.0)
