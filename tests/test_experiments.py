"""Unit tests for the experiment drivers (scenarios, runner, figures, tables)."""

import numpy as np
import pytest

from repro.experiments import (
    ALL_FIGURES,
    SCENARIOS,
    default_duration_scale,
    fig4,
    run_scenario,
    run_scenario_trials,
    run_trials,
    scenario,
    table1,
    table2,
)
from repro.testbeds import local_single_replayer

TINY = 0.01  # 1% of paper duration: fast but structurally complete


class TestScenarioRegistry:
    def test_nine_environments(self):
        assert len(SCENARIOS) == 9

    def test_keys_unique(self):
        keys = [s.key for s in SCENARIOS]
        assert len(set(keys)) == len(keys)

    def test_lookup(self):
        assert scenario("local-single").paper.kappa == pytest.approx(0.9853)
        with pytest.raises(KeyError, match="valid keys"):
            scenario("nope")

    def test_all_table2_figures_covered(self):
        """Every figure id 4a..10b maps to exactly one scenario."""
        covered = [f for s in SCENARIOS for f in s.figures]
        assert sorted(covered) == sorted(ALL_FIGURES.keys() - set())
        assert len(covered) == len(set(covered))

    def test_profiles_build(self):
        for s in SCENARIOS:
            p = s.profile(duration_scale=1.0)
            assert p.duration_ns == pytest.approx(0.3e9)
            p_small = s.profile(duration_scale=0.5)
            assert p_small.duration_ns == pytest.approx(0.15e9)

    def test_seeds_distinct(self):
        seeds = [s.seed for s in SCENARIOS]
        assert len(set(seeds)) == len(seeds)

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_duration_scale() == 0.5
        monkeypatch.setenv("REPRO_SCALE", "abc")
        with pytest.raises(ValueError):
            default_duration_scale()
        monkeypatch.setenv("REPRO_SCALE", "9")
        with pytest.raises(ValueError):
            default_duration_scale()


class TestRunner:
    def test_run_trials_adhoc(self):
        trials = run_trials(local_single_replayer().at_duration(2e6), n_runs=2, seed=1)
        assert len(trials) == 2

    def test_run_scenario_report(self):
        rep = run_scenario("local-single", duration_scale=TINY, n_runs=2)
        assert rep.environment == "local-single"
        assert len(rep.pairs) == 1

    def test_memoization_returns_same_trials(self):
        a = run_scenario_trials("local-single", duration_scale=TINY, n_runs=2)
        b = run_scenario_trials("local-single", duration_scale=TINY, n_runs=2)
        assert a[0].tags is b[0].tags  # same arrays, not recomputed

    def test_unknown_key_fails_fast(self):
        with pytest.raises(KeyError):
            run_scenario_trials("bogus", duration_scale=TINY)


class TestFiguresAndTables:
    def test_fig4_structure(self):
        a, b = fig4(duration_scale=TINY, n_runs=3)
        assert a.figure_id == "4a" and a.kind == "iat"
        assert b.figure_id == "4b" and b.kind == "latency"
        assert len(a.histograms) == 2  # runs B, C vs A
        assert "Figure 4a" in a.render()

    def test_all_figures_generate(self):
        for fid, gen in ALL_FIGURES.items():
            fs = gen(duration_scale=TINY, n_runs=2)
            assert fs.figure_id == fid
            assert fs.histograms[0].n_total > 0

    def test_table1_rows(self):
        rows = table1(duration_scale=TINY, n_runs=3)
        assert len(rows) == 2
        assert {"Run", "Mean", "Abs. Mean", "Min", "Max"} <= set(rows[0])

    def test_table2_covers_all_scenarios(self):
        rows = table2(duration_scale=TINY, n_runs=2)
        assert [r["environment"] for r in rows] == [
            s.profile(1.0).name for s in SCENARIOS
        ]
        assert all("paper_kappa" in r for r in rows)

    def test_table2_without_paper_columns(self):
        rows = table2(with_paper=False, duration_scale=TINY, n_runs=2)
        assert all("paper_kappa" not in r for r in rows)
