"""Unit tests for the pair/series comparison drivers."""

import numpy as np
import pytest

from repro.core import KappaScaling, compare_series, compare_trials

from .conftest import comb_trial, make_trial


class TestPairReport:
    def test_identical_pair(self):
        a = comb_trial(50, label="A")
        r = compare_trials(a, a.relabel("B"))
        assert r.metrics.is_identical
        assert r.kappa == 1.0
        assert r.pct_iat_within_10ns == 100.0
        assert r.n_missing == 0

    def test_drop_reflected_everywhere(self):
        a = comb_trial(20, label="A")
        b = a.drop_packets([3, 7]).relabel("B")
        r = compare_trials(a, b)
        assert r.n_missing == 2
        assert r.metrics.u == pytest.approx(1 - 2 * 18 / 38)
        assert r.n_common == 18

    def test_row_keys(self):
        a = comb_trial(5, label="A")
        row = compare_trials(a, a.relabel("B")).row()
        assert set(row) >= {"run", "U", "O", "I", "L", "kappa", "pct_iat_10ns"}

    def test_kappa_scaled(self):
        a = comb_trial(20, label="A")
        b = a.drop_packets([3]).relabel("B")
        r = compare_trials(a, b)
        assert r.kappa_scaled(KappaScaling(u_exponent=0.5)) < r.kappa

    def test_histograms_attached(self):
        a = comb_trial(10, label="A")
        b = make_trial(np.arange(10) * 100.0 + np.linspace(0, 50, 10), label="B")
        r = compare_trials(a, b)
        assert r.iat_hist.n_total == 10
        assert r.latency_hist.n_total == 10


class TestSeriesReport:
    def test_labels_defaulted(self):
        trials = [comb_trial(10) for _ in range(4)]
        rep = compare_series(trials, environment="env")
        assert rep.baseline_label == "A"
        assert [p.run_label for p in rep.pairs] == ["B", "C", "D"]

    def test_existing_labels_kept(self):
        trials = [comb_trial(10, label=f"run{i}") for i in range(3)]
        rep = compare_series(trials)
        assert rep.baseline_label == "run0"
        assert [p.run_label for p in rep.pairs] == ["run1", "run2"]

    def test_needs_two_trials(self):
        with pytest.raises(ValueError, match="baseline plus"):
            compare_series([comb_trial(5)])

    def test_values_accessor(self):
        trials = [comb_trial(10) for _ in range(3)]
        rep = compare_series(trials)
        np.testing.assert_allclose(rep.values("kappa"), [1.0, 1.0])
        np.testing.assert_allclose(rep.values("U"), [0.0, 0.0])
        with pytest.raises(KeyError):
            rep.values("X")

    def test_mean_row(self):
        trials = [comb_trial(10) for _ in range(3)]
        row = compare_series(trials, environment="env").mean_row()
        assert row["environment"] == "env"
        assert row["kappa"] == 1.0

    def test_run_rows_length(self):
        trials = [comb_trial(10) for _ in range(5)]
        rep = compare_series(trials)
        assert len(rep.run_rows()) == 4
