"""The ANALYSIS_VERSION bump guard, exercised end to end.

``scripts/check_analysis_version.py`` is the repo check CI runs so that
metric-bearing source (``src/repro/core/``, ``src/repro/analysis/``)
cannot change without bumping the store's cache-invalidation version —
the failure it prevents is a persistent store silently resurrecting
results computed by old metric code.  This suite drives the script as a
subprocess against both the real repository (the committed manifest must
be in sync) and a sandbox repo skeleton covering every verdict:
in-sync, changed-without-bump, bumped-but-stale-manifest, and the
``--update`` / ``--allow-same-version`` re-record paths.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_analysis_version.py"


def run_guard(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
    )


def make_sandbox(root: Path, *, version: int = 1) -> None:
    """A minimal repo skeleton with one guarded file per guarded dir."""
    for rel, body in {
        "src/repro/core/kappa.py": "def kappa():\n    return 1.0\n",
        "src/repro/analysis/stats.py": "def mean(v):\n    return sum(v) / len(v)\n",
        "src/repro/sweep/store.py": f"ANALYSIS_VERSION = {version}\n",
    }.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)


def set_version(root: Path, version: int) -> None:
    (root / "src/repro/sweep/store.py").write_text(
        f"ANALYSIS_VERSION = {version}\n"
    )


@pytest.fixture
def sandbox(tmp_path) -> Path:
    make_sandbox(tmp_path)
    proc = run_guard("--root", str(tmp_path), "--update", "--allow-same-version")
    assert proc.returncode == 0, proc.stderr
    return tmp_path


class TestRealRepository:
    def test_committed_manifest_in_sync(self):
        """The real tree passes — i.e. nobody merged a metric change
        without recording it (this is the exact invocation CI runs)."""
        proc = run_guard("--root", str(REPO_ROOT))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout

    def test_manifest_names_the_metric_modules(self):
        manifest = json.loads(
            (REPO_ROOT / "scripts/analysis_version_manifest.json").read_text()
        )
        files = manifest["files"]
        assert "src/repro/core/kappa.py" in files
        assert "src/repro/analysis/stats.py" in files
        assert "src/repro/analysis/stability.py" in files
        assert all(len(digest) == 64 for digest in files.values())
        from repro.sweep.store import ANALYSIS_VERSION

        assert manifest["analysis_version"] == ANALYSIS_VERSION


class TestSandboxVerdicts:
    def test_in_sync_passes(self, sandbox):
        proc = run_guard("--root", str(sandbox))
        assert proc.returncode == 0

    def test_change_without_bump_fails(self, sandbox):
        (sandbox / "src/repro/core/kappa.py").write_text(
            "def kappa():\n    return 0.5\n"
        )
        proc = run_guard("--root", str(sandbox))
        assert proc.returncode == 1
        assert "changed: src/repro/core/kappa.py" in proc.stderr
        assert "Bump ANALYSIS_VERSION" in proc.stderr

    def test_new_guarded_file_counts_as_change(self, sandbox):
        (sandbox / "src/repro/analysis/extra.py").write_text("X = 1\n")
        proc = run_guard("--root", str(sandbox))
        assert proc.returncode == 1
        assert "changed: src/repro/analysis/extra.py" in proc.stderr

    def test_bump_alone_is_a_stale_manifest(self, sandbox):
        """Bumping the version without re-recording still fails: the
        manifest must be regenerated so the next change diffs cleanly."""
        (sandbox / "src/repro/core/kappa.py").write_text("K = 2\n")
        set_version(sandbox, 2)
        proc = run_guard("--root", str(sandbox))
        assert proc.returncode == 1
        assert "--update" in proc.stderr

    def test_bump_then_update_passes(self, sandbox):
        (sandbox / "src/repro/core/kappa.py").write_text("K = 2\n")
        set_version(sandbox, 2)
        proc = run_guard("--root", str(sandbox), "--update")
        assert proc.returncode == 0, proc.stderr
        proc = run_guard("--root", str(sandbox))
        assert proc.returncode == 0
        manifest = json.loads(
            (sandbox / "scripts/analysis_version_manifest.json").read_text()
        )
        assert manifest["analysis_version"] == 2

    def test_update_refuses_same_version_after_change(self, sandbox):
        (sandbox / "src/repro/core/kappa.py").write_text("K = 3\n")
        proc = run_guard("--root", str(sandbox), "--update")
        assert proc.returncode == 1
        assert "refusing" in proc.stderr
        # The escape hatch for bit-neutral changes:
        proc = run_guard(
            "--root", str(sandbox), "--update", "--allow-same-version"
        )
        assert proc.returncode == 0
        assert run_guard("--root", str(sandbox)).returncode == 0

    def test_missing_manifest_is_an_explicit_error(self, tmp_path):
        make_sandbox(tmp_path)
        proc = run_guard("--root", str(tmp_path))
        assert proc.returncode != 0
        assert "missing" in proc.stderr

    def test_nonsense_root_rejected(self, tmp_path):
        proc = run_guard("--root", str(tmp_path / "nowhere"))
        assert proc.returncode == 2
