"""Unit tests for the hardware catalog."""

import pytest

from repro.net import NIC_CATALOG, SWITCH_CATALOG, nic, switch
from repro.timing import RealtimeHWStamper, SampledClockStamper


class TestCatalog:
    def test_paper_parts_present(self):
        for key in ("connectx-5", "connectx-6", "connectx-6-vf", "e810"):
            assert key in NIC_CATALOG
        for key in ("tofino2", "cisco-5700"):
            assert key in SWITCH_CATALOG

    def test_section81_timestamping_difference(self):
        """E810 real-time vs CX-6 sampled-clock (the paper's §8.1 point)."""
        assert isinstance(nic("e810").rx_stamper, RealtimeHWStamper)
        assert isinstance(nic("connectx-6").rx_stamper, SampledClockStamper)

    def test_lookup_errors_list_catalog(self):
        with pytest.raises(KeyError, match="catalog"):
            nic("tofino")  # a switch, not a NIC
        with pytest.raises(KeyError, match="catalog"):
            switch("e810")

    def test_parts_are_usable_models(self, rng):
        """Catalog entries plug straight into the node machinery."""
        import numpy as np

        from repro.net import PacketArray
        from repro.replay import ChoirNode

        part = nic("connectx-5")
        node = ChoirNode("n", part.tx)
        batch = PacketArray.uniform(100, 1400, np.arange(100) * 284.0)
        node.record(batch, rng)
        out = node.replay(1e9, rng)
        stamped = part.rx_stamper.stamp(out.egress.times_ns, rng)
        assert stamped.shape == (100,)

    def test_vf_slower_than_physical(self):
        assert (
            nic("connectx-6-vf").tx.pull_delay_ns
            > nic("connectx-6").tx.pull_delay_ns
        )
