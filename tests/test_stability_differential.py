"""Differential suite: the parallel stability screen equals the serial sweep.

``table2(ci=True)``, ``validate --ci`` and ``repro stability`` all stand
on :func:`repro.analysis.stability.seed_sweep_parallel` being *exactly*
the serial :func:`repro.analysis.stats.seed_sweep` — same per-seed κ/I/L
means, bit-for-bit, at any job count, cold or warm store.  Anything less
and the interval columns would depend on how the screen was executed,
which is precisely the failure mode this repository's determinism
contract exists to rule out.

Same scenario grid and conventions as ``tests/test_sweep_differential.py``;
``REPRO_DIFF_JOBS`` (comma-separated) restricts the job counts so CI can
split the matrix across runners.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.analysis.stability import (
    environment_stability,
    seed_sweep_parallel,
    stability_document,
    write_stability_report,
)
from repro.analysis.stats import seed_sweep
from repro.parallel import shutdown_pool
from repro.sweep import ArtifactStore, run_adaptive_sweep
from repro.testbeds import (
    fabric_shared_40g_noisy,
    local_dual_replayer,
    local_single_replayer,
)


def _job_counts() -> list[int]:
    raw = os.environ.get("REPRO_DIFF_JOBS", "1,2,4")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


JOB_COUNTS = _job_counts()
N_RUNS = 2
SEEDS = (3, 5, 8)

#: The differential scenario grid (same shapes as test_sweep_differential).
SCENARIOS = {
    "quiet-single": lambda: local_single_replayer().at_duration(3e6),
    "reordered-dual": lambda: local_dual_replayer().at_duration(3e6),
    "droppy-noisy": lambda: fabric_shared_40g_noisy().at_duration(6e6),
}

#: Serial references per scenario: the exact arrays the plain
#: ``seed_sweep`` loop computes.
_reference_cache: dict = {}


def _reference(scenario: str):
    if scenario not in _reference_cache:
        profile = SCENARIOS[scenario]()
        _reference_cache[scenario] = seed_sweep(profile, SEEDS, n_runs=N_RUNS)
    return _reference_cache[scenario]


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


def assert_sweep_equal(got, want) -> None:
    """Bit-exact equality of two SeedSweepResults (`==`, never approx)."""
    assert got.environment == want.environment
    assert got.seeds == want.seeds
    assert np.array_equal(got.kappa, want.kappa)
    assert np.array_equal(got.i_values, want.i_values)
    assert np.array_equal(got.l_values, want.l_values)


class TestSeedSweepDifferential:
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_parallel_equals_serial(self, scenario, jobs):
        """The pool-parallel screen is the serial loop, bit-for-bit."""
        got = seed_sweep_parallel(
            SCENARIOS[scenario](), SEEDS, n_runs=N_RUNS, jobs=jobs
        )
        assert_sweep_equal(got, _reference(scenario))

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_warm_store_replays_the_same_bits(self, jobs, tmp_path):
        """Cold-through-store and warm-from-store equal serial exactly."""
        profile = SCENARIOS["reordered-dual"]()
        cold = seed_sweep_parallel(
            profile, SEEDS, n_runs=N_RUNS, jobs=jobs,
            store=ArtifactStore(tmp_path / "store"),
        )
        warm_store = ArtifactStore(tmp_path / "store")
        warm = seed_sweep_parallel(
            profile, SEEDS, n_runs=N_RUNS, jobs=jobs, store=warm_store
        )
        assert warm_store.stats.misses == 0
        assert warm_store.stats.writes == 0
        want = _reference("reordered-dual")
        assert_sweep_equal(cold, want)
        assert_sweep_equal(warm, want)

    def test_jobs1_entries_satisfy_jobs4_screen(self, tmp_path):
        """The store digest stays execution-shape-free under the screen."""
        profile = SCENARIOS["quiet-single"]()
        seed_sweep_parallel(
            profile, SEEDS, n_runs=N_RUNS, jobs=1,
            store=ArtifactStore(tmp_path / "store"),
        )
        warm_store = ArtifactStore(tmp_path / "store")
        got = seed_sweep_parallel(
            profile, SEEDS, n_runs=N_RUNS, jobs=4, store=warm_store
        )
        assert warm_store.stats.misses == 0
        assert_sweep_equal(got, _reference("quiet-single"))

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            seed_sweep_parallel(local_single_replayer(), [])


class TestEnvironmentStabilityDifferential:
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_fixed_screen_rides_the_same_bits(self, jobs):
        """``environment_stability`` (eps=0) wraps the serial arrays."""
        st = environment_stability(
            SCENARIOS["droppy-noisy"](), seeds=SEEDS, n_runs=N_RUNS, jobs=jobs
        )
        want = _reference("droppy-noisy")
        assert st.seeds == SEEDS
        assert np.array_equal(st.kappa, want.kappa)
        assert np.array_equal(st.i_values, want.i_values)
        assert np.array_equal(st.l_values, want.l_values)
        assert_sweep_equal(st.sweep_result(), want)
        assert st.n_eff == len(SEEDS) - st.screen.n_flagged
        assert not st.decision.stopped  # eps=0: screening only

    @pytest.mark.parametrize("jobs", [j for j in JOB_COUNTS if j > 1] or [2])
    def test_adaptive_trajectory_replays_from_store(self, jobs, tmp_path):
        """An adaptive screen is deterministic given (plan, eps, cap) —
        a warm store replays the identical trajectory, all hits."""
        profile = SCENARIOS["quiet-single"]()
        kwargs = dict(
            initial_seeds=SEEDS, n_runs=N_RUNS, eps=0.05, max_seeds=6,
            jobs=jobs,
        )
        cold = run_adaptive_sweep(
            "quiet-single", profile,
            store=ArtifactStore(tmp_path / "store"), **kwargs
        )
        warm_store = ArtifactStore(tmp_path / "store")
        warm = run_adaptive_sweep(
            "quiet-single", profile, store=warm_store, **kwargs
        )
        assert warm_store.stats.misses == 0
        assert warm.outcomes == ("hit",) * len(cold.plan)
        assert tuple(u.seed for u in warm.plan) == tuple(
            u.seed for u in cold.plan
        )
        assert np.array_equal(warm.values, cold.values)
        assert warm.stopped == cold.stopped
        assert warm.half_width == cold.half_width
        assert warm.history == cold.history

    def test_adaptive_extension_continues_the_seed_stream(self, tmp_path):
        """Extension seeds are max(initial)+1 onward — no collisions, and
        the trajectory is capped exactly at max_seeds."""
        profile = SCENARIOS["quiet-single"]()
        result = run_adaptive_sweep(
            "quiet-single", profile,
            initial_seeds=SEEDS, n_runs=N_RUNS, eps=1e-9, max_seeds=5,
            batch=1, store=ArtifactStore(tmp_path / "store"), jobs=1,
        )
        assert not result.stopped  # eps=1e-9 is unreachable
        seeds = tuple(u.seed for u in result.plan)
        assert seeds == (3, 5, 8, 9, 10)
        assert len(seeds) == len(set(seeds)) == 5
        assert len(result.history) == 3  # initial batch + 2 extensions

    def test_adaptive_validation(self):
        profile = local_single_replayer()
        with pytest.raises(ValueError, match="initial seed"):
            run_adaptive_sweep("x", profile, initial_seeds=[])
        with pytest.raises(ValueError, match="eps"):
            run_adaptive_sweep("x", profile, initial_seeds=[0], eps=-1.0)
        with pytest.raises(ValueError, match=">= 3 initial seeds"):
            run_adaptive_sweep("x", profile, initial_seeds=[0, 1], eps=0.01)


class TestStabilityReportShape:
    def test_document_bytes_job_invariant(self):
        """stability.json bytes are identical across job counts."""
        profile = SCENARIOS["quiet-single"]()
        docs = []
        for jobs in (1, 2):
            st = environment_stability(
                profile, seeds=SEEDS, n_runs=N_RUNS, jobs=jobs
            )
            docs.append(
                json.dumps(
                    stability_document([("quiet-single", st)], {"eps": 0.0}),
                    sort_keys=True,
                )
            )
        assert docs[0] == docs[1]

    def test_report_files_and_schema(self, tmp_path):
        st = environment_stability(
            SCENARIOS["quiet-single"](), seeds=SEEDS, n_runs=N_RUNS, jobs=1
        )
        doc = stability_document([("quiet-single", st)], {"eps": 0.0})
        telemetry = {"bench": "stability", "params": {}, "host": {},
                     "wall_s": 0.0, "per_stage": {}}
        report_path, telemetry_path = write_stability_report(
            doc, telemetry, tmp_path / "out"
        )
        report = json.loads(report_path.read_text())
        assert report["kind"] == "stability-report"
        assert report["schema"] == 1
        (block,) = report["environments"]
        assert block["scenario"] == "quiet-single"
        assert block["seeds"] == list(SEEDS)
        assert block["kappa_ci_low"] <= block["kappa_mean"] <= block["kappa_ci_high"]
        assert block["n_eff"] + len(block["outlier_seeds"]) == len(SEEDS)
        for field in ("bench", "params", "host", "wall_s", "per_stage"):
            assert field in json.loads(telemetry_path.read_text())
