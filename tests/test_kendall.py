"""Unit and property tests for the Kendall-tau ordering alternative."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Trial
from repro.core.kendall import count_inversions, kendall_tau_distance

from .conftest import make_trial


def brute_inversions(seq):
    seq = list(seq)
    return sum(
        1
        for i in range(len(seq))
        for j in range(i + 1, len(seq))
        if seq[i] > seq[j]
    )


class TestCountInversions:
    def test_sorted(self):
        assert count_inversions(np.arange(100)) == 0

    def test_reversed(self):
        n = 50
        assert count_inversions(np.arange(n)[::-1].copy()) == n * (n - 1) // 2

    def test_small_known(self):
        assert count_inversions(np.array([2, 0, 1])) == 2
        assert count_inversions(np.array([1, 3, 2, 0])) == 4

    def test_short(self):
        assert count_inversions(np.array([])) == 0
        assert count_inversions(np.array([5])) == 0

    def test_matches_brute_force(self, rng):
        for _ in range(20):
            seq = rng.permutation(int(rng.integers(2, 120)))
            assert count_inversions(seq) == brute_inversions(seq)

    @given(st.permutations(range(60)))
    @settings(max_examples=80, deadline=None)
    def test_property_matches_brute_force(self, perm):
        seq = np.asarray(perm)
        assert count_inversions(seq) == brute_inversions(seq)

    def test_large_input_fast(self, rng):
        # O(n log n): a 200k permutation must be quick and exact-typed.
        seq = rng.permutation(200_000)
        inv = count_inversions(seq)
        assert 0 <= inv <= 200_000 * 199_999 // 2


class TestKendallTauDistance:
    def _pair(self, order):
        n = len(order)
        a = make_trial(np.arange(n, dtype=float), tags=np.arange(n))
        b = make_trial(np.arange(n, dtype=float), tags=np.asarray(order))
        return a, b

    def test_identical_zero(self):
        a, b = self._pair(range(40))
        assert kendall_tau_distance(a, b) == 0.0

    def test_reversal_one(self):
        a, b = self._pair(list(range(40))[::-1])
        assert kendall_tau_distance(a, b) == 1.0

    def test_symmetric(self, rng):
        a, b = self._pair(rng.permutation(50))
        assert kendall_tau_distance(a, b) == pytest.approx(
            kendall_tau_distance(b, a)
        )

    def test_trivial_sizes(self):
        a, b = self._pair([0])
        assert kendall_tau_distance(a, b) == 0.0

    def test_single_displacement_agrees_with_O_shape(self):
        """A lone packet moved k positions: both metrics scale with k."""
        from repro.core import ordering_variation

        taus, os_ = [], []
        for k in (2, 8, 20):
            order = list(range(40))
            x = order.pop(0)
            order.insert(k, x)
            a, b = self._pair(order)
            taus.append(kendall_tau_distance(a, b))
            os_.append(ordering_variation(a, b))
        assert taus == sorted(taus)
        assert os_ == sorted(os_)

    def test_block_swap_diverges_from_O(self):
        """Swapping two large blocks: tau charges every cross pair."""
        from repro.core import ordering_variation

        b1, b2 = list(range(0, 20)), list(range(20, 40))
        order = b2 + b1  # block swap
        a, b = self._pair(order)
        tau = kendall_tau_distance(a, b)
        o = ordering_variation(a, b)
        # tau: 400 inverted pairs of 780 ~ 0.51; O: 20 moves of 20 of 820.
        assert tau > 0.45
        assert o < tau  # the edit script is cheaper than the pair count