"""Unit tests for the figure histogram machinery."""

import numpy as np
import pytest

from repro.core import DeltaHistogram, SymlogBins, pct_within


class TestPctWithin:
    def test_basic(self):
        d = np.array([-5.0, 0.0, 9.9, 10.0, 10.1, 100.0])
        assert pct_within(d, 10.0) == pytest.approx(4 / 6 * 100)

    def test_empty(self):
        assert pct_within(np.array([])) == 0.0

    def test_all_within(self):
        assert pct_within(np.zeros(5)) == 100.0


class TestSymlogBins:
    def test_edges_monotone(self):
        e = SymlogBins().edges()
        assert np.all(np.diff(e) > 0)

    def test_edges_symmetric(self):
        e = SymlogBins().edges()
        finite = e[1:-1]
        np.testing.assert_allclose(finite, -finite[::-1])

    def test_overflow_edges_infinite(self):
        e = SymlogBins().edges()
        assert e[0] == -np.inf and e[-1] == np.inf

    def test_centers_shape_and_zero_bin(self):
        b = SymlogBins()
        centers = b.centers()
        assert centers.shape[0] == b.edges().shape[0] - 1
        assert 0.0 in centers  # the central linear bin

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SymlogBins(linthresh=0.0)
        with pytest.raises(ValueError):
            SymlogBins(linthresh=100.0, max_decade=1)
        with pytest.raises(ValueError):
            SymlogBins(bins_per_decade=0)


class TestDeltaHistogram:
    def test_counts_cover_everything(self, rng):
        deltas = rng.normal(0, 1e4, 1000)
        h = DeltaHistogram.from_deltas(deltas)
        assert h.counts.sum() == 1000
        assert h.n_total == 1000

    def test_percent_sums_to_100(self, rng):
        h = DeltaHistogram.from_deltas(rng.normal(0, 100, 500))
        assert h.percent.sum() == pytest.approx(100.0)

    def test_zero_deltas_land_in_central_bin(self):
        h = DeltaHistogram.from_deltas(np.zeros(10))
        centers, pct = h.series()
        central = np.flatnonzero(centers == 0.0)[0]
        assert pct[central] == 100.0

    def test_extreme_values_in_overflow(self):
        h = DeltaHistogram.from_deltas(np.array([1e15, -1e15]))
        assert h.counts[0] == 1 and h.counts[-1] == 1

    def test_empty(self):
        h = DeltaHistogram.from_deltas(np.array([]))
        assert h.n_total == 0
        assert np.all(h.percent == 0.0)

    def test_shared_bins_are_comparable(self, rng):
        """Two runs histogrammed with the same config share bin edges."""
        bins = SymlogBins()
        h1 = DeltaHistogram.from_deltas(rng.normal(0, 10, 100), bins)
        h2 = DeltaHistogram.from_deltas(rng.normal(0, 1e5, 100), bins)
        np.testing.assert_array_equal(h1.bins.edges(), h2.bins.edges())

    def test_nonzero_rows(self):
        h = DeltaHistogram.from_deltas(np.array([0.0, 0.0, 5e3]))
        rows = h.nonzero_rows()
        assert len(rows) == 2
        assert sum(p for _, p in rows) == pytest.approx(100.0)
