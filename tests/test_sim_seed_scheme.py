"""Seed independence and the pinned derivation scheme.

Two properties make the simulation fan-out trustworthy:

1. **Independence** — a run's random stream is keyed only by
   ``(seed, series index, run index)``.  Permuting the order runs are
   submitted to the pool, changing the pool size, or running in-process
   must never change any individual trial's packets.  These are property
   tests over :class:`repro.parallel.SimFarm` itself.

2. **Stability** — the derivation ``SeedSequence(seed) -> series ->
   (record, run_0..run_{n-1})`` is a public reproducibility contract.
   The regression test pins the exact spawn keys *and* the first integer
   drawn from each stream to hard-coded constants, so a refactor cannot
   silently reshuffle streams while keeping the suite green (every other
   test would still pass — against freshly reshuffled references).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import SimFarm, shutdown_pool
from repro.testbeds import Testbed, local_dual_replayer
from repro.testbeds.base import series_seed_plan, simulate_run

from .test_sim_differential import assert_artifacts_equal

PROFILE = local_dual_replayer().at_duration(3e6)
N_RUNS = 4


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


def _recorded(seed: int = 5):
    """One recording phase; returns (plan, recordings) for direct SimFarm use."""
    tb = Testbed(PROFILE, seed=seed)
    plan = series_seed_plan(seed, N_RUNS)
    nodes = tb._build_nodes()
    tb._record_all(nodes, np.random.default_rng(plan.record))
    return plan, [node.recording for node in nodes]


class TestSeedIndependence:
    def test_submission_order_is_irrelevant(self):
        """Every permutation of submission order yields identical runs."""
        plan, recordings = _recorded()
        labels = [chr(ord("A") + i) for i in range(N_RUNS)]
        farm = SimFarm(jobs=2)
        want = farm.run_series(PROFILE, recordings, plan.runs, labels)
        for order in ([3, 2, 1, 0], [1, 3, 0, 2], [2, 0, 3, 1]):
            got = farm.run_series(
                PROFILE, recordings, plan.runs, labels, submit_order=order
            )
            for g, w in zip(got, want):
                assert_artifacts_equal(g, w)

    def test_pool_size_is_irrelevant(self):
        """jobs=1 (in-process), 2 and 3 produce bit-identical runs."""
        plan, recordings = _recorded()
        labels = ["A", "B", "C", "D"]
        want = SimFarm(jobs=1).run_series(PROFILE, recordings, plan.runs, labels)
        for jobs in (2, 3):
            got = SimFarm(jobs=jobs).run_series(
                PROFILE, recordings, plan.runs, labels
            )
            for g, w in zip(got, want):
                assert_artifacts_equal(g, w)

    def test_single_run_matches_series_element(self):
        """simulate_run on run i's seed reproduces series element i alone."""
        plan, recordings = _recorded()
        series = SimFarm(jobs=1).run_series(
            PROFILE, recordings, plan.runs, ["A", "B", "C", "D"]
        )
        # Simulating ONLY run 2 — no preceding runs at all — must give the
        # exact same packets: that is what per-run seeding means.
        alone = simulate_run(PROFILE, recordings, plan.runs[2], label="C")
        assert_artifacts_equal(alone, series[2])

    def test_bad_submit_order_rejected(self):
        plan, recordings = _recorded()
        with pytest.raises(ValueError):
            SimFarm(jobs=1).run_series(
                PROFILE, recordings, plan.runs, ["A"] * N_RUNS, submit_order=[0, 0, 1, 2]
            )


class TestPinnedDerivation:
    """Hard-pinned spawn keys and first draws — the scheme's regression lock."""

    def test_spawn_keys_seed0_series0(self):
        plan = series_seed_plan(0, 3)
        assert plan.entropy == 0
        assert plan.record.spawn_key == (0, 0)
        assert [r.spawn_key for r in plan.runs] == [(0, 1), (0, 2), (0, 3)]

    def test_spawn_keys_later_series(self):
        plan = series_seed_plan(7, 2, series_index=3)
        assert plan.record.spawn_key == (3, 0)
        assert [r.spawn_key for r in plan.runs] == [(3, 1), (3, 2)]

    def test_first_draws_pinned_seed0(self):
        """First 63-bit integer of each stream, hard-coded (numpy-stable)."""
        plan = series_seed_plan(0, 3)
        draws = [int(np.random.default_rng(r).integers(2**63)) for r in plan.runs]
        assert draws == [
            3364714723560915154,
            1156363723064881819,
            51162322091725744,
        ]
        record_draw = int(np.random.default_rng(plan.record).integers(2**63))
        assert record_draw == 5212420523617970750

    def test_first_draws_pinned_seed7_series3(self):
        plan = series_seed_plan(7, 2, series_index=3)
        draws = [int(np.random.default_rng(r).integers(2**63)) for r in plan.runs]
        assert draws == [3080570074071116446, 7378238277251983426]

    def test_successive_series_differ(self):
        """Two run_series calls on one Testbed draw from distinct series."""
        t1 = Testbed(PROFILE, seed=5).run_series(2)
        tb = Testbed(PROFILE, seed=5)
        first = tb.run_series(2)
        second = tb.run_series(2)
        # Same testbed, same call: first series reproduces exactly...
        for a, b in zip(t1, first):
            assert np.array_equal(a.times_ns, b.times_ns)
        # ...but the second series is a fresh realization.
        assert any(
            not np.array_equal(a.times_ns, b.times_ns)
            for a, b in zip(first, second)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            series_seed_plan(0, 0)
        with pytest.raises(ValueError):
            series_seed_plan(0, 1, series_index=-1)
