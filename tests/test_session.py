"""Unit tests for the control-plane-driven replay session."""

import numpy as np
import pytest

from repro.net import PacketArray, TxNicModel
from repro.replay import ChoirNode, ChoirState, CommandKind, ControlChannel
from repro.replay.session import ReplaySession


def node(name):
    return ChoirNode(name, TxNicModel(rate_bps=100e9))


def stream(n=200, rid=1):
    return PacketArray.uniform(n, 1400, np.arange(n) * 284.0, replayer_id=rid)


class TestSessionSetup:
    def test_needs_nodes(self, rng):
        with pytest.raises(ValueError, match="at least one node"):
            ReplaySession(nodes=[], rng=rng)

    def test_unique_names(self, rng):
        with pytest.raises(ValueError, match="unique"):
            ReplaySession(nodes=[node("a"), node("a")], rng=rng)


class TestRecordPhase:
    def test_record_all_arms_nodes(self, rng):
        s = ReplaySession(nodes=[node("r0"), node("r1")], rng=rng)
        s.record_all([stream(rid=1), stream(rid=2)])
        assert all(n.state is ChoirState.ARMED for n in s.nodes)
        assert all(n.recording is not None for n in s.nodes)

    def test_substream_count_checked(self, rng):
        s = ReplaySession(nodes=[node("r0")], rng=rng)
        with pytest.raises(ValueError, match="substreams"):
            s.record_all([stream(), stream()])

    def test_session_time_advances(self, rng):
        s = ReplaySession(nodes=[node("r0")], rng=rng)
        assert s.now_ns == 0.0
        s.record_all([stream(1000)])
        assert s.now_ns > 0.0


class TestReplayPhase:
    def _armed_session(self, rng, n_nodes=2):
        s = ReplaySession(
            nodes=[node(f"r{i}") for i in range(n_nodes)],
            rng=rng,
            channel=ControlChannel(latency_ns=100_000.0),
        )
        s.record_all([stream(rid=i + 1) for i in range(n_nodes)])
        return s

    def test_replay_all_executes_every_node(self, rng):
        s = self._armed_session(rng)
        outcomes = s.replay_all(start_ns=s.now_ns + 1e9)
        assert len(outcomes) == 2
        assert all(len(o) == 200 for o in outcomes)

    def test_too_soon_refused(self, rng):
        s = self._armed_session(rng)
        with pytest.raises(ValueError, match="precedes command delivery"):
            s.replay_all(start_ns=s.now_ns + 1_000.0)  # < channel latency
        # No node was driven into replay.
        assert all(n.state is ChoirState.ARMED for n in s.nodes)

    def test_command_history_ordered(self, rng):
        s = self._armed_session(rng, n_nodes=1)
        s.replay_all(start_ns=s.now_ns + 1e9)
        kinds = [c.kind for c in s.command_history]
        assert kinds.count(CommandKind.REPLAY_AT) == 1
        issue_times = [c.issue_ns for c in s.command_history]
        assert issue_times == sorted(issue_times)

    def test_repeat_replays(self, rng):
        """The paper's protocol: one recording, N replays."""
        s = self._armed_session(rng, n_nodes=1)
        epochs = []
        for _ in range(3):
            out = s.replay_all(start_ns=s.now_ns + 1e9)
            assert len(out) == 1
            epochs.append(out[0].achieved_start_ns)
        assert epochs == sorted(epochs)  # session time moves forward

    def test_standby_all(self, rng):
        s = self._armed_session(rng)
        s.standby_all()
        assert all(n.state is ChoirState.STANDBY for n in s.nodes)
        assert any(c.kind is CommandKind.STANDBY for c in s.command_history)
