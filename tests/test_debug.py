"""Unit tests for the breakpoint/backtrace debugging primitives."""

import numpy as np
import pytest

from repro.core import Trial
from repro.net import PacketArray, TxNicModel, make_tags
from repro.replay import (
    ChoirNode,
    Recording,
    backtrace,
    burstify_fixed,
    find_matches,
    first_match,
    match_size_at_least,
    match_tags,
    match_time_window,
)
from repro.timing import TSC


def small_recording(n=100, rid=1) -> Recording:
    batch = PacketArray.uniform(n, 1400, np.arange(n) * 284.0, replayer_id=rid)
    return Recording.capture(batch, burstify_fixed(n, 8), batch.times_ns, TSC())


class TestBreakpoints:
    def test_match_tags(self):
        rec = small_recording()
        wanted = rec.packets.tags[[5, 50]]
        idx = find_matches(rec, match_tags(wanted))
        np.testing.assert_array_equal(idx, [5, 50])

    def test_first_match(self):
        rec = small_recording()
        assert first_match(rec, match_tags(rec.packets.tags[[42]])) == 42

    def test_first_match_none(self):
        rec = small_recording()
        assert first_match(rec, match_tags([999_999])) is None

    def test_time_window(self):
        rec = small_recording()
        idx = find_matches(rec, match_time_window(284.0 * 10, 284.0 * 12))
        np.testing.assert_array_equal(idx, [10, 11, 12])

    def test_time_window_validation(self):
        with pytest.raises(ValueError):
            match_time_window(10.0, 5.0)

    def test_size_predicate(self):
        rec = small_recording()
        assert find_matches(rec, match_size_at_least(1400)).shape == (100,)
        assert find_matches(rec, match_size_at_least(1401)).shape == (0,)

    def test_bad_predicate_shape_rejected(self):
        rec = small_recording()
        with pytest.raises(ValueError, match="one boolean per packet"):
            find_matches(rec, lambda b: np.array([True]))


class TestBacktrace:
    def test_received_packet_full_trace(self):
        rec = small_recording(n=100, rid=1)
        tag = int(rec.packets.tags[20])
        capture = Trial(rec.packets.tags, rec.packets.times_ns + 5000.0)
        bt = backtrace(tag, capture, {"replayer-0": rec})
        assert bt.received
        assert bt.emitted_by == "replayer-0"
        assert bt.lost_downstream_of is None
        assert bt.rx_position == 20
        assert bt.node_traces[0].burst_id == 2  # 20 // 8
        assert bt.node_traces[0].offset_in_burst == 4
        assert bt.latency_ns() == pytest.approx(5000.0)
        assert "position 20" in bt.render()

    def test_dropped_packet_localized(self):
        rec = small_recording(n=50, rid=1)
        tag = int(rec.packets.tags[30])
        mask = rec.packets.tags != tag
        capture = Trial(rec.packets.tags[mask], rec.packets.times_ns[mask])
        bt = backtrace(tag, capture, {"replayer-0": rec})
        assert not bt.received
        assert bt.lost_downstream_of == "replayer-0"
        assert "MISSING" in bt.render()

    def test_unknown_packet(self):
        rec = small_recording()
        capture = Trial(rec.packets.tags, rec.packets.times_ns)
        bt = backtrace(123456789, capture, {"r": rec})
        assert not bt.received
        assert bt.emitted_by is None
        assert bt.lost_downstream_of is None  # never seen anywhere

    def test_multi_node_attribution(self):
        rec1 = small_recording(n=20, rid=1)
        rec2 = small_recording(n=20, rid=2)
        tag = int(rec2.packets.tags[7])
        merged_tags = np.concatenate([rec1.packets.tags, rec2.packets.tags])
        merged_times = np.concatenate(
            [rec1.packets.times_ns, rec2.packets.times_ns + 1.0]
        )
        capture = Trial.from_arrival_events(merged_tags, merged_times)
        bt = backtrace(tag, capture, {"r1": rec1, "r2": rec2})
        assert bt.emitted_by == "r2"
        assert not bt.node_traces[0].present  # r1 never carried it


class TestEndToEnd:
    def test_backtrace_through_choir_node(self, rng):
        """Record on a real node, replay, trace a packet through."""
        node = ChoirNode("r0", TxNicModel(rate_bps=100e9))
        batch = PacketArray.uniform(
            200, 1400, np.arange(200) * 284.0, replayer_id=3
        )
        node.record(batch, rng)
        out = node.replay(1e9, rng)
        capture = Trial.from_arrival_events(out.egress.tags, out.egress.times_ns)
        tag = int(batch.tags[150])
        bt = backtrace(tag, capture, {"r0": node.recording})
        assert bt.received
        assert bt.emitted_by == "r0"
