"""Fault injection: store damage degrades to a counted recompute, always.

The :class:`repro.sweep.ArtifactStore` read path promises that **no**
on-disk damage — truncation, bit flips, stale schema versions, vanished
payloads, mangled metadata — ever raises, and none of it can ever leak a
silently wrong κ: every integrity failure quarantines the entry, counts
``sweep.store.corrupt`` (plus a per-reason sub-counter), and reports a
miss so the sweep recomputes and rewrites.  Each test here injects one
fault class into a published entry, re-runs the sweep, and asserts the
trifecta: no exception, the corruption counted, and the merged
``sweep.json`` byte-identical to the undamaged cold run.

Concurrent writers are the last fault class: racing ``put`` calls for
one digest must elect exactly one publisher (identical content by
construction), count the losers, and leave a verifiable entry.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import metrics
from repro.parallel import shutdown_pool
from repro.sweep import (
    ArtifactStore,
    STORE_SCHEMA_VERSION,
    plan_unit,
    run_sweep,
    write_sweep_report,
)
from repro.testbeds import local_dual_replayer

SEED = 11
N_RUNS = 2


def _plan():
    return [
        plan_unit(
            "reordered-dual", local_dual_replayer().at_duration(3e6), SEED, N_RUNS
        )
    ]


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


@pytest.fixture()
def seeded_store(tmp_path):
    """A store holding one full (trials + report) entry, plus cold bytes."""
    plan = _plan()
    store = ArtifactStore(tmp_path / "store")
    cold = run_sweep(plan, store, jobs=1)
    report_path, _ = write_sweep_report(cold, tmp_path / "cold")
    return store, plan, report_path.read_bytes()


def _counter(name: str) -> int:
    return metrics.REGISTRY.snapshot()["counters"].get(name, 0)


def _flip_byte(path, offset: int = -1) -> None:
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


def assert_degrades_to_recompute(store_root, plan, cold_bytes, tmp_path, reason):
    """The shared acceptance: counted miss, recompute, identical bytes."""
    corrupt_before = _counter("sweep.store.corrupt")
    reason_before = _counter(f"sweep.store.corrupt.{reason}")

    store = ArtifactStore(store_root)
    result = run_sweep(plan, store, jobs=1)  # must not raise

    assert result.outcomes == ("miss",)
    assert store.stats.corrupt == 1
    assert _counter("sweep.store.corrupt") == corrupt_before + 1
    assert _counter(f"sweep.store.corrupt.{reason}") == reason_before + 1

    report_path, _ = write_sweep_report(result, tmp_path / "recovered")
    assert report_path.read_bytes() == cold_bytes  # never a wrong κ

    # The entry was rewritten and is wholly valid again.
    fresh = ArtifactStore(store_root)
    entry = fresh.get(plan[0].digest)
    assert entry is not None and entry.report is not None
    assert fresh.stats.corrupt == 0


class TestStoreFaultInjection:
    def test_truncated_capture_payload(self, seeded_store, tmp_path):
        store, plan, cold_bytes = seeded_store
        cho = store.entry_dir(plan[0].digest) / "run-0.cho"
        cho.write_bytes(cho.read_bytes()[: cho.stat().st_size // 2])
        assert_degrades_to_recompute(
            store.root, plan, cold_bytes, tmp_path, "payload-checksum"
        )

    def test_bitflipped_capture_payload(self, seeded_store, tmp_path):
        store, plan, cold_bytes = seeded_store
        _flip_byte(store.entry_dir(plan[0].digest) / "run-1.cho")
        assert_degrades_to_recompute(
            store.root, plan, cold_bytes, tmp_path, "payload-checksum"
        )

    def test_bitflipped_report(self, seeded_store, tmp_path):
        store, plan, cold_bytes = seeded_store
        _flip_byte(store.entry_dir(plan[0].digest) / "report.json", offset=40)
        assert_degrades_to_recompute(
            store.root, plan, cold_bytes, tmp_path, "payload-checksum"
        )

    def test_stale_schema_version(self, seeded_store, tmp_path):
        import json

        store, plan, cold_bytes = seeded_store
        entry_json = store.entry_dir(plan[0].digest) / "entry.json"
        meta = json.loads(entry_json.read_text())
        assert meta["schema"] == STORE_SCHEMA_VERSION
        meta["schema"] = 999
        entry_json.write_text(json.dumps(meta, sort_keys=True, indent=1))
        assert_degrades_to_recompute(
            store.root, plan, cold_bytes, tmp_path, "stale-schema"
        )

    def test_missing_payload_file(self, seeded_store, tmp_path):
        store, plan, cold_bytes = seeded_store
        (store.entry_dir(plan[0].digest) / "run-0.cho").unlink()
        assert_degrades_to_recompute(
            store.root, plan, cold_bytes, tmp_path, "payload-missing"
        )

    def test_garbage_entry_metadata(self, seeded_store, tmp_path):
        store, plan, cold_bytes = seeded_store
        (store.entry_dir(plan[0].digest) / "entry.json").write_text(
            "not json at all{{{"
        )
        assert_degrades_to_recompute(
            store.root, plan, cold_bytes, tmp_path, "entry-unreadable"
        )

    def test_digest_directory_mismatch(self, seeded_store, tmp_path):
        """An entry renamed under the wrong digest can never be served."""
        import shutil

        store, plan, cold_bytes = seeded_store
        wrong = "0" * 64
        src = store.entry_dir(plan[0].digest)
        dst = store.entry_dir(wrong)
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copytree(src, dst)
        probe = ArtifactStore(store.root)
        assert probe.get(wrong) is None
        assert probe.stats.corrupt == 1
        assert not dst.exists()  # quarantined
        # ...and the legitimate entry is untouched.
        assert probe.get(plan[0].digest) is not None


class TestConcurrentWriters:
    def test_racing_puts_elect_one_writer(self, seeded_store, tmp_path):
        """N threads racing ``put`` for one digest: one write, N-1 races."""
        store, plan, cold_bytes = seeded_store
        digest = plan[0].digest
        entry = store.get(digest)
        assert entry is not None

        target = ArtifactStore(tmp_path / "race-store")
        n_writers = 6
        errors = []
        barrier = threading.Barrier(n_writers)

        def race():
            try:
                barrier.wait()
                target.put(digest, entry.trials, entry.report, key=entry.key)
            except BaseException as e:  # pragma: no cover - the assertion
                errors.append(e)

        threads = [threading.Thread(target=race) for _ in range(n_writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        assert target.stats.writes + target.stats.races == n_writers
        assert target.stats.writes >= 1
        # Whatever was published verifies cleanly and decodes the same κ.
        probe = ArtifactStore(tmp_path / "race-store")
        got = probe.get(digest)
        assert got is not None and got.report is not None
        assert probe.stats.corrupt == 0
        assert got.report.mean_row() == entry.report.mean_row()
        # No staging debris survives the race.
        assert list((tmp_path / "race-store" / "tmp").iterdir()) == []

    def test_sweep_over_raced_store_stays_byte_identical(
        self, seeded_store, tmp_path
    ):
        store, plan, cold_bytes = seeded_store
        result = run_sweep(plan, ArtifactStore(store.root), jobs=1)
        assert result.outcomes == ("hit",)
        report_path, _ = write_sweep_report(result, tmp_path / "warm")
        assert report_path.read_bytes() == cold_bytes
