"""Adversarial corpus for the sharded ordering metric (prefix-patience LIS).

Every case is checked three ways, all exact:

* the serial canonical mask (:func:`repro.core.ordering.lis_membership`)
  is reproduced element-for-element by :func:`~repro.parallel.lis_mask_sharded`
  at every job count and block size exercised;
* the mask's popcount equals the textbook ``O(n·m)`` DP LCS length
  (:func:`repro.core.ordering.naive_lcs_length` against the sorted unique
  values — for strict LIS with duplicates, ``LIS(s) == LCS(unique(s), s)``);
* the mask marks a genuinely strictly-increasing subsequence.

The corpus is the permutations that stress the merge's two moves: splice
(sorted, reversed, rotations — value intervals nest into tail gaps) and
replay (organ-pipe, interleaved runs — values straddle earlier blocks),
plus duplicate-heavy streams that stress the ``bisect_left`` tie-break
the canonical mask is defined by.

``REPRO_DIFF_JOBS`` restricts the job counts (CI splits the matrix);
``REPRO_TEST_SEED`` drives the randomized duplicate streams.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.matching import match_trials
from repro.core.ordering import (
    b_order_ranks,
    edit_script_from_matching,
    lis_membership,
    naive_lcs_length,
)
from repro.parallel import (
    edit_script_from_matching_sharded,
    lis_mask_sharded,
    mask_from_state,
    merge_blocks,
    patience_block,
    plan_order_blocks,
)

from .conftest import make_trial, suite_rng


def _job_counts() -> list[int]:
    raw = os.environ.get("REPRO_DIFF_JOBS", "1,2,4,8")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


JOB_COUNTS = _job_counts()


def _organ_pipe(n: int) -> np.ndarray:
    up = np.arange((n + 1) // 2)
    return np.concatenate([up, up[::-1][: n - up.shape[0]]])


def _interleaved_runs(n: int) -> np.ndarray:
    """Two value-disjoint increasing runs interleaved element-wise.

    ``[0, m, 1, m+1, 2, ...]`` — every contiguous block straddles both
    value ranges, so no block's interval nests into one tail gap and the
    merge must take its replay path.
    """
    m = (n + 1) // 2
    out = np.empty(n, dtype=np.int64)
    out[0::2] = np.arange(m)[: out[0::2].shape[0]]
    out[1::2] = np.arange(m, 2 * m)[: out[1::2].shape[0]]
    return out


def _dup_stream(n: int, alphabet: int, salt: int) -> np.ndarray:
    return suite_rng(salt).integers(0, alphabet, size=n).astype(np.int64)


#: Pinned worst cases.  Sizes are deliberately small enough for the DP
#: cross-check but large enough that every block size below creates
#: multi-block merges.
CORPUS: dict[str, np.ndarray] = {
    "sorted": np.arange(144, dtype=np.int64),
    "reversed": np.arange(144, dtype=np.int64)[::-1].copy(),
    "organ-pipe": _organ_pipe(143).astype(np.int64),
    "valley": _organ_pipe(143)[::-1].copy().astype(np.int64),
    "block-rotation": np.roll(np.arange(150, dtype=np.int64), 50),
    "block-swap": np.concatenate(
        [np.arange(70, 140), np.arange(0, 70)]
    ).astype(np.int64),
    "interleaved-runs": _interleaved_runs(141),
    "far-moved-packet": np.concatenate(
        [[137], np.arange(137), [138, 139]]
    ).astype(np.int64),
    "duplicate-heavy": _dup_stream(140, 7, salt=101),
    "binary-tags": _dup_stream(150, 2, salt=102),
    "all-equal": np.zeros(130, dtype=np.int64),
}


def _block_sizes(n: int) -> list[int]:
    """The ISSUE grid: 1, 2, a prime, n−1, n."""
    return sorted({1, 2, 13, max(1, n - 1), n})


def _check_mask(seq: np.ndarray, mask: np.ndarray) -> None:
    """Structural sanity: the mask marks a strictly increasing subsequence."""
    picked = seq[mask]
    assert np.all(np.diff(picked) > 0)


class TestCorpusSerialReference:
    """The serial canonical mask itself is pinned against the DP."""

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_serial_mask_matches_dp_length(self, name):
        seq = CORPUS[name]
        mask = lis_membership(seq)
        _check_mask(seq, mask)
        want_len = naive_lcs_length(np.unique(seq), seq)
        assert int(mask.sum()) == want_len


class TestCorpusShardedExact:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_all_block_sizes_in_process(self, name):
        """jobs=1 (inline specs, same worker code): every block size exact."""
        seq = CORPUS[name]
        want = lis_membership(seq)
        want_len = naive_lcs_length(np.unique(seq), seq)
        for bp in _block_sizes(seq.shape[0]):
            got = lis_mask_sharded(seq, jobs=1, block_packets=bp)
            assert np.array_equal(got, want), (name, bp)
            assert int(got.sum()) == want_len
            _check_mask(seq, got)

    @pytest.mark.parametrize("jobs", [j for j in JOB_COUNTS if j > 1] or [2])
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_pooled_block_sizes_exact(self, name, jobs):
        """Through a live pool: the grid's block sizes stay exact."""
        seq = CORPUS[name]
        want = lis_membership(seq)
        for bp in _block_sizes(seq.shape[0]):
            got = lis_mask_sharded(seq, jobs=jobs, block_packets=bp)
            assert np.array_equal(got, want), (name, bp, jobs)


class TestMergeMoves:
    """Pin which merge move fires — observability, and a regression guard
    for the splice condition (the exactness proof's load-bearing branch)."""

    def _merged(self, seq, bp):
        bounds = plan_order_blocks(seq.shape[0], bp)
        blocks = [patience_block(seq, lo, hi) for lo, hi in bounds]
        return merge_blocks(seq, blocks), len(bounds)

    def test_sorted_splices_every_block(self):
        seq = CORPUS["sorted"]
        st, n_blocks = self._merged(seq, 12)
        assert (st.spliced, st.replayed) == (n_blocks, 0)

    def test_reversed_splices_every_block(self):
        """Descending blocks nest below the accumulated minimum (c == 0)."""
        seq = CORPUS["reversed"]
        st, n_blocks = self._merged(seq, 12)
        assert (st.spliced, st.replayed) == (n_blocks, 0)

    def test_interleaved_runs_replay(self):
        """Blocks straddling earlier value ranges must take the replay path."""
        seq = CORPUS["interleaved-runs"]
        st, _ = self._merged(seq, 12)
        assert st.replayed > 0
        assert np.array_equal(mask_from_state(st), lis_membership(seq))

    def test_single_block_is_serial(self):
        seq = CORPUS["duplicate-heavy"]
        st, n_blocks = self._merged(seq, seq.shape[0])
        assert n_blocks == 1
        assert np.array_equal(mask_from_state(st), lis_membership(seq))


class TestDuplicateHeavyEndToEnd:
    """Duplicate-heavy *trial pairs* through the sharded edit script:
    every EditScript field bit-identical, not just the mask."""

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_sharded_edit_script_fields_exact(self, jobs):
        rng = suite_rng(salt=103)
        for trial_n, alphabet in ((180, 3), (240, 9)):
            tags = rng.integers(0, alphabet, size=trial_n).astype(np.int64)
            times = np.cumsum(rng.exponential(100.0, size=trial_n))
            a = make_trial(times, tags)
            keep = rng.random(trial_n) > 0.1
            bt = times[keep] + rng.normal(0.0, 250.0, size=int(keep.sum()))
            order = np.argsort(bt, kind="stable")
            b = make_trial(bt[order], tags[keep][order])
            m = match_trials(a, b)
            want = edit_script_from_matching(m)
            for bp in _block_sizes(m.n_common):
                got = edit_script_from_matching_sharded(
                    m, jobs=jobs, block_packets=bp
                )
                assert np.array_equal(got.lcs_mask_b_order, want.lcs_mask_b_order)
                assert np.array_equal(got.signed_distances, want.signed_distances)
                assert np.array_equal(got.moved_distances, want.moved_distances)
                assert np.array_equal(got.deletions_b, want.deletions_b)
                assert np.array_equal(got.insertions_a, want.insertions_a)
                assert got.total_distance() == want.total_distance()

    def test_permutation_is_b_order_ranks(self):
        """The sharded input is the same permutation serial runs on."""
        rng = suite_rng(salt=104)
        tags = rng.integers(0, 5, size=90).astype(np.int64)
        times = np.cumsum(rng.exponential(80.0, size=90))
        a = make_trial(times, tags)
        b = make_trial(np.sort(times + rng.normal(0, 200, 90)), tags)
        m = match_trials(a, b)
        seq = b_order_ranks(m)
        assert np.array_equal(
            lis_mask_sharded(seq, jobs=1, block_packets=7), lis_membership(seq)
        )


class TestEdgeShapes:
    def test_empty_sequence(self):
        assert lis_mask_sharded(np.empty(0, dtype=np.int64), jobs=1).shape == (0,)

    def test_single_element(self):
        got = lis_mask_sharded(np.array([5], dtype=np.int64), jobs=1, block_packets=1)
        assert np.array_equal(got, np.array([True]))

    def test_block_larger_than_sequence(self):
        seq = CORPUS["organ-pipe"]
        got = lis_mask_sharded(seq, jobs=1, block_packets=10_000)
        assert np.array_equal(got, lis_membership(seq))

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            plan_order_blocks(10, 0)

    def test_noncontiguous_blocks_rejected(self):
        seq = CORPUS["sorted"]
        blocks = [patience_block(seq, 12, 24)]  # does not start at row 0
        with pytest.raises(ValueError):
            merge_blocks(seq, blocks)
