"""Unit tests for the SVG visualization layer."""

import xml.dom.minidom

import numpy as np
import pytest

from repro.core import DeltaHistogram
from repro.viz import (
    LinearScale,
    LogScale,
    SvgDocument,
    SymlogScale,
    histogram_figure,
    kappa_bars,
    series_lines,
)


def parse(svg_text: str):
    """Parse SVG text; raises on malformed XML."""
    return xml.dom.minidom.parseString(svg_text)


class TestScales:
    def test_linear_endpoints(self):
        s = LinearScale(d0=0.0, d1=10.0, p0=100.0, p1=200.0)
        assert s(0.0) == 100.0
        assert s(10.0) == 200.0
        assert s(5.0) == 150.0

    def test_linear_vectorized(self):
        s = LinearScale(d0=0.0, d1=1.0, p0=0.0, p1=10.0)
        np.testing.assert_allclose(s(np.array([0.0, 0.5, 1.0])), [0, 5, 10])

    def test_linear_ticks_rounded(self):
        s = LinearScale(d0=0.0, d1=1.0, p0=0.0, p1=1.0)
        vals = [v for v, _ in s.ticks(5)]
        assert 0.0 in vals and max(vals) <= 1.0
        assert len(vals) <= 7

    def test_linear_rejects_degenerate(self):
        with pytest.raises(ValueError):
            LinearScale(d0=1.0, d1=1.0, p0=0.0, p1=1.0)

    def test_log_endpoints(self):
        s = LogScale(d0=1.0, d1=100.0, p0=0.0, p1=100.0)
        assert s(1.0) == 0.0
        assert s(100.0) == 100.0
        assert s(10.0) == pytest.approx(50.0)

    def test_log_ticks_decades(self):
        s = LogScale(d0=0.01, d1=100.0, p0=0.0, p1=1.0)
        vals = [v for v, _ in s.ticks()]
        np.testing.assert_allclose(vals, [0.01, 0.1, 1.0, 10.0, 100.0])

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LogScale(d0=0.0, d1=1.0, p0=0.0, p1=1.0)

    def test_symlog_symmetry_and_monotonicity(self):
        s = SymlogScale(limit=1e9, linthresh=10.0, p0=0.0, p1=100.0)
        assert s(0.0) == pytest.approx(50.0)
        assert s(-1e9) == pytest.approx(0.0)
        assert s(1e9) == pytest.approx(100.0)
        xs = np.array([-1e9, -1e3, -10.0, 0.0, 10.0, 1e3, 1e9])
        assert np.all(np.diff(s(xs)) > 0)

    def test_symlog_linear_core(self):
        s = SymlogScale(limit=1e3, linthresh=10.0, p0=-1.0, p1=1.0)
        # Inside the threshold the mapping is linear in x.
        assert s(5.0) - s(0.0) == pytest.approx(s(0.0) - s(-5.0))

    def test_symlog_ticks_labelled(self):
        s = SymlogScale(limit=1e6, linthresh=10.0, p0=0.0, p1=1.0)
        labels = dict(s.ticks())
        assert 0.0 in labels
        assert labels[1e3] == "1us"

    def test_symlog_validation(self):
        with pytest.raises(ValueError):
            SymlogScale(limit=5.0, linthresh=10.0, p0=0.0, p1=1.0)


class TestSvgDocument:
    def test_minimal_document_valid(self):
        doc = SvgDocument(100, 50)
        parse(doc.render())

    def test_elements_appear(self):
        doc = SvgDocument(100, 100, background=None)
        doc.rect(0, 0, 10, 10).line(0, 0, 5, 5).circle(3, 3, 1)
        doc.text(1, 1, "<hello & goodbye>")
        doc.polyline([(0, 0), (1, 2), (3, 4)])
        out = doc.render()
        parse(out)
        for tag in ("<rect", "<line", "<circle", "<text", "<polyline"):
            assert tag in out
        assert "&lt;hello &amp; goodbye&gt;" in out

    def test_groups_balanced(self):
        doc = SvgDocument(10, 10)
        doc.group_open(translate=(5, 5)).rect(0, 0, 1, 1).group_close()
        out = doc.render()
        assert out.count("<g") == out.count("</g>")
        parse(out)

    def test_save(self, tmp_path):
        p = tmp_path / "x.svg"
        SvgDocument(10, 10).save(p)
        assert p.read_text().startswith("<?xml")

    def test_rejects_bad_canvas(self):
        with pytest.raises(ValueError):
            SvgDocument(0, 10)


class TestCharts:
    def _hists(self, rng, n_runs=3):
        return [
            DeltaHistogram.from_deltas(rng.normal(0, 50, 400), label=l)
            for l in "BCD"[:n_runs]
        ]

    def test_histogram_figure_valid_and_complete(self, rng):
        doc = histogram_figure(self._hists(rng), title="Fig X")
        out = doc.render()
        parse(out)
        assert "Fig X" in out
        assert out.count("<polyline") >= 3  # one series per run
        assert "run B" in out and "run D" in out

    def test_histogram_requires_shared_bins(self, rng):
        from repro.core import SymlogBins

        h1 = DeltaHistogram.from_deltas(rng.normal(0, 5, 10), SymlogBins())
        h2 = DeltaHistogram.from_deltas(
            rng.normal(0, 5, 10), SymlogBins(linthresh=3.0)
        )
        with pytest.raises(ValueError, match="share bins"):
            histogram_figure([h1, h2])

    def test_histogram_requires_input(self):
        with pytest.raises(ValueError):
            histogram_figure([])

    def test_kappa_bars(self):
        rows = [
            {"environment": "local", "kappa": 0.98, "paper_kappa": 0.985},
            {"environment": "fabric", "kappa": 0.77, "paper_kappa": 0.74},
        ]
        out = kappa_bars(rows).render()
        parse(out)
        assert "local" in out and "0.98" in out

    def test_series_lines_linear_and_log(self):
        x = [1, 2, 4, 8]
        series = {"a": np.array([1.0, 2.0, 4.0, 8.0]),
                  "b": np.array([8.0, 4.0, 2.0, 1.0])}
        for log_y in (False, True):
            out = series_lines(x, series, log_y=log_y,
                               title="t", xlabel="x", ylabel="y").render()
            parse(out)
            assert '"a"' not in out  # names rendered as text, not attrs
            assert ">a</text>" in out

    def test_series_lines_requires_series(self):
        with pytest.raises(ValueError):
            series_lines([1, 2], {})


class TestFigureSeriesSvg:
    def test_to_svg_from_experiment(self, tmp_path):
        from repro.experiments import fig4

        fig4a, _ = fig4(duration_scale=0.01, n_runs=2)
        p = tmp_path / "fig4a.svg"
        doc = fig4a.to_svg(p)
        assert p.exists()
        parse(p.read_text())
        assert "Figure 4a" in doc.render()
