"""Unit and property tests for the FIFO service primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.net import fifo_departures, fifo_tail_drop


def reference_fifo(ready, service):
    """The textbook sequential recurrence, for cross-validation."""
    done = np.empty_like(ready)
    last = -np.inf
    for i in range(ready.shape[0]):
        start = max(ready[i], last)
        last = start + service[i]
        done[i] = last
    return done


class TestFifoDepartures:
    def test_empty(self):
        assert fifo_departures(np.array([]), np.array([])).shape == (0,)

    def test_no_queueing(self):
        ready = np.array([0.0, 100.0, 200.0])
        svc = np.array([10.0, 10.0, 10.0])
        np.testing.assert_allclose(fifo_departures(ready, svc), [10.0, 110.0, 210.0])

    def test_back_to_back(self):
        ready = np.zeros(4)
        svc = np.full(4, 10.0)
        np.testing.assert_allclose(fifo_departures(ready, svc), [10, 20, 30, 40])

    def test_matches_reference(self, rng):
        for _ in range(20):
            n = int(rng.integers(1, 200))
            ready = np.sort(rng.uniform(0, 1000, n))
            svc = rng.uniform(0, 20, n)
            np.testing.assert_allclose(
                fifo_departures(ready, svc), reference_fifo(ready, svc), rtol=1e-12
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fifo_departures(np.zeros(3), np.zeros(2))

    @given(
        hnp.arrays(np.float64, st.integers(1, 100),
                   elements=st.floats(0, 1e6, allow_nan=False)).map(np.sort),
        st.floats(0.0, 100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_matches_reference(self, ready, svc_scalar):
        svc = np.full(ready.shape[0], svc_scalar)
        got = fifo_departures(ready, svc)
        np.testing.assert_allclose(got, reference_fifo(ready, svc), rtol=1e-9)
        # Output is non-decreasing and every packet departs after arrival.
        assert np.all(np.diff(got) >= -1e-9)
        assert np.all(got >= ready + svc - 1e-9)


class TestTailDrop:
    def test_no_drops_under_capacity(self):
        ready = np.arange(10) * 100.0
        svc = np.full(10, 10.0)
        r = fifo_tail_drop(ready, svc, queue_capacity=4)
        assert r.n_dropped == 0
        np.testing.assert_allclose(r.done_ns, fifo_departures(ready, svc))

    def test_burst_overflow_drops_tail(self):
        # 100 simultaneous arrivals into an 8-deep queue: 8 accepted.
        r = fifo_tail_drop(np.zeros(100), np.full(100, 10.0), queue_capacity=8)
        assert r.accepted.sum() == 8
        assert r.n_dropped == 92
        np.testing.assert_array_equal(np.flatnonzero(r.accepted), np.arange(8))

    def test_queue_drains_and_reaccepts(self):
        # Two bursts separated by enough time to drain the queue.
        ready = np.concatenate([np.zeros(4), np.full(4, 1000.0)])
        svc = np.full(8, 10.0)
        r = fifo_tail_drop(ready, svc, queue_capacity=2)
        # 2 of each burst accepted.
        assert r.accepted.sum() == 4

    def test_capacity_one_is_strictest(self):
        ready = np.array([0.0, 1.0, 50.0])
        svc = np.full(3, 10.0)
        r = fifo_tail_drop(ready, svc, queue_capacity=1)
        # Packet 1 arrives while packet 0 is in service -> dropped.
        np.testing.assert_array_equal(r.accepted, [True, False, True])

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            fifo_tail_drop(np.zeros(1), np.zeros(1), queue_capacity=0)

    @given(
        hnp.arrays(np.float64, st.integers(1, 120),
                   elements=st.floats(0, 1e4, allow_nan=False)).map(np.sort),
        st.integers(1, 16),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_accepted_subset_served_in_order(self, ready, cap):
        svc = np.full(ready.shape[0], 25.0)
        r = fifo_tail_drop(ready, svc, queue_capacity=cap)
        assert r.done_ns.shape[0] == int(r.accepted.sum())
        assert np.all(np.diff(r.done_ns) >= -1e-9)
        # Accepted packets obey the plain FIFO law among themselves.
        kept_ready = ready[r.accepted]
        kept_svc = svc[r.accepted]
        np.testing.assert_allclose(
            r.done_ns, fifo_departures(kept_ready, kept_svc), rtol=1e-9
        )
