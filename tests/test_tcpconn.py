"""Unit tests for the TCP connection-level replay baseline."""

import numpy as np
import pytest

from repro.generators import (
    TCPConnectionRecord,
    TCPConnectionReplayer,
    synthesize_connections,
)
from repro.generators.tcpconn import CTRL_BYTES
from repro.net import PacketArray


class TestConnectionRecord:
    def test_segmentation(self):
        r = TCPConnectionRecord(0, 0.0, 1e6, bytes_a_to_b=4000, mss=1448)
        assert r.n_data_segments == 3  # 1448 + 1448 + 1104

    def test_empty_connection(self):
        r = TCPConnectionRecord(0, 0.0, 1e6, bytes_a_to_b=0)
        assert r.n_data_segments == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TCPConnectionRecord(0, 0.0, 0.0, 100)
        with pytest.raises(ValueError):
            TCPConnectionRecord(0, 0.0, 1.0, -1)


class TestSynthesize:
    def test_basic_properties(self, rng):
        recs = synthesize_connections(100, rng, window_ns=5e6)
        assert len(recs) == 100
        starts = [r.start_ns for r in recs]
        assert starts == sorted(starts)
        assert all(0 <= s <= 5e6 for s in starts)
        assert all(r.bytes_a_to_b >= 0 for r in recs)

    def test_heavy_tailed_sizes(self, rng):
        recs = synthesize_connections(500, rng, mean_bytes=1e5)
        sizes = np.array([r.bytes_a_to_b for r in recs])
        assert sizes.max() > 10 * np.median(sizes)  # lognormal tail

    def test_needs_one(self, rng):
        with pytest.raises(ValueError):
            synthesize_connections(0, rng)


class TestReplay:
    def test_connection_structure(self):
        r = TCPConnectionRecord(7, 1000.0, 1e6, bytes_a_to_b=3000, mss=1448)
        out = TCPConnectionReplayer().replay_connection(r)
        # SYN + 3 data + FIN.
        assert len(out) == 5
        assert out.sizes[0] == CTRL_BYTES and out.sizes[-1] == CTRL_BYTES
        assert out.times_ns[0] == 1000.0
        # Byte stream is preserved exactly after resegmentation.
        data_bytes = int(out.sizes[1:-1].sum()) - 3 * 52
        assert data_bytes == 3000

    def test_handshake_rtt_gap(self):
        r = TCPConnectionRecord(0, 0.0, 1e6, bytes_a_to_b=1448)
        eng = TCPConnectionReplayer(rtt_ns=123_456.0)
        out = eng.replay_connection(r)
        assert out.times_ns[1] - out.times_ns[0] == pytest.approx(123_456.0)

    def test_gap_floor_enforced(self):
        """DETER's 5 µs floor: short connections cannot be packed tighter."""
        r = TCPConnectionRecord(0, 0.0, 1e4, bytes_a_to_b=14480)  # wants 1 µs gaps
        eng = TCPConnectionReplayer(min_gap_ns=5_000.0)
        out = eng.replay_connection(r)
        data_gaps = np.diff(out.times_ns[1:-1])
        assert np.all(data_gaps >= 5_000.0 - 1e-9)

    def test_merged_log_ordered(self, rng):
        recs = synthesize_connections(50, rng)
        out = TCPConnectionReplayer().replay(recs)
        assert np.all(np.diff(out.times_ns) >= 0)
        # Tags unique across connections.
        assert np.unique(out.tags).shape[0] == len(out)

    def test_replay_empty_log_rejected(self):
        with pytest.raises(ValueError):
            TCPConnectionReplayer().replay([])

    def test_non_tcp_rejected(self):
        """Section 9: 'Both are limited to TCP traffic.'"""
        eng = TCPConnectionReplayer()
        cap = PacketArray.uniform(3, 1400, np.arange(3, dtype=float))
        protocols = np.array([6, 17, 6])  # one UDP packet
        with pytest.raises(ValueError, match="only TCP"):
            eng.replay_capture(cap, protocols)

    def test_tcp_capture_reconstruction_unimplemented(self):
        eng = TCPConnectionReplayer()
        cap = PacketArray.uniform(3, 1400, np.arange(3, dtype=float))
        with pytest.raises(NotImplementedError):
            eng.replay_capture(cap, np.full(3, 6))

    def test_does_not_replay_specific_packets(self, rng):
        """TCPOpera semantics: same bytes, different packets.

        Replaying a 'capture' whose original segmentation was 500-byte
        packets yields MSS-sized segments instead — packet identities and
        counts differ even though the byte stream matches.
        """
        original_packets = 12  # 12 x 500 B = 6000 B
        r = TCPConnectionRecord(0, 0.0, 1e6, bytes_a_to_b=6000, mss=1448)
        out = TCPConnectionReplayer().replay_connection(r)
        assert len(out) - 2 != original_packets  # resegmented: 5 not 12
