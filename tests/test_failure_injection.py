"""Failure-injection tests: the system under hostile inputs and faults.

Each test injects a specific failure the real deployment could see —
clock steps backwards, overflowing buffers, saturated loops, corrupted
captures, pathological workloads — and asserts the system either models
it faithfully or fails loudly, never silently corrupting an analysis.
"""

import numpy as np
import pytest

from repro.core import Trial, compare_trials
from repro.net import PacketArray, SharedPort, TxNicModel
from repro.replay import (
    ChoirNode,
    PollLoopCost,
    Recording,
    Replayer,
    ReplayTimingModel,
    burstify_fixed,
    burstify_poll_loop,
)
from repro.testbeds import ClockStepModel, Testbed, local_single_replayer
from repro.timing import TSC, SampledClockStamper

from .conftest import comb_trial


class TestClockFaults:
    def test_backwards_clock_step_never_reorders_capture(self, rng):
        """A big negative step must not produce time-travelling packets."""
        t = np.arange(10_000) * 284.0
        model = ClockStepModel(rate_per_sec=2000.0, scale_ns=1e6)
        for _ in range(5):
            out = model.apply(t, t[-1], rng)
            assert np.all(np.diff(out) >= 0)

    def test_sampled_stamper_with_huge_anchor_error(self, rng):
        """Anchor errors larger than packet gaps still yield a monotone capture."""
        s = SampledClockStamper(sample_interval_ns=1e4, sample_error_ns=5e4)
        t = np.arange(5_000) * 284.0
        out = s.stamp(t, rng)
        assert np.all(np.diff(out) >= 0)

    def test_analysis_survives_extreme_drift(self):
        """A trial pair with 1000 ppm relative drift stays in metric range."""
        n = 10_000
        base = np.arange(n) * 284.0
        a = Trial(np.arange(n), base, label="A")
        b = Trial(np.arange(n), base * 1.001, label="B")
        r = compare_trials(a, b)
        assert 0.0 <= r.kappa <= 1.0
        assert r.metrics.l > 0


class TestResourceExhaustion:
    def test_buffer_overflow_truncates_never_corrupts(self, rng):
        """Offering 3x the buffer yields a valid, replayable recording."""
        from repro.replay import MBUF_BYTES, MIN_BUFFER_BYTES

        node = ChoirNode("n", TxNicModel(rate_bps=100e9),
                         buffer_bytes=MIN_BUFFER_BYTES)
        cap = MIN_BUFFER_BYTES // MBUF_BYTES
        batch = PacketArray.uniform(3 * cap, 1400, np.arange(3 * cap) * 112.0)
        _, rec = node.record(batch, rng)
        assert rec.truncated
        assert rec.memory_bytes <= MIN_BUFFER_BYTES
        out = node.replay(1e9, rng)
        assert len(out) == len(rec)

    def test_saturated_replay_loop_stays_ordered(self, rng):
        """A loop too slow for its recording backlogs but never reorders."""
        batch = PacketArray.uniform(5_000, 1400, np.arange(5_000) * 112.0)
        rec = Recording.capture(batch, burstify_fixed(5_000, 4),
                                batch.times_ns, TSC())
        slow = Replayer(
            tx_nic=TxNicModel(rate_bps=100e9),
            loop_cost=PollLoopCost(iteration_ns=2_000.0, per_packet_ns=100.0),
            timing=ReplayTimingModel(),
        )
        out = slow.replay(rec, 1e9, rng)
        assert np.all(np.diff(out.egress.times_ns) >= 0)
        # Backlog: output span stretches well beyond the recording.
        span = out.egress.times_ns[-1] - out.egress.times_ns[0]
        assert span > rec.duration_ns * 1.5

    def test_total_starvation_on_shared_port(self, rng):
        """A 100% co-tenant load delays but never reorders the foreground."""
        port = SharedPort(rate_bps=100e9)
        fg = PacketArray.uniform(500, 1400, np.arange(500) * 284.0)
        bg = PacketArray.uniform(20_000, 1500, np.sort(
            rng.uniform(0, 500 * 284.0, 20_000)))
        res = port.traverse(fg, bg)
        np.testing.assert_array_equal(res.batch.tags, fg.tags)
        assert np.all(np.diff(res.batch.times_ns) >= 0)


class TestHostileWorkloads:
    def test_simultaneous_arrivals_burstify(self):
        """A zero-width megaburst still produces capped, ordered bursts."""
        ids = burstify_poll_loop(np.zeros(1_000))
        assert np.all(np.diff(ids) >= 0)
        sizes = np.bincount(ids)
        assert sizes.max() <= 64

    def test_single_packet_trial_analysis(self):
        a = comb_trial(1, label="A")
        r = compare_trials(a, a.relabel("B"))
        assert r.kappa == 1.0

    def test_comparing_unrelated_environments(self):
        """Trials from different workloads: metrics stay in range."""
        from .conftest import make_trial

        a = comb_trial(100, gap_ns=284.0, label="A")
        b = make_trial(5e7 + np.arange(37) * 999.0,
                       tags=1000 + np.arange(37), label="B")
        r = compare_trials(a, b)
        assert 0.0 <= r.kappa <= 1.0
        assert r.metrics.u == 1.0  # completely disjoint packet sets

    def test_duplicate_heavy_trial(self, rng):
        """Captures where most tags repeat (e.g. re-transmissions)."""
        tags = rng.integers(0, 10, 1_000)
        a = Trial(tags, np.arange(1_000) * 100.0, label="A")
        r = compare_trials(a, a.relabel("B"))
        assert r.metrics.is_identical

    def test_capture_of_zero_duration(self):
        a = Trial(np.arange(5), np.zeros(5), label="A")
        r = compare_trials(a, a.relabel("B"))
        assert r.kappa == 1.0


class TestEndToEndFaults:
    def test_testbed_with_pathologically_short_window(self):
        """A 100 µs capture (a few hundred packets) runs end to end."""
        p = local_single_replayer().at_duration(1e5)
        trials = Testbed(p, seed=1).run_series(2)
        assert len(trials[0]) > 100
        r = compare_trials(trials[0], trials[1])
        assert 0.0 <= r.kappa <= 1.0

    def test_corrupted_capture_file_fails_loudly(self, tmp_path):
        from repro.analysis import CaptureFormatError, read_capture, write_capture

        p = write_capture(comb_trial(100, label="A"), tmp_path / "x.cho")
        raw = bytearray(p.read_bytes())
        raw[4] = 99  # version byte
        p.write_bytes(bytes(raw))
        with pytest.raises(CaptureFormatError, match="version"):
            read_capture(p)
