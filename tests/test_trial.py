"""Unit tests for repro.core.trial."""

import numpy as np
import pytest

from repro.core import Trial

from .conftest import comb_trial, make_trial


class TestConstruction:
    def test_basic(self):
        t = make_trial([0.0, 10.0, 25.0], label="A")
        assert len(t) == 3
        assert t.label == "A"
        assert t.tags.dtype == np.int64
        assert t.times_ns.dtype == np.float64

    def test_empty(self):
        t = make_trial([])
        assert t.is_empty
        assert len(t) == 0

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            Trial(np.arange(3), np.zeros(2))

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            make_trial([0.0, 5.0, 4.0])

    def test_rejects_non_finite_times(self):
        with pytest.raises(ValueError, match="finite"):
            make_trial([0.0, np.nan])
        with pytest.raises(ValueError, match="finite"):
            make_trial([0.0, np.inf])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            Trial(np.zeros((2, 2), dtype=np.int64), np.zeros((2, 2)))

    def test_ties_allowed(self):
        t = make_trial([0.0, 0.0, 0.0])
        assert len(t) == 3

    def test_int_input_coerced(self):
        t = Trial([1, 2, 3], [0, 1, 2])
        assert t.times_ns.dtype == np.float64


class TestProperties:
    def test_start_end_duration(self):
        t = make_trial([5.0, 10.0, 30.0])
        assert t.start_ns == 5.0
        assert t.end_ns == 30.0
        assert t.duration_ns == 25.0

    def test_empty_start_raises(self):
        with pytest.raises(ValueError, match="empty"):
            make_trial([]).start_ns
        with pytest.raises(ValueError, match="empty"):
            make_trial([]).end_ns


class TestDerivedSeries:
    def test_relative_times(self):
        t = make_trial([100.0, 150.0, 300.0])
        np.testing.assert_allclose(t.relative_times_ns(), [0.0, 50.0, 200.0])

    def test_iats_first_is_zero(self):
        """The paper defines t_X0 = t_X(-1), so g_X0 = 0."""
        t = make_trial([100.0, 150.0, 300.0])
        np.testing.assert_allclose(t.iats_ns(), [0.0, 50.0, 150.0])

    def test_iats_empty(self):
        assert make_trial([]).iats_ns().shape == (0,)

    def test_relative_times_empty(self):
        assert make_trial([]).relative_times_ns().shape == (0,)


class TestTransforms:
    def test_from_arrival_events_sorts(self):
        t = Trial.from_arrival_events([1, 2, 3], [30.0, 10.0, 20.0])
        np.testing.assert_array_equal(t.tags, [2, 3, 1])
        np.testing.assert_allclose(t.times_ns, [10.0, 20.0, 30.0])

    def test_from_arrival_events_stable_on_ties(self):
        t = Trial.from_arrival_events([5, 6, 7], [10.0, 10.0, 10.0])
        np.testing.assert_array_equal(t.tags, [5, 6, 7])

    def test_relabel_shares_data(self):
        t = comb_trial(5, label="A")
        t2 = t.relabel("B")
        assert t2.label == "B"
        assert t2.tags is t.tags

    def test_head(self):
        t = comb_trial(10)
        assert len(t.head(4)) == 4
        np.testing.assert_array_equal(t.head(4).tags, t.tags[:4])

    def test_drop_packets(self):
        t = comb_trial(5)
        t2 = t.drop_packets([1, 3])
        np.testing.assert_array_equal(t2.tags, [0, 2, 4])

    def test_shift(self):
        t = comb_trial(3, gap_ns=10.0)
        t2 = t.shift_ns(100.0)
        np.testing.assert_allclose(t2.times_ns, [100.0, 110.0, 120.0])
        assert t2.duration_ns == t.duration_ns
