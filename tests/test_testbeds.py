"""Unit tests for the testbed layer: profiles, runner, scenario builders."""

import numpy as np
import pytest

from repro.core import compare_series
from repro.testbeds import (
    ClockStepModel,
    EnvironmentProfile,
    Testbed,
    equilibrium_burst_size,
    expected_metrics,
    fabric_dedicated_40g,
    fabric_shared_40g,
    fabric_shared_40g_noisy,
    local_dual_replayer,
    local_single_replayer,
)

SHORT = 3e6  # 3 ms: ~10.7k packets at 40 Gbps — enough for structure tests


class TestProfiles:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnvironmentProfile(name="x", rate_bps=0)
        with pytest.raises(ValueError):
            EnvironmentProfile(name="x", rate_bps=1e9, n_replayers=0)
        with pytest.raises(ValueError):
            EnvironmentProfile(name="x", rate_bps=1e9, duration_ns=0)

    def test_at_duration(self):
        p = local_single_replayer().at_duration(1e6)
        assert p.duration_ns == 1e6
        assert p.name == "local-single"

    def test_per_replayer_rate(self):
        p = local_dual_replayer()
        assert p.per_replayer_rate_bps == pytest.approx(20e9)

    def test_describe(self):
        d = local_single_replayer().describe()
        assert d["rate_gbps"] == 40.0
        assert d["switch"].startswith("AS9516")
        assert d["shared"] is False
        assert fabric_shared_40g_noisy().describe()["shared"] is True


class TestClockStepModel:
    def test_disabled_is_identity(self, rng):
        t = np.arange(100) * 10.0
        out = ClockStepModel().apply(t, 1000.0, rng)
        np.testing.assert_array_equal(out, t)

    def test_steps_shift_tail(self):
        rng = np.random.default_rng(0)
        t = np.arange(10_000) * 100.0
        model = ClockStepModel(rate_per_sec=1e6, scale_ns=1000.0)  # many steps
        out = model.apply(t, 1e6, rng)
        assert not np.allclose(out, t)
        assert np.all(np.diff(out) >= 0)  # capture order stays monotone

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ClockStepModel(rate_per_sec=-1.0)


class TestTestbedRunner:
    def test_series_reproducible_from_seed(self):
        p = local_single_replayer().at_duration(SHORT)
        t1 = Testbed(p, seed=42).run_series(3)
        t2 = Testbed(p, seed=42).run_series(3)
        for a, b in zip(t1, t2):
            np.testing.assert_array_equal(a.tags, b.tags)
            np.testing.assert_array_equal(a.times_ns, b.times_ns)

    def test_different_seeds_differ(self):
        p = local_single_replayer().at_duration(SHORT)
        a = Testbed(p, seed=1).run_series(2)[1]
        b = Testbed(p, seed=2).run_series(2)[1]
        assert not np.array_equal(a.times_ns, b.times_ns)

    def test_labels_follow_paper_convention(self):
        p = local_single_replayer().at_duration(SHORT)
        trials = Testbed(p, seed=0).run_series(3)
        assert [t.label for t in trials] == ["A", "B", "C"]

    def test_all_packets_delivered_when_quiet(self):
        p = local_single_replayer().at_duration(SHORT)
        trials = Testbed(p, seed=0).run_series(2)
        assert len(trials[0]) == len(trials[1])
        np.testing.assert_array_equal(
            np.sort(trials[0].tags), np.sort(trials[1].tags)
        )

    def test_artifacts_collected(self):
        p = local_single_replayer().at_duration(SHORT)
        trials, arts = Testbed(p, seed=0).run_series(2, collect_artifacts=True)
        assert len(arts) == 2
        assert arts[0].trial is trials[0]
        assert len(arts[0].freq_errors_ppm) == 1
        assert arts[0].start_offsets_ns[0] > 0  # start latency is positive

    def test_dual_replayer_tags_both_nodes(self):
        p = local_dual_replayer().at_duration(SHORT)
        trials = Testbed(p, seed=0).run_series(1)
        rids = np.unique(trials[0].tags >> 48)
        np.testing.assert_array_equal(rids, [1, 2])

    def test_rejects_zero_runs(self):
        p = local_single_replayer().at_duration(SHORT)
        with pytest.raises(ValueError):
            Testbed(p, seed=0).run_series(0)

    def test_times_aligned_to_epoch(self):
        """Trial timestamps are relative to the scheduled replay start."""
        p = local_single_replayer().at_duration(SHORT)
        t = Testbed(p, seed=0).run_series(1)[0]
        # Start latency (~ms) plus path, well under a second.
        assert 0 < t.start_ns < 1e8


class TestScenarioStructure:
    """Cheap structural checks; metric-magnitude checks live in the
    integration shape tests."""

    def test_local_single_is_clean(self):
        p = local_single_replayer().at_duration(SHORT)
        trials = Testbed(p, seed=3).run_series(3)
        rep = compare_series(trials)
        assert np.all(rep.values("U") == 0.0)
        assert np.all(rep.values("O") == 0.0)

    def test_dual_replayer_reorders(self):
        p = local_dual_replayer().at_duration(SHORT)
        trials = Testbed(p, seed=3).run_series(3)
        rep = compare_series(trials)
        assert np.any(rep.values("O") > 0.0)

    def test_noisy_shared_can_drop(self):
        # Drops are tail events; check the machinery path runs and that
        # any missing packets show up as U > 0 with matching counts.
        p = fabric_shared_40g_noisy().at_duration(10e6)
        trials, arts = Testbed(p, seed=5).run_series(3, collect_artifacts=True)
        # Every run replays the same recording; captures differ from it
        # only by that run's drops.
        n_recorded = len(trials[0]) + arts[0].n_dropped
        for t, a in zip(trials, arts):
            assert a.n_dropped >= 0
            assert len(t) == n_recorded - a.n_dropped


class TestCalibration:
    def test_equilibrium_burst_matches_simulation(self):
        p = local_single_replayer()
        b = equilibrium_burst_size(p)
        assert 10 < b < 30

    def test_loop_saturation_caps_at_64(self):
        from dataclasses import replace

        from repro.replay import PollLoopCost

        p = local_single_replayer()
        p = replace(p, loop_cost=PollLoopCost(iteration_ns=1000.0, per_packet_ns=300.0))
        assert equilibrium_burst_size(p) == 64.0

    def test_expected_metrics_structure(self):
        em = expected_metrics(fabric_dedicated_40g())
        assert em.i_total > em.i_core
        assert em.l_total > 0
        assert 0 < em.pct_iat_within_10ns < 100

    def test_stally_profile_predicts_higher_i(self):
        quiet = expected_metrics(fabric_shared_40g())
        stally = expected_metrics(fabric_dedicated_40g())
        assert stally.i_total > 3 * quiet.i_total
