"""Multi-hop transparency: Choir middleboxes composed in series.

Section 4's premise is that middleboxes are transparent — they can sit on
any link without changing what flows through it.  Transparency must
therefore *compose*: a chain of standby middleboxes behaves like a chain
of links, any one of them can record without perturbing the others, and a
recording taken at hop k replays the stream as hop k saw it.
"""

import numpy as np
import pytest

from repro.core import Trial, compare_trials
from repro.net import Link, PacketArray, TxNicModel
from repro.replay import ChoirNode


def chain(n_hops, rng, stream, record_at=None):
    """Forward a stream through n middleboxes; optionally record at one."""
    nodes = [ChoirNode(f"hop-{k}", TxNicModel(rate_bps=100e9)) for k in range(n_hops)]
    link = Link(rate_bps=100e9, propagation_ns=200.0)
    batch = stream
    recording = None
    for k, node in enumerate(nodes):
        batch = link.traverse(batch)
        if k == record_at:
            batch, recording = node.record(batch, rng)
        else:
            batch = node.forward(batch, rng)
    return batch, recording, nodes


class TestMultiHop:
    def _stream(self, n=2000):
        return PacketArray.uniform(n, 1400, np.arange(n) * 284.0, replayer_id=1)

    def test_chain_preserves_packets_and_order(self, rng):
        out, _, _ = chain(4, rng, self._stream())
        np.testing.assert_array_equal(out.tags, self._stream().tags)
        assert np.all(np.diff(out.times_ns) >= 0)

    def test_each_hop_adds_latency_not_loss(self, rng):
        stream = self._stream()
        prev_last = stream.times_ns[-1]
        for hops in (1, 2, 4):
            out, _, _ = chain(hops, rng, stream)
            assert len(out) == len(stream)
            assert out.times_ns[-1] > prev_last
            prev_last = out.times_ns[-1]

    def test_recording_mid_chain_is_transparent(self, rng):
        """Recording at hop 1 leaves the egress statistically unchanged."""
        stream = self._stream()
        plain, _, _ = chain(3, np.random.default_rng(1), stream)
        taped, rec, _ = chain(3, np.random.default_rng(1), stream, record_at=1)
        assert rec is not None and len(rec) == len(stream)
        # Identical RNG consumption pattern differs slightly (recording
        # draws nothing extra), so compare shape, not bits: same packets,
        # same order, same coarse timing.
        np.testing.assert_array_equal(plain.tags, taped.tags)
        a = Trial(plain.tags, plain.times_ns, label="plain")
        b = Trial(taped.tags, taped.times_ns, label="taped")
        assert compare_trials(a, b).metrics.o == 0.0

    def test_mid_chain_recording_replays_faithfully(self, rng):
        stream = self._stream()
        _, rec, nodes = chain(3, rng, stream, record_at=1)
        out = nodes[1].replay(1e9, rng)
        np.testing.assert_array_equal(out.egress.tags, stream.tags)
        # The replayed stream spans roughly the recording's duration.
        span = out.egress.times_ns[-1] - out.egress.times_ns[0]
        assert span == pytest.approx(rec.duration_ns, rel=0.05)

    def test_two_recordings_same_stream_consistent(self, rng):
        """Recordings at different hops capture the same packet sequence."""
        stream = self._stream()
        _, rec0, _ = chain(3, np.random.default_rng(2), stream, record_at=0)
        _, rec2, _ = chain(3, np.random.default_rng(3), stream, record_at=2)
        np.testing.assert_array_equal(rec0.packets.tags, rec2.packets.tags)
        # Hop 2 sees everything later than hop 0 did.
        assert rec2.packets.times_ns[0] > rec0.packets.times_ns[0]
