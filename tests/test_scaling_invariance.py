"""Duration-scaling invariance: the justification for reduced-scale runs.

DESIGN.md's substitution table claims that shrinking the capture window at
constant rates preserves the normalized metrics (all noise processes are
per-packet or per-time-unit), with the documented exception of the
clock-step share of L (a fixed-size step normalized by a smaller span).
These tests pin that claim, which everything else (fast tests, default
benchmark scale) relies on.
"""

import numpy as np
import pytest

from repro.core import compare_series
from repro.testbeds import Testbed, local_single_replayer
from repro.testbeds.fabric import fabric_shared_40g


def _mean_metrics(profile, seed, n_runs=4):
    trials = Testbed(profile, seed=seed).run_series(n_runs)
    rep = compare_series(trials)
    return {
        "I": rep.values("I").mean(),
        "pct10": rep.pct_iat_within_10ns().mean(),
        "kappa": rep.values("kappa").mean(),
    }


class TestScalingInvariance:
    def test_local_I_and_pct10_invariant(self):
        p = local_single_replayer()
        small = _mean_metrics(p.at_duration(8e6), seed=1)
        large = _mean_metrics(p.at_duration(48e6), seed=2)
        assert small["I"] == pytest.approx(large["I"], rel=0.25)
        assert small["pct10"] == pytest.approx(large["pct10"], abs=2.0)

    def test_fabric_I_invariant(self):
        p = fabric_shared_40g()
        small = _mean_metrics(p.at_duration(8e6), seed=3)
        large = _mean_metrics(p.at_duration(48e6), seed=4)
        assert small["I"] == pytest.approx(large["I"], rel=0.3)

    def test_kappa_stable_across_scale(self):
        p = local_single_replayer()
        small = _mean_metrics(p.at_duration(8e6), seed=5)
        large = _mean_metrics(p.at_duration(48e6), seed=6)
        assert small["kappa"] == pytest.approx(large["kappa"], abs=0.01)

    def test_packet_count_scales_linearly(self):
        p = local_single_replayer()
        n_small = len(Testbed(p.at_duration(5e6), seed=7).run_series(1)[0])
        n_large = len(Testbed(p.at_duration(20e6), seed=7).run_series(1)[0])
        assert n_large == pytest.approx(4 * n_small, rel=0.01)
