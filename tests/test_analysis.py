"""Unit tests for the offline analysis pipeline."""

import numpy as np
import pytest

from repro.analysis import (
    CaptureFormatError,
    TrailerError,
    analyze_directory,
    capture_info,
    format_si,
    join_tags,
    load_series,
    read_capture,
    render_histogram,
    render_metric_rows,
    render_report,
    render_series_table,
    render_table1,
    render_table2,
    save_series,
    split_tags,
    tag_to_trailer,
    trailer_to_tag,
    write_capture,
)
from repro.core import DeltaHistogram, compare_series

from .conftest import comb_trial, make_trial


class TestCaptureFormat:
    def test_roundtrip(self, tmp_path):
        t = make_trial(np.arange(100) * 7.5, label="B")
        t2 = read_capture(write_capture(t, tmp_path / "x.cho"))
        assert t2.label == "B"
        np.testing.assert_array_equal(t2.tags, t.tags)
        np.testing.assert_allclose(t2.times_ns, t.times_ns)

    def test_roundtrip_no_mmap(self, tmp_path):
        t = comb_trial(50, label="A")
        t2 = read_capture(write_capture(t, tmp_path / "x.cho"), mmap=False)
        np.testing.assert_allclose(t2.times_ns, t.times_ns)

    def test_sidecar_meta(self, tmp_path):
        t = make_trial([0.0], label="A")
        t = t.relabel("A")
        t.meta["environment"] = "env-7"
        t2 = read_capture(write_capture(t, tmp_path / "x.cho"))
        assert t2.meta["environment"] == "env-7"

    def test_info_without_payload(self, tmp_path):
        t = comb_trial(10, label="run-Q")
        p = write_capture(t, tmp_path / "x.cho")
        info = capture_info(p)
        assert info["count"] == 10
        assert info["label"] == "run-Q"

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.cho"
        p.write_bytes(b"NOPE" + b"\0" * 28)
        with pytest.raises(CaptureFormatError, match="magic"):
            capture_info(p)

    def test_truncated_header(self, tmp_path):
        p = tmp_path / "bad.cho"
        p.write_bytes(b"CHO1")
        with pytest.raises(CaptureFormatError, match="truncated"):
            capture_info(p)

    def test_truncated_payload(self, tmp_path):
        t = comb_trial(100)
        p = write_capture(t, tmp_path / "x.cho")
        raw = p.read_bytes()
        p.write_bytes(raw[: len(raw) - 64])
        with pytest.raises(CaptureFormatError, match="payload"):
            read_capture(p, mmap=False)

    def test_empty_trial(self, tmp_path):
        t = make_trial([])
        t2 = read_capture(write_capture(t, tmp_path / "e.cho"))
        assert len(t2) == 0


class TestSeriesIO:
    def test_save_load_series(self, tmp_path):
        trials = [comb_trial(20, label=l) for l in "ABC"]
        save_series(trials, tmp_path / "series")
        back = load_series(tmp_path / "series")
        assert [t.label for t in back] == ["A", "B", "C"]

    def test_load_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_series(tmp_path / "nothing")

    def test_analyze_directory(self, tmp_path):
        trials = [comb_trial(50, label=l) for l in "AB"]
        save_series(trials, tmp_path / "s")
        rep = analyze_directory(tmp_path / "s", environment="env")
        assert rep.environment == "env"
        assert rep.pairs[0].kappa == 1.0


class TestTagging:
    def test_split_join_roundtrip(self, rng):
        rids = rng.integers(0, 100, 50)
        seqs = rng.integers(0, 2**40, 50)
        tags = join_tags(rids, seqs)
        r2, s2 = split_tags(tags)
        np.testing.assert_array_equal(r2, rids)
        np.testing.assert_array_equal(s2, seqs)

    def test_join_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            join_tags(np.array([1 << 15]), np.array([0]))
        with pytest.raises(ValueError):
            join_tags(np.array([0]), np.array([1 << 48]))

    def test_trailer_roundtrip(self):
        tag = int(join_tags(np.array([3]), np.array([123456]))[0])
        assert trailer_to_tag(tag_to_trailer(tag)) == tag

    def test_trailer_is_16_bytes(self):
        assert len(tag_to_trailer(42)) == 16

    def test_corrupted_trailer_rejected(self):
        raw = bytearray(tag_to_trailer(42))
        raw[0] ^= 0xFF  # flip bits in the tag body
        with pytest.raises(TrailerError, match="checksum"):
            trailer_to_tag(bytes(raw))

    def test_wrong_length_rejected(self):
        with pytest.raises(TrailerError, match="16 bytes"):
            trailer_to_tag(b"short")


class TestRenderers:
    def test_format_si(self):
        assert format_si(0) == "0"
        assert format_si(5.0) == "5ns"
        assert format_si(-1500.0) == "-1.5us"
        assert format_si(2.5e6) == "2.5ms"
        assert format_si(3e9) == "3s"

    def test_render_histogram_nonempty(self, rng):
        h = DeltaHistogram.from_deltas(rng.normal(0, 100, 500), label="B")
        out = render_histogram(h, title="test:")
        assert "test:" in out
        assert "%" in out

    def test_render_histogram_empty(self):
        h = DeltaHistogram.from_deltas(np.array([]), label="B")
        assert "no packets" in render_histogram(h)

    def test_series_table_requires_shared_bins(self, rng):
        from repro.core import SymlogBins

        h1 = DeltaHistogram.from_deltas(rng.normal(0, 10, 50), SymlogBins())
        h2 = DeltaHistogram.from_deltas(
            rng.normal(0, 10, 50), SymlogBins(linthresh=5.0)
        )
        with pytest.raises(ValueError, match="share bin edges"):
            render_series_table([h1, h2])

    def test_series_table_output(self, rng):
        h = DeltaHistogram.from_deltas(rng.normal(0, 10, 50), label="B")
        out = render_series_table([h])
        assert "delta" in out and "B" in out

    def test_render_metric_rows(self):
        out = render_metric_rows([{"a": 1.0, "b": "x"}, {"a": 2.5e-7, "b": "y"}])
        assert "a" in out and "x" in out and "2.5" in out

    def test_render_report_and_tables(self):
        trials = [comb_trial(30, label=l) for l in "ABC"]
        rep = compare_series(trials, environment="env")
        text = render_report(rep)
        assert "env" in text and "per-run metrics" in text
        assert "Table 1" in render_table1(rep)
        assert "Table 2" in render_table2([rep])
