"""Live observability: streaming sink, counter sampling, /metrics.

The contracts of :mod:`repro.obs.sink` and :mod:`repro.obs.live`, in
the priority order their docstrings declare:

1. **Bounded memory** — a streaming trace holds O(sink capacity) spans
   no matter how long the run: the ring's high-water mark stays flat
   when the span count grows 10×, and anything past capacity is dropped
   *and counted*, never silent.
2. **Self-describing files** — both sink formats end with metadata
   carrying the drop count and high-water mark, and
   ``validate_chrome_trace`` accepts the streamed JSON Array Format and
   surfaces that accounting.
3. **A parsed mid-run scrape** — ``/metrics`` during a live
   :class:`~repro.analysis.streamkappa.KappaMonitor` returns valid
   Prometheus text (checked with the real parser from
   ``scripts/scrape_metrics.py``, not a string match) including
   per-session windowed-κ gauges.
4. **Inertness** — a ``repro monitor`` with the streaming sink, counter
   sampler and metrics server all enabled prints stdout byte-identical
   to the plain run (the PR-4 differential contract extended to the
   live layer).
"""

from __future__ import annotations

import importlib.util
import json
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from .conftest import make_trial, suite_rng
from repro.obs import export, metrics, trace
from repro.obs.live import (
    COUNTER_EVENTS,
    LIVE_GAUGES,
    CounterEventBuffer,
    CounterSampler,
    LabeledGauges,
    MetricsServer,
    prometheus_text,
)
from repro.obs.metrics import histogram_quantile
from repro.obs.sink import SpanSink

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "scrape_metrics", REPO_ROOT / "scripts" / "scrape_metrics.py"
)
scrape_metrics = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(scrape_metrics)
parse_prometheus = scrape_metrics.parse_prometheus


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with tracing off and stores empty."""
    trace.reset()
    metrics.REGISTRY.reset()
    COUNTER_EVENTS.reset()
    LIVE_GAUGES.reset()
    yield
    trace.reset()
    metrics.REGISTRY.reset()
    COUNTER_EVENTS.reset()
    LIVE_GAUGES.reset()


def _mk_span(i: int, *, pid: int = 1000, name: str = "analysis.pair"):
    start = 1_000_000 + i * 1_000
    return trace.SpanRecord(name, start, 500, 400, pid, 1, {"i": i})


# ----------------------------------------------------------------------
# The streaming sink
# ----------------------------------------------------------------------

class TestSpanSink:
    def test_jsonl_round_trip_with_meta(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace.set_meta("seed", 7)
        with SpanSink(path, autostart=False) as sink:
            for i in range(3):
                assert sink.offer_span(_mk_span(i))
            assert sink.offer_counter("pool.tasks_inflight", 2_000_000, 2.0)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [doc["type"] for doc in lines]
        assert kinds == ["span", "span", "span", "counter", "meta"]
        assert lines[0]["name"] == "analysis.pair"
        assert lines[3]["value"] == 2.0
        meta = lines[-1]
        assert meta["seed"] == 7
        assert meta["sink_dropped"] == 0
        assert meta["sink_events_written"] == 4
        assert meta["sink_high_water"] >= 1

    def test_chrome_array_file_validates_with_counters(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = SpanSink(path, autostart=False)
        t0 = sink.origin_ns
        for i in range(4):
            sink.offer_span(_mk_span(i))
        sink.offer_counter("monitor.windows", t0 + 1_000, 1.0)
        sink.offer_counter("monitor.windows", t0 + 2_000, 2.0)
        sink.close()
        summary = export.validate_chrome_trace(
            path,
            require_spans=("analysis.pair",),
            require_counters=("monitor.windows",),
            min_counter_events=2,
        )
        assert summary["n_spans"] == 4
        assert summary["n_counter_events"] == 2
        assert summary["dropped_spans"] == 0
        assert summary["buffer_high_water"] >= 1
        # The file itself is a JSON array (streaming format).
        doc = json.loads(path.read_text())
        assert isinstance(doc, list)
        assert doc[-1]["name"] == "trace_meta"

    def test_format_from_suffix_and_explicit(self, tmp_path):
        assert SpanSink(tmp_path / "a.jsonl", autostart=False).fmt == "jsonl"
        assert SpanSink(tmp_path / "a.json", autostart=False).fmt == "chrome"
        assert SpanSink(tmp_path / "a.out", autostart=False).fmt == "chrome"
        assert (
            SpanSink(tmp_path / "b.out", fmt="jsonl", autostart=False).fmt
            == "jsonl"
        )
        with pytest.raises(ValueError, match="unknown sink format"):
            SpanSink(tmp_path / "c.json", fmt="xml")
        with pytest.raises(ValueError, match="capacity"):
            SpanSink(tmp_path / "d.json", capacity=0)

    def test_backpressure_drops_are_counted_never_silent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = SpanSink(path, capacity=8, autostart=False)
        accepted = sum(sink.offer_span(_mk_span(i)) for i in range(20))
        assert accepted == 8
        assert sink.dropped == 12
        assert sink.high_water == 8
        assert metrics.counter("obs.sink.dropped").value == 12
        sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        spans = [d for d in lines if d["type"] == "span"]
        meta = lines[-1]
        assert len(spans) == 8
        assert meta["sink_dropped"] == 12
        assert meta["sink_high_water"] == 8

    @pytest.mark.parametrize("n", [800, 8_000])
    def test_bounded_memory_flat_at_10x(self, tmp_path, n):
        """Peak queue depth is O(capacity), not O(spans), at 10x length."""
        capacity = 64
        path = tmp_path / f"trace-{n}.jsonl"
        sink = SpanSink(path, capacity=capacity, flush_interval_s=0.001)
        for i in range(n):
            sink.offer_span(_mk_span(i))
        sink.close()
        # The flat-memory contract: however long the trace, the ring
        # never held more than its capacity.
        assert sink.high_water <= capacity
        assert sink.queued == 0
        # Full accounting: every offered span was written or counted.
        assert sink.events_written + sink.dropped == n
        meta = json.loads(path.read_text().splitlines()[-1])
        assert meta["sink_events_written"] == sink.events_written
        assert meta["sink_dropped"] == sink.dropped

    def test_installed_sink_keeps_buffer_empty(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = SpanSink(path, flush_interval_s=0.001)
        trace.enable()
        trace.install_sink(sink)
        try:
            assert trace.active_sink() is sink
            for i in range(50):
                with trace.span("analysis.pair", i=i):
                    pass
            # Spans streamed out; nothing accumulated in process memory.
            assert len(trace.records()) == 0
            assert len(trace.BUFFER) == 0
        finally:
            assert trace.uninstall_sink() is sink
        sink.close()
        spans = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line)["type"] == "span"
        ]
        assert len(spans) == 50

    def test_reset_detaches_but_does_not_close(self, tmp_path):
        sink = SpanSink(tmp_path / "t.jsonl", autostart=False)
        trace.install_sink(sink)
        trace.reset()
        assert trace.active_sink() is None
        assert not sink.closed
        sink.close()

    def test_close_is_idempotent_and_late_offers_drop(self, tmp_path):
        sink = SpanSink(tmp_path / "t.jsonl", autostart=False)
        sink.offer_span(_mk_span(0))
        sink.close()
        sink.close()
        assert not sink.offer_span(_mk_span(1))
        assert sink.dropped == 1

    def test_io_errors_counted_not_raised(self, tmp_path):
        sink = SpanSink(tmp_path / "t.jsonl", autostart=False)

        class _Broken:
            def write(self, _):
                raise OSError("disk full")

            def flush(self):
                raise OSError("disk full")

            def close(self):
                pass

        sink._file.close()
        sink._file = _Broken()
        sink.offer_span(_mk_span(0))
        sink.close()  # must not raise
        assert sink.io_error is not None
        assert sink.dropped == 1
        assert metrics.counter("obs.sink.io_errors").value >= 1


class TestCounterEventBuffer:
    def test_cap_drops_counted(self):
        buf = CounterEventBuffer(max_events=3)
        for i in range(5):
            buf.offer_counter("x", i, float(i))
        assert len(buf) == 3
        assert buf.dropped == 2
        buf.reset()
        assert len(buf) == 0 and buf.dropped == 0


# ----------------------------------------------------------------------
# The counter sampler
# ----------------------------------------------------------------------

class TestCounterSampler:
    def test_emits_only_changed_values(self):
        buf = CounterEventBuffer()
        sampler = CounterSampler(buf, interval_s=60, autostart=False)
        metrics.counter("pool.tasks_submitted").add(3)
        metrics.gauge("pool.tasks_inflight").set(2)
        assert sampler.sample() == 2
        assert sampler.sample() == 0  # nothing changed
        metrics.counter("pool.tasks_submitted").add()
        assert sampler.sample() == 1
        names = [name for name, *_ in buf.events()]
        assert names.count("pool.tasks_submitted") == 2
        assert names.count("pool.tasks_inflight") == 1

    def test_labeled_gauges_become_labeled_tracks(self):
        buf = CounterEventBuffer()
        sampler = CounterSampler(buf, interval_s=60, autostart=False)
        LIVE_GAUGES.set("monitor.window_kappa", {"session": "run1"}, 0.93)
        LIVE_GAUGES.set("monitor.window_kappa", {"session": "run2"}, 0.88)
        sampler.sample()
        names = sorted(name for name, *_ in buf.events())
        assert names == [
            "monitor.window_kappa{session=run1}",
            "monitor.window_kappa{session=run2}",
        ]

    def test_close_takes_a_final_sample(self):
        buf = CounterEventBuffer()
        sampler = CounterSampler(buf, interval_s=3600, autostart=False)
        metrics.counter("monitor.windows").add(5)
        sampler.close()
        assert [e[0] for e in buf.events()] == ["monitor.windows"]
        assert buf.events()[0][2] == 5.0
        sampler.close()  # idempotent
        assert len(buf.events()) == 1

    def test_background_tick_samples_into_target(self):
        buf = CounterEventBuffer()
        metrics.counter("monitor.packets").add(1)
        with CounterSampler(buf, interval_s=0.005) as sampler:
            deadline = time.monotonic() + 2.0
            while not buf.events() and time.monotonic() < deadline:
                time.sleep(0.01)
        assert sampler.samples_emitted >= 1
        assert any(name == "monitor.packets" for name, *_ in buf.events())

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            CounterSampler(CounterEventBuffer(), interval_s=0)

    def test_sampler_timestamps_are_monotonic_per_track(self):
        buf = CounterEventBuffer()
        sampler = CounterSampler(buf, interval_s=60, autostart=False)
        for k in range(4):
            metrics.counter("pool.tasks_submitted").add()
            sampler.sample()
        track = [e for e in buf.events() if e[0] == "pool.tasks_submitted"]
        ts = [e[1] for e in track]
        assert ts == sorted(ts)


class TestLabeledGauges:
    def test_last_write_wins_and_sorted_snapshot(self):
        g = LabeledGauges()
        g.set("m", {"session": "b"}, 1.0)
        g.set("m", {"session": "a"}, 2.0)
        g.set("m", {"session": "a"}, 3.0)
        snap = g.snapshot()
        assert snap == [
            ("m", {"session": "a"}, 3.0),
            ("m", {"session": "b"}, 1.0),
        ]
        assert len(g) == 2
        g.reset()
        assert g.snapshot() == []


# ----------------------------------------------------------------------
# Prometheus exposition: renderer, parser, server
# ----------------------------------------------------------------------

class TestPrometheusText:
    def test_counters_gauges_histograms_parse(self):
        metrics.counter("pool.tasks_submitted").add(7)
        metrics.gauge("pool.workers").set(4)
        h = metrics.histogram("pool.queue_wait_ns")
        for v in (100, 1_000, 100_000):
            h.observe(v)
        text = prometheus_text()
        families = parse_prometheus(text)
        c = families["repro_pool_tasks_submitted_total"]
        assert c["type"] == "counter"
        assert c["samples"][0][2] == 7.0
        g = families["repro_pool_workers"]
        assert g["type"] == "gauge"
        assert g["samples"][0][2] == 4.0
        hist = families["repro_pool_queue_wait_ns"]
        assert hist["type"] == "histogram"
        buckets = {
            labels["le"]: value
            for name, labels, value in hist["samples"]
            if name.endswith("_bucket")
        }
        assert buckets["+Inf"] == 3.0
        # Cumulative counts are non-decreasing in le order.
        finite = sorted(
            (float(le), v) for le, v in buckets.items() if le != "+Inf"
        )
        values = [v for _, v in finite]
        assert values == sorted(values)
        count = next(
            v for name, _, v in hist["samples"] if name.endswith("_count")
        )
        total = next(
            v for name, _, v in hist["samples"] if name.endswith("_sum")
        )
        assert count == 3.0 and total == 101_100.0

    def test_labeled_live_gauges_render_with_escaping(self):
        LIVE_GAUGES.set("monitor.window_kappa", {"session": 'run"1\\x'}, 0.5)
        families = parse_prometheus(prometheus_text())
        ((name, labels, value),) = families["repro_monitor_window_kappa"][
            "samples"
        ]
        assert labels == {"session": 'run"1\\x'}
        assert value == 0.5

    def test_empty_registry_is_valid_exposition(self):
        assert parse_prometheus(prometheus_text()) == {}


class TestMetricsServer:
    def test_metrics_and_healthz_and_404(self):
        metrics.counter("monitor.windows").add(2)
        LIVE_GAUGES.set("monitor.window_kappa", {"session": "r1"}, 0.91)
        trace.set_meta("command", "monitor")
        with MetricsServer(0) as server:
            assert server.port > 0
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                assert resp.status == 200
                assert "text/plain" in resp.headers["Content-Type"]
                families = parse_prometheus(resp.read().decode())
            assert (
                families["repro_monitor_windows_total"]["samples"][0][2] == 2.0
            )
            ((_, labels, value),) = families["repro_monitor_window_kappa"][
                "samples"
            ]
            assert labels == {"session": "r1"} and value == 0.91
            with urllib.request.urlopen(server.url + "/healthz") as resp:
                health = json.loads(resp.read().decode())
            assert health["status"] == "ok"
            assert health["meta"]["command"] == "monitor"
            assert health["counters"]["monitor.windows"] == 2
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/nope")
            assert err.value.code == 404
        server.close()  # idempotent after the context exit

    def test_concurrent_scrapes(self):
        metrics.counter("monitor.packets").add(10)
        errors = []
        with MetricsServer(0) as server:
            def scrape():
                try:
                    with urllib.request.urlopen(server.url + "/metrics") as r:
                        parse_prometheus(r.read().decode())
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=scrape) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert errors == []


# ----------------------------------------------------------------------
# Histogram quantiles (--stats p50/p95/p99)
# ----------------------------------------------------------------------

class TestHistogramQuantile:
    def test_empty_is_zero(self):
        h = metrics.histogram("empty.ns")
        assert histogram_quantile(h.snapshot(), 0.5) == 0.0

    def test_single_observation_is_exact(self):
        h = metrics.histogram("one.ns")
        h.observe(12_345)
        snap = h.snapshot()
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram_quantile(snap, q) == 12_345.0

    def test_quantiles_ordered_and_clamped(self):
        rng = suite_rng(salt=0x11FE)
        h = metrics.histogram("spread.ns")
        values = rng.integers(100, 10_000_000, size=500)
        for v in values:
            h.observe(int(v))
        snap = h.snapshot()
        p50 = histogram_quantile(snap, 0.50)
        p95 = histogram_quantile(snap, 0.95)
        p99 = histogram_quantile(snap, 0.99)
        assert snap["min"] <= p50 <= p95 <= p99 <= snap["max"]
        # A log2-bucket estimate is within one bucket of the truth.
        exact = float(np.quantile(values, 0.5))
        assert p50 <= exact * 2 and p50 >= exact / 2

    def test_rejects_out_of_range(self):
        h = metrics.histogram("x.ns")
        h.observe(10)
        with pytest.raises(ValueError):
            histogram_quantile(h.snapshot(), 1.5)

    def test_stats_table_includes_quantile_line(self):
        h = metrics.histogram("pool.queue_wait_ns")
        for v in (1_000, 2_000, 400_000):
            h.observe(v)
        table = export.stats_table([])
        assert "p50=" in table and "p95=" in table and "p99=" in table


# ----------------------------------------------------------------------
# Mid-run scrape of a live KappaMonitor
# ----------------------------------------------------------------------

def _jittered(base, rng, sigma, label):
    """A run: the baseline plus timing noise, re-sorted to arrival order."""
    times = base + rng.normal(0, sigma, size=base.shape[0])
    order = np.argsort(times, kind="stable")
    tags = np.arange(base.shape[0])[order]
    return make_trial(times[order], tags=tags, label=label)


def _monitor_pair(n=3_000, salt=0xA11CE):
    rng = suite_rng(salt=salt)
    base = np.cumsum(rng.uniform(50, 150, size=n))
    a = make_trial(base, label="A")
    b = _jittered(base, rng, 20, "B")
    return a, b


class TestMonitorLiveGauges:
    def test_mid_run_scrape_shows_per_session_kappa(self):
        from repro.analysis import KappaMonitor

        a, b = _monitor_pair()
        mon = KappaMonitor(10_000.0)  # 10 us windows -> dozens of closes
        half = len(a) // 2
        with MetricsServer(0) as server:
            # First half streamed: windows close, gauges publish.
            mon.feed_baseline("run1", a.tags[:half], a.times_ns[:half])
            mon.feed_run("run1", b.tags[:half], b.times_ns[:half])
            assert mon.window_count("run1") > 0

            # The mid-run scrape: parsed, not string-matched.
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                families = parse_prometheus(resp.read().decode())
            fam = families["repro_monitor_window_kappa"]
            assert fam["type"] == "gauge"
            by_session = {
                labels["session"]: value for _, labels, value in fam["samples"]
            }
            assert set(by_session) == {"run1"}
            assert 0.0 <= by_session["run1"] <= 1.0
            assert (
                families["repro_monitor_windows_total"]["samples"][0][2]
                == float(mon.window_count("run1"))
            )
            assert (
                families["repro_monitor_sessions"]["samples"][0][2] == 1.0
            )
            mid_windows = mon.window_count("run1")

            # Stream the rest; the live view advances.
            mon.feed_baseline("run1", a.tags[half:], a.times_ns[half:])
            mon.feed_run("run1", b.tags[half:], b.times_ns[half:])
            mon.finish("run1")
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                families = parse_prometheus(resp.read().decode())
            assert (
                families["repro_monitor_windows_total"]["samples"][0][2]
                > float(mid_windows)
            )

    def test_monitor_gauges_do_not_change_kappa(self):
        """Publishing live gauges is observation only: κ is bit-identical
        whether or not anything reads them."""
        from repro.analysis import KappaMonitor

        a, b = _monitor_pair(salt=0xBEE)

        def run_monitor():
            mon = KappaMonitor(10_000.0)
            mon.feed_baseline("s", a.tags, a.times_ns)
            reports = mon.feed_run("s", b.tags, b.times_ns)
            reports += mon.finish("s")
            return [r.vector.kappa() for r in reports]

        plain = run_monitor()
        LIVE_GAUGES.reset()
        metrics.REGISTRY.reset()
        with MetricsServer(0) as server:
            with urllib.request.urlopen(server.url + "/healthz"):
                pass
            served = run_monitor()
        assert served == plain


# ----------------------------------------------------------------------
# The CLI differential: full live observability is inert
# ----------------------------------------------------------------------

class TestLiveObservabilityIsInert:
    @pytest.fixture()
    def captures(self, tmp_path):
        from repro.analysis import save_series

        rng = suite_rng(salt=0xD1FF)
        n = 1_500
        base = np.cumsum(rng.uniform(50, 150, size=n))
        trials = [make_trial(base, label="A")]
        for j in range(2):
            trials.append(_jittered(base, rng, 15, f"run{j + 1}"))
        outdir = tmp_path / "caps"
        save_series(trials, outdir)
        return outdir

    def _run_monitor(self, capsys, monkeypatch, captures, extra=()):
        from repro import cli

        for var in (
            "REPRO_TRACE", "REPRO_STREAM_TRACE", "REPRO_METRICS_PORT",
            "REPRO_COUNTER_TICK_MS", "REPRO_METRICS_HOLD_S",
        ):
            monkeypatch.delenv(var, raising=False)
        rc = cli.main(["monitor", str(captures), "--window-ms", "0.01"]
                      + list(extra))
        out = capsys.readouterr().out
        return rc, out

    def test_streamed_and_served_monitor_is_bit_identical(
        self, capsys, monkeypatch, captures, tmp_path
    ):
        rc_plain, out_plain = self._run_monitor(capsys, monkeypatch, captures)
        assert rc_plain == 0
        trace.reset()
        metrics.REGISTRY.reset()
        COUNTER_EVENTS.reset()
        LIVE_GAUGES.reset()

        stream = tmp_path / "live.json"
        rc_live, out_live = self._run_monitor(
            capsys, monkeypatch, captures,
            extra=[
                "--stream-trace", str(stream),
                "--serve-metrics", "0",
                "--counter-tick", "10",
            ],
        )
        assert rc_live == 0
        # The whole point: full live observability changes no output bit.
        assert out_live == out_plain

        # And the streamed artifact is a valid counter-bearing trace.
        summary = export.validate_chrome_trace(
            stream,
            require_spans=("cli.monitor", "analysis.monitor.window"),
            require_counters=("monitor.windows",),
            min_counter_events=1,
        )
        assert summary["dropped_spans"] == 0
        assert "monitor.window_kappa{session=run1}" in summary["counter_names"]

    def test_trace_and_stream_trace_are_mutually_exclusive(
        self, capsys, monkeypatch, captures, tmp_path
    ):
        rc, _ = self._run_monitor(
            capsys, monkeypatch, captures,
            extra=[
                "--trace", str(tmp_path / "a.json"),
                "--stream-trace", str(tmp_path / "b.json"),
            ],
        )
        assert rc == 2

    def test_one_shot_trace_gains_counter_tracks(
        self, capsys, monkeypatch, captures, tmp_path
    ):
        path = tmp_path / "oneshot.json"
        rc, _ = self._run_monitor(
            capsys, monkeypatch, captures,
            extra=["--trace", str(path), "--counter-tick", "10"],
        )
        assert rc == 0
        summary = export.validate_chrome_trace(
            path,
            require_spans=("cli.monitor",),
            require_counters=("monitor.windows",),
            min_counter_events=1,
        )
        assert summary["meta"]["n_counter_events"] >= 1
