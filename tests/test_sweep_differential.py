"""Differential suite: a swept run must equal ``analyze_trials`` *exactly*.

The sweep orchestrator's contract (:mod:`repro.sweep.coordinator`) is the
same bit-identity guarantee the simulation and analysis fan-outs already
carry, extended across process lifetimes: the merged ``sweep.json`` is
byte-identical whether units came from a cold store, a warm store, a
killed-and-resumed sweep, or any job count — and each unit's decoded
report equals the serial ``compare_series`` reference bit-for-bit.
Every assertion here is ``==`` over the same scenario grid the
simulation differential suite uses (quiet single-replayer, reordered
dual-replayer, droppy shared-port under noise).

The store digest is pinned jobs-free and start-method-free: an entry
written by a ``jobs=1`` sweep must fully satisfy a ``jobs=4`` sweep (and
vice versa), and ``REPRO_POOL_START`` must not perturb a digest.

``REPRO_DIFF_JOBS`` (comma-separated, e.g. ``1,2``) restricts the job
counts exercised — CI uses it to split the matrix across runners.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import compare_series
from repro.experiments import runner
from repro.experiments.runner import configure_store, run_scenario_trials
from repro.parallel import shutdown_pool
from repro.sweep import (
    ArtifactStore,
    compute_digest,
    digest_key_doc,
    plan_unit,
    run_sweep,
    write_sweep_report,
)
from repro.sweep.codec import series_report_to_dict
from repro.testbeds import (
    Testbed,
    fabric_shared_40g_noisy,
    local_dual_replayer,
    local_single_replayer,
)

from .test_parallel_differential import assert_series_equal
from .test_sim_differential import assert_trial_equal


def _job_counts() -> list[int]:
    raw = os.environ.get("REPRO_DIFF_JOBS", "1,2,4")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


JOB_COUNTS = _job_counts()
N_RUNS = 3
SEED = 11

#: The differential scenario grid (same shapes as test_sim_differential).
SCENARIOS = {
    "quiet-single": lambda: local_single_replayer().at_duration(3e6),
    "reordered-dual": lambda: local_dual_replayer().at_duration(3e6),
    "droppy-noisy": lambda: fabric_shared_40g_noisy().at_duration(6e6),
}


def _plan():
    return [
        plan_unit(name, SCENARIOS[name](), SEED, N_RUNS)
        for name in sorted(SCENARIOS)
    ]


#: Serial reference reports per scenario: the exact bits the paper
#: drivers get from ``analyze_trials`` (== compare_series at jobs=1).
_reference_cache: dict = {}


def _reference(scenario: str):
    if scenario not in _reference_cache:
        profile = SCENARIOS[scenario]()
        trials = Testbed(profile, seed=SEED).run_series(N_RUNS, jobs=1)
        report = compare_series(trials, environment=profile.name)
        _reference_cache[scenario] = (trials, report)
    return _reference_cache[scenario]


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()
    configure_store(None)


def _sweep_bytes(result, outdir) -> bytes:
    report_path, _ = write_sweep_report(result, outdir)
    return report_path.read_bytes()


class TestSweepDifferential:
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_cold_sweep_matches_analyze_trials(self, jobs, tmp_path):
        """Every swept unit equals the serial reference, bit-for-bit."""
        plan = _plan()
        store = ArtifactStore(tmp_path / "store")
        result = run_sweep(plan, store, jobs=jobs)
        assert result.outcomes == ("miss",) * len(plan)
        for unit, got in zip(plan, result.series):
            want_trials, want_report = _reference(unit.name)
            assert_series_equal(got, want_report)
            assert series_report_to_dict(got) == series_report_to_dict(
                want_report
            )
            # The stored trials are the simulated bits, exactly.
            entry = store.get(unit.digest)
            assert entry is not None and entry.report is not None
            for g, w in zip(entry.trials, want_trials):
                assert_trial_equal(g, w)

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_warm_rerun_byte_identical(self, jobs, tmp_path):
        """A second sweep over the same store is all hits, same bytes."""
        plan = _plan()
        cold = run_sweep(plan, ArtifactStore(tmp_path / "store"), jobs=jobs)
        cold_bytes = _sweep_bytes(cold, tmp_path / "cold")

        warm_store = ArtifactStore(tmp_path / "store")
        warm = run_sweep(plan, warm_store, jobs=jobs)
        assert warm.outcomes == ("hit",) * len(plan)
        assert warm_store.stats.writes == 0  # nothing re-simulated
        assert warm_store.stats.misses == 0
        assert _sweep_bytes(warm, tmp_path / "warm") == cold_bytes

    @pytest.mark.parametrize("jobs", [j for j in JOB_COUNTS if j > 1] or [2])
    def test_kill_then_resume_byte_identical(self, jobs, tmp_path):
        """A partial sweep + resume merges the same bytes as one cold run.

        A sweep killed mid-flight keeps every unit it persisted (units
        publish atomically in completion order); resuming is simply
        sweeping the full plan over the same store.  Model the kill as a
        sweep of a plan prefix.
        """
        plan = _plan()
        cold = run_sweep(plan, ArtifactStore(tmp_path / "a"), jobs=jobs)
        cold_bytes = _sweep_bytes(cold, tmp_path / "cold")

        store = ArtifactStore(tmp_path / "b")
        partial = run_sweep(plan[:1], store, jobs=jobs)
        assert partial.outcomes == ("miss",)
        resumed = run_sweep(plan, ArtifactStore(tmp_path / "b"), jobs=jobs)
        assert resumed.outcomes == ("hit",) + ("miss",) * (len(plan) - 1)
        assert _sweep_bytes(resumed, tmp_path / "resumed") == cold_bytes

    def test_no_resume_recomputes_everything(self, tmp_path):
        """``--no-resume`` ignores (and rewrites) existing entries."""
        plan = _plan()[:1]
        store = ArtifactStore(tmp_path / "store")
        run_sweep(plan, store, jobs=1)
        fresh = ArtifactStore(tmp_path / "store")
        again = run_sweep(plan, fresh, jobs=1, resume=False)
        assert again.outcomes == ("miss",)
        assert fresh.stats.hits == 0

    def test_duplicate_units_compute_once(self, tmp_path):
        unit = _plan()[0]
        store = ArtifactStore(tmp_path / "store")
        result = run_sweep([unit, unit], store, jobs=1)
        assert result.outcomes == ("miss", "miss")
        assert store.stats.writes == 1
        assert series_report_to_dict(result.series[0]) == (
            series_report_to_dict(result.series[1])
        )


class TestDigestIsExecutionShapeFree:
    """Satellite regression: the digest keys content, never execution."""

    def test_key_doc_fields(self):
        """The key document holds only bit-determining values."""
        doc = digest_key_doc(local_single_replayer(), SEED, N_RUNS)
        assert set(doc) == {
            "schema", "analysis", "profile", "seed", "series_index", "n_runs",
        }

    def test_digest_ignores_pool_start_method(self, monkeypatch):
        profile = local_single_replayer().at_duration(3e6)
        want = compute_digest(profile, SEED, N_RUNS)
        for method in ("fork", "spawn", "forkserver"):
            monkeypatch.setenv("REPRO_POOL_START", method)
            assert compute_digest(profile, SEED, N_RUNS) == want
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert compute_digest(profile, SEED, N_RUNS) == want

    def test_jobs1_store_fully_hit_by_jobs4_sweep(self, tmp_path):
        """Entries written at jobs=1 satisfy a jobs=4 sweep, and back."""
        plan = _plan()
        cold = run_sweep(plan, ArtifactStore(tmp_path / "store"), jobs=1)
        cold_bytes = _sweep_bytes(cold, tmp_path / "cold")

        warm_store = ArtifactStore(tmp_path / "store")
        warm = run_sweep(plan, warm_store, jobs=4)
        assert warm.outcomes == ("hit",) * len(plan)
        assert warm_store.stats.misses == 0
        assert _sweep_bytes(warm, tmp_path / "warm") == cold_bytes

    def test_runner_and_sweep_share_entries(self, tmp_path):
        """``run_scenario_trials --store`` feeds and reads the same cache.

        A runner-side simulate (jobs=1) writes a trials-only entry; a
        second runner call at jobs=4 in a "new process" (in-process cache
        cleared) must hit the store instead of re-simulating, and a sweep
        over the same cell upgrades the entry in place.
        """
        from repro.experiments.scenarios import scenario
        from repro.obs import metrics
        from repro.sweep.coordinator import plan_from_scenarios

        store_dir = tmp_path / "store"
        configure_store(str(store_dir))
        try:
            kwargs = dict(duration_scale=0.02, n_runs=2)
            cold = run_scenario_trials("local-single", jobs=1, **kwargs)
            store = runner._persistent_store()
            assert store.stats.writes == 1

            runner._series_cache.clear()  # simulate a fresh process
            before = metrics.REGISTRY.snapshot()["counters"].get(
                "runner.store_hits", 0
            )
            warm = run_scenario_trials("local-single", jobs=4, **kwargs)
            after = metrics.REGISTRY.snapshot()["counters"].get(
                "runner.store_hits", 0
            )
            assert after == before + 1
            for g, w in zip(warm, cold):
                assert_trial_equal(g, w)

            # The sweep reuses the runner's entry: no re-simulation, just
            # an in-place analysis upgrade (still a hit).
            plan = plan_from_scenarios(["local-single"], **kwargs)
            sc = scenario("local-single")
            assert plan[0].digest == compute_digest(
                sc.profile(0.02), sc.seed, 2
            )
            swept = run_sweep(plan, store, jobs=1)
            assert swept.outcomes == ("hit",)
            entry = store.get(plan[0].digest)
            assert entry is not None and entry.report is not None
        finally:
            configure_store(None)
            runner._series_cache.clear()


class TestSweepReportShape:
    def test_report_and_telemetry_schemas(self, tmp_path):
        """sweep.json is deterministic; telemetry extends the bench schema."""
        plan = _plan()[:1]
        result = run_sweep(plan, ArtifactStore(tmp_path / "store"), jobs=1)
        report_path, telemetry_path = write_sweep_report(result, tmp_path / "o")

        report = json.loads(report_path.read_text())
        assert report["kind"] == "sweep-report"
        assert report["n_units"] == 1
        (row,) = report["units"]
        assert row["scenario"] == plan[0].name
        assert row["digest"] == plan[0].digest
        assert set(row["mean"]) >= {"U", "O", "I", "L", "kappa"}
        assert len(row["runs"]) == N_RUNS - 1  # runs vs. the baseline

        telemetry = json.loads(telemetry_path.read_text())
        for field in ("bench", "params", "host", "wall_s", "per_stage"):
            assert field in telemetry  # the benchmarks/_emit.py contract
        assert telemetry["bench"] == "sweep"
        assert telemetry["host"]["usable_cores"] >= 1
        assert telemetry["store"]["writes"] == 1
        assert telemetry["cache"] == {"hits": 0, "misses": 1}
