"""KappaMonitor: live degradation flagging and the bounded-memory claim.

The monitor's job is to watch many sessions' windowed κ and flag the
window where consistency degrades, holding only O(window) state per
session.  These tests pin both halves with fixed seeds and deterministic
thresholds:

* a session whose jitter profile worsens mid-stream is flagged, and the
  flagged window lands within a small bound of the true shift point;
* a stable session is never flagged;
* peak per-session bytes stay flat when the session runs 10× longer —
  the acceptance criterion behind ``benchmarks/bench_streaming_kappa.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.changepoints import detect_series_steps
from repro.analysis.streamkappa import DegradationEvent, KappaMonitor

from .conftest import suite_rng

GAP_NS = 10_000.0
WINDOW_NS = 1e6  # 100 packets per window at GAP_NS


def _session_streams(n: int, salt: int, sigma_late: float, shift_at: float = 0.5):
    """A comb baseline and a jittered run whose σ jumps at ``shift_at``.

    A clean clock *step* cancels in window-local latencies (a constant
    shift moves the window anchor with it), so degradation is modeled the
    way it shows up in window-local metrics: a jitter-variance increase.
    """
    rng = suite_rng(salt)
    base = np.arange(n) * GAP_NS
    tags = np.arange(n, dtype=np.int64)
    cut = int(n * shift_at)
    sigma = np.where(np.arange(n) < cut, 0.005 * GAP_NS, sigma_late * GAP_NS)
    run = np.sort(base + rng.normal(0.0, sigma))
    return tags, base, tags, run


def _feed_all(mon, session, streams, chunk):
    tags_a, times_a, tags_b, times_b = streams
    reports = []
    for lo in range(0, max(len(times_a), len(times_b)), chunk):
        reports += mon.feed_baseline(
            session, tags_a[lo : lo + chunk], times_a[lo : lo + chunk]
        )
        reports += mon.feed_run(
            session, tags_b[lo : lo + chunk], times_b[lo : lo + chunk]
        )
    reports += mon.finish(session)
    return reports


class TestDegradationFlagging:
    def test_mid_stream_jitter_shift_is_flagged_near_the_shift(self):
        n = 4000  # 40 windows; σ jumps at packet 2000 → window 20
        mon = KappaMonitor(WINDOW_NS, min_kappa_step=0.02)
        _feed_all(mon, "degrading", _session_streams(n, 301, sigma_late=0.3), 256)
        events = mon.degraded.get("degrading")
        assert events, "jitter shift was not flagged"
        ev = events[0]
        assert isinstance(ev, DegradationEvent)
        assert ev.session == "degrading"
        # Bounded detection latency: flagged within 3 windows of the shift.
        assert abs(ev.window - 20) <= 3, ev
        assert ev.kappa_step < 0  # a *downward* step
        assert ev.kappa_after < ev.kappa_before

    def test_stable_session_is_not_flagged(self):
        n = 4000
        mon = KappaMonitor(WINDOW_NS, min_kappa_step=0.02)
        # Same construction, but σ never changes.
        _feed_all(
            mon,
            "stable",
            _session_streams(n, 302, sigma_late=0.005),
            256,
        )
        assert mon.window_count("stable") >= 35
        assert "stable" not in mon.degraded

    def test_multiple_sessions_flag_independently(self):
        mon = KappaMonitor(WINDOW_NS, min_kappa_step=0.02)
        degrading = _session_streams(4000, 303, sigma_late=0.3)
        stable = _session_streams(4000, 304, sigma_late=0.005)
        for lo in range(0, 4000, 256):
            for name, s in (("bad", degrading), ("good", stable)):
                mon.feed_baseline(name, s[0][lo : lo + 256], s[1][lo : lo + 256])
                mon.feed_run(name, s[2][lo : lo + 256], s[3][lo : lo + 256])
        mon.finish("bad")
        mon.finish("good")
        assert "bad" in mon.degraded
        assert "good" not in mon.degraded
        assert sorted(mon.sessions) == ["bad", "good"]

    def test_events_are_not_reflagged(self):
        """A step is reported once, not once per subsequent window close."""
        mon = KappaMonitor(WINDOW_NS, min_kappa_step=0.02)
        _feed_all(mon, "s", _session_streams(4000, 305, sigma_late=0.3), 256)
        events = mon.degraded["s"]
        assert len({ev.window for ev in events}) == len(events)


class TestBoundedMemory:
    def test_peak_bytes_flat_as_session_grows_10x(self):
        """O(window), not O(session): 10× the windows, ~the same peak."""
        peaks = {}
        for n in (2000, 20_000):
            mon = KappaMonitor(WINDOW_NS)
            _feed_all(mon, "s", _session_streams(n, 311, sigma_late=0.005), 256)
            assert mon.window_count("s") >= n // 100 - 1
            peaks[n] = mon.peak_bytes("s")
        assert peaks[20_000] <= 1.5 * peaks[2000] + 4096, peaks

    def test_laggard_stream_trips_the_open_window_guard(self):
        """Unbounded buffering is refused, not silently accumulated."""
        mon = KappaMonitor(WINDOW_NS, max_open_windows=8)
        tags_a, times_a, tags_b, times_b = _session_streams(
            4000, 312, sigma_late=0.005
        )
        mon.feed_run("s", tags_b[:100], times_b[:100])  # baseline never arrives
        with pytest.raises(RuntimeError, match="open"):
            mon.feed_run("s", tags_b[100:], times_b[100:])


class TestSessionLifecycle:
    def test_unknown_session_raises(self):
        mon = KappaMonitor(WINDOW_NS)
        with pytest.raises(KeyError):
            mon.finish("nope")
        with pytest.raises(KeyError):
            mon.kappa_history("nope")

    def test_feed_after_finish_raises(self):
        mon = KappaMonitor(WINDOW_NS)
        streams = _session_streams(400, 321, sigma_late=0.005)
        _feed_all(mon, "s", streams, 128)
        with pytest.raises(ValueError, match="finished"):
            mon.feed_run("s", streams[2][:1], streams[3][-1:] + 1e9)

    def test_finish_is_idempotent(self):
        mon = KappaMonitor(WINDOW_NS)
        _feed_all(mon, "s", _session_streams(400, 322, sigma_late=0.005), 128)
        count = mon.window_count("s")
        assert mon.finish("s") == []
        assert mon.window_count("s") == count

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            KappaMonitor(0.0)
        with pytest.raises(ValueError):
            KappaMonitor(WINDOW_NS, min_kappa_step=0.0)
        with pytest.raises(ValueError):
            KappaMonitor(WINDOW_NS, history=4, min_windows=8)
        with pytest.raises(ValueError):
            KappaMonitor(WINDOW_NS, min_windows=2)
        with pytest.raises(ValueError):
            KappaMonitor(WINDOW_NS, max_open_windows=0)


class TestSeriesStepDetector:
    """The unit-agnostic wrapper the monitor runs on its κ ring."""

    def test_detects_a_downward_step_in_unit_scale_series(self):
        series = np.concatenate([np.full(20, 0.98), np.full(20, 0.80)])
        steps = detect_series_steps(series, min_step=0.02)
        assert len(steps) == 1
        assert steps[0].index == 20
        assert steps[0].step_ns == pytest.approx(-0.18)

    def test_ignores_steps_below_threshold(self):
        series = np.concatenate([np.full(20, 0.98), np.full(20, 0.975)])
        assert detect_series_steps(series, min_step=0.02) == []
