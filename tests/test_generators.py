"""Unit tests for the traffic-source substrate."""

import numpy as np
import pytest

from repro.generators import (
    CaptureReplaySource,
    CBRGenerator,
    MoonGenGapControl,
    TCPNoiseGenerator,
    split_by_port,
    split_round_robin,
)
from repro.net import PacketArray, SharedPort
from repro.net.units import rate_to_pps


class TestCBR:
    def test_paper_rate(self):
        gen = CBRGenerator(rate_bps=40e9, packet_bytes=1400)
        assert gen.pps == pytest.approx(rate_to_pps(40e9, 1400))
        assert gen.iat_ns == pytest.approx(280.0)

    def test_packet_count_for_duration(self):
        gen = CBRGenerator(rate_bps=40e9, packet_bytes=1400, jitter_ns=0.0)
        n = gen.n_packets(0.3e9)
        # Paper: ~1.05M packets for 0.3 s at 3.5 Mpps.
        assert 1_000_000 < n < 1_100_000

    def test_ideal_comb_without_jitter(self):
        gen = CBRGenerator(rate_bps=10e9, packet_bytes=1000, jitter_ns=0.0)
        s = gen.generate(1e5)
        gaps = np.diff(s.times_ns)
        np.testing.assert_allclose(gaps, np.full(gaps.shape, gen.iat_ns))

    def test_jitter_preserves_order(self, rng):
        gen = CBRGenerator(rate_bps=40e9, packet_bytes=1400, jitter_ns=50.0)
        s = gen.generate(1e6, rng)
        assert np.all(np.diff(s.times_ns) > 0)

    def test_jitter_requires_rng(self):
        gen = CBRGenerator(rate_bps=40e9)
        with pytest.raises(ValueError, match="rng"):
            gen.generate(1e5)

    def test_mean_rate_with_jitter(self, rng):
        gen = CBRGenerator(rate_bps=40e9, packet_bytes=1400)
        s = gen.generate(10e6, rng)
        measured_pps = (len(s) - 1) / (s.times_ns[-1] - s.times_ns[0]) * 1e9
        assert measured_pps == pytest.approx(gen.pps, rel=0.01)

    def test_start_offset(self, rng):
        gen = CBRGenerator(rate_bps=40e9, jitter_ns=0.0)
        s = gen.generate(1e5, rng, start_ns=5000.0)
        assert s.times_ns[0] == 5000.0


class TestTCPNoise:
    def test_rate_band_paper_shape(self, rng):
        """Section 7.1: 'bounced between 35 and 50, mostly around 40'."""
        gen = TCPNoiseGenerator(n_streams=8, mean_rate_bps=40e9)
        lo, mean, hi = gen.observed_rate_band_gbps(0.3e9, rng)
        # The paper quotes iperf3's 1-second averages (35-50); our band is
        # the instantaneous trajectory, slightly wider at both ends.
        assert 20.0 < lo < mean < hi < 65.0
        assert mean == pytest.approx(40.0, rel=0.1)

    def test_generated_volume_matches_rate(self, rng):
        gen = TCPNoiseGenerator(n_streams=8, mean_rate_bps=40e9)
        s = gen.generate(20e6, rng)
        bits = s.total_bytes * 8
        rate = bits / 20e-3
        assert rate == pytest.approx(40e9, rel=0.25)

    def test_times_sorted(self, rng):
        s = TCPNoiseGenerator().generate(5e6, rng)
        assert np.all(np.diff(s.times_ns) >= 0)

    def test_trains_cluster_packets(self, rng):
        bursty = TCPNoiseGenerator(train_packets=43.0).generate(5e6, rng)
        smooth = TCPNoiseGenerator(train_packets=None).generate(
            5e6, np.random.default_rng(9)
        )
        # Trains make many gaps tiny (line-rate spacing ~121 ns).
        frac_tiny = lambda s: np.mean(np.diff(s.times_ns) < 125.0)
        assert frac_tiny(bursty) > 2 * frac_tiny(smooth)

    def test_more_streams_smoother_aggregate(self, rng):
        few = TCPNoiseGenerator(n_streams=1, mean_rate_bps=40e9)
        many = TCPNoiseGenerator(n_streams=16, mean_rate_bps=40e9)
        _, r_few = few.rate_trajectory(0.3e9, np.random.default_rng(1))
        _, r_many = many.rate_trajectory(0.3e9, np.random.default_rng(2))
        assert np.std(r_many) < np.std(r_few)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TCPNoiseGenerator(n_streams=0)
        with pytest.raises(ValueError):
            TCPNoiseGenerator(train_packets=0.5)


class TestMoonGen:
    def test_min_gap_is_filler_frame(self):
        mg = MoonGenGapControl(rate_bps=100e9)
        assert mg.min_gap_ns() == pytest.approx(64 * 8 / 100e9 * 1e9)

    def test_dedicated_gaps_accurate(self):
        """On owned hardware, gap error is within one filler frame."""
        mg = MoonGenGapControl(rate_bps=100e9)
        gaps = np.full(200, 284.0)
        gaps[0] = 0.0
        res = mg.transmit(np.full(200, 1400), gaps)
        assert np.abs(res.gap_error_ns[1:]).max() <= mg.min_gap_ns()

    def test_shared_port_breaks_gaps(self, rng):
        """Section 9: the saturated-wire assumption fails under co-tenants."""
        mg = MoonGenGapControl(rate_bps=100e9)
        gaps = np.full(500, 284.0)
        gaps[0] = 0.0
        sizes = np.full(500, 1400)
        quiet = mg.transmit(sizes, gaps)
        bg = PacketArray.uniform(
            2000, 1500, np.sort(rng.uniform(0, 500 * 284.0, 2000))
        )
        loud = mg.transmit(
            sizes, gaps, shared_port=SharedPort(rate_bps=100e9), background=bg
        )
        assert np.abs(loud.gap_error_ns[1:]).mean() > 5 * np.abs(
            quiet.gap_error_ns[1:]
        ).mean()

    def test_filler_count_scales_with_gap(self):
        mg = MoonGenGapControl(rate_bps=100e9)
        small = mg.transmit(np.full(10, 1400), np.full(10, 200.0))
        large = mg.transmit(np.full(10, 1400), np.full(10, 2000.0))
        assert large.n_fillers > small.n_fillers


class TestCaptureReplay:
    def _capture(self, n=500):
        return PacketArray.uniform(n, 1400, np.arange(n) * 284.0)

    def test_asap_ignores_gaps(self, rng):
        src = CaptureReplaySource(rate_bps=100e9, policy="asap")
        out = src.replay(self._capture(), rng)
        # Everything back-to-back at wire speed.
        np.testing.assert_allclose(np.diff(out.times_ns), np.full(499, 112.0))

    def test_sleep_pacing_coarse(self, rng):
        src = CaptureReplaySource(rate_bps=100e9, policy="sleep",
                                  timer_granularity_ns=50_000.0)
        out = src.replay(self._capture(), rng)
        err = (out.times_ns - out.times_ns[0]) - np.arange(500) * 284.0
        assert np.abs(err).max() > 1_000.0  # tens of µs of overshoot

    def test_busy_pacing_fine(self, rng):
        src = CaptureReplaySource(rate_bps=100e9, policy="busy",
                                  busy_granularity_ns=40.0)
        out = src.replay(self._capture(), rng)
        gaps = np.diff(out.times_ns)
        assert np.abs(gaps - 284.0).mean() < 60.0

    def test_busy_beats_sleep(self, rng):
        cap = self._capture()
        ref = np.arange(500) * 284.0
        err = {}
        for pol in ("sleep", "busy"):
            src = CaptureReplaySource(rate_bps=100e9, policy=pol)
            out = src.replay(cap, np.random.default_rng(4))
            err[pol] = np.abs((out.times_ns - out.times_ns[0]) - ref).mean()
        assert err["busy"] < err["sleep"] / 10

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            CaptureReplaySource(rate_bps=1e9, policy="warp")

    def test_empty_capture(self, rng):
        src = CaptureReplaySource(rate_bps=1e9)
        assert len(src.replay(self._capture(0), rng)) == 0


class TestSplitter:
    def test_round_robin_partition(self):
        s = PacketArray.uniform(10, 100, np.arange(10, dtype=float))
        parts = split_round_robin(s, 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert sum(len(p) for p in parts) == 10

    def test_tags_carry_replayer_ids(self):
        s = PacketArray.uniform(10, 100, np.arange(10, dtype=float))
        parts = split_round_robin(s, 2)
        assert np.all((parts[0].tags >> 48) == 1)
        assert np.all((parts[1].tags >> 48) == 2)

    def test_times_preserved(self):
        s = PacketArray.uniform(10, 100, np.arange(10, dtype=float))
        parts = split_by_port(s, 2)
        np.testing.assert_allclose(parts[0].times_ns, s.times_ns[0::2])
        np.testing.assert_allclose(parts[1].times_ns, s.times_ns[1::2])

    def test_single_node_passthrough(self):
        s = PacketArray.uniform(5, 100, np.arange(5, dtype=float))
        parts = split_round_robin(s, 1)
        assert len(parts) == 1 and len(parts[0]) == 5

    def test_rejects_zero_nodes(self):
        s = PacketArray.uniform(5, 100, np.arange(5, dtype=float))
        with pytest.raises(ValueError):
            split_round_robin(s, 0)
