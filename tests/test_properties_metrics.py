"""Property-based tests (hypothesis) for the Section-3 metric invariants.

These encode the normalization claims the paper proves informally:
every metric is symmetric, lies in [0, 1], is zero exactly on identical
trials, and the worst-case constructions are actual maxima.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    Trial,
    iat_variation,
    kappa_from_vector,
    latency_variation,
    longest_increasing_subsequence,
    match_trials,
    naive_lcs_length,
    occurrence_ranks,
    ordering_variation,
    uniqueness_variation,
)

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

times_arrays = hnp.arrays(
    np.float64,
    st.integers(min_value=1, max_value=60),
    elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
).map(np.sort)


@st.composite
def trial_pairs(draw):
    """Two trials over a shared small tag universe (overlap is common)."""
    n_a = draw(st.integers(1, 40))
    n_b = draw(st.integers(1, 40))
    tag_pool = draw(st.integers(2, 20))
    tags_a = draw(
        hnp.arrays(np.int64, n_a, elements=st.integers(0, tag_pool))
    )
    tags_b = draw(
        hnp.arrays(np.int64, n_b, elements=st.integers(0, tag_pool))
    )
    t_a = np.sort(
        draw(hnp.arrays(np.float64, n_a, elements=st.floats(0, 1e6, allow_nan=False)))
    )
    t_b = np.sort(
        draw(hnp.arrays(np.float64, n_b, elements=st.floats(0, 1e6, allow_nan=False)))
    )
    return Trial(tags_a, t_a, label="A"), Trial(tags_b, t_b, label="B")


@st.composite
def permutation_pairs(draw):
    """Two trials that are permutations of the same unique packets."""
    n = draw(st.integers(1, 50))
    perm = draw(st.permutations(range(n)))
    t = np.arange(n, dtype=np.float64) * 10.0
    a = Trial(np.arange(n, dtype=np.int64), t, label="A")
    b = Trial(np.asarray(perm, dtype=np.int64), t, label="B")
    return a, b


# --------------------------------------------------------------------------
# Metric invariants
# --------------------------------------------------------------------------


@given(trial_pairs())
@settings(max_examples=150, deadline=None)
def test_uniqueness_symmetric_and_bounded(pair):
    a, b = pair
    u_ab = uniqueness_variation(a, b)
    assert 0.0 <= u_ab <= 1.0
    assert u_ab == uniqueness_variation(b, a)


@given(trial_pairs())
@settings(max_examples=100, deadline=None)
def test_latency_bounded_and_symmetric(pair):
    a, b = pair
    l_ab = latency_variation(a, b)
    assert 0.0 <= l_ab <= 1.0 + 1e-9
    assert abs(l_ab - latency_variation(b, a)) < 1e-12


@given(trial_pairs())
@settings(max_examples=100, deadline=None)
def test_iat_bounded_and_symmetric(pair):
    a, b = pair
    i_ab = iat_variation(a, b)
    assert 0.0 <= i_ab <= 1.0 + 1e-9
    assert abs(i_ab - iat_variation(b, a)) < 1e-12


@given(permutation_pairs())
@settings(max_examples=100, deadline=None)
def test_ordering_bounded_on_permutations(pair):
    a, b = pair
    o = ordering_variation(a, b)
    assert 0.0 <= o <= 1.0 + 1e-9


@given(times_arrays)
@settings(max_examples=80, deadline=None)
def test_identity_gives_all_zero_and_kappa_one(times):
    t = Trial(np.arange(times.shape[0], dtype=np.int64), times)
    assert uniqueness_variation(t, t) == 0.0
    assert ordering_variation(t, t) == 0.0
    assert latency_variation(t, t) == 0.0
    assert iat_variation(t, t) == 0.0


@given(times_arrays, st.floats(-1e9, 1e9, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_shift_invariance_of_I_and_U_and_O(times, shift):
    # Snap to a picosecond grid: sub-attosecond gap structure is not
    # representable after a nanosecond-scale shift (pure float64 effect,
    # irrelevant to the metric semantics under test).
    times = np.round(times, 3)
    shift = round(shift, 3)
    t = Trial(np.arange(times.shape[0], dtype=np.int64), times)
    s = t.shift_ns(shift)
    # Each shifted endpoint is representable only to ulp(|shift| + t), so
    # every gap can be off by a couple of ulps; the tolerance must scale
    # with shift magnitude relative to the Equation-4 denominator (2x the
    # span) or tiny-gap examples fail on pure float64 rounding.
    span2 = 2.0 * (times[-1] - times[0])
    eps_err = 4.0 * np.finfo(np.float64).eps * (abs(shift) + times[-1]) * (
        times.shape[0] - 1
    )
    tol = 1e-9 + (eps_err / span2 if span2 > 0.0 else 0.0)
    assert iat_variation(t, s) < tol
    assert uniqueness_variation(t, s) == 0.0
    assert ordering_variation(t, s) == 0.0


@given(
    st.floats(0, 1), st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)
)
@settings(max_examples=200, deadline=None)
def test_kappa_bounds_and_monotonicity(u, o, l, i):
    k = kappa_from_vector(u, o, l, i)
    assert 0.0 <= k <= 1.0
    # Increasing any component can only decrease kappa.
    k_worse = kappa_from_vector(min(1.0, u + 0.1), o, l, i)
    assert k_worse <= k + 1e-12


# --------------------------------------------------------------------------
# Algorithmic invariants
# --------------------------------------------------------------------------


@given(st.permutations(range(40)))
@settings(max_examples=100, deadline=None)
def test_lis_equals_naive_lcs(perm):
    """Schensted: LIS of the rank sequence == LCS of the permutations."""
    seq = np.asarray(perm)
    lis_len = longest_increasing_subsequence(seq).shape[0]
    assert lis_len == naive_lcs_length(np.arange(seq.shape[0]), seq)


@given(hnp.arrays(np.int64, st.integers(0, 80), elements=st.integers(-50, 50)))
@settings(max_examples=100, deadline=None)
def test_lis_output_is_valid_increasing_subsequence(seq):
    idx = longest_increasing_subsequence(seq)
    if idx.shape[0] > 1:
        assert np.all(np.diff(idx) > 0)
        assert np.all(np.diff(seq[idx]) > 0)


@given(hnp.arrays(np.int64, st.integers(0, 100), elements=st.integers(0, 10)))
@settings(max_examples=100, deadline=None)
def test_occurrence_ranks_make_keys_unique(tags):
    ranks = occurrence_ranks(tags)
    keys = set(zip(tags.tolist(), ranks.tolist()))
    assert len(keys) == tags.shape[0]


@given(trial_pairs())
@settings(max_examples=100, deadline=None)
def test_matching_is_consistent(pair):
    a, b = pair
    m = match_trials(a, b)
    assert m.n_common <= min(len(a), len(b))
    # Matched packets carry equal tags.
    np.testing.assert_array_equal(a.tags[m.idx_a], b.tags[m.idx_b])
    # Indices are unique on both sides (a packet matches at most once).
    assert np.unique(m.idx_a).shape[0] == m.n_common
    assert np.unique(m.idx_b).shape[0] == m.n_common
