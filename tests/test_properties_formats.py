"""Property-based tests for the I/O formats and analysis decompositions.

Complements test_properties_metrics: here hypothesis drives the capture
formats (roundtrip exactness), the streaming path (equivalence with
batch), and the windowed decomposition (exact partition of the metric
numerators).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import read_capture, read_pcap, read_pcapng, stream_compare, write_capture, write_pcap, write_pcapng
from repro.core import (
    Trial,
    compare_trials,
    cumulative_latency_ns,
    iat_deviation_ns,
    windowed_deviation,
)


@st.composite
def small_trials(draw, max_n=60):
    n = draw(st.integers(0, max_n))
    times = np.sort(
        draw(hnp.arrays(np.float64, n,
                        elements=st.floats(0, 1e9, allow_nan=False)))
    ).round(0)
    tags = draw(hnp.arrays(np.int64, n, elements=st.integers(0, 2**40)))
    # Capture formats key packets by tag; make tags unique.
    tags = tags + np.arange(n, dtype=np.int64) * (2**41)
    return Trial(tags, times, label="A")


@st.composite
def aligned_pairs(draw, max_n=80):
    n = draw(st.integers(1, max_n))
    base = np.sort(
        draw(hnp.arrays(np.float64, n,
                        elements=st.floats(0, 1e6, allow_nan=False)))
    )
    jitter = draw(hnp.arrays(np.float64, n,
                             elements=st.floats(-100, 100, allow_nan=False)))
    b_times = np.maximum.accumulate(base + jitter)
    tags = np.arange(n, dtype=np.int64)
    return Trial(tags, base, label="A"), Trial(tags, b_times, label="B")


@given(small_trials())
@settings(max_examples=50, deadline=None)
def test_capture_roundtrip_exact(tmp_path_factory, trial):
    path = tmp_path_factory.mktemp("cap") / "t.cho"
    back = read_capture(write_capture(trial, path))
    np.testing.assert_array_equal(back.tags, trial.tags)
    np.testing.assert_array_equal(back.times_ns, trial.times_ns)


@given(small_trials(max_n=25))
@settings(max_examples=25, deadline=None)
def test_pcap_roundtrip_preserves_identity(tmp_path_factory, trial):
    path = tmp_path_factory.mktemp("pcap") / "t.pcap"
    result = read_pcap(write_pcap(trial, path, frame_bytes=128))
    assert result.n_corrupted == 0
    np.testing.assert_array_equal(np.sort(result.trial.tags), np.sort(trial.tags))
    # Integer-ns timestamps survive exactly.
    np.testing.assert_allclose(
        np.sort(result.trial.times_ns), np.sort(trial.times_ns), atol=0.5
    )


@given(small_trials(max_n=25))
@settings(max_examples=25, deadline=None)
def test_pcapng_roundtrip_preserves_identity(tmp_path_factory, trial):
    path = tmp_path_factory.mktemp("pcapng") / "t.pcapng"
    result = read_pcapng(write_pcapng(trial, path, frame_bytes=128))
    assert result.n_corrupted == 0
    np.testing.assert_array_equal(np.sort(result.trial.tags), np.sort(trial.tags))


@given(aligned_pairs(), st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_streaming_equals_batch_on_aligned_pairs(pair, chunk):
    a, b = pair
    batch = compare_trials(a, b).metrics
    stream = stream_compare(a, b, chunk=chunk)
    assert stream.l == pytest.approx(batch.l, rel=1e-9, abs=1e-15)
    assert stream.i == pytest.approx(batch.i, rel=1e-9, abs=1e-15)


@given(aligned_pairs(), st.floats(10.0, 1e6))
@settings(max_examples=60, deadline=None)
def test_windowed_sums_partition_numerators(pair, window_ns):
    a, b = pair
    w = windowed_deviation(a, b, window_ns=window_ns)
    assert w.sum_abs_latency_ns.sum() == pytest.approx(
        cumulative_latency_ns(a, b), rel=1e-9, abs=1e-9
    )
    assert w.sum_abs_iat_ns.sum() == pytest.approx(
        iat_deviation_ns(a, b), rel=1e-9, abs=1e-9
    )
    assert int(w.n_common.sum()) == len(a)
