"""Unit tests for the Choir control plane."""

import pytest

from repro.replay import ChoirCommand, CommandKind, CommandLog, ControlChannel


class TestControlChannel:
    def test_delivery_time(self):
        ch = ControlChannel(latency_ns=1000.0)
        assert ch.delivery_time(500.0) == 1500.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            ControlChannel(latency_ns=-1.0)


class TestCommandLog:
    def test_commands_delivered_in_order(self):
        log = CommandLog(channel=ControlChannel(latency_ns=100.0))
        log.issue(ChoirCommand(CommandKind.RECORD_START, "r1", issue_ns=0.0))
        log.issue(ChoirCommand(CommandKind.RECORD_STOP, "r1", issue_ns=50.0))
        delivered = log.run()
        assert [c.kind for c in delivered] == [
            CommandKind.RECORD_START,
            CommandKind.RECORD_STOP,
        ]

    def test_schedule_replay_fans_out(self):
        log = CommandLog(channel=ControlChannel(latency_ns=100.0))
        log.schedule_replay(["r1", "r2"], issue_ns=0.0, start_ns=1e6)
        delivered = log.run()
        assert {c.target for c in delivered} == {"r1", "r2"}
        assert all(c.kind is CommandKind.REPLAY_AT for c in delivered)
        assert all(c.param_ns == 1e6 for c in delivered)

    def test_replay_start_must_postdate_delivery(self):
        """The real tool would miss an epoch scheduled in its past."""
        log = CommandLog(channel=ControlChannel(latency_ns=1e6))
        with pytest.raises(ValueError, match="precedes command delivery"):
            log.schedule_replay(["r1"], issue_ns=0.0, start_ns=1000.0)

    def test_in_band_flag_carried(self):
        assert ControlChannel(in_band=True).in_band
        assert not ControlChannel(in_band=False).in_band
