"""Unit tests for validation, OWD analysis, and capture-derived recordings."""

import numpy as np
import pytest

from repro.analysis import owd_series
from repro.core import Trial
from repro.experiments import validate_against_paper
from repro.experiments.validation import ScenarioVerdict, ValidationResult
from repro.net import PacketArray, TxNicModel
from repro.replay import ChoirNode, Replayer, recording_from_trial

from .conftest import comb_trial, make_trial


class TestValidation:
    def test_full_validation_passes(self):
        result = validate_against_paper(duration_scale=0.05, n_runs=3)
        assert result.passed, result.render()
        assert len(result.verdicts) == 9

    def test_render_mentions_every_scenario(self):
        result = validate_against_paper(duration_scale=0.05, n_runs=3)
        text = result.render()
        assert "local-single" in text and "fabric-shared-40g-noisy" in text
        assert "overall: PASS" in text

    def test_tight_tolerance_fails_loudly(self):
        result = validate_against_paper(
            duration_scale=0.05, n_runs=3, kappa_abs_tol=1e-6
        )
        assert not result.passed
        assert any(not v.passed for v in result.verdicts)
        assert "FAIL" in result.render()

    def test_verdict_structure(self):
        result = validate_against_paper(duration_scale=0.05, n_runs=3)
        v = result.verdicts[0]
        assert isinstance(v, ScenarioVerdict)
        assert v.failures == ()

    def test_too_small_scale_rejected(self):
        with pytest.raises(ValueError, match="duration_scale >= 0.05"):
            validate_against_paper(duration_scale=0.01)


class TestOwd:
    def _setup(self, rng, n=500):
        node = ChoirNode("r", TxNicModel(rate_bps=100e9))
        batch = PacketArray.uniform(n, 1400, np.arange(n) * 284.0, replayer_id=1)
        _, rec = node.record(batch, rng)
        out = node.replay(1e9, rng)
        capture = Trial.from_arrival_events(
            out.egress.tags, out.egress.times_ns + 5_000.0  # 5 us path
        )
        return rec, capture

    def test_series_covers_received_packets(self, rng):
        rec, capture = self._setup(rng)
        s = owd_series(rec, capture)
        assert s.n_packets == 500
        # Packets cannot arrive before the (replayed) epoch.
        assert np.all(s.rx_ns > s.tx_ns.min())

    def test_drops_absent_from_series(self, rng):
        rec, capture = self._setup(rng)
        capture2 = Trial(capture.tags[5:], capture.times_ns[5:])
        s = owd_series(rec, capture2)
        assert s.n_packets == 495

    def test_summary_fields(self, rng):
        rec, capture = self._setup(rng)
        summ = owd_series(rec, capture).summary()
        assert summ["n"] == 500
        assert summ["min_ns"] <= summ["p50_ns"] <= summ["p99_ns"] <= summ["max_ns"]

    def test_trend_detects_relative_drift(self):
        # Synthetic: tx at 0..N, rx drifting 100 ppm faster.
        n =10_000
        tx = np.arange(n) * 284.0
        tags = np.arange(n)
        rx = tx * (1 + 100e-6) + 1_000.0
        from repro.replay import Recording, burstify_fixed
        from repro.timing import TSC

        rec = Recording.capture(
            PacketArray(tags, np.full(n, 1400), tx), burstify_fixed(n, 16), tx, TSC()
        )
        s = owd_series(rec, Trial(tags, rx))
        assert s.trend_ppm() == pytest.approx(100.0, rel=0.05)

    def test_empty_overlap(self, rng):
        rec, _ = self._setup(rng, n=10)
        other = make_trial(np.arange(5) * 10.0, tags=9_000_000 + np.arange(5))
        s = owd_series(rec, other)
        assert s.n_packets == 0
        assert s.summary() == {"n": 0}


class TestRecordingFromTrial:
    def test_gap_mode_recovers_bursts(self):
        # A burst-structured capture: 10 bursts of 8.
        times = []
        t = 0.0
        for _ in range(10):
            for _ in range(8):
                times.append(t)
                t += 112.0
            t += 5_000.0
        trial = make_trial(times, label="cap")
        rec = recording_from_trial(trial, burst_mode="gaps")
        assert rec.n_bursts == 10
        np.testing.assert_array_equal(rec.burst_sizes(), np.full(10, 8))

    def test_loop_mode_burstifies_smooth_traffic(self):
        trial = comb_trial(2000, gap_ns=284.0)
        rec = recording_from_trial(trial, burst_mode="loop")
        assert 1 < rec.n_bursts < 2000

    def test_replayable_end_to_end(self, rng):
        trial = comb_trial(1000, gap_ns=284.0)
        rec = recording_from_trial(trial)
        out = Replayer(tx_nic=TxNicModel(rate_bps=100e9)).replay(rec, 1e9, rng)
        assert len(out) == 1000
        np.testing.assert_array_equal(out.egress.tags, trial.tags)

    def test_per_packet_sizes(self):
        trial = comb_trial(4)
        rec = recording_from_trial(trial, sizes=np.array([64, 576, 1500, 64]))
        np.testing.assert_array_equal(rec.packets.sizes, [64, 576, 1500, 64])

    def test_pcap_to_replay_pipeline(self, rng, tmp_path):
        """Full loop: trial -> pcap -> reload -> recording -> replay."""
        from repro.analysis import read_pcap, write_pcap

        trial = comb_trial(200, gap_ns=284.0, label="A")
        reloaded = read_pcap(write_pcap(trial, tmp_path / "t.pcap")).trial
        rec = recording_from_trial(reloaded, burst_mode="loop")
        out = Replayer(tx_nic=TxNicModel(rate_bps=100e9)).replay(rec, 1e9, rng)
        np.testing.assert_array_equal(np.sort(out.egress.tags), np.sort(trial.tags))

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            recording_from_trial(make_trial([]))
        with pytest.raises(ValueError, match="burst_mode"):
            recording_from_trial(comb_trial(5), burst_mode="psychic")
        with pytest.raises(ValueError, match="one entry per packet"):
            recording_from_trial(comb_trial(5), sizes=np.array([100]))
