"""Unit tests for pcapng interoperability."""

import struct

import numpy as np
import pytest

from repro.analysis.pcapng import (
    _BYTE_ORDER_MAGIC,
    _EPB_TYPE,
    _SHB_TYPE,
    read_pcapng,
    write_pcapng,
)
from repro.core import uniqueness_variation

from .conftest import comb_trial, make_trial


class TestRoundtrip:
    def test_roundtrip(self, tmp_path):
        t = comb_trial(300, gap_ns=284.0, label="A")
        result = read_pcapng(write_pcapng(t, tmp_path / "a.pcapng"), label="A")
        assert result.n_frames == 300
        assert result.n_corrupted == 0
        np.testing.assert_array_equal(result.trial.tags, t.tags)
        np.testing.assert_allclose(result.trial.times_ns, t.times_ns, atol=1.0)

    def test_roundtrip_metric_identity(self, tmp_path):
        t = comb_trial(100, label="A")
        back = read_pcapng(write_pcapng(t, tmp_path / "a.pcapng")).trial
        assert uniqueness_variation(t, back) == 0.0

    def test_empty(self, tmp_path):
        result = read_pcapng(write_pcapng(make_trial([]), tmp_path / "e.pcapng"))
        assert result.n_frames == 0
        assert len(result.trial) == 0

    def test_64bit_timestamps(self, tmp_path):
        """Epoch-scale ns timestamps exercise the hi/lo split."""
        t = make_trial([1.7e18, 1.7e18 + 284.0])
        back = read_pcapng(write_pcapng(t, tmp_path / "x.pcapng")).trial
        np.testing.assert_allclose(back.times_ns, t.times_ns, rtol=1e-12)

    def test_negative_times_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unsigned"):
            write_pcapng(make_trial([-1.0]), tmp_path / "x.pcapng")


class TestRobustness:
    def test_not_pcapng_rejected(self, tmp_path):
        p = tmp_path / "bad"
        p.write_bytes(b"\0" * 64)
        with pytest.raises(ValueError, match="not a pcapng"):
            read_pcapng(p)

    def test_unknown_blocks_skipped(self, tmp_path):
        t = comb_trial(5, label="A")
        p = write_pcapng(t, tmp_path / "x.pcapng", frame_bytes=128)
        raw = p.read_bytes()
        # Append a Name Resolution Block (type 4), empty body.
        nrb = struct.pack("<II", 4, 16) + b"\0\0\0\0" + struct.pack("<I", 16)
        p.write_bytes(raw + nrb)
        result = read_pcapng(p)
        assert result.n_skipped_blocks == 1
        assert len(result.trial) == 5

    def test_corrupted_trailer_counted(self, tmp_path):
        t = comb_trial(10, label="A")
        p = write_pcapng(t, tmp_path / "x.pcapng", frame_bytes=128)
        raw = bytearray(p.read_bytes())
        # Corrupt the LAST frame's trailer: it sits right before the
        # final 4-byte trailing length of the last EPB.
        raw[-12] ^= 0xFF
        p.write_bytes(bytes(raw))
        result = read_pcapng(p)
        assert result.n_corrupted == 1
        assert len(result.trial) == 9

    def test_malformed_block_rejected(self, tmp_path):
        t = comb_trial(2)
        p = write_pcapng(t, tmp_path / "x.pcapng")
        raw = bytearray(p.read_bytes())
        struct.pack_into("<I", raw, 4, 7)  # SHB length not multiple of 4
        p.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="malformed"):
            read_pcapng(p)

    def test_undefined_interface_rejected(self, tmp_path):
        # Hand-build: SHB then an EPB referencing interface 0 with no IDB.
        shb = struct.pack("<II", _SHB_TYPE, 28) + struct.pack(
            "<IHHq", _BYTE_ORDER_MAGIC, 1, 0, -1
        ) + struct.pack("<I", 28)
        epb_body = struct.pack("<IIIII", 0, 0, 0, 4, 4) + b"\0\0\0\0"
        epb = struct.pack("<II", _EPB_TYPE, 12 + len(epb_body)) + epb_body + struct.pack(
            "<I", 12 + len(epb_body)
        )
        p = tmp_path / "x.pcapng"
        p.write_bytes(shb + epb)
        with pytest.raises(ValueError, match="undefined interface"):
            read_pcapng(p)

    def test_microsecond_interface_rescaled(self, tmp_path):
        """An IDB without if_tsresol defaults to µs; timestamps rescale."""
        t = make_trial([0.0, 2000.0])  # 2 µs apart
        p = write_pcapng(t, tmp_path / "x.pcapng", frame_bytes=128)
        raw = bytearray(p.read_bytes())
        # Patch the if_tsresol option payload (10^-9 -> 10^-6): the option
        # sits in the IDB right after SHB(28 bytes) + IDB header/fixed.
        idb_off = 28
        # body starts at idb_off+8; options at +8 within body.
        opt_off = idb_off + 8 + 8
        code, olen = struct.unpack_from("<HH", raw, opt_off)
        assert code == 9 and olen == 1
        raw[opt_off + 4] = 6  # 10^-6
        # Rewrite EPB timestamps from ns to µs units.
        off = idb_off + struct.unpack_from("<I", raw, idb_off + 4)[0]
        while off + 12 <= len(raw):
            btype, blen = struct.unpack_from("<II", raw, off)
            if btype == _EPB_TYPE:
                hi, lo = struct.unpack_from("<II", raw, off + 12)
                ts = ((hi << 32) | lo) // 1000
                struct.pack_into("<II", raw, off + 12,
                                 (ts >> 32) & 0xFFFFFFFF, ts & 0xFFFFFFFF)
            off += blen
        p.write_bytes(bytes(raw))
        back = read_pcapng(p).trial
        np.testing.assert_allclose(back.times_ns, [0.0, 2000.0], atol=1000.0)
