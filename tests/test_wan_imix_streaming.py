"""Unit tests for the future-work extensions: WAN segments, IMIX traffic,
streaming analysis."""

import numpy as np
import pytest

from repro.analysis import StreamingComparison, stream_compare
from repro.core import Trial, compare_series, compare_trials
from repro.generators import SIMPLE_IMIX, IMIXGenerator
from repro.net import PacketArray, WanSegment
from repro.testbeds import Testbed
from repro.testbeds.fabric import fabric_intersite_40g

from .conftest import comb_trial


class TestWanSegment:
    def _batch(self, n=2000):
        return PacketArray.uniform(n, 1400, np.arange(n) * 284.0)

    def test_fifo_path_never_reorders(self, rng):
        seg = WanSegment(ecmp_paths=1)
        out = seg.traverse(self._batch(), rng)
        np.testing.assert_array_equal(out.tags, self._batch().tags)
        assert np.all(np.diff(out.times_ns) >= 0)

    def test_propagation_applied(self, rng):
        seg = WanSegment(propagation_ns=10e6, jitter_scale_ns=0.0, jitter_sigma=0.0)
        out = seg.traverse(self._batch(10), rng)
        np.testing.assert_allclose(out.times_ns, self._batch(10).times_ns + 10e6)

    def test_ecmp_can_reorder(self, rng):
        seg = WanSegment(ecmp_paths=4, jitter_scale_ns=0.0, jitter_sigma=0.0,
                         path_skew_ns=100_000.0)
        out = seg.traverse(self._batch(), rng)
        assert seg.can_reorder
        assert not np.array_equal(out.tags, self._batch().tags)
        assert np.all(np.diff(out.times_ns) >= 0)  # output in arrival order

    def test_ecmp_path_assignment_deterministic(self, rng):
        """Same packet rides the same path in every run (hash on tag)."""
        seg = WanSegment(ecmp_paths=4, jitter_scale_ns=0.0, jitter_sigma=0.0)
        a = seg.traverse(self._batch(), np.random.default_rng(1))
        b = seg.traverse(self._batch(), np.random.default_rng(2))
        np.testing.assert_array_equal(a.tags, b.tags)

    def test_empty(self, rng):
        seg = WanSegment()
        assert len(seg.traverse(self._batch(0), rng)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WanSegment(ecmp_paths=0)
        with pytest.raises(ValueError):
            WanSegment(propagation_ns=-1.0)

    def test_intersite_scenario_shapes(self):
        """WAN jitter dominates; ECMP makes the *network* reorder."""
        fifo = fabric_intersite_40g().at_duration(5e6)
        ecmp = fabric_intersite_40g(ecmp_paths=4).at_duration(5e6)
        rep_fifo = compare_series(Testbed(fifo, seed=3).run_series(3))
        rep_ecmp = compare_series(Testbed(ecmp, seed=3).run_series(3))
        assert np.all(rep_fifo.values("O") == 0.0)
        assert np.any(rep_ecmp.values("O") > 0.0)
        assert rep_fifo.values("I").mean() > 0.2  # jitter swamps LAN scales


class TestIMIX:
    def test_mix_statistics(self, rng):
        gen = IMIXGenerator(pps=1e6)
        s = gen.generate(5e6, rng)
        sizes, counts = np.unique(s.sizes, return_counts=True)
        np.testing.assert_array_equal(sizes, [64, 576, 1500])
        # 7:4:1 weights within sampling noise.
        fracs = counts / counts.sum()
        np.testing.assert_allclose(fracs, [7 / 12, 4 / 12, 1 / 12], atol=0.03)

    def test_mean_rate(self, rng):
        gen = IMIXGenerator(pps=1e6)
        assert gen.mean_packet_bytes == pytest.approx((64 * 7 + 576 * 4 + 1500) / 12)
        s = gen.generate(20e6, rng)
        measured_bps = s.total_bytes * 8 / 20e-3
        assert measured_bps == pytest.approx(gen.mean_rate_bps, rel=0.05)

    def test_order_preserved(self, rng):
        s = IMIXGenerator(pps=3.5e6).generate(2e6, rng)
        assert np.all(np.diff(s.times_ns) > 0)

    def test_replayable_through_choir(self, rng):
        """Mixed sizes flow through record/replay without distortion."""
        from repro.net import TxNicModel
        from repro.replay import ChoirNode

        node = ChoirNode("n", TxNicModel(rate_bps=100e9))
        stream = IMIXGenerator(pps=2e6).generate(2e6, rng)
        node.record(stream, rng)
        out = node.replay(1e9, rng)
        np.testing.assert_array_equal(out.egress.sizes, stream.sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            IMIXGenerator(pps=0)
        with pytest.raises(ValueError):
            IMIXGenerator(pps=1.0, mix=((0, 1),))


class TestStreaming:
    def _pair(self, rng, n=50_000):
        base = np.cumsum(rng.exponential(284.0, n))
        a = Trial(np.arange(n), base, label="A")
        b = Trial(
            np.arange(n),
            np.maximum.accumulate(base + rng.normal(0, 8.0, n)),
            label="B",
        )
        return a, b

    def test_matches_batch_exactly(self, rng):
        a, b = self._pair(rng)
        batch = compare_trials(a, b).metrics
        stream = stream_compare(a, b, chunk=4096)
        assert stream.l == pytest.approx(batch.l, rel=1e-12)
        assert stream.i == pytest.approx(batch.i, rel=1e-12)

    def test_chunk_size_irrelevant(self, rng):
        a, b = self._pair(rng, n=10_000)
        r1 = stream_compare(a, b, chunk=1)
        r2 = stream_compare(a, b, chunk=999)
        r3 = stream_compare(a, b, chunk=10_000_000)
        assert r1.i == pytest.approx(r2.i, rel=1e-12)
        assert r2.i == pytest.approx(r3.i, rel=1e-12)

    def test_misalignment_detected(self, rng):
        a, b = self._pair(rng, n=100)
        shuffled = Trial(b.tags[::-1].copy(), b.times_ns, label="B")
        with pytest.raises(ValueError, match="not packet-aligned"):
            stream_compare(a, shuffled)

    def test_length_mismatch_rejected(self, rng):
        a, b = self._pair(rng, n=100)
        with pytest.raises(ValueError, match="aligned"):
            stream_compare(a, b.head(50))

    def test_empty_stream(self):
        sc = StreamingComparison()
        v = sc.result()
        assert v.is_identical
        assert sc.n_packets == 0

    def test_incremental_updates(self, rng):
        a, b = self._pair(rng, n=1000)
        sc = StreamingComparison()
        for lo in range(0, 1000, 100):
            sc.update(a.tags[lo:lo+100], a.times_ns[lo:lo+100],
                      b.tags[lo:lo+100], b.times_ns[lo:lo+100])
        assert sc.n_packets == 1000
        batch = compare_trials(a, b).metrics
        assert sc.result().i == pytest.approx(batch.i, rel=1e-12)
