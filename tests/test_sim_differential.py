"""Differential suite: the simulation fan-out must equal serial *exactly*.

The contract of :class:`repro.parallel.SimFarm` (and of
``Testbed.run_series(jobs=N)`` on top of it) is the same as the analysis
engine's: fan-out never changes a single bit.  Every assertion here is
``==`` / ``np.array_equal`` — never ``approx`` — over a grid of scenario
shapes (quiet single-replayer, reordered dual-replayer merge, droppy
shared-port under background noise) and job counts, covering the trial
packet arrays, the recorded per-run seed keys, the run diagnostics, and
the downstream Section-3 κ reports computed from the trials.

``REPRO_DIFF_JOBS`` (comma-separated, e.g. ``2,4``) restricts the job
counts exercised — CI uses it to split the matrix across runners.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import compare_series
from repro.parallel import shutdown_pool
from repro.testbeds import (
    Testbed,
    fabric_shared_40g_noisy,
    local_dual_replayer,
    local_single_replayer,
)

from .test_parallel_differential import assert_series_equal


def _job_counts() -> list[int]:
    raw = os.environ.get("REPRO_DIFF_JOBS", "1,2,4,8")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


JOB_COUNTS = _job_counts()
N_RUNS = 4
SEED = 11

#: Scenario grid: names -> short-duration profiles covering the
#: structurally distinct simulation paths.
SCENARIOS = {
    # Quiet: one replayer, no background, no drops.
    "quiet-single": lambda: local_single_replayer().at_duration(3e6),
    # Reordered: two replayers merging at the switch interleave substreams.
    "reordered-dual": lambda: local_dual_replayer().at_duration(3e6),
    # Droppy + noisy: shared SR-IOV port under an iperf3 co-tenant.
    "droppy-noisy": lambda: fabric_shared_40g_noisy().at_duration(6e6),
}

#: Serial (jobs=1) reference series per scenario, simulated once.
_reference_cache: dict = {}


def _reference(scenario: str):
    if scenario not in _reference_cache:
        profile = SCENARIOS[scenario]()
        _reference_cache[scenario] = Testbed(profile, seed=SEED).run_series(
            N_RUNS, collect_artifacts=True, jobs=1
        )
    return _reference_cache[scenario]


@pytest.fixture(scope="module", autouse=True)
def _teardown_pool():
    yield
    shutdown_pool()


# -- exact-equality helpers ------------------------------------------------

def assert_trial_equal(got, want):
    assert got.tags.dtype == want.tags.dtype
    assert got.times_ns.dtype == want.times_ns.dtype
    assert np.array_equal(got.tags, want.tags)
    assert np.array_equal(got.times_ns, want.times_ns)
    assert got.label == want.label
    assert got.meta == want.meta


def assert_artifacts_equal(got, want):
    assert_trial_equal(got.trial, want.trial)
    assert got.n_dropped == want.n_dropped
    assert got.n_stalls == want.n_stalls
    assert got.freq_errors_ppm == want.freq_errors_ppm  # tuples of floats: exact
    assert got.start_offsets_ns == want.start_offsets_ns
    assert got.seed_key == want.seed_key


# -- the differential suite ------------------------------------------------

class TestSimulationDifferential:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_series_bit_identical(self, scenario, jobs):
        """run_series(jobs=N) == run_series(jobs=1), bit-for-bit."""
        want_trials, want_arts = _reference(scenario)
        profile = SCENARIOS[scenario]()
        got_trials, got_arts = Testbed(profile, seed=SEED).run_series(
            N_RUNS, collect_artifacts=True, jobs=jobs
        )
        assert len(got_trials) == len(want_trials) == N_RUNS
        for g, w in zip(got_trials, want_trials):
            assert_trial_equal(g, w)
        for g, w in zip(got_arts, want_arts):
            assert_artifacts_equal(g, w)

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("jobs", [j for j in JOB_COUNTS if j > 1] or [2])
    def test_downstream_kappa_reports_identical(self, scenario, jobs):
        """Section-3 reports from fanned-out trials equal the serial ones."""
        want_trials, _ = _reference(scenario)
        profile = SCENARIOS[scenario]()
        got_trials = Testbed(profile, seed=SEED).run_series(N_RUNS, jobs=jobs)
        got = compare_series(got_trials, environment=profile.name)
        want = compare_series(want_trials, environment=profile.name)
        assert_series_equal(got, want)
        for g, w in zip(got.pairs, want.pairs):
            assert g.metrics.kappa() == w.metrics.kappa()

    def test_droppy_scenario_actually_drops(self):
        """The grid is honest: the noisy scenario exercises the drop path."""
        _, arts = _reference("droppy-noisy")
        assert sum(a.n_dropped for a in arts) > 0

    def test_reordered_scenario_uses_two_replayers(self):
        assert SCENARIOS["reordered-dual"]().n_replayers == 2

    def test_seed_keys_recorded(self):
        """Every run's artifact carries its SeedSequence spawn key."""
        _, arts = _reference("quiet-single")
        assert [a.seed_key for a in arts] == [(0, i + 1) for i in range(N_RUNS)]
