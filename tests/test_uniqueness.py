"""Unit tests for the U metric (Equation 1)."""

import numpy as np
import pytest

from repro.core import Trial, uniqueness_variation

from .conftest import comb_trial, make_trial


class TestUniqueness:
    def test_identical_is_zero(self):
        a = comb_trial(10)
        assert uniqueness_variation(a, a) == 0.0

    def test_paper_worked_example(self):
        """Section 3: 10 packets, one dropped in B -> U = 1/19."""
        a = comb_trial(10, label="A")
        b = a.drop_packets([4]).relabel("B")
        assert uniqueness_variation(a, b) == pytest.approx(1.0 / 19.0)

    def test_disjoint_is_one(self):
        a = make_trial([0, 1], tags=[1, 2])
        b = make_trial([0, 1], tags=[3, 4])
        assert uniqueness_variation(a, b) == 1.0

    def test_symmetry(self):
        a = comb_trial(10)
        b = a.drop_packets([0, 5])
        assert uniqueness_variation(a, b) == uniqueness_variation(b, a)

    def test_extra_packets_count(self):
        """An extra packet in B is as inconsistent as a missing one."""
        a = comb_trial(10)
        extra = Trial(
            np.append(a.tags, 999), np.append(a.times_ns, a.end_ns + 1.0)
        )
        assert uniqueness_variation(a, extra) == pytest.approx(1.0 / 21.0)

    def test_both_empty_is_zero(self):
        e = make_trial([])
        assert uniqueness_variation(e, e) == 0.0

    def test_one_empty_is_one(self):
        a = comb_trial(5)
        e = make_trial([])
        assert uniqueness_variation(a, e) == 1.0

    def test_order_and_timing_irrelevant(self):
        """U only sees the packet sets, never order or timestamps."""
        a = make_trial([0, 1, 2], tags=[1, 2, 3])
        b = make_trial([100, 500, 777], tags=[3, 1, 2])
        assert uniqueness_variation(a, b) == 0.0

    def test_range_bounds(self, rng):
        for _ in range(20):
            na, nb = rng.integers(1, 30, 2)
            a = make_trial(np.arange(na, dtype=float), tags=rng.integers(0, 20, na))
            b = make_trial(np.arange(nb, dtype=float), tags=rng.integers(0, 20, nb))
            u = uniqueness_variation(a, b)
            assert 0.0 <= u <= 1.0
