"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Trial


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random source; tests must not depend on global state."""
    return np.random.default_rng(12345)


def make_trial(times, tags=None, label="") -> Trial:
    """Build a trial from times (and optional tags) with minimal ceremony."""
    times = np.asarray(times, dtype=np.float64)
    if tags is None:
        tags = np.arange(times.shape[0], dtype=np.int64)
    return Trial(np.asarray(tags, dtype=np.int64), times, label=label)


def comb_trial(n: int, gap_ns: float = 100.0, start: float = 0.0, label="") -> Trial:
    """An evenly spaced n-packet trial."""
    return make_trial(start + np.arange(n) * gap_ns, label=label)


@pytest.fixture
def comb():
    """Factory fixture for evenly spaced trials."""
    return comb_trial
