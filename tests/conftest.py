"""Shared fixtures and helpers for the test suite.

Reproducibility contract: every randomized suite derives its generator
from :func:`suite_rng`, which seeds from the ``REPRO_TEST_SEED``
environment variable (default 12345 — the suite's historical fixed
seed).  When a test fails, the seed in effect is printed with the
failure report, so a CI differential failure replays locally with::

    REPRO_TEST_SEED=<seed> python -m pytest <nodeid>
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import Trial

#: The suite-wide base seed; override with ``REPRO_TEST_SEED=<int>``.
DEFAULT_TEST_SEED = 12345


def test_seed() -> int:
    """The base seed of this run: ``REPRO_TEST_SEED`` or the default."""
    try:
        return int(os.environ.get("REPRO_TEST_SEED", DEFAULT_TEST_SEED))
    except ValueError:
        return DEFAULT_TEST_SEED


def suite_rng(salt: int = 0) -> np.random.Generator:
    """A generator seeded from the run's base seed plus a per-suite salt.

    Distinct salts decorrelate suites that would otherwise consume the
    same stream; the default salt keeps the historical ``rng`` fixture
    stream (``default_rng(12345)``) byte-identical when no override is
    set.
    """
    base = test_seed()
    return np.random.default_rng(base if salt == 0 else (base, salt))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random source; tests must not depend on global state."""
    return suite_rng()


@pytest.fixture(scope="session", autouse=True)
def _record_seed_in_trace_meta():
    """Stamp the suite seed into the observability run metadata.

    Any trace or stats artifact a test emits (e.g. the pool-telemetry
    round-trip tests) then names the seed that produced it, matching the
    failure-report banner below.
    """
    from repro.obs import trace

    trace.set_meta("test_seed", test_seed())
    yield


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Stamp failing reports with the seed so CI failures replay locally."""
    outcome = yield
    report = outcome.get_result()
    if report.failed and call.when == "call":
        report.sections.append(
            ("reproducibility", f"REPRO_TEST_SEED={test_seed()}")
        )


def make_trial(times, tags=None, label="") -> Trial:
    """Build a trial from times (and optional tags) with minimal ceremony."""
    times = np.asarray(times, dtype=np.float64)
    if tags is None:
        tags = np.arange(times.shape[0], dtype=np.int64)
    return Trial(np.asarray(tags, dtype=np.int64), times, label=label)


def comb_trial(n: int, gap_ns: float = 100.0, start: float = 0.0, label="") -> Trial:
    """An evenly spaced n-packet trial."""
    return make_trial(start + np.arange(n) * gap_ns, label=label)


@pytest.fixture
def comb():
    """Factory fixture for evenly spaced trials."""
    return comb_trial
