"""Unit tests for the I metric (Equation 4)."""

import numpy as np
import pytest

from repro.core import iat_deltas_ns, iat_variation, max_iat_construction

from .conftest import comb_trial, make_trial


class TestIAT:
    def test_identical_is_zero(self):
        a = comb_trial(10)
        assert iat_variation(a, a) == 0.0

    def test_uniform_shift_is_zero(self):
        """Gaps are shift-invariant."""
        a = comb_trial(10)
        assert iat_variation(a, a.shift_ns(1e6)) == 0.0

    def test_uniform_stretch_nonzero(self):
        a = comb_trial(10, gap_ns=100.0)
        b = make_trial(np.arange(10) * 110.0)
        # 9 gaps each off by 10; denominator 900 + 990.
        assert iat_variation(a, b) == pytest.approx(90.0 / 1890.0)

    def test_first_packet_gap_is_zero_by_definition(self):
        """g_X0 = 0 via the t_X0 = t_X(-1) base case."""
        a = make_trial([0.0, 100.0], tags=[7, 8])
        b = make_trial([50.0, 150.0], tags=[7, 8])
        np.testing.assert_allclose(iat_deltas_ns(a, b), [0.0, 0.0])

    def test_gap_uses_full_trial_neighbors(self):
        """g is against the preceding packet of the trial, common or not."""
        a = make_trial([0.0, 100.0, 200.0], tags=[1, 2, 3])
        # In B, an extra packet 9 sits between 1 and 2: tag 2's gap is 40.
        b = make_trial([0.0, 60.0, 100.0, 200.0], tags=[1, 9, 2, 3])
        deltas = iat_deltas_ns(a, b)
        # common packets 1,2,3: gaps A = [0,100,100], B = [0,40,100].
        np.testing.assert_allclose(deltas, [0.0, -60.0, 0.0])

    def test_symmetry(self, rng):
        a = make_trial(np.sort(rng.uniform(0, 1e6, 40)))
        b = make_trial(np.sort(rng.uniform(0, 1e6, 40)))
        assert iat_variation(a, b) == pytest.approx(iat_variation(b, a))

    def test_figure3_construction_attains_one(self):
        for n in (3, 4, 10, 101):
            a, b = max_iat_construction(n)
            assert iat_variation(a, b) == pytest.approx(1.0)

    def test_figure3_rejects_trivial_n(self):
        """The paper notes n = 2 is the trivial single-IAT case."""
        with pytest.raises(ValueError, match="more than 2"):
            max_iat_construction(2)

    def test_bounded_by_one(self, rng):
        for _ in range(20):
            a = make_trial(np.sort(rng.uniform(0, 1e5, 25)))
            b = make_trial(np.sort(rng.uniform(0, 1e5, 25)))
            assert 0.0 <= iat_variation(a, b) <= 1.0 + 1e-12

    def test_no_common_is_zero(self):
        a = make_trial([0.0, 1.0], tags=[1, 2])
        b = make_trial([0.0, 1.0], tags=[3, 4])
        assert iat_variation(a, b) == 0.0

    def test_instantaneous_trials(self):
        a = make_trial([5.0, 5.0], tags=[1, 2])
        assert iat_variation(a, a) == 0.0
