"""Unit tests for the DES loop and the topology graph."""

import networkx as nx
import pytest

from repro.net import EventLoop, Link, NodeRole, Topology


class TestEventLoop:
    def test_fires_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(30.0, lambda l: fired.append("c"))
        loop.schedule(10.0, lambda l: fired.append("a"))
        loop.schedule(20.0, lambda l: fired.append("b"))
        loop.run()
        assert fired == ["a", "b", "c"]
        assert loop.now_ns == 30.0
        assert loop.n_fired == 3

    def test_equal_times_fire_in_schedule_order(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.schedule(7.0, lambda l, i=i: fired.append(i))
        loop.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_handlers_can_schedule(self):
        loop = EventLoop()
        fired = []

        def chain(l):
            fired.append(l.now_ns)
            if len(fired) < 3:
                l.schedule_in(10.0, chain)

        loop.schedule(0.0, chain)
        loop.run()
        assert fired == [0.0, 10.0, 20.0]

    def test_cancel(self):
        loop = EventLoop()
        fired = []
        ev = loop.schedule(5.0, lambda l: fired.append(1))
        ev.cancel()
        loop.run()
        assert fired == []
        assert loop.pending == 0

    def test_until(self):
        loop = EventLoop()
        fired = []
        loop.schedule(5.0, lambda l: fired.append(1))
        loop.schedule(50.0, lambda l: fired.append(2))
        loop.run(until_ns=10.0)
        assert fired == [1]
        assert loop.now_ns == 10.0
        loop.run()
        assert fired == [1, 2]

    def test_rejects_past_schedule(self):
        loop = EventLoop()
        loop.schedule(10.0, lambda l: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule(5.0, lambda l: None)

    def test_event_budget(self):
        loop = EventLoop()

        def forever(l):
            l.schedule_in(1.0, forever)

        loop.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="budget"):
            loop.run(max_events=100)

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule_in(-1.0, lambda l: None)


class TestTopology:
    def _linear(self):
        topo = Topology("t")
        topo.add_node("gen", NodeRole.GENERATOR)
        topo.add_node("sw", NodeRole.SWITCH)
        topo.add_node("rep", NodeRole.REPLAYER)
        topo.add_node("rec", NodeRole.RECORDER)
        link = Link(rate_bps=100e9)
        topo.add_link("gen", "sw", link)
        topo.add_link("sw", "rep", link)
        topo.add_link("sw", "rec", link)
        return topo

    def test_roles(self):
        topo = self._linear()
        assert topo.role_of("gen") == NodeRole.GENERATOR
        assert topo.nodes_with_role(NodeRole.SWITCH) == ["sw"]

    def test_path(self):
        topo = self._linear()
        hops = topo.path("gen", "rec")
        assert [(h.src, h.dst) for h in hops] == [("gen", "sw"), ("sw", "rec")]

    def test_no_path_raises(self):
        topo = self._linear()
        topo.add_node("island", NodeRole.NOISE)
        with pytest.raises(nx.NetworkXNoPath):
            topo.path("gen", "island")

    def test_duplicate_node_rejected(self):
        topo = self._linear()
        with pytest.raises(ValueError):
            topo.add_node("gen", NodeRole.NOISE)

    def test_link_to_unknown_node_rejected(self):
        topo = self._linear()
        with pytest.raises(KeyError):
            topo.add_link("gen", "ghost", Link(rate_bps=1e9))

    def test_bidirectional_by_default(self):
        topo = self._linear()
        assert topo.path("rec", "gen")  # reverse direction exists

    def test_degree_report(self):
        topo = self._linear()
        deg = topo.degree_report()
        assert deg["sw"] == 6  # 3 bidirectional links
