"""Unit tests for repro.net.units."""

import numpy as np
import pytest

from repro.net import units


class TestConversions:
    def test_wire_time_1400B_at_100g(self):
        """1400 B at 100 Gbps = 112 ns on the wire."""
        assert units.wire_time_ns(1400, 100e9) == pytest.approx(112.0)

    def test_wire_time_with_overhead(self):
        t = units.wire_time_ns(64, 10e9, overhead_bytes=units.ETH_OVERHEAD_BYTES)
        assert t == pytest.approx((64 + 20) * 8 / 10e9 * 1e9)

    def test_wire_time_vectorized(self):
        sizes = np.array([700, 1400])
        np.testing.assert_allclose(
            units.wire_time_ns(sizes, 100e9), [56.0, 112.0]
        )

    def test_paper_packet_rate(self):
        """40 Gbps of 1400 B packets = 3.57 Mpps (the paper rounds to 3.52)."""
        pps = units.rate_to_pps(40e9, 1400)
        assert pps == pytest.approx(3.5714e6, rel=1e-3)

    def test_100g_packet_rate(self):
        """100 Gbps of 1400 B = 8.9 Mpps, the paper's peak claim."""
        assert units.rate_to_pps(100e9, 1400) == pytest.approx(8.93e6, rel=1e-3)

    def test_pps_iat_roundtrip(self):
        pps = units.rate_to_pps(40e9, 1400)
        iat = units.pps_to_iat_ns(pps)
        assert iat == pytest.approx(280.0)

    def test_seconds_roundtrip(self):
        assert units.ns_to_seconds(units.seconds_to_ns(0.3)) == pytest.approx(0.3)

    def test_gbps_mpps_helpers(self):
        assert units.gbps(40) == 40e9
        assert units.mpps(3.52) == 3.52e6

    def test_bits(self):
        assert units.bits(10) == 80

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.wire_time_ns(100, 0)
        with pytest.raises(ValueError):
            units.rate_to_pps(0, 100)
        with pytest.raises(ValueError):
            units.rate_to_pps(1e9, 0)
        with pytest.raises(ValueError):
            units.pps_to_iat_ns(0)
