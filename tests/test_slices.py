"""Unit tests for the FABlib-style slice reservation model."""

import pytest

from repro.net import NodeRole
from repro.testbeds import (
    NetworkServiceKind,
    NICKind,
    Site,
    Slice,
    SliceError,
    default_site,
)


def paper_slice() -> Slice:
    """The artifact's three-VM topology over an L2Bridge (Appendix B)."""
    sl = Slice("choir-eval")
    gen = sl.add_node("generator", role=NodeRole.GENERATOR)
    rep = sl.add_node("replayer", role=NodeRole.REPLAYER)
    rec = sl.add_node("recorder", role=NodeRole.RECORDER)
    gen.add_nic("nic0", NICKind.DEDICATED_CX6)
    rep.add_nic("nic0", NICKind.DEDICATED_CX6)
    rep.add_nic("nic1", NICKind.DEDICATED_CX6)
    rec.add_nic("nic0", NICKind.DEDICATED_CX6)
    sl.add_network_service(
        "bridge",
        NetworkServiceKind.L2_BRIDGE,
        [("generator", "nic0"), ("replayer", "nic0"),
         ("replayer", "nic1"), ("recorder", "nic0")],
    )
    return sl


class TestSiteResources:
    def test_default_site_matches_paper_quote(self):
        """'2% of available CPU, 1.1% of RAM and 0.8% of disk space.'"""
        u = default_site().utilization()
        assert u["cores"] == pytest.approx(0.02, abs=0.002)
        assert u["ram"] == pytest.approx(0.011, abs=0.002)
        assert u["disk"] == pytest.approx(0.008, abs=0.002)

    def test_reservation_accounting(self):
        sl = paper_slice()
        before = sl.site.allocated_cores
        sl.submit()
        assert sl.site.allocated_cores == before + 12  # 3 nodes x 4 cores
        sl.delete()
        assert sl.site.allocated_cores == before

    def test_overcommit_rejected(self):
        tiny = Site(total_cores=4, total_ram_gb=8, total_disk_gb=10)
        sl = Slice("big", site=tiny)
        sl.add_node("n", cores=8, ram_gb=4, disk_gb=5)
        with pytest.raises(SliceError, match="cannot satisfy"):
            sl.submit()
        assert not sl.submitted


class TestSliceLifecycle:
    def test_submit_freezes(self):
        sl = paper_slice()
        sl.submit()
        with pytest.raises(SliceError, match="submitted"):
            sl.add_node("late")
        with pytest.raises(SliceError, match="submitted"):
            sl.submit()

    def test_delete_unsubmitted_is_noop(self):
        sl = paper_slice()
        sl.delete()  # no raise
        assert not sl.submitted

    def test_empty_slice_rejected(self):
        with pytest.raises(SliceError, match="empty"):
            Slice("nothing").submit()

    def test_duplicate_node_rejected(self):
        sl = paper_slice()
        with pytest.raises(SliceError, match="already has node"):
            sl.add_node("generator")

    def test_duplicate_nic_rejected(self):
        sl = paper_slice()
        with pytest.raises(SliceError, match="already has NIC"):
            sl.nodes["generator"].add_nic("nic0", NICKind.SHARED_VF)

    def test_service_validates_endpoints(self):
        sl = paper_slice()
        with pytest.raises(SliceError, match="unknown node"):
            sl.add_network_service(
                "bad", NetworkServiceKind.L2_BRIDGE,
                [("ghost", "nic0"), ("generator", "nic0")],
            )
        with pytest.raises(SliceError, match="no NIC"):
            sl.add_network_service(
                "bad2", NetworkServiceKind.L2_BRIDGE,
                [("generator", "nicX"), ("recorder", "nic0")],
            )

    def test_ptp_flag(self):
        sl = paper_slice()
        assert sl.ptp_synchronized  # 23/33 sites; default site has it
        no_ptp = Slice("x", site=Site(ptp_available=False))
        assert not no_ptp.ptp_synchronized


class TestServiceKinds:
    def test_l2ptp_needs_two_endpoints(self):
        sl = paper_slice()
        with pytest.raises(SliceError, match="exactly two"):
            sl.add_network_service(
                "ptp", NetworkServiceKind.L2_PTP,
                [("generator", "nic0"), ("replayer", "nic0"), ("recorder", "nic0")],
            )

    def test_minimum_two_endpoints(self):
        sl = paper_slice()
        with pytest.raises(SliceError, match="at least two"):
            sl.add_network_service(
                "lonely", NetworkServiceKind.L2_BRIDGE, [("generator", "nic0")]
            )

    def test_shared_detection(self):
        sl = paper_slice()
        assert not sl.uses_shared_nics()
        sl.nodes["recorder"].add_nic("vf0", NICKind.SHARED_VF)
        assert sl.uses_shared_nics()


class TestLowering:
    def test_to_topology(self):
        sl = paper_slice()
        sl.submit()
        topo = sl.to_topology()
        # 3 nodes + 1 service switch.
        assert topo.graph.number_of_nodes() == 4
        assert topo.nodes_with_role(NodeRole.SWITCH) == ["svc-bridge"]
        # Path generator -> recorder crosses the bridge.
        hops = topo.path("generator", "recorder")
        assert [h.dst for h in hops] == ["svc-bridge", "recorder"]

    def test_lowering_requires_submit(self):
        with pytest.raises(SliceError, match="submit"):
            paper_slice().to_topology()
