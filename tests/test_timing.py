"""Unit tests for the clock substrate (repro.timing)."""

import numpy as np
import pytest

from repro.timing import (
    FABRIC_PTP,
    LOCAL_PTP,
    TSC,
    NTPServer,
    PTPDomain,
    PTPProfile,
    RealtimeHWStamper,
    SampledClockStamper,
    SystemClock,
    ntp_discipline,
)


class TestTSC:
    def test_period(self):
        assert TSC(frequency_hz=1e9).period_ns == 1.0

    def test_read_is_integer_cycles(self):
        tsc = TSC(frequency_hz=2.4e9)
        c = tsc.read(1000.0)
        assert c == int(1000.0 * 2.4)

    def test_read_vectorized(self):
        tsc = TSC(frequency_hz=1e9)
        out = tsc.read(np.array([0.0, 1.5, 2.0]))
        np.testing.assert_array_equal(out, [0, 1, 2])
        assert out.dtype == np.int64

    def test_roundtrip_within_period(self):
        tsc = TSC(frequency_hz=2.4e9)
        back = tsc.cycles_to_ns(tsc.ns_to_cycles(12345.0))
        assert abs(back - 12345.0) < tsc.period_ns

    def test_quantize(self):
        tsc = TSC(frequency_hz=1e9)
        assert tsc.quantize_ns(5.7) == 5.0

    def test_non_invariant_breaks_conversion(self):
        """The failure mode Choir's invariance requirement avoids."""
        good = TSC(frequency_hz=2e9, invariant=True)
        bad = TSC(frequency_hz=2e9, invariant=False, scale=1.5)
        t = 1_000_000.0
        # Software converts with the nominal frequency either way.
        err_good = abs(float(good.cycles_to_ns(good.read(t))) - t)
        err_bad = abs(float(bad.cycles_to_ns(bad.read(t))) - t)
        assert err_good < 1.0
        assert err_bad > 0.3 * t  # off by the scale factor

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TSC(frequency_hz=0)
        with pytest.raises(ValueError):
            TSC(scale=0)


class TestSystemClock:
    def test_perfect_clock(self):
        c = SystemClock()
        assert c.reading_ns(1234.5) == 1234.5

    def test_offset(self):
        c = SystemClock(offset_ns=100.0)
        assert c.reading_ns(0.0) == 100.0
        assert c.error_at(50.0) == pytest.approx(100.0)

    def test_drift_accumulates(self):
        c = SystemClock(drift_ppm=10.0)
        assert c.error_at(1e9) == pytest.approx(10_000.0)  # 10 us/s

    def test_vectorized_reading(self):
        c = SystemClock(offset_ns=5.0, drift_ppm=1.0)
        t = np.array([0.0, 1e6, 2e6])
        np.testing.assert_allclose(c.reading_ns(t), t + 5.0 + t * 1e-6)

    def test_wander_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            SystemClock(wander_ppm=1.0)

    def test_wander_is_continuous_and_nonzero(self, rng):
        c = SystemClock(wander_ppm=5.0, rng=rng)
        t = np.linspace(0, 1e9, 1000)
        out = c.reading_ns(t)
        err = out - t
        assert np.any(np.abs(err) > 0)
        # Continuity: neighbouring errors stay close relative to the span.
        assert np.max(np.abs(np.diff(err))) < 1e6

    def test_set_offset(self):
        c = SystemClock(offset_ns=99.0)
        c.set_offset(1.0)
        assert c.offset_ns == 1.0


class TestPTP:
    def test_profiles_ordering(self):
        """FABRIC's ptp_kvm chain is coarser than the local grandmaster."""
        assert FABRIC_PTP.residual_ns > LOCAL_PTP.residual_ns

    def test_sync_sets_offsets(self, rng):
        dom = PTPDomain(profile=PTPProfile(residual_ns=50.0), rng=rng)
        c1 = dom.add_follower("a")
        c2 = dom.add_follower("b")
        offsets = dom.synchronize_all()
        assert set(offsets) == {"a", "b"}
        assert c1.offset_ns == offsets["a"]
        assert c2.offset_ns == offsets["b"]

    def test_residuals_have_expected_scale(self, rng):
        dom = PTPDomain(profile=PTPProfile(residual_ns=100.0), rng=rng)
        dom.add_follower("x")
        draws = [dom.synchronize_all()["x"] for _ in range(300)]
        assert np.std(draws) == pytest.approx(100.0, rel=0.2)

    def test_duplicate_follower_rejected(self, rng):
        dom = PTPDomain(profile=LOCAL_PTP, rng=rng)
        dom.add_follower("a")
        with pytest.raises(ValueError):
            dom.add_follower("a")

    def test_worst_pairwise_offset(self, rng):
        dom = PTPDomain(profile=PTPProfile(residual_ns=100.0), rng=rng)
        dom.add_follower("a")
        dom.add_follower("b")
        assert dom.worst_pairwise_offset_ns() == 0.0  # before sync
        dom.synchronize_all()
        assert dom.worst_pairwise_offset_ns() >= 0.0

    def test_path_asymmetry_biases(self, rng):
        dom = PTPDomain(
            profile=PTPProfile(residual_ns=1.0, path_asymmetry_ns=500.0), rng=rng
        )
        dom.add_follower("a")
        offs = [dom.synchronize_all()["a"] for _ in range(50)]
        assert np.mean(offs) == pytest.approx(500.0, abs=5.0)


class TestNTP:
    def test_stratum_scales_error(self, rng):
        c = SystemClock()
        tight = [abs(ntp_discipline(c, NTPServer(stratum=1), rng)) for _ in range(200)]
        loose = [abs(ntp_discipline(c, NTPServer(stratum=5), rng)) for _ in range(200)]
        assert np.mean(loose) > np.mean(tight)

    def test_discipline_steps_clock(self, rng):
        c = SystemClock(offset_ns=1e9)
        off = ntp_discipline(c, NTPServer(), rng)
        assert c.offset_ns == off
        assert abs(off) < 1e9  # stepped away from the wild initial offset

    def test_rejects_bad_stratum(self):
        with pytest.raises(ValueError):
            NTPServer(stratum=0)
        with pytest.raises(ValueError):
            NTPServer(stratum=16)


class TestStampers:
    def test_realtime_monotone(self, rng):
        s = RealtimeHWStamper(jitter_ns=5.0)
        t = np.sort(rng.uniform(0, 1e6, 1000))
        out = s.stamp(t, rng)
        assert np.all(np.diff(out) >= 0)

    def test_realtime_zero_jitter_is_quantization_only(self, rng):
        s = RealtimeHWStamper(jitter_ns=0.0, resolution_ns=10.0)
        out = s.stamp(np.array([15.0, 23.0]), rng)
        np.testing.assert_allclose(out, [10.0, 20.0])

    def test_sampled_monotone(self, rng):
        s = SampledClockStamper()
        t = np.sort(rng.uniform(0, 1e7, 2000))
        out = s.stamp(t, rng)
        assert np.all(np.diff(out) >= 0)

    def test_sampled_error_is_smooth_sawtooth(self, rng):
        """Between anchors the conversion error varies slowly."""
        s = SampledClockStamper(
            jitter_ns=0.0, resolution_ns=0.0, sample_interval_ns=1e6,
            sample_error_ns=50.0,
        )
        t = np.arange(0, 5e6, 1000.0)  # 1 us apart, anchors 1 ms apart
        err = s.stamp(t, rng) - t
        # Per-sample error scale is right...
        assert 5.0 < np.std(err) < 200.0
        # ...but neighbouring packets see nearly the same error.
        assert np.median(np.abs(np.diff(err))) < 1.0

    def test_sampled_empty(self, rng):
        s = SampledClockStamper()
        assert s.stamp(np.array([]), rng).shape == (0,)

    def test_sampled_adds_more_gap_noise_than_realtime(self, rng):
        """Section 8.1's recorder difference, in miniature."""
        t = np.arange(0, 1e6, 284.0)
        e810 = RealtimeHWStamper(jitter_ns=2.0)
        cx6 = SampledClockStamper(jitter_ns=14.5)
        g_real = np.diff(e810.stamp(t, np.random.default_rng(1)))
        g_samp = np.diff(cx6.stamp(t, np.random.default_rng(2)))
        assert np.std(g_samp) > np.std(g_real)
