"""Unit tests for the network substrate: pktarray, link, nic, sriov, switch."""

import numpy as np
import pytest

from repro.net import (
    CISCO_5700,
    TOFINO2,
    Link,
    PacketArray,
    RxNicModel,
    SharedPort,
    SwitchModel,
    TxNicModel,
    make_tags,
)
from repro.timing import RealtimeHWStamper


class TestMakeTags:
    def test_unique(self):
        t = make_tags(1000)
        assert np.unique(t).shape == (1000,)

    def test_replayer_id_in_high_bits(self):
        t = make_tags(10, replayer_id=3)
        assert np.all((t >> 48) == 3)
        np.testing.assert_array_equal(t & ((1 << 48) - 1), np.arange(10))

    def test_different_replayers_never_collide(self):
        a = make_tags(100, replayer_id=1)
        b = make_tags(100, replayer_id=2)
        assert np.intersect1d(a, b).shape == (0,)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            make_tags(-1)
        with pytest.raises(ValueError):
            make_tags(10, replayer_id=1 << 15)
        with pytest.raises(ValueError):
            make_tags(10, start=2**48 - 5)


class TestPacketArray:
    def test_uniform(self):
        b = PacketArray.uniform(5, 1400, np.arange(5) * 100.0)
        assert len(b) == 5
        assert b.total_bytes == 7000

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            PacketArray(np.arange(3), np.full(2, 100), np.zeros(3))

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            PacketArray(np.arange(2), np.array([100, 0]), np.zeros(2))

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            PacketArray.uniform(2, 100, np.array([10.0, 5.0]))

    def test_with_times(self):
        b = PacketArray.uniform(3, 100, np.zeros(3))
        b2 = b.with_times(np.arange(3, dtype=float))
        assert b2.tags is b.tags
        np.testing.assert_allclose(b2.times_ns, [0, 1, 2])

    def test_select(self):
        b = PacketArray.uniform(5, 100, np.arange(5, dtype=float))
        s = b.select(np.array([True, False, True, False, False]))
        assert len(s) == 2
        np.testing.assert_array_equal(s.tags, b.tags[[0, 2]])

    def test_merge_orders_by_time(self):
        a = PacketArray.uniform(3, 100, np.array([0.0, 10.0, 20.0]), replayer_id=1)
        b = PacketArray.uniform(3, 100, np.array([5.0, 15.0, 25.0]), replayer_id=2)
        merged, src = PacketArray.merge([a, b])
        assert np.all(np.diff(merged.times_ns) >= 0)
        np.testing.assert_array_equal(src, [0, 1, 0, 1, 0, 1])

    def test_merge_empty_list(self):
        merged, src = PacketArray.merge([])
        assert len(merged) == 0 and src.shape == (0,)

    def test_merge_stable_on_ties(self):
        a = PacketArray.uniform(1, 100, np.array([5.0]), replayer_id=1)
        b = PacketArray.uniform(1, 100, np.array([5.0]), replayer_id=2)
        _, src = PacketArray.merge([a, b])
        np.testing.assert_array_equal(src, [0, 1])


class TestLink:
    def test_serialization_and_propagation(self):
        link = Link(rate_bps=100e9, propagation_ns=50.0)
        b = PacketArray.uniform(2, 1400, np.array([0.0, 1000.0]))
        out = link.traverse(b)
        np.testing.assert_allclose(out.times_ns, [162.0, 1162.0])

    def test_queue_buildup_at_saturation(self):
        link = Link(rate_bps=100e9, propagation_ns=0.0)
        # Packets arrive every 50 ns but need 112 ns each: queue grows.
        b = PacketArray.uniform(100, 1400, np.arange(100) * 50.0)
        out = link.traverse(b)
        np.testing.assert_allclose(np.diff(out.times_ns), np.full(99, 112.0))

    def test_utilization(self):
        link = Link(rate_bps=100e9)
        b = PacketArray.uniform(100, 1400, np.arange(100) * 280.0)
        assert link.utilization(b) == pytest.approx(0.4, rel=0.05)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Link(rate_bps=0)
        with pytest.raises(ValueError):
            Link(rate_bps=1e9, propagation_ns=-1)


class TestTxNic:
    def test_pull_delay_applied(self, rng):
        nic = TxNicModel(rate_bps=100e9, pull_delay_ns=600.0, pull_jitter=0.0)
        r = nic.transmit(np.zeros(1), np.array([1400]), np.zeros(1, dtype=int), rng)
        assert r.wire_times_ns[0] == pytest.approx(600.0 + 112.0)

    def test_burst_leaves_back_to_back(self, rng):
        nic = TxNicModel(rate_bps=100e9, pull_delay_ns=600.0, pull_jitter=0.3)
        notify = np.zeros(64)
        r = nic.transmit(notify, np.full(64, 1400), np.zeros(64, dtype=int), rng)
        np.testing.assert_allclose(np.diff(r.wire_times_ns), np.full(63, 112.0))

    def test_doorbell_is_last_notify_of_burst(self, rng):
        nic = TxNicModel(rate_bps=100e9, pull_delay_ns=100.0, pull_jitter=0.0)
        notify = np.array([0.0, 500.0])  # one burst, posted over 500 ns
        r = nic.transmit(notify, np.full(2, 1400), np.zeros(2, dtype=int), rng)
        # Pull at 500 + 100; first wire completion 112 later.
        assert r.wire_times_ns[0] == pytest.approx(712.0)

    def test_bursts_serve_in_order(self, rng):
        nic = TxNicModel(rate_bps=100e9, pull_delay_ns=500.0, pull_jitter=0.5)
        notify = np.arange(10, dtype=float) * 10.0
        bids = np.arange(10)  # ten single-packet bursts
        r = nic.transmit(notify, np.full(10, 1400), bids, rng)
        assert np.all(np.diff(r.wire_times_ns) >= 0)

    def test_rejects_decreasing_burst_ids(self, rng):
        nic = TxNicModel(rate_bps=100e9)
        with pytest.raises(ValueError):
            nic.transmit(np.zeros(2), np.full(2, 100), np.array([1, 0]), rng)

    def test_empty(self, rng):
        nic = TxNicModel(rate_bps=100e9)
        r = nic.transmit(np.array([]), np.array([]), np.array([]), rng)
        assert r.n_packets == 0


class TestRxNic:
    def test_uses_stamper(self, rng):
        nic = RxNicModel(stamper=RealtimeHWStamper(jitter_ns=0.0, resolution_ns=1.0))
        out = nic.receive(np.array([10.4, 20.9]), rng)
        np.testing.assert_allclose(out, [10.0, 20.0])


class TestSharedPort:
    def test_no_background_is_plain_fifo(self):
        port = SharedPort(rate_bps=100e9)
        fg = PacketArray.uniform(10, 1400, np.arange(10) * 300.0)
        r = port.traverse(fg)
        assert r.n_dropped == 0
        assert r.background_load == 0.0

    def test_background_delays_foreground(self, rng):
        port = SharedPort(rate_bps=100e9)
        fg = PacketArray.uniform(100, 1400, np.arange(100) * 300.0)
        bg = PacketArray.uniform(
            300, 1500, np.sort(rng.uniform(0, 30_000, 300))
        )
        quiet = port.traverse(fg).batch.times_ns
        loud = port.traverse(fg, bg).batch.times_ns
        assert np.all(loud >= quiet - 1e-9)
        assert loud.mean() > quiet.mean()

    def test_finite_vf_queue_drops(self):
        port = SharedPort(rate_bps=100e9, vf_queue_packets=8)
        # A giant simultaneous burst can't all fit.
        fg = PacketArray.uniform(100, 1400, np.zeros(100))
        r = port.traverse(fg, PacketArray.uniform(1, 1500, np.zeros(1)))
        assert r.n_dropped > 0
        assert len(r.batch) == 100 - r.n_dropped

    def test_output_preserves_foreground_order(self, rng):
        port = SharedPort(rate_bps=100e9)
        fg = PacketArray.uniform(50, 1400, np.arange(50) * 200.0)
        bg = PacketArray.uniform(50, 1500, np.sort(rng.uniform(0, 10_000, 50)))
        out = port.traverse(fg, bg).batch
        np.testing.assert_array_equal(out.tags, fg.tags)
        assert np.all(np.diff(out.times_ns) >= 0)


class TestSwitch:
    def test_fixed_latency(self, rng):
        sw = SwitchModel("t", pipeline_latency_ns=400.0, jitter_ns=0.0,
                         egress_rate_bps=100e9)
        b = PacketArray.uniform(2, 1400, np.array([0.0, 1000.0]))
        out = sw.forward(b, rng)
        np.testing.assert_allclose(out.times_ns, [512.0, 1512.0])

    def test_merge_two_ingress(self, rng):
        sw = TOFINO2
        a = PacketArray.uniform(10, 1400, np.arange(10) * 560.0, replayer_id=1)
        b = PacketArray.uniform(10, 1400, np.arange(10) * 560.0 + 280.0, replayer_id=2)
        out = sw.forward_merged([a, b], rng)
        assert len(out) == 20
        assert np.all(np.diff(out.times_ns) >= 0)

    def test_jitter_never_reorders(self, rng):
        sw = SwitchModel("j", pipeline_latency_ns=100.0, jitter_ns=50.0,
                         egress_rate_bps=100e9)
        b = PacketArray.uniform(500, 1400, np.arange(500) * 120.0)
        out = sw.forward(b, rng)
        assert np.all(np.diff(out.times_ns) >= 0)

    def test_models_exist(self):
        assert TOFINO2.pipeline_latency_ns < CISCO_5700.pipeline_latency_ns

    def test_empty_ingress(self, rng):
        out = TOFINO2.forward_merged([], rng)
        assert len(out) == 0
