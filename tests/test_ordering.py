"""Unit tests for the O metric (Equation 2) and its LIS/edit-script core."""

import numpy as np
import pytest

from repro.core import (
    edit_script,
    longest_increasing_subsequence,
    move_distance_stats,
    naive_lcs_length,
    ordering_variation,
)

from .conftest import comb_trial, make_trial


class TestLIS:
    def test_sorted(self):
        idx = longest_increasing_subsequence(np.arange(10))
        np.testing.assert_array_equal(idx, np.arange(10))

    def test_reversed(self):
        idx = longest_increasing_subsequence(np.arange(10)[::-1].copy())
        assert idx.shape == (1,)

    def test_classic(self):
        seq = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        idx = longest_increasing_subsequence(seq)
        vals = seq[idx]
        assert np.all(np.diff(vals) > 0)
        assert idx.shape[0] == 4  # e.g. 1,4,5,9 or 3,4,5,9 or 1,4,5,6 ...

    def test_empty(self):
        assert longest_increasing_subsequence(np.array([])).shape == (0,)

    def test_single(self):
        np.testing.assert_array_equal(
            longest_increasing_subsequence(np.array([42])), [0]
        )

    def test_strictly_increasing_required(self):
        # Equal elements cannot both be members.
        idx = longest_increasing_subsequence(np.array([2, 2, 2]))
        assert idx.shape == (1,)

    def test_indices_increasing(self, rng):
        for _ in range(10):
            seq = rng.permutation(100)
            idx = longest_increasing_subsequence(seq)
            assert np.all(np.diff(idx) > 0)
            assert np.all(np.diff(seq[idx]) > 0)

    def test_matches_naive_lcs_on_permutations(self, rng):
        """LIS of A-ranks in B order == LCS length (Schensted)."""
        for _ in range(10):
            perm = rng.permutation(60)
            lis_len = longest_increasing_subsequence(perm).shape[0]
            assert lis_len == naive_lcs_length(np.arange(60), perm)


class TestNaiveLCS:
    def test_textbook(self):
        assert naive_lcs_length(list(b"ABCBDAB"), list(b"BDCABA")) == 4

    def test_identical(self):
        assert naive_lcs_length(np.arange(10), np.arange(10)) == 10

    def test_disjoint(self):
        assert naive_lcs_length(np.arange(5), np.arange(10, 15)) == 0


class TestOrderingMetric:
    def test_identical_is_zero(self):
        a = comb_trial(20)
        assert ordering_variation(a, a) == 0.0

    def test_same_order_different_times_is_zero(self):
        a = make_trial([0, 1, 2, 3], tags=[1, 2, 3, 4])
        b = make_trial([5, 50, 500, 5000], tags=[1, 2, 3, 4])
        assert ordering_variation(a, b) == 0.0

    def test_reversal_approaches_one(self):
        n = 500
        a = make_trial(np.arange(n, dtype=float), tags=np.arange(n))
        b = make_trial(np.arange(n, dtype=float), tags=np.arange(n)[::-1].copy())
        o = ordering_variation(a, b)
        assert 0.95 <= o <= 1.0

    def test_single_swap_is_small(self):
        tags = np.arange(100)
        swapped = tags.copy()
        swapped[[10, 11]] = swapped[[11, 10]]
        a = make_trial(np.arange(100, dtype=float), tags=tags)
        b = make_trial(np.arange(100, dtype=float), tags=swapped)
        o = ordering_variation(a, b)
        assert 0.0 < o < 0.01

    def test_in_range(self, rng):
        for _ in range(10):
            n = int(rng.integers(2, 80))
            a = make_trial(np.arange(n, dtype=float), tags=np.arange(n))
            b = make_trial(np.arange(n, dtype=float), tags=rng.permutation(n))
            assert 0.0 <= ordering_variation(a, b) <= 1.0

    def test_non_common_packets_do_not_move(self):
        """d_i = 0 for packets not in A, per the paper."""
        a = make_trial(np.arange(4, dtype=float), tags=[1, 2, 3, 4])
        b = make_trial(np.arange(5, dtype=float), tags=[1, 99, 2, 3, 4])
        assert ordering_variation(a, b) == 0.0

    def test_tiny_trials(self):
        a = make_trial([0.0], tags=[1])
        assert ordering_variation(a, a) == 0.0
        e = make_trial([])
        assert ordering_variation(e, e) == 0.0


class TestEditScript:
    def test_identity_script_empty(self):
        a = comb_trial(10)
        s = edit_script(a, a)
        assert s.n_moved == 0
        assert s.lcs_length == 10
        assert s.deletions_b.shape == (0,)
        assert s.insertions_a.shape == (0,)
        assert s.total_distance() == 0.0

    def test_deletions_and_insertions(self):
        a = make_trial(np.arange(4, dtype=float), tags=[1, 2, 3, 4])
        b = make_trial(np.arange(4, dtype=float), tags=[1, 9, 3, 4])
        s = edit_script(a, b)
        np.testing.assert_array_equal(s.deletions_b, [1])  # tag 9 at b[1]
        np.testing.assert_array_equal(s.insertions_a, [1])  # tag 2 at a[1]

    def test_moved_distances_sign_convention(self):
        """signed d = rank_A - rank_B for moved packets."""
        # B = [2, 0, 1]: LIS of a-ranks-in-b-order [2,0,1] keeps (0,1).
        a = make_trial(np.arange(3, dtype=float), tags=[0, 1, 2])
        b = make_trial(np.arange(3, dtype=float), tags=[2, 0, 1])
        s = edit_script(a, b)
        assert s.n_moved == 1
        # Tag 2: rank 2 in A, rank 0 in B -> +2.
        np.testing.assert_array_equal(s.moved_distances, [2.0])

    def test_block_displacement_distances(self):
        """A block shifted by k positions moves each packet distance k."""
        n, k = 50, 7
        tags = np.arange(n)
        rolled = np.concatenate([tags[k:], tags[:k]])  # block of k moved to end
        a = make_trial(np.arange(n, dtype=float), tags=tags)
        b = make_trial(np.arange(n, dtype=float), tags=rolled)
        s = edit_script(a, b)
        assert s.n_moved == k
        # The first k tags sit k positions later... their rank_A - rank_B:
        # tag j has rank_A=j, rank_B=n-k+j -> -(n-k).
        np.testing.assert_array_equal(np.abs(s.moved_distances), np.full(k, n - k))


class TestMoveDistanceStats:
    def test_empty(self):
        from repro.core import MoveDistanceStats

        s = MoveDistanceStats.from_distances(np.array([]))
        assert s.n_moved == 0
        assert s.mean == 0.0

    def test_stats_fields(self):
        from repro.core import MoveDistanceStats

        s = MoveDistanceStats.from_distances(np.array([-2.0, 4.0]))
        assert s.n_moved == 2
        assert s.mean == pytest.approx(1.0)
        assert s.abs_mean == pytest.approx(3.0)
        assert s.min == -2.0 and s.max == 4.0

    def test_from_trials(self):
        a = make_trial(np.arange(3, dtype=float), tags=[0, 1, 2])
        b = make_trial(np.arange(3, dtype=float), tags=[2, 0, 1])
        s = move_distance_stats(a, b)
        assert s.n_moved == 1
