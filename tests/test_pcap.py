"""Unit tests for pcap interoperability."""

import struct

import numpy as np
import pytest

from repro.analysis import MIN_FRAME_BYTES, read_pcap, write_pcap
from repro.analysis.pcap import _frame_template, _ipv4_checksum
from repro.core import uniqueness_variation

from .conftest import comb_trial, make_trial


class TestFrameSynthesis:
    def test_template_is_valid_ipv4(self):
        f = _frame_template(1400)
        assert f.shape == (1400,)
        assert tuple(f[12:14]) == (0x08, 0x00)  # EtherType IPv4
        assert f[14] == 0x45
        ip_len = (int(f[16]) << 8) | int(f[17])
        assert ip_len == 1400 - 14
        # Checksum verifies: recompute over header with checksum zeroed.
        hdr = f[14:34].copy()
        stored = (int(hdr[10]) << 8) | int(hdr[11])
        hdr[10] = hdr[11] = 0
        assert _ipv4_checksum(hdr) == stored

    def test_rejects_too_small_frames(self):
        with pytest.raises(ValueError, match="frame_bytes"):
            _frame_template(MIN_FRAME_BYTES - 1)


class TestRoundtrip:
    def test_roundtrip_preserves_trial(self, tmp_path):
        t = comb_trial(500, gap_ns=284.0, label="A")
        p = write_pcap(t, tmp_path / "a.pcap")
        result = read_pcap(p, label="A")
        assert result.n_frames == 500
        assert result.n_corrupted == 0
        np.testing.assert_array_equal(result.trial.tags, t.tags)
        np.testing.assert_allclose(result.trial.times_ns, t.times_ns, atol=1.0)

    def test_roundtrip_metrics_identity(self, tmp_path):
        t = comb_trial(200, label="A")
        back = read_pcap(write_pcap(t, tmp_path / "a.pcap")).trial
        assert uniqueness_variation(t, back) == 0.0

    def test_negative_times_rejected(self, tmp_path):
        t = make_trial([-5.0, 10.0])
        with pytest.raises(ValueError, match="unsigned"):
            write_pcap(t, tmp_path / "x.pcap")

    def test_empty_trial(self, tmp_path):
        t = make_trial([])
        result = read_pcap(write_pcap(t, tmp_path / "e.pcap"))
        assert result.n_frames == 0
        assert len(result.trial) == 0

    def test_large_timestamps_roundtrip(self, tmp_path):
        # Multi-second epochs exercise the sec/nsec split.
        t = make_trial([3.5e9, 3.5e9 + 284.0, 7.2e9])
        back = read_pcap(write_pcap(t, tmp_path / "x.pcap")).trial
        np.testing.assert_allclose(back.times_ns, t.times_ns, atol=1.0)


class TestCorruption:
    def test_corrupted_trailer_counted_and_excluded(self, tmp_path):
        t = comb_trial(50, label="A")
        p = write_pcap(t, tmp_path / "a.pcap", frame_bytes=128)
        raw = bytearray(p.read_bytes())
        # Flip a byte inside the 10th packet's trailer.
        rec_len = 16 + 128
        off = 24 + 9 * rec_len + rec_len - 8
        raw[off] ^= 0xFF
        p.write_bytes(bytes(raw))
        result = read_pcap(p)
        assert result.n_corrupted == 1
        assert len(result.trial) == 49
        # The corrupted packet is "missing": U sees it (Section 3).
        assert uniqueness_variation(t, result.trial) == pytest.approx(1 / 99)

    def test_unknown_magic_rejected(self, tmp_path):
        p = tmp_path / "bad.pcap"
        p.write_bytes(struct.pack("<IHHiIII", 0xDEADBEEF, 2, 4, 0, 0, 65535, 1))
        with pytest.raises(ValueError, match="magic"):
            read_pcap(p)

    def test_truncated_record_rejected(self, tmp_path):
        t = comb_trial(5)
        p = write_pcap(t, tmp_path / "x.pcap", frame_bytes=64)
        raw = p.read_bytes()
        p.write_bytes(raw[:-10])
        with pytest.raises(ValueError, match="truncated"):
            read_pcap(p)

    def test_foreign_short_frames_counted(self, tmp_path):
        p = tmp_path / "mixed.pcap"
        header = struct.pack("<IHHiIII", 0xA1B23C4D, 2, 4, 0, 0, 65535, 1)
        # One 8-byte frame: too short for a trailer.
        rec = struct.pack("<IIII", 0, 100, 8, 8) + b"\0" * 8
        p.write_bytes(header + rec)
        result = read_pcap(p)
        assert result.n_foreign == 1
        assert len(result.trial) == 0

    def test_microsecond_magic_accepted(self, tmp_path):
        """Legacy µs-resolution captures parse with scaled timestamps."""
        t = make_trial([0.0, 2000.0])  # 2 µs apart
        p = write_pcap(t, tmp_path / "x.pcap", frame_bytes=64)
        raw = bytearray(p.read_bytes())
        # Rewrite magic to µs and timestamps from ns to µs fields.
        struct.pack_into("<I", raw, 0, 0xA1B2C3D4)
        rec_len = 16 + 64
        for i in range(2):
            off = 24 + i * rec_len
            sec, nsec, incl, orig = struct.unpack_from("<IIII", raw, off)
            struct.pack_into("<IIII", raw, off, sec, nsec // 1000, incl, orig)
        p.write_bytes(bytes(raw))
        back = read_pcap(p).trial
        np.testing.assert_allclose(back.times_ns, [0.0, 2000.0], atol=1000.0)
