"""Unit tests for the compound κ score (Equation 5) and its extensions."""

import math

import numpy as np
import pytest

from repro.core import KappaScaling, MetricVector, kappa_from_vector


class TestMetricVector:
    def test_zero_vector_kappa_one(self):
        v = MetricVector(0, 0, 0, 0)
        assert v.kappa() == 1.0
        assert v.is_identical

    def test_all_ones_kappa_zero(self):
        v = MetricVector(1, 1, 1, 1)
        assert v.magnitude == pytest.approx(2.0)
        assert v.kappa() == pytest.approx(0.0)

    def test_magnitude(self):
        v = MetricVector(0.3, 0.4, 0.0, 0.0)
        assert v.magnitude == pytest.approx(0.5)
        assert v.kappa() == pytest.approx(0.75)

    def test_paper_local_single_example(self):
        """Section 6.1 run B: I 0.0290, L 2.62e-6 -> kappa 0.9855."""
        v = MetricVector(0.0, 0.0, 2.62e-6, 0.0290)
        assert v.kappa() == pytest.approx(0.9855, abs=5e-5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            MetricVector(1.5, 0, 0, 0)
        with pytest.raises(ValueError):
            MetricVector(-0.1, 0, 0, 0)
        with pytest.raises(ValueError):
            MetricVector(np.nan, 0, 0, 0)

    def test_as_array(self):
        v = MetricVector(0.1, 0.2, 0.3, 0.4)
        np.testing.assert_allclose(v.as_array(), [0.1, 0.2, 0.3, 0.4])

    def test_kappa_in_unit_interval(self, rng):
        for _ in range(50):
            u, o, l, i = rng.uniform(0, 1, 4)
            k = kappa_from_vector(u, o, l, i)
            assert 0.0 <= k <= 1.0


class TestKappaScaling:
    def test_identity_matches_plain(self):
        v = MetricVector(0.1, 0.0, 0.2, 0.3)
        assert v.kappa(KappaScaling()) == pytest.approx(v.kappa())

    def test_sublinear_u_amplifies_drops(self):
        """Section 8.2: make the presence of any drops matter more."""
        v = MetricVector(1e-4, 0.0, 0.0, 0.0)
        plain = v.kappa()
        scaled = v.kappa(KappaScaling(u_exponent=0.5))
        assert scaled < plain  # sqrt(1e-4) = 1e-2 >> 1e-4

    def test_weights_shrink_components(self):
        v = MetricVector(0.0, 0.0, 0.0, 0.5)
        down = v.kappa(KappaScaling(i_weight=0.5))
        assert down > v.kappa()

    def test_scaled_kappa_stays_in_range(self, rng):
        s = KappaScaling(u_exponent=0.5, o_exponent=0.5)
        for _ in range(50):
            u, o, l, i = rng.uniform(0, 1, 4)
            assert 0.0 <= MetricVector(u, o, l, i).kappa(s) <= 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            KappaScaling(u_weight=1.5)
        with pytest.raises(ValueError):
            KappaScaling(u_weight=-0.1)
        with pytest.raises(ValueError):
            KappaScaling(i_exponent=0.0)

    def test_apply_returns_components(self):
        s = KappaScaling(u_exponent=0.5, l_weight=0.5)
        u, o, l, i = s.apply(0.04, 0.0, 0.2, 0.1)
        assert u == pytest.approx(0.2)
        assert l == pytest.approx(0.1)
        assert o == 0.0 and i == pytest.approx(0.1)


class TestTableTwoConsistency:
    """κ recomputed from the paper's own Table 2 component values."""

    @pytest.mark.parametrize(
        "u, o, i, l, kappa",
        [
            (0.0, 0.0, 0.0294, 4.27e-6, 0.9853),
            (0.0, 0.0, 0.4996, 3.07e-5, 0.7426),  # largest residual: 0.0076
            (0.0, 0.0, 0.0662, 2.24e-5, 0.9669),
            (0.0, 0.0, 0.1073, 8.20e-6, 0.9463),
            (0.0, 0.0, 0.1105, 2.26e-5, 0.9448),
            (0.0, 0.0, 0.1085, 1.37e-5, 0.9458),
            (1.99e-4, 0.0, 0.5024, 2.04e-5, 0.7488),
        ],
    )
    def test_row_self_consistency(self, u, o, i, l, kappa):
        """Most Table-2 rows satisfy Eq. 5 within rounding of the means.

        (Means of κ over runs differ slightly from κ of mean components;
        the tolerance reflects that.)
        """
        assert kappa_from_vector(u, o, l, i) == pytest.approx(kappa, abs=0.011)
