"""Property tests for the shard/merge algebra of :mod:`repro.parallel`.

Seeded ``numpy`` randomness only (no hypothesis): each test draws its
cases from a fixed-seed Generator, so failures replay deterministically.
The properties pinned here are the ones ``partials.py`` claims in its
exactness model: shard-partition invariance, merge order-invariance,
adjacency-respecting associativity/commutativity of ``combine``, and the
[0, 1] range of κ after any merge — plus the prefix-patience merge law
``ordershard.py`` rests on: folding blocks through any reassociation
(one pass, pairwise prefixes, random split points) yields the identical
serial patience state.  Randomized suites seed from ``REPRO_TEST_SEED``
via :func:`tests.conftest.suite_rng`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SymlogBins, compare_trials
from repro.core.matching import match_trials
from repro.parallel import (
    ParallelComparator,
    ShardPlan,
    ShardPlanner,
    ShmArena,
    compute_shard_partial,
    merge_partials,
)

from .conftest import make_trial, suite_rng


BINS = SymlogBins()
WITHIN = 10.0


def noisy_pair(rng: np.random.Generator, n: int):
    """A droppy, jittered (baseline, run) pair with some duplicate tags."""
    tags = rng.integers(0, max(2, n // 3), size=n).astype(np.int64)
    times = np.cumsum(rng.exponential(50.0, size=n))
    a = make_trial(times, tags)
    keep = rng.random(n) > 0.1
    bt = times[keep] + rng.normal(0.0, 120.0, size=int(keep.sum()))
    order = np.argsort(bt, kind="stable")
    b = make_trial(bt[order], tags[keep][order])
    return a, b


def shard_inputs(a, b):
    """The (times, idx) arrays a shard worker sees, plus n_common."""
    m = match_trials(a, b)
    return a.times_ns, b.times_ns, m.idx_a, m.idx_b, m.n_common


def partial_over(args, lo, hi):
    ta, tb, ia, ib, _ = args
    return compute_shard_partial(ta, tb, ia, ib, lo, hi, BINS, WITHIN)


def random_partition(rng: np.random.Generator, n: int) -> list[tuple[int, int]]:
    """Random contiguous tiling of [0, n) into 1..min(n, 6) shards."""
    k = int(rng.integers(1, min(n, 6) + 1))
    cuts = (
        np.sort(rng.choice(np.arange(1, n), size=k - 1, replace=False))
        if k > 1
        else np.empty(0, dtype=np.int64)
    )
    edges = [0, *cuts.tolist(), n]
    return list(zip(edges[:-1], edges[1:]))


def assert_merged_equal(got, want):
    assert got.n_common == want.n_common
    assert got.iat_within == want.iat_within
    assert np.array_equal(got.iat_counts, want.iat_counts)
    assert np.array_equal(got.lat_counts, want.lat_counts)
    assert np.array_equal(got.dlat, want.dlat)
    assert np.array_equal(got.diat, want.diat)


class TestPartitionInvariance:
    def test_any_partition_merges_to_whole(self):
        """merge(partition) == the single-shard computation, exactly."""
        rng = np.random.default_rng(424242)
        for _ in range(25):
            a, b = noisy_pair(rng, int(rng.integers(20, 200)))
            args = shard_inputs(a, b)
            n = args[-1]
            whole = merge_partials([partial_over(args, 0, n)], n, BINS)
            for _ in range(4):
                parts = [partial_over(args, lo, hi)
                         for lo, hi in random_partition(rng, n)]
                assert_merged_equal(merge_partials(parts, n, BINS), whole)

    def test_merge_is_order_invariant(self):
        rng = np.random.default_rng(7)
        a, b = noisy_pair(rng, 150)
        args = shard_inputs(a, b)
        n = args[-1]
        parts = [partial_over(args, lo, hi) for lo, hi in random_partition(rng, n)]
        want = merge_partials(parts, n, BINS)
        for _ in range(5):
            shuffled = [parts[i] for i in rng.permutation(len(parts))]
            assert_merged_equal(merge_partials(shuffled, n, BINS), want)


class TestCombineAlgebra:
    def _three(self, rng):
        a, b = noisy_pair(rng, 90)
        args = shard_inputs(a, b)
        n = args[-1]
        c1, c2 = sorted(rng.choice(np.arange(1, n), size=2, replace=False).tolist())
        return (
            partial_over(args, 0, c1),
            partial_over(args, c1, c2),
            partial_over(args, c2, n),
            args,
            n,
        )

    def test_combine_equals_direct_computation(self):
        rng = np.random.default_rng(99)
        p1, p2, p3, args, n = self._three(rng)
        direct = partial_over(args, p1.lo, p2.hi)
        combined = p1.combine(p2)
        assert combined.lo == direct.lo and combined.hi == direct.hi
        assert combined.iat_within == direct.iat_within
        assert np.array_equal(combined.iat_counts, direct.iat_counts)
        assert np.array_equal(combined.lat_counts, direct.lat_counts)
        assert np.array_equal(combined.dlat, direct.dlat)
        assert np.array_equal(combined.diat, direct.diat)

    def test_combine_associative(self):
        rng = np.random.default_rng(100)
        p1, p2, p3, _, _ = self._three(rng)
        left = p1.combine(p2).combine(p3)
        right = p1.combine(p2.combine(p3))
        assert left.lo == right.lo and left.hi == right.hi
        assert left.iat_within == right.iat_within
        assert np.array_equal(left.iat_counts, right.iat_counts)
        assert np.array_equal(left.lat_counts, right.lat_counts)
        assert np.array_equal(left.dlat, right.dlat)
        assert np.array_equal(left.diat, right.diat)

    def test_combine_commutative_on_adjacent(self):
        """Argument order is irrelevant; ranges decide the row order."""
        rng = np.random.default_rng(101)
        p1, p2, _, _, _ = self._three(rng)
        ab, ba = p1.combine(p2), p2.combine(p1)
        assert ab.lo == ba.lo and ab.hi == ba.hi
        assert np.array_equal(ab.dlat, ba.dlat)
        assert np.array_equal(ab.diat, ba.diat)
        assert np.array_equal(ab.iat_counts, ba.iat_counts)

    def test_combine_rejects_nonadjacent(self):
        rng = np.random.default_rng(102)
        p1, _, p3, _, _ = self._three(rng)
        with pytest.raises(ValueError, match="adjacent"):
            p1.combine(p3)

    def test_merge_rejects_bad_tilings(self):
        rng = np.random.default_rng(103)
        p1, p2, p3, _, n = self._three(rng)
        with pytest.raises(ValueError, match="tile"):
            merge_partials([p1, p3], n, BINS)  # gap
        with pytest.raises(ValueError, match="tile"):
            merge_partials([p1, p1.combine(p2)], n, BINS)  # overlap
        with pytest.raises(ValueError, match="n_common"):
            merge_partials([p1, p2], n, BINS)  # short of n


class TestPrefixPatienceAssociativity:
    """The merge law behind :mod:`repro.parallel.ordershard`: folding
    block states left-to-right is invariant under reassociation.  A
    prefix-merge is itself a mergeable state (``merge_blocks(...,
    state=...)`` continues from it without mutating it), so merging in
    one pass, in pairwise groups, or by resuming from any split point
    must all land on the identical serial state — tails, predecessor
    links, and the walked-out mask."""

    @staticmethod
    def _states_equal(x, y):
        assert x.hi == y.hi and x.n == y.n and x.tlen == y.tlen
        assert np.array_equal(x.tails_vals[: x.tlen], y.tails_vals[: y.tlen])
        assert np.array_equal(x.tails_idx[: x.tlen], y.tails_idx[: y.tlen])
        assert np.array_equal(x.prev, y.prev)

    @staticmethod
    def _random_seq(rng: np.random.Generator, n: int) -> np.ndarray:
        if rng.random() < 0.5:
            return rng.permutation(n).astype(np.int64)
        # duplicate-heavy draws stress the bisect_left tie-break
        return rng.integers(0, max(2, n // 4), size=n).astype(np.int64)

    def test_random_split_points_reassociate(self):
        from repro.core.ordering import lis_membership
        from repro.parallel import mask_from_state, merge_blocks, patience_block

        rng = suite_rng(salt=600)
        for _ in range(30):
            n = int(rng.integers(8, 250))
            seq = self._random_seq(rng, n)
            bounds = random_partition(rng, n)
            blocks = [patience_block(seq, lo, hi) for lo, hi in bounds]
            one_pass = merge_blocks(seq, blocks)
            # resume from a random split: merge([:k]) then continue with [k:]
            k = int(rng.integers(0, len(blocks) + 1))
            prefix = merge_blocks(seq, blocks[:k])
            resumed = merge_blocks(seq, blocks[k:], state=prefix)
            self._states_equal(resumed, one_pass)
            # the prefix state was not mutated by the continuation
            assert prefix.hi == (blocks[k - 1].hi if k else 0)
            # and the walked-out mask is the canonical serial mask
            assert np.array_equal(mask_from_state(one_pass), lis_membership(seq))

    def test_nested_reassociations_agree(self):
        """Fold ((a·b)·c)·d against (a·b)·(c·d)-style resumptions."""
        from repro.parallel import merge_blocks, patience_block

        rng = suite_rng(salt=601)
        for _ in range(15):
            n = int(rng.integers(12, 200))
            seq = self._random_seq(rng, n)
            bounds = random_partition(rng, n)
            blocks = [patience_block(seq, lo, hi) for lo, hi in bounds]
            want = merge_blocks(seq, blocks)
            state = None
            for blk in blocks:  # fully left-nested, one block at a time
                state = merge_blocks(seq, [blk], state=state)
            self._states_equal(state, want)

    def test_block_granularity_invariance(self):
        """Merging fine blocks == merging coarse blocks over the same rows."""
        from repro.parallel import merge_blocks, patience_block, plan_order_blocks

        rng = suite_rng(salt=602)
        for _ in range(10):
            n = int(rng.integers(20, 200))
            seq = self._random_seq(rng, n)
            fine = [patience_block(seq, lo, hi)
                    for lo, hi in plan_order_blocks(n, 3)]
            coarse = [patience_block(seq, lo, hi)
                      for lo, hi in plan_order_blocks(n, 50)]
            self._states_equal(merge_blocks(seq, fine), merge_blocks(seq, coarse))


class TestKappaRangeAfterMerge:
    def test_kappa_in_unit_interval_for_any_sharding(self):
        """κ and every metric component stay in [0, 1] under fan-out."""
        rng = np.random.default_rng(314159)
        with ParallelComparator(jobs=1, shard_packets=13) as pc:
            for _ in range(20):
                a, b = noisy_pair(rng, int(rng.integers(10, 120)))
                rep = pc.compare(a, b)
                assert 0.0 <= rep.kappa <= 1.0
                for comp in (rep.metrics.u, rep.metrics.o,
                             rep.metrics.l, rep.metrics.i):
                    assert 0.0 <= comp <= 1.0
                # and it is the same κ serial computes, exactly
                assert rep.kappa == compare_trials(a, b).kappa


class TestShardPlanner:
    def test_plans_tile_exactly(self):
        rng = np.random.default_rng(2718)
        for _ in range(50):
            jobs = int(rng.integers(1, 9))
            n = int(rng.integers(0, 5000))
            forced = int(rng.integers(1, 64)) if rng.random() < 0.5 else None
            planner = ShardPlanner(jobs, shard_packets=forced,
                                   min_shard_packets=256)
            plan = planner.plan_pair(n)  # ShardPlan.__post_init__ validates
            assert plan.n_common == n
            assert sum(hi - lo for lo, hi in plan.bounds) == n

    def test_forced_shard_size(self):
        plan = ShardPlanner(2, shard_packets=10).plan_pair(25)
        assert plan.bounds == ((0, 10), (10, 20), (20, 25))

    def test_auto_sizing_respects_minimum(self):
        planner = ShardPlanner(8, min_shard_packets=1000)
        assert planner.plan_pair(999).n_shards == 1
        assert planner.plan_pair(4000).n_shards == 4
        assert planner.plan_pair(100_000).n_shards == 8  # capped by jobs

    def test_whole_pair_strategy_choice(self):
        assert ShardPlanner(4).use_whole_pairs(4)
        assert ShardPlanner(4).use_whole_pairs(9)
        assert not ShardPlanner(4).use_whole_pairs(3)
        # forcing a shard size always forces the sharded path
        assert not ShardPlanner(4, shard_packets=5).use_whole_pairs(9)

    def test_plan_ordering_auto_and_forced(self):
        from repro.parallel import DEFAULT_ORDER_BLOCK_PACKETS

        # auto: a pool plus a big-enough pair shards the ordering metric
        plan = ShardPlanner(4).plan_ordering(100_000)
        assert plan is not None
        assert plan.bounds[0] == (0, DEFAULT_ORDER_BLOCK_PACKETS)
        # serial, small pairs, or empty pairs keep the whole-pair task
        assert ShardPlanner(1).plan_ordering(100_000) is None
        assert ShardPlanner(4).plan_ordering(1000) is None
        assert ShardPlanner(4).plan_ordering(0) is None
        # forcing a block size shards even at jobs=1 (tests pin with this)
        forced = ShardPlanner(1, order_block_packets=8).plan_ordering(20)
        assert forced.bounds == ((0, 8), (8, 16), (16, 20))
        # and forces the within-pair strategy for series
        assert not ShardPlanner(4, order_block_packets=8).use_whole_pairs(9)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(n_common=10, bounds=((0, 4), (5, 10)))  # gap
        with pytest.raises(ValueError):
            ShardPlan(n_common=10, bounds=((0, 6), (4, 10)))  # overlap
        with pytest.raises(ValueError):
            ShardPlan(n_common=10, bounds=((0, 8),))  # short


class TestShmArena:
    def test_roundtrip_and_isolation(self):
        rng = np.random.default_rng(55)
        data = rng.normal(size=257)
        with ShmArena(enabled=True) as arena:
            spec = arena.share(data)
            view = arena.view(spec)
            assert np.array_equal(view, data)
            data[0] += 1.0  # the segment holds a copy, not a reference
            assert view[0] != data[0]

    def test_zero_length_is_inline(self):
        with ShmArena(enabled=True) as arena:
            spec = arena.share(np.empty(0, dtype=np.float64))
            assert spec.shm_name is None
            assert arena.view(spec).size == 0

    def test_disabled_arena_ships_inline(self):
        with ShmArena(enabled=False) as arena:
            spec = arena.share(np.arange(5, dtype=np.float64))
            assert spec.shm_name is None
            assert np.array_equal(arena.view(spec), np.arange(5.0))

    def test_allocate_zeroed_buffer(self):
        with ShmArena(enabled=True) as arena:
            spec, buf = arena.allocate(64)
            assert buf.shape == (64,) and not buf.any()
            buf[:] = 3.5
            assert np.array_equal(arena.view(spec), np.full(64, 3.5))
