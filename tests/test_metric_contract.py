"""Regression: one MetricVector contract across batch/streaming/parallel.

The streaming module's docs once claimed it reported O as ``None`` while
its code returned ``0.0`` — and the batch path always returned floats.
The resolved contract (documented on
:class:`repro.core.kappa.MetricVector`) is: every component is a concrete
finite float in [0, 1] on *every* comparison path; a path that cannot
compute a component guarantees its value by precondition instead.  These
tests pin that so the paths can never drift apart again.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import stream_compare
from repro.analysis.streaming import StreamingComparison
from repro.analysis.streamkappa import KappaMonitor, StreamKappa
from repro.core import MetricVector, Trial, compare_trials
from repro.parallel import compare_trials_parallel

from .conftest import comb_trial, make_trial, suite_rng


def assert_contract(vec: MetricVector):
    for name in ("u", "o", "l", "i"):
        v = getattr(vec, name)
        assert isinstance(v, float), f"{name.upper()} is {type(v).__name__}, not float"
        assert np.isfinite(v)
        assert 0.0 <= v <= 1.0


class TestAllPathsReturnFloats:
    def test_batch_path(self):
        a, b = comb_trial(40), comb_trial(40, start=7.0)
        assert_contract(compare_trials(a, b).metrics)

    def test_streaming_path_o_is_exact_zero_float(self):
        """Streaming O is the float 0.0 — guaranteed, not None/unknown."""
        a, b = comb_trial(40), comb_trial(40, start=7.0)
        vec = stream_compare(a, b, chunk=16)
        assert_contract(vec)
        assert vec.o == 0.0 and isinstance(vec.o, float)
        assert vec.u == 0.0  # same guarantee, same precondition

    def test_streaming_empty_stream(self):
        vec = StreamingComparison().result()
        assert_contract(vec)
        assert vec == MetricVector(0.0, 0.0, 0.0, 0.0)

    def test_parallel_path(self):
        a, b = comb_trial(40), comb_trial(40, start=7.0)
        vec = compare_trials_parallel(a, b, jobs=1, shard_packets=7).metrics
        assert_contract(vec)

    def test_streaming_agrees_with_batch_on_aligned(self):
        """On its precondition's domain the streaming vector IS the batch one."""
        rng = np.random.default_rng(808)
        times = np.cumsum(rng.exponential(90.0, size=300))
        a = make_trial(times)
        # jitter small, then re-sort: both captures keep tag order 0..n-1,
        # which is exactly the aligned regime streaming requires
        b = make_trial(np.sort(times + rng.normal(0.0, 4.0, size=300)))
        assert stream_compare(a, b, chunk=64) == compare_trials(a, b).metrics


class TestStreamKappaContract:
    """The streaming-O path computes every component — and still returns
    only concrete finite floats in [0, 1], like every other path."""

    def _messy_pair(self, salt):
        rng = suite_rng(salt)
        n = 150
        tags = rng.integers(0, 12, size=n).astype(np.int64)
        times = np.cumsum(rng.exponential(100.0, size=n))
        a = make_trial(times, tags)
        keep = rng.random(n) > 0.1
        bt = times[keep] + rng.normal(0.0, 400.0, size=int(keep.sum()))
        return a, Trial.from_arrival_events(tags[keep], bt)

    def test_streaming_o_path_computes_o_as_float(self):
        """O is *computed* here (nonzero on reordered input), not guaranteed."""
        a, b = self._messy_pair(901)
        sk = StreamKappa(a)
        for lo in range(0, len(b), 17):
            sk.update(b.tags[lo : lo + 17], b.times_ns[lo : lo + 17])
            assert_contract(sk.result())  # holds at every chunk boundary
        vec = sk.result()
        assert_contract(vec)
        assert vec.o > 0.0  # a genuinely misordered stream: O was computed

    def test_empty_stream(self):
        a, _ = self._messy_pair(902)
        assert_contract(StreamKappa(a).result())

    def test_empty_baseline(self):
        _, b = self._messy_pair(903)
        sk = StreamKappa(Trial(np.empty(0, dtype=np.int64), np.empty(0)))
        sk.update(b.tags, b.times_ns)
        assert_contract(sk.result())

    def test_monitor_window_vectors(self):
        """Every WindowReport vector obeys the contract, empty windows too."""
        a, b = self._messy_pair(904)
        mon = KappaMonitor(a.duration_ns / 6, min_windows=4)
        reports = []
        reports += mon.feed_baseline("s", a.tags, a.times_ns)
        # A mid-stream gap leaves at least one window with no run packets.
        half = len(b) // 2
        reports += mon.feed_run("s", b.tags[:half], b.times_ns[:half])
        reports += mon.feed_run(
            "s", b.tags[half:], b.times_ns[half:] + 3 * a.duration_ns
        )
        reports += mon.finish("s")
        assert reports
        for rep in reports:
            assert_contract(rep.vector)
            assert isinstance(rep.kappa, float) and np.isfinite(rep.kappa)

    def test_aligned_only_fast_path_still_rejects_misorder(self):
        """Lifting the O restriction did not relax the old fast path: the
        aligned-captures precondition still raises on misordered input."""
        a, _ = self._messy_pair(905)
        sc = StreamingComparison()
        swapped = a.tags.copy()
        swapped[0], swapped[1] = swapped[1], swapped[0]
        with pytest.raises(ValueError, match="not packet-aligned"):
            sc.update(a.tags, a.times_ns, swapped, a.times_ns)


class TestVectorRejectsNonContract:
    def test_rejects_none(self):
        with pytest.raises(TypeError):
            MetricVector(None, 0.0, 0.0, 0.0)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            MetricVector(float("nan"), 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            MetricVector(0.0, float("inf"), 0.0, 0.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            MetricVector(1.5, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            MetricVector(0.0, -0.5, 0.0, 0.0)
