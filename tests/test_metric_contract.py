"""Regression: one MetricVector contract across batch/streaming/parallel.

The streaming module's docs once claimed it reported O as ``None`` while
its code returned ``0.0`` — and the batch path always returned floats.
The resolved contract (documented on
:class:`repro.core.kappa.MetricVector`) is: every component is a concrete
finite float in [0, 1] on *every* comparison path; a path that cannot
compute a component guarantees its value by precondition instead.  These
tests pin that so the paths can never drift apart again.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import stream_compare
from repro.analysis.streaming import StreamingComparison
from repro.core import MetricVector, compare_trials
from repro.parallel import compare_trials_parallel

from .conftest import comb_trial, make_trial


def assert_contract(vec: MetricVector):
    for name in ("u", "o", "l", "i"):
        v = getattr(vec, name)
        assert isinstance(v, float), f"{name.upper()} is {type(v).__name__}, not float"
        assert np.isfinite(v)
        assert 0.0 <= v <= 1.0


class TestAllPathsReturnFloats:
    def test_batch_path(self):
        a, b = comb_trial(40), comb_trial(40, start=7.0)
        assert_contract(compare_trials(a, b).metrics)

    def test_streaming_path_o_is_exact_zero_float(self):
        """Streaming O is the float 0.0 — guaranteed, not None/unknown."""
        a, b = comb_trial(40), comb_trial(40, start=7.0)
        vec = stream_compare(a, b, chunk=16)
        assert_contract(vec)
        assert vec.o == 0.0 and isinstance(vec.o, float)
        assert vec.u == 0.0  # same guarantee, same precondition

    def test_streaming_empty_stream(self):
        vec = StreamingComparison().result()
        assert_contract(vec)
        assert vec == MetricVector(0.0, 0.0, 0.0, 0.0)

    def test_parallel_path(self):
        a, b = comb_trial(40), comb_trial(40, start=7.0)
        vec = compare_trials_parallel(a, b, jobs=1, shard_packets=7).metrics
        assert_contract(vec)

    def test_streaming_agrees_with_batch_on_aligned(self):
        """On its precondition's domain the streaming vector IS the batch one."""
        rng = np.random.default_rng(808)
        times = np.cumsum(rng.exponential(90.0, size=300))
        a = make_trial(times)
        # jitter small, then re-sort: both captures keep tag order 0..n-1,
        # which is exactly the aligned regime streaming requires
        b = make_trial(np.sort(times + rng.normal(0.0, 4.0, size=300)))
        assert stream_compare(a, b, chunk=64) == compare_trials(a, b).metrics


class TestVectorRejectsNonContract:
    def test_rejects_none(self):
        with pytest.raises(TypeError):
            MetricVector(None, 0.0, 0.0, 0.0)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            MetricVector(float("nan"), 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            MetricVector(0.0, float("inf"), 0.0, 0.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            MetricVector(1.5, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            MetricVector(0.0, -0.5, 0.0, 0.0)
