"""``scripts/compare_bench_json.py``: diffing bench artifacts across runs.

The benchmarks emit ``benchmarks/out/<name>.json`` documents
(``benchmarks/_emit.py``); the comparator turns two of them into
wall-time / per-stage deltas with percent-regression flags.  Under test:
same-bench enforcement, host/params warnings, delta math, threshold
flagging, added/removed stages, and the CLI exit codes.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "compare_bench_json", REPO_ROOT / "scripts" / "compare_bench_json.py"
)
cbj = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(cbj)


def _doc(wall=10.0, *, bench="streaming_kappa", stages=None, cores=8,
         params=None):
    return {
        "bench": bench,
        "params": {"n": 200_000, "seed": 12345} if params is None else params,
        "host": {"usable_cores": cores, "pool_start_method": "forkserver"},
        "wall_s": wall,
        "per_stage": {"serial": 10.0, "jobs=4": 3.5} if stages is None
        else stages,
    }


class TestCompareBench:
    def test_identical_docs_no_regressions(self):
        result = cbj.compare_bench(_doc(), _doc())
        assert result["comparable"]
        assert result["regressions"] == []
        wall = result["rows"][0]
        assert wall["name"] == "wall_s"
        assert wall["delta_s"] == 0.0 and wall["delta_pct"] == 0.0

    def test_regression_past_threshold_is_flagged(self):
        base = _doc(stages={"serial": 10.0})
        cand = _doc(wall=12.0, stages={"serial": 13.0})
        result = cbj.compare_bench(base, cand, threshold_pct=10.0)
        assert set(result["regressions"]) == {"wall_s", "per_stage.serial"}
        wall = result["rows"][0]
        assert wall["flag"] == "REGRESSION"
        assert wall["delta_pct"] == pytest.approx(20.0)

    def test_improvement_is_flagged_not_a_regression(self):
        result = cbj.compare_bench(_doc(wall=10.0), _doc(wall=7.0))
        assert result["regressions"] == []
        assert result["rows"][0]["flag"] == "improved"
        assert result["rows"][0]["delta_pct"] == pytest.approx(-30.0)

    def test_within_threshold_is_unflagged(self):
        result = cbj.compare_bench(
            _doc(wall=10.0), _doc(wall=10.5), threshold_pct=10.0
        )
        assert result["rows"][0]["flag"] == ""
        assert result["regressions"] == []

    def test_different_bench_names_refused(self):
        with pytest.raises(ValueError, match="different benchmarks"):
            cbj.compare_bench(_doc(), _doc(bench="other"))

    def test_host_and_params_differences_warn(self):
        result = cbj.compare_bench(_doc(cores=8), _doc(cores=2))
        assert not result["comparable"]
        assert any("usable_cores" in w for w in result["warnings"])
        result = cbj.compare_bench(_doc(), _doc(params={"n": 5}))
        assert any("params differ" in w for w in result["warnings"])

    def test_added_and_removed_stages(self):
        base = _doc(stages={"serial": 10.0, "old": 1.0})
        cand = _doc(stages={"serial": 10.0, "new": 2.0})
        rows = {r["name"]: r for r in cbj.compare_bench(base, cand)["rows"]}
        assert rows["per_stage.old"]["flag"] == "removed"
        assert rows["per_stage.new"]["flag"] == "added"
        assert rows["per_stage.new"]["delta_pct"] is None

    def test_zero_baseline_has_undefined_pct(self):
        result = cbj.compare_bench(
            _doc(wall=0.0, stages={}), _doc(wall=1.0, stages={})
        )
        assert result["rows"][0]["delta_pct"] is None
        assert result["regressions"] == []

    def test_render_mentions_every_row(self):
        text = cbj.render(cbj.compare_bench(_doc(), _doc(wall=20.0)))
        assert "wall_s" in text and "per_stage.serial" in text
        assert "REGRESSION" in text


class TestCompareBenchCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_cli_ok_and_fail_on_regression(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc())
        cand = self._write(tmp_path, "cand.json", _doc(wall=20.0))
        assert cbj.main([base, cand]) == 0
        assert "REGRESSION" in capsys.readouterr().out
        assert cbj.main([base, cand, "--fail-on-regression"]) == 1
        same = self._write(tmp_path, "same.json", _doc())
        assert cbj.main([base, same, "--fail-on-regression"]) == 0

    def test_cli_rejects_malformed_and_mismatched(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"bench": "x"}))
        good = self._write(tmp_path, "good.json", _doc())
        assert cbj.main([str(bad), good]) == 2
        other = self._write(tmp_path, "other.json", _doc(bench="other"))
        assert cbj.main([good, other]) == 2
        capsys.readouterr()
