"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        p = build_parser()
        assert p.parse_args(["scenarios"]).command == "scenarios"
        args = p.parse_args(["simulate", "local-single", "--runs", "3", "--scale", "0.1"])
        assert args.scenario == "local-single" and args.runs == 3
        assert p.parse_args(["analyze", "/tmp/x"]).directory == "/tmp/x"
        assert p.parse_args(["table2", "--no-paper"]).no_paper
        assert p.parse_args(["figure", "4a"]).figure_id == "4a"
        args = p.parse_args([
            "monitor", "/tmp/x", "--window-ms", "2.5",
            "--chunk", "512", "--kappa-step", "0.05", "--fail-on-degraded",
        ])
        assert args.directory == "/tmp/x" and args.window_ms == 2.5
        assert args.chunk == 512 and args.kappa_step == 0.05
        assert args.fail_on_degraded

    def test_ci_flags_parse(self):
        p = build_parser()
        args = p.parse_args(["table2", "--ci", "--ci-seeds", "6"])
        assert args.ci and args.ci_seeds == 6
        assert not p.parse_args(["table2"]).ci
        args = p.parse_args(["validate", "--ci"])
        assert args.ci and args.ci_seeds == 4  # the default screen width

    def test_stability_flags_parse(self):
        p = build_parser()
        args = p.parse_args([
            "stability", "local-dual", "--seeds", "3,5,8", "--eps", "0.01",
            "--max-runs", "16", "--runs", "2", "--jobs", "4",
            "--store", "/tmp/s", "-o", "/tmp/out",
        ])
        assert args.command == "stability"
        assert args.scenario == ["local-dual"]
        assert args.seeds == "3,5,8" and args.eps == 0.01
        assert args.max_runs == 16 and args.runs == 2
        assert args.jobs == 4 and args.store == "/tmp/s"
        assert args.output == "/tmp/out"
        defaults = p.parse_args(["stability"])
        assert defaults.scenario == [] and defaults.seeds is None
        assert defaults.eps == 0.005 and defaults.max_runs == 12


class TestCommands:
    def test_scenarios_lists_all_nine(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 9
        assert "local-single" in out and "fabric-shared-40g-noisy" in out

    def test_simulate_and_analyze_roundtrip(self, capsys, tmp_path):
        out_dir = str(tmp_path / "caps")
        rc = main([
            "simulate", "local-single", "--runs", "2",
            "--scale", "0.01", "-o", out_dir,
        ])
        assert rc == 0
        sim_out = capsys.readouterr().out
        assert "per-run metrics" in sim_out
        assert main(["analyze", out_dir]) == 0
        ana_out = capsys.readouterr().out
        assert "kappa" in ana_out

    def test_monitor_on_saved_captures(self, capsys, tmp_path):
        out_dir = str(tmp_path / "caps")
        assert main([
            "simulate", "local-single", "--runs", "2",
            "--scale", "0.01", "-o", out_dir,
        ]) == 0
        capsys.readouterr()
        assert main(["monitor", out_dir, "--window-ms", "2"]) == 0
        out = capsys.readouterr().out
        assert "streaming metrics" in out
        assert "kappa" in out
        assert "windows" in out

    def test_monitor_needs_two_captures(self, capsys, tmp_path):
        from repro.analysis import save_series
        from repro.core import Trial

        import numpy as np

        t = Trial(np.arange(5, dtype=np.int64), np.arange(5.0), label="only")
        save_series([t], tmp_path / "one")
        assert main(["monitor", str(tmp_path / "one")]) == 2
        assert "at least one run" in capsys.readouterr().err

    def test_simulate_unknown_scenario(self):
        with pytest.raises(KeyError, match="valid keys"):
            main(["simulate", "bogus", "--scale", "0.01"])

    def test_table1(self, capsys):
        assert main(["table1", "--scale", "0.01"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_table2_no_paper(self, capsys):
        assert main(["table2", "--scale", "0.005", "--no-paper"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "paper_kappa" not in out

    def test_table2_ci_columns(self, capsys):
        assert main([
            "table2", "--ci", "--ci-seeds", "3", "--scale", "0.005",
        ]) == 0
        out = capsys.readouterr().out
        assert "bootstrap intervals" in out
        for column in ("kappa_ci_low", "kappa_ci_high", "n_eff", "outliers"):
            assert column in out

    def test_stability_report(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "stab"
        assert main([
            "stability", "local-single", "--seeds", "3,5", "--runs", "2",
            "--scale", "0.01", "--eps", "0",
            "--store", str(tmp_path / "store"), "-o", str(out_dir),
        ]) == 0
        captured = capsys.readouterr()
        assert "kappa_ci_low" in captured.out
        doc = json.loads((out_dir / "stability.json").read_text())
        assert doc["kind"] == "stability-report"
        (block,) = doc["environments"]
        assert block["scenario"] == "local-single"
        assert block["seeds"] == [3, 5]
        telemetry = json.loads(
            (out_dir / "stability_telemetry.json").read_text()
        )
        assert telemetry["bench"] == "stability"

    def test_stability_rejects_bad_seeds(self, capsys):
        assert main(["stability", "--seeds", "3,x"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_stability_unknown_scenario(self, capsys):
        assert main(["stability", "bogus"]) == 2
        assert "valid keys" in capsys.readouterr().err

    def test_figure(self, capsys):
        assert main(["figure", "4a", "--scale", "0.01"]) == 0
        assert "Figure 4a" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "99z"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figure_svg_output(self, capsys, tmp_path):
        svg = tmp_path / "f.svg"
        assert main(["figure", "4a", "--scale", "0.01", "--svg", str(svg)]) == 0
        assert svg.read_text().startswith("<?xml")

    def test_simulate_custom_profile(self, capsys, tmp_path):
        from repro.testbeds import local_single_replayer, save_profile

        path = save_profile(
            local_single_replayer().at_duration(1e6), tmp_path / "env.json"
        )
        assert main(["simulate", "--profile", str(path), "--runs", "2"]) == 0
        assert "local-single" in capsys.readouterr().out

    def test_simulate_requires_exactly_one_source(self, capsys, tmp_path):
        assert main(["simulate"]) == 2
        assert "exactly one" in capsys.readouterr().err
        from repro.testbeds import local_single_replayer, save_profile

        path = save_profile(local_single_replayer(), tmp_path / "env.json")
        assert main(["simulate", "local-single", "--profile", str(path)]) == 2

    def test_report_generates_artifacts(self, capsys, tmp_path):
        out = tmp_path / "rep"
        assert main(["report", "-o", str(out), "--scale", "0.005", "--no-svg"]) == 0
        assert (out / "table2.txt").exists()
        assert (out / "table1.txt").exists()
        assert (out / "fig4a.txt").exists()
        # All 13 figures, no SVGs when --no-svg.
        assert len(list(out.glob("fig*.txt"))) == 13
        assert not list(out.glob("*.svg"))

    def test_report_with_svg(self, capsys, tmp_path):
        out = tmp_path / "rep"
        assert main(["report", "-o", str(out), "--scale", "0.005"]) == 0
        assert (out / "fig4a.svg").exists()
        assert (out / "table2_kappa.svg").exists()
