"""Chunk-boundary invariance of the streaming κ path.

The whole point of :mod:`repro.analysis.streamkappa` is that chunk
boundaries are an artifact of transport, not of the metrics: *any*
chunking of the same packet stream — sizes 1, 2, a prime, n−1, n, and
random splits — must produce a bit-identical final
:class:`~repro.core.kappa.MetricVector`, an identical per-window deviation
series, and an identical monitor κ series.  On top of invariance, the
running result is pinned to be *prefix-exact*: at every chunk boundary
``StreamKappa.result()`` equals the batch ``compare_trials`` on the prefix
consumed so far, which is the stronger property the invariance follows
from.

Seeded via the ``REPRO_TEST_SEED`` conftest machinery; ``REPRO_STREAM_CHUNK``
adds one more chunk size to the grid (the CI matrix uses 4096/65536).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.streamkappa import KappaMonitor, StreamKappa
from repro.core import Trial, compare_trials, windowed_deviation

from .conftest import make_trial, suite_rng

_WINDOW_FIELDS = (
    "starts_ns", "n_common", "n_missing", "sum_abs_latency_ns",
    "sum_abs_iat_ns", "max_abs_latency_ns", "max_abs_iat_ns",
)


def _env_chunk() -> list[int]:
    raw = os.environ.get("REPRO_STREAM_CHUNK", "")
    return [int(raw)] if raw.strip() else []


def chunkings(n: int, rng: np.random.Generator) -> list[list[int]]:
    """The ISSUE grid: 1, 2, a prime, n−1, n, plus random splits."""
    sizes = sorted({1, 2, 13, max(1, n - 1), n, *_env_chunk()})
    plans = []
    for size in sizes:
        full, rem = divmod(n, size)
        plans.append([size] * full + ([rem] if rem else []))
    for _ in range(3):
        cuts = np.sort(rng.choice(np.arange(1, n), size=min(9, n - 1), replace=False))
        bounds = np.concatenate([[0], cuts, [n]])
        plans.append(np.diff(bounds).tolist())
    return plans


def feed(baseline: Trial, run: Trial, plan: list[int]) -> StreamKappa:
    """Stream ``run`` into a fresh comparator under one chunking plan."""
    sk = StreamKappa(baseline)
    lo = 0
    for size in plan:
        sk.update(run.tags[lo : lo + size], run.times_ns[lo : lo + size])
        lo += size
    assert lo == len(run)
    return sk


def messy_pair(n: int, salt: int) -> tuple[Trial, Trial]:
    """A droppy, jittered, duplicate-tagged pair — nothing aligned."""
    rng = suite_rng(salt)
    tags = rng.integers(0, max(4, n // 3), size=n).astype(np.int64)
    times = np.cumsum(rng.exponential(120.0, size=n))
    a = make_trial(times, tags, label="A")
    keep = rng.random(n) > 0.08
    bt = times[keep] + rng.normal(0.0, 300.0, size=int(keep.sum()))
    extra = rng.integers(10_000, 10_008, size=max(2, n // 20)).astype(np.int64)
    extra_t = rng.uniform(times[0], times[-1], size=extra.shape[0])
    b = Trial.from_arrival_events(
        np.concatenate([tags[keep], extra]),
        np.concatenate([bt, extra_t]),
        label="B",
    )
    return a, b


class TestFinalVectorInvariance:
    @pytest.mark.parametrize("n,salt", [(60, 1), (173, 2), (240, 3)])
    def test_any_chunking_same_vector(self, n, salt):
        a, b = messy_pair(n, salt)
        rng = suite_rng(salt + 50)
        want = feed(a, b, [len(b)]).result()
        for plan in chunkings(len(b), rng):
            got = feed(a, b, plan).result()
            # Bit-identical: dataclass equality compares the raw floats.
            assert got == want, plan

    def test_matches_batch_exactly(self):
        a, b = messy_pair(200, 7)
        want = compare_trials(a, b).metrics
        for plan in ([len(b)], [1] * len(b), [13] * (len(b) // 13) + [len(b) % 13]):
            assert feed(a, b, [c for c in plan if c]).result() == want


class TestPerWindowSeriesInvariance:
    def test_windowed_series_identical(self):
        a, b = messy_pair(180, 11)
        rng = suite_rng(61)
        window_ns = a.duration_ns / 7
        want = feed(a, b, [len(b)]).windowed(window_ns)
        for plan in chunkings(len(b), rng):
            got = feed(a, b, plan).windowed(window_ns)
            for f in _WINDOW_FIELDS:
                assert np.array_equal(getattr(got, f), getattr(want, f)), (plan, f)

    def test_windowed_series_matches_batch(self):
        a, b = messy_pair(180, 12)
        window_ns = a.duration_ns / 5
        got = feed(a, b, [17] * (len(b) // 17) + [len(b) % 17]).windowed(window_ns)
        want = windowed_deviation(a, b, window_ns)
        for f in _WINDOW_FIELDS:
            assert np.array_equal(getattr(got, f), getattr(want, f)), f


class TestPrefixExactness:
    """The stronger property: the running result is the batch result of
    the consumed prefix at *every* chunk boundary, not only at the end."""

    def test_result_equals_batch_on_every_prefix(self):
        a, b = messy_pair(140, 21)
        sk = StreamKappa(a)
        step = 17
        for lo in range(0, len(b), step):
            hi = min(lo + step, len(b))
            sk.update(b.tags[lo:hi], b.times_ns[lo:hi])
            prefix = Trial(b.tags[:hi], b.times_ns[:hi])
            assert sk.result() == compare_trials(a, prefix).metrics, hi

    def test_empty_stream_is_batch_empty(self):
        a, _ = messy_pair(50, 22)
        empty = Trial(np.empty(0, np.int64), np.empty(0))
        assert StreamKappa(a).result() == compare_trials(a, empty).metrics


class TestMonitorSeriesInvariance:
    def _monitor_series(self, a, b, window_ns, plan_a, plan_b):
        mon = KappaMonitor(window_ns, min_windows=4)
        la = lb = 0
        for ca, cb in zip(plan_a, plan_b):
            if la < len(a):
                mon.feed_baseline("s", a.tags[la : la + ca], a.times_ns[la : la + ca])
                la += ca
            if lb < len(b):
                mon.feed_run("s", b.tags[lb : lb + cb], b.times_ns[lb : lb + cb])
                lb += cb
        while la < len(a):
            mon.feed_baseline("s", a.tags[la : la + 1], a.times_ns[la : la + 1])
            la += 1
        while lb < len(b):
            mon.feed_run("s", b.tags[lb : lb + 1], b.times_ns[lb : lb + 1])
            lb += 1
        mon.finish("s")
        return mon.kappa_history("s")

    def test_monitor_kappa_series_chunking_invariant(self):
        a, b = messy_pair(260, 31)
        window_ns = a.duration_ns / 10
        want = self._monitor_series(a, b, window_ns, [len(a)], [len(b)])
        for size in (1, 2, 13, len(b) - 1, *_env_chunk()):
            plan = [size] * (max(len(a), len(b)) // size + 1)
            got = self._monitor_series(a, b, window_ns, plan, plan)
            assert np.array_equal(got, want), size


class TestStreamValidation:
    def test_rejects_backwards_time_within_chunk(self):
        a, _ = messy_pair(20, 41)
        sk = StreamKappa(a)
        with pytest.raises(ValueError, match="non-decreasing"):
            sk.update([1, 2], [50.0, 10.0])

    def test_rejects_backwards_time_across_chunks(self):
        a, _ = messy_pair(20, 42)
        sk = StreamKappa(a)
        sk.update([1], [100.0])
        with pytest.raises(ValueError, match="non-decreasing"):
            sk.update([2], [50.0])

    def test_rejects_length_mismatch(self):
        a, _ = messy_pair(20, 43)
        with pytest.raises(ValueError, match="equal-length"):
            StreamKappa(a).update([1, 2], [10.0])

    def test_empty_chunk_is_noop(self):
        a, b = messy_pair(30, 44)
        sk = feed(a, b, [len(b)])
        want = sk.result()
        sk.update(np.empty(0, np.int64), np.empty(0))
        assert sk.result() == want
