"""Differential harness for the fused timing kernel.

:func:`repro.core.fusedpass.fused_timings` replaced the four separate
timing passes of ``compare_trials`` — ``latency_deltas_ns``,
``iat_deltas_ns`` and the two figure histograms.  Its contract is the
same as the parallel engine's: **bit-identical** output, so every
assertion here is exact (``==`` on floats, ``np.array_equal`` on
arrays), never approximate.

The per-component functions stay exported precisely to serve as the
reference path of this suite.  Coverage:

* a quiet/reordered/droppy grid of randomized pairs (drops, jitter,
  duplicate-heavy tags, extra run-only packets);
* the ordershard permutation corpus
  (:data:`tests.test_ordershard_corpus.CORPUS`) turned into trial pairs
  two ways — a drop-free value-order reshuffle and a droppy jittered
  replay — so the exact permutation shapes that stress the LIS merge
  also stress the fused gather's index arithmetic;
* the report drivers at jobs 1/2/4/8 (``REPRO_DIFF_JOBS`` restricts, as
  in the other differential suites): the serial report is now built on
  the fused kernel, and the sharded engine must still equal it at every
  job count and pathological shard/block size;
* the windowed series: ``windowed_deviation`` routes through the fused
  kernel and must equal :func:`deviation_from_deltas` fed the
  per-component delta arrays.
"""

from __future__ import annotations

import os
import zlib

import numpy as np
import pytest

from repro.core.fusedpass import fused_timings
from repro.core.histograms import DeltaHistogram, SymlogBins, pct_within
from repro.core.iat import iat_deltas_ns, iat_from_matching
from repro.core.latency import latency_deltas_ns, latency_from_matching
from repro.core.matching import match_trials
from repro.core.report import compare_trials
from repro.core.windows import deviation_from_deltas, windowed_deviation
from repro.parallel import ParallelComparator

from .conftest import make_trial, suite_rng
from .test_ordershard_corpus import CORPUS
from .test_parallel_differential import assert_pair_equal


def _job_counts() -> list[int]:
    raw = os.environ.get("REPRO_DIFF_JOBS", "1,2,4,8")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


JOB_COUNTS = _job_counts()


# -- pair generators -------------------------------------------------------

def _grid_pair(kind: str, n: int, salt: int):
    """One (baseline, run) pair of the quiet/reordered/droppy grid."""
    rng = suite_rng((71, salt))
    tags = rng.integers(0, max(2, n // 3), size=n).astype(np.int64)
    times = np.cumsum(rng.exponential(120.0, size=n))
    baseline = make_trial(times, tags, label="A")

    if kind == "quiet":
        return baseline, make_trial(times.copy(), tags.copy(), label="B")
    if kind == "reordered":
        run_times = times + rng.normal(0.0, 250.0, size=n)
        order = np.argsort(run_times, kind="stable")
        return baseline, make_trial(run_times[order], tags[order], label="B")
    if kind == "droppy":
        keep = rng.random(n) > 0.1
        run_tags = tags[keep]
        run_times = times[keep] + rng.normal(0.0, 180.0, size=int(keep.sum()))
        n_extra = int(rng.integers(0, 4))
        if n_extra:
            run_tags = np.concatenate(
                [run_tags, rng.integers(10_000_000, 10_000_100, size=n_extra)]
            )
            run_times = np.concatenate(
                [run_times, rng.uniform(0.0, times[-1], size=n_extra)]
            )
        order = np.argsort(run_times, kind="stable")
        return baseline, make_trial(run_times[order], run_tags[order], label="B")
    raise KeyError(kind)


def _corpus_pairs(name: str):
    """Two trial pairs derived from one ordershard corpus sequence.

    The corpus entries are the permutation/duplicate shapes that stress
    the LIS machinery; here they become the *tag* streams of a pair.  The
    first variant re-sorts the run's arrivals by tag value (a pure
    reorder, no drops — for ``reversed`` that is a full reversal); the
    second jitters and drops (the matching shrinks, the gather's indices
    turn sparse).
    """
    seq = CORPUS[name]
    n = seq.shape[0]
    rng = suite_rng((72, zlib.crc32(name.encode())))
    times = np.cumsum(rng.exponential(100.0, size=n))
    baseline = make_trial(times, seq, label="A")

    order = np.argsort(seq, kind="stable")
    permuted = make_trial(times.copy(), seq[order], label="B")

    keep = rng.random(n) > 0.12
    run_times = times[keep] + rng.normal(0.0, 200.0, size=int(keep.sum()))
    arrival = np.argsort(run_times, kind="stable")
    droppy = make_trial(run_times[arrival], seq[keep][arrival], label="B")
    return [("value-order", baseline, permuted), ("droppy", baseline, droppy)]


# -- the reference check ---------------------------------------------------

def _assert_fused_matches_components(baseline, run, window_ns=None):
    """Every fused field equals its per-component reference, bit for bit."""
    bins = SymlogBins()
    m = match_trials(baseline, run)
    fused = fused_timings(baseline, run, m, bins=bins, window_ns=window_ns)

    dlat_ref = latency_deltas_ns(baseline, run, matching=m)
    diat_ref = iat_deltas_ns(baseline, run, matching=m)
    assert fused.dlat.dtype == dlat_ref.dtype
    assert fused.diat.dtype == diat_ref.dtype
    assert np.array_equal(fused.dlat, dlat_ref)
    assert np.array_equal(fused.diat, diat_ref)

    lat_ref = DeltaHistogram.from_deltas(dlat_ref, bins)
    iat_ref = DeltaHistogram.from_deltas(diat_ref, bins)
    assert np.array_equal(fused.lat_counts, lat_ref.counts)
    assert np.array_equal(fused.iat_counts, iat_ref.counts)

    if m.n_common:
        assert fused.l == latency_from_matching(baseline, run, m)
        assert fused.i == iat_from_matching(baseline, run, m)
    else:
        assert fused.l == 0.0 and fused.i == 0.0
    assert fused.pct_iat_within == pct_within(diat_ref, 10.0)
    assert fused.iat_within == int(np.count_nonzero(np.abs(diat_ref) <= 10.0))

    if window_ns is not None and m.n_common:
        ref = deviation_from_deltas(
            baseline.relative_times_ns(),
            m.idx_a,
            np.abs(dlat_ref),
            np.abs(diat_ref),
            window_ns,
        )
        got = fused.windows
        assert got is not None
        assert got.window_ns == ref.window_ns
        for fld in (
            "starts_ns",
            "n_common",
            "n_missing",
            "sum_abs_latency_ns",
            "sum_abs_iat_ns",
            "max_abs_latency_ns",
            "max_abs_iat_ns",
        ):
            assert np.array_equal(getattr(got, fld), getattr(ref, fld)), fld


# -- the grid --------------------------------------------------------------

class TestFusedGrid:
    @pytest.mark.parametrize("kind", ["quiet", "reordered", "droppy"])
    @pytest.mark.parametrize("n", [2, 17, 400, 3000])
    def test_fused_equals_components(self, kind, n):
        for salt in range(4):
            baseline, run = _grid_pair(kind, n, salt)
            _assert_fused_matches_components(baseline, run)

    @pytest.mark.parametrize("kind", ["quiet", "reordered", "droppy"])
    def test_fused_windows_equal_components(self, kind):
        baseline, run = _grid_pair(kind, 800, 9)
        _assert_fused_matches_components(baseline, run, window_ns=5_000.0)

    def test_disjoint_pair_short_circuits(self):
        baseline = make_trial([0.0, 100.0, 200.0], [1, 2, 3], label="A")
        run = make_trial([0.0, 100.0], [7, 8], label="B")
        m = match_trials(baseline, run)
        fused = fused_timings(baseline, run, m)
        assert fused.n_common == 0
        assert fused.l == 0.0 and fused.i == 0.0
        assert fused.pct_iat_within == 0.0
        assert fused.dlat.size == 0 and fused.diat.size == 0
        assert int(fused.lat_counts.sum()) == 0
        assert int(fused.iat_counts.sum()) == 0

    def test_windowed_deviation_empty_matching(self):
        """The driver's no-common-packets fallback still windows the baseline."""
        baseline = make_trial([0.0, 1_000.0, 9_000.0], [1, 2, 3], label="A")
        run = make_trial([0.0, 500.0], [7, 8], label="B")
        wd = windowed_deviation(baseline, run, window_ns=2_000.0)
        assert int(wd.n_common.sum()) == 0
        assert int(wd.n_missing.sum()) == 3


# -- the ordershard permutation corpus -------------------------------------

class TestFusedCorpus:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_fused_equals_components_on_corpus(self, name):
        for variant, baseline, run in _corpus_pairs(name):
            _assert_fused_matches_components(baseline, run)

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_report_driver_on_corpus(self, name):
        """compare_trials (fused inside) re-derived per-component, exactly."""
        for variant, baseline, run in _corpus_pairs(name):
            report = compare_trials(baseline, run)
            m = match_trials(baseline, run)
            if m.n_common:
                assert report.metrics.l == latency_from_matching(baseline, run, m)
                assert report.metrics.i == iat_from_matching(baseline, run, m)
            diat_ref = iat_deltas_ns(baseline, run, matching=m)
            assert report.pct_iat_within_10ns == pct_within(diat_ref, 10.0)
            iat_ref = DeltaHistogram.from_deltas(
                diat_ref, report.iat_hist.bins, label=run.label
            )
            assert np.array_equal(report.iat_hist.counts, iat_ref.counts)
            assert report.iat_hist.n_total == iat_ref.n_total


# -- job counts: the sharded engine still equals the fused serial ----------

class TestFusedAcrossJobs:
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_engine_equals_fused_serial(self, jobs):
        for kind in ("quiet", "reordered", "droppy"):
            baseline, run = _grid_pair(kind, 2500, 31)
            want = compare_trials(baseline, run)
            with ParallelComparator(
                jobs=jobs, shard_packets=977, order_block_packets=503
            ) as pc:
                got = pc.compare(baseline, run)
            assert_pair_equal(got, want)

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_engine_equals_fused_serial_on_corpus(self, jobs):
        for name in ("far-moved-packet", "duplicate-heavy", "interleaved-runs"):
            for variant, baseline, run in _corpus_pairs(name):
                want = compare_trials(baseline, run)
                with ParallelComparator(
                    jobs=jobs, shard_packets=37, order_block_packets=29
                ) as pc:
                    got = pc.compare(baseline, run)
                assert_pair_equal(got, want)
