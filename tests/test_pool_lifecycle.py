"""Lifecycle of the persistent, process-global worker pool.

"Exactly one pool per invocation" is the perf contract that replaced the
old pool-per-series churn; these tests make it a *tested property*:

* lazy creation — importing, or running any serial path, creates nothing;
* reuse — the simulation fan-out and the analysis engine draw from the
  same executor within one invocation (``created_total`` moves by one);
* teardown — ``pool_scope`` and the CLI drain the pool on normal exit
  *and* on error paths (the leak the old per-comparator pools had);
* failure containment — a raising worker task doesn't poison the pool,
  ``gather`` drains the rest of a failed batch before re-raising, counts
  the failure, and attaches the remote worker traceback;
* telemetry round-trip — with tracing on, worker spans and counters ship
  back through the live pool with worker-pid attribution, and the traced
  results stay bit-identical to untraced ones.
"""

from __future__ import annotations

import pytest

import repro.cli as cli
from repro.core import compare_series
from repro.obs import metrics, trace
from repro.parallel import (
    ParallelComparator,
    compare_series_parallel,
    get_pool,
    pool_scope,
    pool_stats,
    shutdown_pool,
)
from repro.testbeds import Testbed, local_single_replayer

from .test_parallel_differential import assert_series_equal

PROFILE = local_single_replayer().at_duration(3e6)


@pytest.fixture(autouse=True)
def _clean_pool():
    """Every test starts and ends with no live pool (and clean telemetry)."""
    shutdown_pool()
    trace.reset()
    metrics.REGISTRY.reset()
    yield
    shutdown_pool()
    trace.reset()
    metrics.REGISTRY.reset()


def _boom(_arg):
    raise RuntimeError("worker exploded")


def _ok(x):
    return x * 2


class TestLaziness:
    def test_no_pool_until_asked(self):
        assert pool_stats().active is False

    def test_serial_paths_never_create_a_pool(self):
        before = pool_stats().created_total
        trials = Testbed(PROFILE, seed=3).run_series(2, jobs=1)
        compare_series(trials, environment=PROFILE.name)
        with ParallelComparator(jobs=1) as pc:
            pc.compare_series(trials, environment=PROFILE.name)
        stats = pool_stats()
        assert stats.active is False
        assert stats.created_total == before

    def test_get_pool_rejects_serial(self):
        with pytest.raises(ValueError):
            get_pool(1)


class TestReuse:
    def test_one_pool_spans_simulation_and_analysis(self):
        """The full simulate+analyze pipeline creates exactly one pool."""
        before = pool_stats().created_total
        trials = Testbed(PROFILE, seed=3).run_series(3, jobs=2)
        rep = compare_series_parallel(trials, environment=PROFILE.name, jobs=2)
        stats = pool_stats()
        assert stats.active is True
        assert stats.jobs == 2
        assert stats.created_total == before + 1
        # And the shared-pool report is still the serial report, exactly.
        want = compare_series(
            Testbed(PROFILE, seed=3).run_series(3, jobs=1),
            environment=PROFILE.name,
        )
        assert_series_equal(rep, want)

    def test_same_executor_returned(self):
        assert get_pool(2) is get_pool(2)
        assert pool_stats().created_total == pool_stats().created_total

    def test_resize_replaces_the_pool(self):
        before = pool_stats().created_total
        p2 = get_pool(2)
        p3 = get_pool(3)
        assert p3 is not p2
        stats = pool_stats()
        assert stats.jobs == 3
        assert stats.created_total == before + 2


class TestTeardown:
    def test_shutdown_is_idempotent(self):
        get_pool(2)
        shutdown_pool()
        assert pool_stats().active is False
        shutdown_pool()  # second call: no-op, no error
        assert pool_stats().active is False

    def test_pool_scope_normal_exit(self):
        with pool_scope():
            get_pool(2)
            assert pool_stats().active is True
        assert pool_stats().active is False

    def test_pool_scope_error_exit(self):
        """An exception inside the scope still drains the pool."""
        with pytest.raises(RuntimeError):
            with pool_scope():
                get_pool(2)
                raise RuntimeError("mid-invocation failure")
        assert pool_stats().active is False


class TestCliOwnership:
    def test_cli_error_path_tears_down(self, monkeypatch, capsys):
        """A command that creates a pool then raises cannot leak it."""

        def exploding_command(_args):
            get_pool(2)
            assert pool_stats().active is True
            raise RuntimeError("command failed mid-pool")

        monkeypatch.setitem(cli._COMMANDS, "scenarios", exploding_command)
        with pytest.raises(RuntimeError):
            cli.main(["scenarios"])
        assert pool_stats().active is False

    def test_cli_usage_error_path_tears_down(self, capsys):
        """Early argument-validation exits run the teardown too."""
        rc = cli.main(["simulate"])  # neither <scenario> nor --profile
        assert rc == 2
        assert pool_stats().active is False

    def test_cli_success_creates_exactly_one_pool(self, monkeypatch, capsys):
        """One --jobs invocation: exactly one pool, gone afterwards."""
        created = []

        def counting_command(args):
            trials = Testbed(PROFILE, seed=1).run_series(2, jobs=2)
            compare_series_parallel(trials, environment=PROFILE.name, jobs=2)
            created.append(pool_stats().created_total)
            return 0

        monkeypatch.setitem(cli._COMMANDS, "scenarios", counting_command)
        before = pool_stats().created_total
        assert cli.main(["scenarios"]) == 0
        assert created == [before + 1]
        assert pool_stats().active is False


class TestFailureContainment:
    def test_worker_exception_does_not_poison_the_pool(self):
        pool = get_pool(2)
        with pytest.raises(RuntimeError, match="worker exploded"):
            pool.submit(_boom, None).result()
        # Same pool, still serving.
        assert pool.submit(_ok, 21).result() == 42
        assert pool_stats().jobs == 2

    def test_gather_drains_failed_batches(self):
        from repro.parallel import gather

        pool = get_pool(2)
        futures = [pool.submit(_boom, None)] + [
            pool.submit(_ok, i) for i in range(8)
        ]
        with pytest.raises(RuntimeError, match="worker exploded"):
            gather(futures)
        # Every sibling is settled — nothing left running against
        # resources the caller is about to release.
        assert all(f.done() for f in futures)
        assert pool.submit(_ok, 1).result() == 2

    def test_gather_attaches_remote_traceback_and_counts(self):
        """A worker failure surfaces *where it happened*, not just what.

        The bare executor loses the worker's traceback string unless it
        is re-attached; ``gather`` pins it on the exception and bumps the
        ``pool.task_failures`` counter so --stats shows failures even
        when the exception is caught upstream.
        """
        from repro.parallel import gather

        pool = get_pool(2)
        before = metrics.REGISTRY.snapshot()["counters"].get(
            "pool.task_failures", 0
        )
        with pytest.raises(RuntimeError, match="worker exploded") as ei:
            gather([pool.submit(_boom, None)])
        remote = getattr(ei.value, "remote_traceback", None)
        assert remote is not None
        assert "worker exploded" in remote
        assert "_boom" in remote  # the worker-side frame, not the parent's
        after = metrics.REGISTRY.snapshot()["counters"]["pool.task_failures"]
        assert after == before + 1


class TestWorkerTelemetryRoundTrip:
    def test_spans_and_counters_cross_the_pool(self):
        """A traced fan-out ships worker spans back, pid-attributed."""
        import os

        trace.enable()
        trials = Testbed(PROFILE, seed=3).run_series(3, jobs=2)
        spans = trace.records()
        run_spans = [s for s in spans if s.name == "sim.run"]
        assert len(run_spans) == 3
        worker_pids = {s.pid for s in run_spans}
        assert os.getpid() not in worker_pids
        # The parent-side series span is in the same buffer.
        assert any(
            s.name == "sim.series" and s.pid == os.getpid() for s in spans
        )
        snap = metrics.REGISTRY.snapshot()
        assert snap["counters"]["sim.runs"] == 3
        assert snap["histograms"]["pool.queue_wait_ns"]["count"] == 3
        assert snap["histograms"]["pool.task_wall_ns"]["count"] == 3
        # And tracing changed nothing: bit-identical to the untraced serial run.
        want = Testbed(PROFILE, seed=3).run_series(3, jobs=1)
        for got_t, want_t in zip(trials, want):
            assert got_t.times_ns.tobytes() == want_t.times_ns.tobytes()

    def test_untraced_pool_results_stay_bare(self):
        """With tracing off the wrapper never runs — no envelopes, no spans."""
        Testbed(PROFILE, seed=3).run_series(2, jobs=2)
        assert trace.records() == []

    def test_traced_analysis_covers_shard_stages(self):
        """Sharded analysis at jobs=2 emits worker-pid shard spans."""
        import os

        trials = Testbed(PROFILE, seed=3).run_series(2, jobs=1)
        trace.enable()
        rep = ParallelComparator(
            jobs=2, shard_packets=2048, order_block_packets=2048
        ).compare_series(trials, environment=PROFILE.name)
        names_by_pid: dict[int, set[str]] = {}
        for s in trace.records():
            names_by_pid.setdefault(s.pid, set()).add(s.name)
        worker_names: set[str] = set()
        for pid, names in names_by_pid.items():
            if pid != os.getpid():
                worker_names |= names
        assert "analysis.shard.timing" in worker_names
        assert "analysis.order.block" in worker_names
        # Inert under fan-out, too.
        want = compare_series(trials, environment=PROFILE.name)
        assert_series_equal(rep, want)


class TestTrackerQuiet:
    """Worker shm attachments must not disturb the parent's resource tracker.

    Under ``fork`` *and* ``forkserver`` the workers share the parent's
    tracker daemon, so the attach-side registration (bpo-39959, < 3.13)
    belongs to the parent and must be left alone; a worker unregistering
    it makes the parent's own ``unlink`` a double-unregister, which the
    tracker reports as a KeyError traceback on stderr — once per segment.
    A pooled run's stderr is the regression detector.
    """

    def test_forkserver_run_leaves_stderr_clean(self, tmp_path):
        import subprocess
        import sys

        script = tmp_path / "pooled_run.py"
        script.write_text(
            "from repro.parallel import ParallelComparator, shutdown_pool\n"
            "from repro.testbeds import Testbed, local_single_replayer\n"
            "if __name__ == '__main__':\n"
            "    profile = local_single_replayer().at_duration(3e6)\n"
            "    trials = Testbed(profile, seed=11).run_series(2, jobs=2)\n"
            "    with ParallelComparator(jobs=2, shard_packets=512,\n"
            "                            order_block_packets=512) as pc:\n"
            "        pc.compare_series(trials, environment=profile.name)\n"
            "    shutdown_pool()\n"
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
