"""API-surface integrity: every exported name exists and imports cleanly."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.core",
    "repro.net",
    "repro.timing",
    "repro.replay",
    "repro.generators",
    "repro.testbeds",
    "repro.analysis",
    "repro.experiments",
    "repro.parallel",
    "repro.viz",
]


class TestExports:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_entries_resolve(self, name):
        mod = importlib.import_module(name)
        assert hasattr(mod, "__all__"), f"{name} has no __all__"
        missing = [n for n in mod.__all__ if not hasattr(mod, n)]
        assert not missing, f"{name}.__all__ lists missing names: {missing}"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_docstrings_present(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20

    def test_lazy_subpackages_resolve(self):
        import repro

        for sub in ("net", "timing", "replay", "generators", "testbeds",
                    "analysis", "experiments", "parallel", "viz"):
            assert getattr(repro, sub) is importlib.import_module(f"repro.{sub}")

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.nonexistent_subpackage

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_public_callables_have_docstrings(self):
        """Every public function/class in __all__ carries a docstring."""
        undocumented = []
        for name in SUBPACKAGES[1:]:
            mod = importlib.import_module(name)
            for export in mod.__all__:
                obj = getattr(mod, export)
                if callable(obj) and not (obj.__doc__ or "").strip():
                    undocumented.append(f"{name}.{export}")
        assert not undocumented, undocumented

    def test_cli_module_importable(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.prog == "repro"
