"""Unit tests for latency step detection."""

import numpy as np
import pytest

from repro.analysis.changepoints import detect_latency_steps


def noisy(n, rng, sigma=50.0):
    return rng.normal(0.0, sigma, n)


class TestDetectSteps:
    def test_no_steps_in_noise(self, rng):
        steps = detect_latency_steps(noisy(20_000, rng))
        assert steps == []

    def test_single_step_found(self, rng):
        x = noisy(10_000, rng)
        x[6_000:] += 12_000.0  # a 12 us clock step
        steps = detect_latency_steps(x)
        assert len(steps) == 1
        s = steps[0]
        assert abs(s.index - 6_000) < 50
        assert s.step_ns == pytest.approx(12_000.0, rel=0.05)

    def test_two_steps_found_in_order(self, rng):
        x = noisy(15_000, rng)
        x[5_000:] += 8_000.0
        x[10_000:] -= 20_000.0
        steps = detect_latency_steps(x)
        assert len(steps) == 2
        assert steps[0].index < steps[1].index
        assert steps[0].step_ns == pytest.approx(8_000.0, rel=0.1)
        assert steps[1].step_ns == pytest.approx(-20_000.0, rel=0.1)

    def test_small_steps_ignored(self, rng):
        x = noisy(10_000, rng, sigma=5.0)
        x[5_000:] += 300.0  # below min_step_ns
        assert detect_latency_steps(x, min_step_ns=1_000.0) == []
        # ...but found when the threshold allows it.
        found = detect_latency_steps(x, min_step_ns=100.0)
        assert len(found) == 1

    def test_ramp_is_not_a_step_forest(self, rng):
        """A linear drift (freq error) should not explode into many steps."""
        x = noisy(20_000, rng, sigma=20.0) + np.linspace(0, 2_000.0, 20_000)
        steps = detect_latency_steps(x, min_step_ns=1_500.0)
        assert len(steps) <= 1

    def test_recovers_simulated_clock_steps(self):
        """End-to-end: inject steps via ClockStepModel, recover them."""
        from repro.core import Trial, latency_deltas_ns
        from repro.testbeds import ClockStepModel

        rng = np.random.default_rng(5)
        n = 50_000
        base = np.arange(n) * 284.0
        a = Trial(np.arange(n), base + rng.normal(0, 20, n).cumsum() * 0, label="A")
        model = ClockStepModel(rate_per_sec=2e8 / n / 284.0 * 2, scale_ns=50_000.0)
        stepped = model.apply(base + rng.normal(0, 10, n), n * 284.0, rng)
        b = Trial(np.arange(n), np.maximum.accumulate(stepped), label="B")
        deltas = latency_deltas_ns(a, b)
        steps = detect_latency_steps(deltas, min_step_ns=5_000.0)
        # The model drew Poisson(2) steps of ~50 us; at least one big one
        # should be recovered whenever any was injected.
        injected_spread = np.ptp(deltas)
        if injected_spread > 20_000:
            assert len(steps) >= 1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            detect_latency_steps(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            detect_latency_steps(np.zeros(10), min_step_ns=0.0)

    def test_short_series(self):
        assert detect_latency_steps(np.array([1.0, 2.0])) == []
