"""Differential harness: the parallel engine must equal serial *exactly*.

Every assertion here is bit-for-bit — ``==`` on floats and
``np.array_equal`` on arrays, never ``approx`` — because the sharded
engine's whole contract (see ``docs/parallel.md``) is that fan-out never
changes a single bit of the Section-3 analysis.  Randomized trial pairs
exercise drops, reorders and latency noise under every job count and
pathological shard sizes; degenerate shapes (empty, single-packet,
fully-dropped) pin the short-circuit paths.

The ordering-sharded axis (``TestOrderingShardedDifferential``) drives
the prefix-patience LIS merge (:mod:`repro.parallel.ordershard`) over
droppy/reordered/quiet pairs at every job count and pathological block
sizes, asserting full ``EditScript`` equality — not just ``O``.

``REPRO_DIFF_JOBS`` (comma-separated, e.g. ``2,4``) restricts the job
counts exercised — CI uses it to split the matrix across runners; the
randomized ordering pairs seed from ``REPRO_TEST_SEED`` (printed on
failure) so CI failures replay locally.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import SymlogBins, compare_series, compare_trials
from repro.parallel import (
    ParallelComparator,
    compare_series_parallel,
    compare_trials_parallel,
    default_jobs,
)

from .conftest import comb_trial, make_trial


def _job_counts() -> list[int]:
    raw = os.environ.get("REPRO_DIFF_JOBS", "1,2,4,8")
    return [int(tok) for tok in raw.split(",") if tok.strip()]


JOB_COUNTS = _job_counts()

#: Randomized pairs per job count; with the default four job counts the
#: suite proves exactness on 4 * 60 = 240 distinct randomized pairs.
N_RANDOM_PAIRS = 60


# -- exact-equality helpers ------------------------------------------------
# PairReport and DeltaHistogram hold ndarrays, so dataclass ``==`` is not
# usable; compare field by field.  Everything stays exact: array_equal is
# elementwise ``==`` and the scalar fields are plain floats/ints/strings.

def assert_hist_equal(got, want):
    assert got.bins == want.bins
    assert got.counts.dtype == want.counts.dtype
    assert np.array_equal(got.counts, want.counts)
    assert got.n_total == want.n_total
    assert got.label == want.label


def assert_pair_equal(got, want):
    assert got.baseline_label == want.baseline_label
    assert got.run_label == want.run_label
    assert got.metrics == want.metrics  # frozen dataclass of floats: exact
    assert got.n_baseline == want.n_baseline
    assert got.n_run == want.n_run
    assert got.n_common == want.n_common
    assert got.pct_iat_within_10ns == want.pct_iat_within_10ns
    assert got.move_stats == want.move_stats
    assert_hist_equal(got.iat_hist, want.iat_hist)
    assert_hist_equal(got.latency_hist, want.latency_hist)
    assert got.meta == want.meta


def assert_series_equal(got, want):
    assert got.environment == want.environment
    assert got.baseline_label == want.baseline_label
    assert len(got.pairs) == len(want.pairs)
    for g, w in zip(got.pairs, want.pairs):
        assert_pair_equal(g, w)


# -- randomized trial-pair generator ---------------------------------------

def random_pair(rng: np.random.Generator, n_base: int):
    """A (baseline, run) pair with drops, reorders and latency noise.

    Tags are drawn from a small alphabet so duplicates exercise the
    occurrence-rank matching; the run drops a random subset, gains a few
    packets of its own, and jitters every timestamp hard enough that
    re-sorting by time produces genuine reorders.
    """
    tags = rng.integers(0, max(2, n_base // 2), size=n_base).astype(np.int64)
    times = np.cumsum(rng.exponential(100.0, size=n_base))
    baseline = make_trial(times, tags)

    keep = rng.random(n_base) > 0.08  # ~8% drops
    run_tags = tags[keep]
    run_times = times[keep] + rng.normal(0.0, 180.0, size=int(keep.sum()))
    n_extra = int(rng.integers(0, 4))  # packets unique to the run
    if n_extra:
        run_tags = np.concatenate(
            [run_tags, rng.integers(10_000_000, 10_000_100, size=n_extra)]
        )
        run_times = np.concatenate(
            [run_times, rng.uniform(0.0, times[-1], size=n_extra)]
        )
    order = np.argsort(run_times, kind="stable")
    run = make_trial(run_times[order], run_tags[order])
    return baseline, run


# -- the differential suite ------------------------------------------------

class TestRandomizedDifferential:
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_randomized_pairs_exact(self, jobs):
        """N random droppy/reordered/noisy pairs: parallel == serial, bit-for-bit."""
        rng = np.random.default_rng(20250806 + jobs)
        # Tiny forced shards guarantee real fan-out even on small trials;
        # one comparator reuses its pool across all pairs.
        with ParallelComparator(jobs=jobs, shard_packets=61) as pc:
            for _ in range(N_RANDOM_PAIRS):
                n = int(rng.integers(40, 400))
                a, b = random_pair(rng, n)
                assert_pair_equal(pc.compare(a, b), compare_trials(a, b))

    @pytest.mark.parametrize("jobs", [j for j in JOB_COUNTS if j > 1] or [2])
    def test_randomized_series_exact(self, jobs):
        """Whole-pair fan-out (the many-runs strategy) equals serial."""
        rng = np.random.default_rng(77 + jobs)
        trials = [random_pair(rng, 200)[0] for _ in range(6)]
        got = compare_series_parallel(trials, environment="diff", jobs=jobs)
        want = compare_series(trials, environment="diff")
        assert_series_equal(got, want)

    def test_sharded_series_exact(self):
        """Within-pair fan-out for series (jobs > pairs) equals serial."""
        rng = np.random.default_rng(991)
        a, b = random_pair(rng, 300)
        got = compare_series_parallel(
            [a, b], environment="diff", jobs=min(4, max(JOB_COUNTS)), shard_packets=37
        )
        want = compare_series([a, b], environment="diff")
        assert_series_equal(got, want)


class TestShardSizeSweep:
    def test_every_shard_size_exact(self):
        """Shard sizes 1..n+1 on one pair all reproduce serial exactly."""
        rng = np.random.default_rng(5150)
        a, b = random_pair(rng, 9)
        want = compare_trials(a, b)
        n_common = want.n_common
        for shard in range(1, n_common + 2):
            got = compare_trials_parallel(a, b, jobs=1, shard_packets=shard)
            assert_pair_equal(got, want)

    def test_custom_bins_and_within_exact(self):
        rng = np.random.default_rng(62)
        a, b = random_pair(rng, 120)
        bins = SymlogBins(linthresh=5.0, max_decade=6, bins_per_decade=3)
        want = compare_trials(a, b, bins=bins, within_ns=25.0)
        got = compare_trials_parallel(
            a, b, bins=bins, within_ns=25.0, jobs=2, shard_packets=17
        )
        assert_pair_equal(got, want)


class TestDegenerateShapes:
    CASES = {
        "both-empty": lambda: (make_trial([]), make_trial([])),
        "empty-baseline": lambda: (make_trial([]), comb_trial(5)),
        "empty-run": lambda: (comb_trial(5), make_trial([])),
        "single-packet": lambda: (make_trial([10.0]), make_trial([12.5])),
        "all-dropped": lambda: (
            make_trial([0.0, 10.0, 20.0], tags=[1, 2, 3]),
            make_trial([1.0, 11.0, 21.0], tags=[7, 8, 9]),
        ),
        "identical": lambda: (comb_trial(64), comb_trial(64)),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("jobs", [1, min(2, max(JOB_COUNTS))])
    def test_degenerate_exact(self, case, jobs):
        a, b = self.CASES[case]()
        want = compare_trials(a, b)
        got = compare_trials_parallel(a, b, jobs=jobs, shard_packets=3)
        assert_pair_equal(got, want)


class TestOrderingShardedDifferential:
    """The prefix-patience ordering path (``order_block_packets``) must be
    bit-identical to serial on every pair kind × jobs × block size — the
    full :class:`~repro.core.ordering.EditScript`, not just ``O``."""

    @staticmethod
    def _pair(kind: str, rng: np.random.Generator, n: int):
        """Droppy / reordered / quiet pairs isolate the ordering regimes."""
        tags = rng.integers(0, max(2, n // 3), size=n).astype(np.int64)
        times = np.cumsum(rng.exponential(100.0, size=n))
        baseline = make_trial(times, tags)
        if kind == "droppy":
            keep = rng.random(n) > 0.3
            bt, btags = times[keep], tags[keep]
        elif kind == "reordered":
            bt = times + rng.normal(0.0, 600.0, size=n)  # hard shuffles
            btags = tags
        else:  # quiet: same packets, jitter too small to reorder
            bt = times + rng.uniform(0.0, 1.0, size=n)
            btags = tags
        order = np.argsort(bt, kind="stable")
        return baseline, make_trial(bt[order], btags[order])

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    @pytest.mark.parametrize("kind", ["droppy", "reordered", "quiet"])
    def test_edit_script_fields_exact(self, kind, jobs):
        from repro.core.matching import match_trials
        from repro.core.ordering import edit_script_from_matching
        from repro.parallel import edit_script_from_matching_sharded

        from .conftest import suite_rng

        rng = suite_rng(salt=200 + jobs)
        for _ in range(6):
            n = int(rng.integers(60, 400))
            a, b = self._pair(kind, rng, n)
            m = match_trials(a, b)
            want = edit_script_from_matching(m)
            for bp in (1, 23, max(1, m.n_common // 2), max(1, m.n_common)):
                got = edit_script_from_matching_sharded(m, jobs=jobs, block_packets=bp)
                assert np.array_equal(got.lcs_mask_b_order, want.lcs_mask_b_order)
                assert np.array_equal(got.signed_distances, want.signed_distances)
                assert np.array_equal(got.moved_distances, want.moved_distances)
                assert np.array_equal(got.deletions_b, want.deletions_b)
                assert np.array_equal(got.insertions_a, want.insertions_a)

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_engine_reports_exact_with_ordering_blocks(self, jobs):
        """Full PairReports through the engine with forced ordering blocks."""
        from .conftest import suite_rng

        rng = suite_rng(salt=300 + jobs)
        with ParallelComparator(
            jobs=jobs, shard_packets=61, order_block_packets=41
        ) as pc:
            for kind in ("droppy", "reordered", "quiet"):
                for _ in range(4):
                    n = int(rng.integers(50, 350))
                    a, b = self._pair(kind, rng, n)
                    assert_pair_equal(pc.compare(a, b), compare_trials(a, b))

    def test_ordering_block_size_sweep(self):
        """Block sizes 1..n_common+1 on one pair all reproduce serial."""
        from .conftest import suite_rng

        rng = suite_rng(salt=400)
        a, b = self._pair("reordered", rng, 40)
        want = compare_trials(a, b)
        for bp in range(1, want.n_common + 2):
            got = compare_trials_parallel(a, b, jobs=1, order_block_packets=bp)
            assert_pair_equal(got, want)

    def test_series_with_ordering_blocks_exact(self):
        from .conftest import suite_rng

        rng = suite_rng(salt=500)
        trials = [self._pair("droppy", rng, 160)[0] for _ in range(3)]
        got = compare_series_parallel(
            trials, environment="ord", jobs=min(2, max(JOB_COUNTS)),
            order_block_packets=37,
        )
        want = compare_series(trials, environment="ord")
        assert_series_equal(got, want)


class TestShardedMatching:
    """Tag-bucketed matching must reproduce the serial matcher exactly."""

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_forced_match_buckets_exact(self, jobs):
        from repro.core.matching import match_trials

        rng = np.random.default_rng(4242 + jobs)
        for buckets in (2, 3, 8):
            a, b = random_pair(rng, 300)
            with ParallelComparator(
                jobs=jobs, shard_packets=53, match_buckets=buckets
            ) as pc:
                assert_pair_equal(pc.compare(a, b), compare_trials(a, b))

    def test_match_buckets_zero_disables_but_stays_exact(self):
        rng = np.random.default_rng(515)
        a, b = random_pair(rng, 200)
        with ParallelComparator(jobs=1, shard_packets=31, match_buckets=0) as pc:
            assert_pair_equal(pc.compare(a, b), compare_trials(a, b))

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_match_trials_sharded_rows_exact(self, jobs):
        """Direct matcher comparison: same rows, same order, any buckets."""
        from repro.core.matching import match_trials
        from repro.parallel import match_trials_sharded

        rng = np.random.default_rng(9000 + jobs)
        for _ in range(10):
            n = int(rng.integers(30, 500))
            # Negative tags exercise the unsigned-view bucketing.
            tags = rng.integers(-50, max(2, n // 3), size=n).astype(np.int64)
            a = make_trial(np.cumsum(rng.exponential(90.0, n)), tags)
            keep = rng.random(n) > 0.1
            bt = np.sort(np.cumsum(rng.exponential(90.0, n))[keep])
            b = make_trial(bt, tags[keep])
            want = match_trials(a, b)
            for buckets in (None, 2, 5, 16):
                got = match_trials_sharded(a, b, jobs=jobs, n_buckets=buckets)
                assert np.array_equal(got.idx_a, want.idx_a)
                assert np.array_equal(got.idx_b, want.idx_b)
                assert (got.len_a, got.len_b) == (want.len_a, want.len_b)


class TestSerialFastPath:
    def test_jobs_one_uses_serial_driver(self):
        """jobs=1 without a forced shard size is the serial code, verbatim."""
        a, b = comb_trial(50), comb_trial(50, start=3.0)
        with ParallelComparator(jobs=1) as pc:
            assert_pair_equal(pc.compare(a, b), compare_trials(a, b))

    def test_default_jobs_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6

    def test_series_labeling_matches_serial(self):
        """Pre-labelled and unlabelled trials mix exactly as in serial."""
        rng = np.random.default_rng(13)
        trials = [random_pair(rng, 80)[0] for _ in range(4)]
        trials[2] = trials[2].relabel("custom")
        got = compare_series_parallel(
            trials, environment="lbl", jobs=2, shard_packets=29
        )
        want = compare_series(trials, environment="lbl")
        assert_series_equal(got, want)

    def test_series_requires_two_trials(self):
        with pytest.raises(ValueError):
            compare_series_parallel([comb_trial(4)], jobs=2)
