"""Unit tests for windowed deviation and trace statistics."""

import numpy as np
import pytest

from repro.analysis import detect_bursts, trace_stats
from repro.core import (
    Trial,
    cumulative_latency_ns,
    iat_deviation_ns,
    windowed_deviation,
)
from repro.net import make_tags

from .conftest import comb_trial, make_trial


class TestWindowedDeviation:
    def _pair(self, n=1000, gap=100.0):
        base = np.arange(n) * gap
        a = Trial(np.arange(n), base, label="A")
        # A localized disturbance: packets 400-449 delayed by 5 us.
        t = base.copy()
        t[400:450] += 5_000.0
        b = Trial(np.arange(n), np.maximum.accumulate(t), label="B")
        return a, b

    def test_windows_cover_trial(self):
        a, b = self._pair()
        w = windowed_deviation(a, b, window_ns=10_000.0)
        assert w.n_windows == 10
        assert int(w.n_common.sum()) == 1000

    def test_sums_decompose_the_metric_numerators(self):
        """Window sums add up exactly to the Eq. 3/4 numerators."""
        a, b = self._pair()
        w = windowed_deviation(a, b, window_ns=7_000.0)
        assert w.sum_abs_latency_ns.sum() == pytest.approx(
            cumulative_latency_ns(a, b), rel=1e-12
        )
        assert w.sum_abs_iat_ns.sum() == pytest.approx(
            iat_deviation_ns(a, b), rel=1e-12
        )

    def test_disturbance_localized(self):
        a, b = self._pair()
        w = windowed_deviation(a, b, window_ns=10_000.0)
        hot = w.hottest_windows(1, by="latency")[0]
        # Packets 400-449 live at 40-45 ms*1e-3... window 4 of 10.
        assert hot["window"] == 4

    def test_identical_pair_is_quiet(self):
        a = comb_trial(500)
        w = windowed_deviation(a, a.relabel("B"), window_ns=5_000.0)
        assert w.sum_abs_iat_ns.sum() == 0.0
        assert w.n_missing.sum() == 0

    def test_missing_attributed_to_baseline_window(self):
        a = comb_trial(100, gap_ns=100.0)
        b = a.drop_packets([55, 56, 57]).relabel("B")
        w = windowed_deviation(a, b, window_ns=1_000.0)
        # Packets 55-57 arrive at 5.5-5.7 us -> window 5.
        assert w.n_missing[5] == 3
        assert int(w.n_missing.sum()) == 3

    def test_rows_and_validation(self):
        a, b = self._pair(100)
        w = windowed_deviation(a, b, window_ns=2_000.0)
        assert len(w.rows()) == w.n_windows
        with pytest.raises(ValueError):
            windowed_deviation(a, b, window_ns=0.0)
        with pytest.raises(KeyError):
            w.hottest_windows(by="nope")

    def test_empty_baseline_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            windowed_deviation(make_trial([]), comb_trial(5), 100.0)


class TestDetectBursts:
    def test_clear_burst_structure(self):
        # 3 bursts of 4 packets: 10 ns intra, 1000 ns inter.
        times = []
        t = 0.0
        for _ in range(3):
            for _ in range(4):
                times.append(t)
                t += 10.0
            t += 1000.0
        trial = make_trial(times)
        ids = detect_bursts(trial, gap_threshold_ns=100.0)
        assert ids[-1] == 2
        np.testing.assert_array_equal(np.bincount(ids), [4, 4, 4])

    def test_no_bursts_single_run(self):
        trial = comb_trial(50, gap_ns=100.0)
        ids = detect_bursts(trial, gap_threshold_ns=200.0)
        assert ids[-1] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_bursts(comb_trial(5), 0.0)

    def test_empty(self):
        assert detect_bursts(make_trial([]), 10.0).shape == (0,)


class TestTraceStats:
    def test_paper_style_summary(self):
        # ~3.5 Mpps comb.
        trial = comb_trial(10_000, gap_ns=284.0)
        s = trace_stats(trial)
        assert s.n_packets == 10_000
        assert s.pps == pytest.approx(1e9 / 284.0, rel=1e-3)
        assert s.iat_p50_ns == pytest.approx(284.0)
        assert s.n_replayers == 1

    def test_per_replayer_composition(self):
        tags = np.concatenate([make_tags(60, replayer_id=1),
                               make_tags(40, replayer_id=2)])
        trial = Trial(tags, np.arange(100) * 10.0)
        s = trace_stats(trial)
        assert s.n_replayers == 2
        assert s.per_replayer_counts == {1: 60, 2: 40}

    def test_burst_statistics(self):
        times = []
        t = 0.0
        for _ in range(10):
            for _ in range(8):
                times.append(t)
                t += 112.0
            t += 5_000.0
        s = trace_stats(make_trial(times))
        assert s.n_bursts == 10
        assert s.mean_burst_size == pytest.approx(8.0)

    def test_empty_trial(self):
        s = trace_stats(make_trial([]))
        assert s.n_packets == 0
        assert s.pps == 0.0

    def test_rows_flat(self):
        s = trace_stats(comb_trial(100))
        row = s.rows()
        assert row["packets"] == 100
        assert "Mpps" in row
