#!/usr/bin/env python
"""Diff a ``repro stability`` report against a from-scratch serial sweep.

The acceptance check behind the ``stability-smoke`` CI job: the JSON a
pool-parallel, store-backed ``repro stability`` run emitted must contain
*exactly* the per-seed κ/I/L means the plain serial
:func:`repro.analysis.stats.seed_sweep` loop computes from nothing — no
store, no pool, no coordinator.  Any deviation means the stability
screen's execution shape leaked into its numbers, which is the one thing
the differential contract forbids.

Usage::

    python scripts/diff_stability_vs_seedsweep.py REPORT.json [--scale S]

Exit codes: 0 identical, 1 mismatch, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", type=Path, help="stability.json to check")
    parser.add_argument(
        "--scale", type=float, default=None,
        help="duration scale to rerun at (default: the report's own "
        "recorded duration_scale, falling back to REPRO_SCALE or 0.25)",
    )
    args = parser.parse_args(argv)

    from repro.analysis.stats import seed_sweep
    from repro.experiments.scenarios import default_duration_scale, scenario

    doc = json.loads(args.report.read_text())
    if doc.get("kind") != "stability-report":
        print(f"error: {args.report} is not a stability report", file=sys.stderr)
        return 2
    scale = args.scale
    if scale is None:
        scale = doc.get("params", {}).get("duration_scale")
    if scale is None:
        scale = default_duration_scale()

    failures = 0
    for block in doc["environments"]:
        key = block["scenario"]
        profile = scenario(key).profile(scale)
        serial = seed_sweep(profile, block["seeds"], n_runs=block["n_runs"])
        block_failures = 0
        for name, reported in (
            ("kappa", block["kappa"]),
            ("I", block["I"]),
            ("L", block["L"]),
        ):
            want = {
                "kappa": serial.kappa,
                "I": serial.i_values,
                "L": serial.l_values,
            }[name]
            got = [float(v) for v in reported]
            if got != list(want):  # exact float equality — bits, not approx
                block_failures += 1
                print(
                    f"MISMATCH {key} {name}: report {got} != serial {list(want)}",
                    file=sys.stderr,
                )
        failures += block_failures
        if not block_failures:
            print(
                f"ok {key}: {len(block['seeds'])} seeds x {block['n_runs']} "
                "runs match the serial seed sweep bit-for-bit"
            )
    if failures:
        print(f"{failures} metric vector(s) diverged", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
