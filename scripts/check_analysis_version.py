#!/usr/bin/env python
"""Guard: metric-bearing source cannot change without an ANALYSIS_VERSION bump.

The artifact store (:mod:`repro.sweep.store`) keys cached trial series
and Section-3 reports by ``ANALYSIS_VERSION``.  If the code that
produces those bits changes but the version does not, every existing
store resurrects stale results — silently, because the digest still
matches.  This script makes that failure mode a CI error:

* a manifest (``scripts/analysis_version_manifest.json``) records the
  sha256 of every ``*.py`` file under ``src/repro/core/`` and
  ``src/repro/analysis/`` alongside the ``ANALYSIS_VERSION`` they were
  recorded at;
* ``check`` (the default) fails when the working tree disagrees with
  the manifest — naming the changed files and whether the version was
  bumped;
* ``--update`` re-records the manifest, refusing to do so after a
  content change unless ``ANALYSIS_VERSION`` was bumped (or
  ``--allow-same-version`` is given for changes argued not to alter any
  stored bit — docstrings, comments, new code behind new entry points).

Workflow when touching metric code::

    1. edit src/repro/core/... or src/repro/analysis/...
    2. bump ANALYSIS_VERSION in src/repro/sweep/store.py
       (or decide the change is bit-neutral)
    3. python scripts/check_analysis_version.py --update
       [--allow-same-version]
    4. commit the manifest with the change

Exit codes: 0 in sync, 1 violation, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import sys
from pathlib import Path

#: Directories whose ``*.py`` files determine stored bits.
GUARDED_DIRS = ("src/repro/core", "src/repro/analysis")
#: Where ``ANALYSIS_VERSION`` is declared.
VERSION_FILE = "src/repro/sweep/store.py"
#: The recorded state this script checks against.
MANIFEST = "scripts/analysis_version_manifest.json"

_VERSION_RE = re.compile(r"^ANALYSIS_VERSION\s*=\s*(\d+)\s*$", re.MULTILINE)


def read_analysis_version(root: Path) -> int:
    """Parse ``ANALYSIS_VERSION`` out of the store module's source."""
    source = (root / VERSION_FILE).read_text()
    match = _VERSION_RE.search(source)
    if match is None:
        raise SystemExit(
            f"error: no 'ANALYSIS_VERSION = <int>' line in {VERSION_FILE}"
        )
    return int(match.group(1))


def hash_guarded_files(root: Path) -> dict[str, str]:
    """sha256 per guarded file, keyed by posix-style repo-relative path."""
    hashes: dict[str, str] = {}
    for dirname in GUARDED_DIRS:
        base = root / dirname
        if not base.is_dir():
            raise SystemExit(f"error: guarded directory {dirname} not found")
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            hashes[rel] = hashlib.sha256(path.read_bytes()).hexdigest()
    return hashes


def load_manifest(root: Path) -> dict:
    path = root / MANIFEST
    if not path.is_file():
        raise SystemExit(
            f"error: {MANIFEST} missing; create it with --update "
            "--allow-same-version"
        )
    return json.loads(path.read_text())


def diff_files(recorded: dict[str, str], current: dict[str, str]) -> list[str]:
    """Changed, added, or removed guarded files (sorted)."""
    changed = {
        rel for rel in set(recorded) | set(current)
        if recorded.get(rel) != current.get(rel)
    }
    return sorted(changed)


def check(root: Path) -> int:
    manifest = load_manifest(root)
    version = read_analysis_version(root)
    changed = diff_files(manifest.get("files", {}), hash_guarded_files(root))
    recorded_version = manifest.get("analysis_version")

    if not changed and version == recorded_version:
        print(
            f"analysis version guard: OK ({len(manifest['files'])} files "
            f"in sync at ANALYSIS_VERSION={version})"
        )
        return 0

    print("analysis version guard: FAIL", file=sys.stderr)
    for rel in changed:
        print(f"  changed: {rel}", file=sys.stderr)
    if changed and version == recorded_version:
        print(
            f"\nMetric-bearing files changed but ANALYSIS_VERSION is still "
            f"{version}: persistent stores would resurrect stale results.\n"
            f"Bump ANALYSIS_VERSION in {VERSION_FILE}, then run\n"
            f"  python scripts/check_analysis_version.py --update\n"
            f"(or --update --allow-same-version if no stored bit changes).",
            file=sys.stderr,
        )
    else:
        print(
            f"\nManifest is stale (recorded ANALYSIS_VERSION="
            f"{recorded_version}, source says {version}).  Re-record with\n"
            f"  python scripts/check_analysis_version.py --update",
            file=sys.stderr,
        )
    return 1


def update(root: Path, *, allow_same_version: bool) -> int:
    version = read_analysis_version(root)
    current = hash_guarded_files(root)
    path = root / MANIFEST
    if path.is_file():
        manifest = json.loads(path.read_text())
        changed = diff_files(manifest.get("files", {}), current)
        if (
            changed
            and version <= manifest.get("analysis_version", 0)
            and not allow_same_version
        ):
            print(
                f"refusing to re-record {len(changed)} changed files at the "
                f"same ANALYSIS_VERSION={version}; bump it in {VERSION_FILE} "
                "first, or pass --allow-same-version for a change that "
                "provably alters no stored bit.",
                file=sys.stderr,
            )
            return 1
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = {"analysis_version": version, "files": current}
    path.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
    print(
        f"recorded {len(current)} files at ANALYSIS_VERSION={version} "
        f"into {MANIFEST}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root (default: this script's grandparent)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="re-record the manifest instead of checking it",
    )
    parser.add_argument(
        "--allow-same-version", action="store_true",
        help="with --update: permit re-recording changed files without a "
        "version bump (bit-neutral changes only)",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()
    if not (root / VERSION_FILE).is_file():
        print(f"error: {root} does not look like the repo root", file=sys.stderr)
        return 2
    if args.update:
        return update(root, allow_same_version=args.allow_same_version)
    return check(root)


if __name__ == "__main__":
    sys.exit(main())
