#!/usr/bin/env python3
"""Scrape and parse a repro ``/metrics`` endpoint (Prometheus text).

The CI ``obs-live-smoke`` job starts ``repro monitor --serve-metrics``
in the background and needs a mid-run scrape that (a) retries until the
server is up *and* every required family has been minted by the engine,
(b) *parses* the exposition format rather than grepping it, and
(c) asserts that required metric families are present.  Stdlib only,
like everything else in this repo.

Usage::

    python scripts/scrape_metrics.py http://127.0.0.1:9464/metrics \
        --timeout 40 \
        --require repro_monitor_window_kappa \
        --require repro_monitor_windows_total

Exit 0 when the scrape succeeds and every ``--require`` family is
present; exit 1 otherwise.  ``parse_prometheus`` is importable from
tests — the acceptance criterion is a parsed scrape, not a string
match.
"""

from __future__ import annotations

import argparse
import re
import sys
import time
import urllib.error
import urllib.request

#: ``metric_name{labels} value`` — labels optional, value last.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(token: str) -> float:
    if token == "+Inf":
        return float("inf")
    if token == "-Inf":
        return float("-inf")
    if token == "NaN":
        return float("nan")
    return float(token)


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text exposition format 0.0.4 into plain data.

    Returns ``{family: {"type": str|None, "help": str|None, "samples":
    [(name, labels_dict, value), ...]}}`` where *family* is the base
    metric name from ``# TYPE`` (or the sample name itself for untyped
    series).  Histogram ``_bucket``/``_sum``/``_count`` samples attach
    to their family.  Raises :class:`ValueError` on malformed lines —
    a scrape must be parseable, not merely greppable.
    """
    families: dict[str, dict] = {}
    typed: dict[str, str] = {}

    def family_of(sample_name: str) -> str:
        for fam in typed:
            if sample_name == fam or (
                typed[fam] == "histogram"
                and sample_name in (f"{fam}_bucket", f"{fam}_sum", f"{fam}_count")
            ):
                return fam
        return sample_name

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                raise ValueError(f"line {lineno}: malformed TYPE comment")
            _, _, name, mtype = parts
            typed[name] = mtype
            families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )["type"] = mtype
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP comment")
            name = parts[2]
            families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        labels = {}
        if m.group("labels"):
            pairs = _LABEL_RE.findall(m.group("labels"))
            if not pairs:
                raise ValueError(f"line {lineno}: unparseable labels")
            labels = {
                k: v.replace(r"\"", '"').replace(r"\n", "\n").replace("\\\\", "\\")
                for k, v in pairs
            }
        value = _parse_value(m.group("value"))
        fam = family_of(m.group("name"))
        families.setdefault(fam, {"type": None, "help": None, "samples": []})[
            "samples"
        ].append((m.group("name"), labels, value))
    return families


def scrape(url: str, timeout_s: float, require=()) -> dict:
    """GET and parse ``url``, retrying until every ``require`` family shows.

    Retries cover both failure modes of a mid-run scrape: the server not
    yet listening, and the server up before the engine has minted the
    awaited families (e.g. no window has closed yet, so the per-session
    kappa gauge does not exist).  Raises :class:`TimeoutError` when
    ``timeout_s`` elapses first; parse errors propagate immediately — a
    malformed exposition will not fix itself.
    """
    deadline = time.monotonic() + timeout_s
    last: str | None = None
    while True:
        try:
            with urllib.request.urlopen(url, timeout=5) as resp:
                families = parse_prometheus(resp.read().decode("utf-8"))
        except (urllib.error.URLError, OSError) as exc:
            last = str(exc)
        else:
            missing = [f for f in require if f not in families]
            if not missing:
                return families
            last = f"missing families {missing}, present {sorted(families)}"
        if time.monotonic() >= deadline:
            raise TimeoutError(
                f"no satisfying scrape from {url} within {timeout_s:g}s: {last}"
            )
        time.sleep(0.25)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Scrape and parse a repro /metrics endpoint."
    )
    parser.add_argument("url", help="the /metrics URL to scrape")
    parser.add_argument("--timeout", type=float, default=30.0, metavar="S",
                        help="seconds to keep retrying (default 30)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="FAMILY",
                        help="metric family that must be present (repeatable)")
    args = parser.parse_args(argv)
    try:
        families = scrape(args.url, args.timeout, require=args.require)
    except TimeoutError as exc:
        print(f"SCRAPE FAILED: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"PARSE FAILED: {exc}", file=sys.stderr)
        return 1
    n_samples = sum(len(f["samples"]) for f in families.values())
    print(f"OK: {len(families)} families, {n_samples} samples")
    for fam in args.require:
        for name, labels, value in families[fam]["samples"]:
            rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            print(f"  {name}{{{rendered}}} = {value}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
