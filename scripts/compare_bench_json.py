#!/usr/bin/env python3
"""Diff two ``benchmarks/out/*.json`` artifacts across runs/PRs.

Every benchmark emits a structured result document (see
``benchmarks/_emit.py``): ``{bench, params, host, wall_s, per_stage}``.
Until now there was no tool to compare two of them, so the bench
trajectory across PRs was write-only.  This script diffs a *baseline*
against a *candidate*:

* refuses to compare different benchmarks, and warns when ``params`` or
  the measurement host differ (a wall-time delta measured on different
  core counts is noise, not signal);
* reports ``wall_s`` and every shared ``per_stage`` entry as absolute
  and percent deltas, plus stages that appear/disappear;
* flags regressions past a threshold (``--threshold-pct``, default 10%)
  and exits 1 when ``--fail-on-regression`` is set — the CI wiring.

Usage::

    python scripts/compare_bench_json.py old/streaming_kappa.json \
        new/streaming_kappa.json --threshold-pct 15 --fail-on-regression

Stdlib only.  Output is plain text, one line per compared quantity.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_bench(path) -> dict:
    """Load and shape-check one benchmark JSON document."""
    doc = json.loads(Path(path).read_text())
    for key in ("bench", "params", "wall_s", "per_stage"):
        if key not in doc:
            raise ValueError(f"{path}: not a bench document (missing {key!r})")
    if not isinstance(doc["per_stage"], dict):
        raise ValueError(f"{path}: per_stage must be an object")
    return doc


def _pct(old: float, new: float) -> float | None:
    """Percent change new vs old; None when old is ~zero (undefined)."""
    if old <= 1e-12:
        return None
    return (new - old) / old * 100.0


def compare_bench(
    baseline: dict, candidate: dict, *, threshold_pct: float = 10.0
) -> dict:
    """Structured comparison of two bench documents.

    Returns ``{bench, comparable, warnings, rows, regressions}`` where
    each row is ``{name, base_s, cand_s, delta_s, delta_pct, flag}`` and
    ``flag`` is ``"REGRESSION"`` / ``"improved"`` / ``""``.  Rows for
    stages present on only one side get ``None`` for the missing value.
    """
    warnings: list[str] = []
    if baseline["bench"] != candidate["bench"]:
        raise ValueError(
            f"refusing to compare different benchmarks: "
            f"{baseline['bench']!r} vs {candidate['bench']!r}"
        )
    if baseline["params"] != candidate["params"]:
        warnings.append(
            "params differ: "
            f"baseline {baseline['params']} vs candidate {candidate['params']}"
        )
    hb, hc = baseline.get("host", {}), candidate.get("host", {})
    for key in ("usable_cores", "pool_start_method"):
        if hb.get(key) != hc.get(key):
            warnings.append(
                f"host {key} differs: {hb.get(key)!r} vs {hc.get(key)!r} "
                "(wall-time deltas may be host noise)"
            )

    rows = []
    regressions = []

    def add_row(name: str, old, new) -> None:
        if old is None or new is None:
            rows.append({
                "name": name, "base_s": old, "cand_s": new,
                "delta_s": None, "delta_pct": None,
                "flag": "added" if old is None else "removed",
            })
            return
        pct = _pct(old, new)
        flag = ""
        if pct is not None and pct > threshold_pct:
            flag = "REGRESSION"
            regressions.append(name)
        elif pct is not None and pct < -threshold_pct:
            flag = "improved"
        rows.append({
            "name": name, "base_s": old, "cand_s": new,
            "delta_s": new - old, "delta_pct": pct, "flag": flag,
        })

    add_row("wall_s", float(baseline["wall_s"]), float(candidate["wall_s"]))
    stages = sorted(
        set(baseline["per_stage"]) | set(candidate["per_stage"])
    )
    for name in stages:
        add_row(
            f"per_stage.{name}",
            baseline["per_stage"].get(name),
            candidate["per_stage"].get(name),
        )
    return {
        "bench": baseline["bench"],
        "comparable": not warnings,
        "warnings": warnings,
        "rows": rows,
        "regressions": regressions,
    }


def render(result: dict) -> str:
    """The human rendering of :func:`compare_bench`."""
    lines = [f"== bench diff: {result['bench']} =="]
    for w in result["warnings"]:
        lines.append(f"warning: {w}")
    lines.append(
        f"  {'quantity':<32s} {'baseline':>12s} {'candidate':>12s} "
        f"{'delta':>12s} {'%':>8s}"
    )
    for row in result["rows"]:
        base = f"{row['base_s']:.4f}s" if row["base_s"] is not None else "-"
        cand = f"{row['cand_s']:.4f}s" if row["cand_s"] is not None else "-"
        delta = (
            f"{row['delta_s']:+.4f}s" if row["delta_s"] is not None else "-"
        )
        pct = (
            f"{row['delta_pct']:+.1f}%" if row["delta_pct"] is not None else "-"
        )
        flag = f"  {row['flag']}" if row["flag"] else ""
        lines.append(
            f"  {row['name']:<32s} {base:>12s} {cand:>12s} "
            f"{delta:>12s} {pct:>8s}{flag}"
        )
    if result["regressions"]:
        lines.append(
            f"{len(result['regressions'])} regression(s): "
            + ", ".join(result["regressions"])
        )
    else:
        lines.append("no regressions past threshold")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two benchmarks/out/*.json artifacts."
    )
    parser.add_argument("baseline", help="the older bench JSON")
    parser.add_argument("candidate", help="the newer bench JSON")
    parser.add_argument(
        "--threshold-pct", type=float, default=10.0, metavar="PCT",
        help="flag quantities more than PCT%% slower as regressions "
        "(default 10)",
    )
    parser.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 1 when any quantity regresses past the threshold",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_bench(args.baseline)
        candidate = load_bench(args.candidate)
        result = compare_bench(
            baseline, candidate, threshold_pct=args.threshold_pct
        )
    except ValueError as exc:
        print(f"compare_bench_json: {exc}", file=sys.stderr)
        return 2
    print(render(result))
    if args.fail_on_regression and result["regressions"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
