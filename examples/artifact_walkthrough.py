#!/usr/bin/env python3
"""End-to-end walkthrough of the paper's artifact (Appendix A/B).

The published artifact is a Jupyter notebook that (1) provisions a FABRIC
slice with three VMs and two dedicated smart NICs over an L2Bridge,
(2) installs the tools, (3) records and replays traffic, and (4) analyzes
the captures into figures and a metrics text file.  This script walks the
same arc against the simulated testbed — slice reservation included — so
the whole workflow is visible in one place.

Run:  python examples/artifact_walkthrough.py  [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import render_report, save_series
from repro.core import compare_series
from repro.net import NodeRole
from repro.testbeds import (
    NetworkServiceKind,
    NICKind,
    Slice,
    Testbed,
    fabric_dedicated_40g,
)


def provision_slice() -> Slice:
    """Appendix B step 1: three VMs, two dedicated smart NICs, L2Bridge."""
    sl = Slice("choir-artifact")
    gen = sl.add_node("generator", cores=8, ram_gb=32, role=NodeRole.GENERATOR)
    rep = sl.add_node("replayer", cores=8, ram_gb=32, role=NodeRole.REPLAYER)
    rec = sl.add_node("recorder", cores=8, ram_gb=32, role=NodeRole.RECORDER)
    gen.add_nic("nic0", NICKind.SHARED_VF)
    rep.add_nic("nic0", NICKind.DEDICATED_CX6)      # the two dedicated
    rec.add_nic("nic0", NICKind.DEDICATED_CX6)      # smart NICs
    sl.add_network_service(
        "bridge",
        NetworkServiceKind.L2_BRIDGE,
        [("generator", "nic0"), ("replayer", "nic0"), ("recorder", "nic0")],
    )
    sl.submit()
    return sl


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="choir-artifact-")
    )

    print("== step 1: provision the slice ==")
    sl = provision_slice()
    u = sl.site.utilization()
    print(f"slice {sl.name!r} submitted on site {sl.site.name} "
          f"(site utilization: {u['cores']:.1%} CPU, {u['ram']:.1%} RAM)")
    print(f"PTP available: {sl.ptp_synchronized}; "
          f"shared NICs in the data path: {sl.uses_shared_nics()}")
    topo = sl.to_topology()
    print(f"lowered to {topo!r}\n")

    print("== step 2-3: record a replay buffer and run 5 replays ==")
    profile = fabric_dedicated_40g().at_duration(30e6)
    trials = Testbed(profile, seed=9).run_series(5)
    print(f"captured runs: {[f'{t.label}:{len(t):,}' for t in trials]}\n")

    print("== step 4: save captures and analyze ==")
    save_series(trials, out / "captures")
    report = compare_series(trials, environment=profile.name)
    (out / "metrics.txt").write_text(render_report(report))
    print(render_report(report, histograms=False))
    print(f"full report (with figure histograms): {out / 'metrics.txt'}")

    print("\n== teardown ==")
    sl.delete()
    print(f"slice deleted; site back to "
          f"{sl.site.utilization()['cores']:.1%} CPU allocated")


if __name__ == "__main__":
    main()
