#!/usr/bin/env python3
"""Compare testbed environments with the κ consistency score.

The paper's headline use case: quantify how much less consistent a
federated, virtualized testbed is than a dedicated local one, and how
much worse it gets when a co-tenant loads the shared hardware.  This
example runs a representative subset of the nine evaluation environments
and prints their Table-2 rows plus the paper's own numbers next to them.

Run:  python examples/compare_environments.py  [--full]
      (--full uses the paper's 0.3 s captures; default is 1/10 scale)
"""

import sys

from repro.analysis import render_metric_rows
from repro.experiments import SCENARIOS, run_scenario, scenario


def main() -> None:
    scale = 1.0 if "--full" in sys.argv else 0.1
    keys = [
        "local-single",
        "local-dual",
        "fabric-shared-40g",
        "fabric-dedicated-80g",
        "fabric-shared-40g-noisy",
    ]

    rows = []
    for key in keys:
        sc = scenario(key)
        print(f"running {key} ... ({sc.description})")
        report = run_scenario(key, duration_scale=scale)
        row = report.mean_row()
        row["paper_kappa"] = sc.paper.kappa
        row["delta_vs_paper"] = row["kappa"] - sc.paper.kappa
        rows.append(row)

    print()
    print("environment consistency (measured vs paper):")
    print(render_metric_rows(
        rows,
        columns=["environment", "U", "O", "I", "L", "kappa", "paper_kappa", "delta_vs_paper"],
    ))

    quiet = [r for r in rows if "noisy" not in r["environment"]]
    noisy = [r for r in rows if "noisy" in r["environment"]]
    if quiet and noisy:
        best = max(quiet, key=lambda r: r["kappa"])
        worst = min(noisy, key=lambda r: r["kappa"])
        drop = best["kappa"] - worst["kappa"]
        print(
            f"shared-infrastructure cost: {best['environment']} -> "
            f"{worst['environment']} loses {drop:.4f} kappa "
            f"({drop * 100:.1f}% less consistent, in the paper's phrasing)"
        )


if __name__ == "__main__":
    main()
