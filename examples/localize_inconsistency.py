#!/usr/bin/env python3
"""Localize *when* a testbed misbehaved with windowed deviation analysis.

The κ score says an environment is inconsistent; the debugging question
is **when** — which milliseconds of the replay carry the damage, and is
it drops, latency excursions, or IAT scatter?  This example runs the
noisy shared-NIC scenario, slices the worst run into 1 ms windows, and
prints (and charts) the deviation time series with the hottest windows
called out — contention bursts stand out immediately against the quiet
floor.

Run:  python examples/localize_inconsistency.py  [output.svg]
"""

import sys

import numpy as np

from repro.analysis import render_metric_rows, trace_stats
from repro.core import compare_trials, windowed_deviation
from repro.experiments import run_scenario_trials
from repro.viz import series_lines


def main() -> None:
    print("running the noisy shared-NIC scenario ...")
    trials = run_scenario_trials("fabric-shared-40g-noisy", duration_scale=0.15)
    baseline = trials[0]

    stats = trace_stats(baseline)
    print(f"baseline capture: {stats.n_packets:,} packets, "
          f"{stats.pps / 1e6:.2f} Mpps, {stats.n_bursts:,} wire bursts "
          f"(mean {stats.mean_burst_size:.1f} packets)\n")

    # Pick the least consistent repeat run.
    worst = min(trials[1:], key=lambda t: compare_trials(baseline, t).kappa)
    report = compare_trials(baseline, worst)
    print(f"worst run: {worst.label}  kappa={report.kappa:.4f}  "
          f"missing={report.n_missing}")

    w = windowed_deviation(baseline, worst, window_ns=1e6)  # 1 ms windows
    print(f"\nsliced into {w.n_windows} windows of 1 ms:")
    print(render_metric_rows(w.hottest_windows(5, by="iat")))

    quiet_floor = float(np.median(w.mean_abs_iat_ns()))
    hot = w.hottest_windows(1, by="iat")[0]
    hot_mean = w.mean_abs_iat_ns()[hot["window"]]
    print(f"quiet-floor mean |IAT delta| : {quiet_floor:8.1f} ns/window")
    print(f"hottest window               : {hot_mean:8.1f} ns "
          f"(x{hot_mean / max(quiet_floor, 1):.0f}, at {hot['start_ms']:.1f} ms)")
    if w.n_missing.sum():
        drop_windows = np.flatnonzero(w.n_missing)
        print(f"drops concentrated in windows: {drop_windows.tolist()}")

    out = sys.argv[1] if len(sys.argv) > 1 else "/tmp/inconsistency_timeline.svg"
    series_lines(
        w.starts_ns / 1e6,
        {
            "mean |IAT delta| (ns)": w.mean_abs_iat_ns(),
            "missing packets": w.n_missing.astype(float),
        },
        title=f"Deviation timeline, run {worst.label} vs A (noisy shared NICs)",
        xlabel="time into replay (ms)",
        ylabel="per-window deviation",
        log_y=False,
    ).save(out)
    print(f"\ntimeline chart written to {out}")


if __name__ == "__main__":
    main()
