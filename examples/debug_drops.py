#!/usr/bin/env python3
"""Use Choir as a debugging tool: localize drops and reordering.

Section 1 motivates Choir for debugging — non-deterministic failures on
shared infrastructure get misread as application bugs.  This example
shows the debugging workflow on the paper's noisy shared-NIC scenario:

1. replay the same recording repeatedly while a co-tenant hammers the
   shared port;
2. detect that runs disagree (U > 0) via the metrics;
3. identify exactly *which* packets vanished using the tag algebra —
   including which replay node emitted them and where in the stream they
   sat — the kind of evidence that separates "my protocol is buggy" from
   "the testbed dropped my packets".

Run:  python examples/debug_drops.py
"""

import numpy as np

from repro.analysis import render_metric_rows, split_tags
from repro.core import compare_trials
from repro.experiments import run_scenario_trials


def main() -> None:
    print("replaying on FABRIC shared NICs against an iperf3 co-tenant ...")
    trials = run_scenario_trials("fabric-shared-40g-noisy", duration_scale=0.2)
    baseline = trials[0]

    rows = []
    for run in trials[1:]:
        report = compare_trials(baseline, run)
        rows.append(report.row())
    print(render_metric_rows(rows, columns=["run", "U", "kappa", "n_missing"]))

    # Drill into the worst run: which packets are missing?
    worst = max(trials[1:], key=lambda t: len(baseline) - len(t))
    missing_tags = np.setdiff1d(baseline.tags, worst.tags)
    if missing_tags.size == 0:
        print("no drops this time — the co-tenant load is bursty; rerun to catch one")
        return

    replayer_ids, sequences = split_tags(missing_tags)
    print(f"run {worst.label}: {missing_tags.size} packets missing")
    for rid in np.unique(replayer_ids):
        seqs = sequences[replayer_ids == rid]
        print(
            f"  replayer {rid}: {seqs.size} drops, "
            f"sequence range {seqs.min()}..{seqs.max()}"
        )

    # Where in time did they vanish?  Look the tags up in the baseline.
    pos = np.flatnonzero(np.isin(baseline.tags, missing_tags))
    t = baseline.times_ns[pos]
    print(
        f"  drop window in the baseline timeline: "
        f"{t.min() / 1e6:.3f} ms .. {t.max() / 1e6:.3f} ms "
        f"({pos.size} packets across {np.unique(pos // 1000).size} ms-scale clusters)"
    )
    print("\nconclusion: losses cluster in contention windows on the shared port —")
    print("testbed-induced, not an application bug.")


if __name__ == "__main__":
    main()
