#!/usr/bin/env python3
"""Artifact-style offline pipeline: save captures, re-analyze from disk.

The paper's artifact saves per-run packet captures and analyzes them in a
separate pass, producing figures plus "the metrics ... in a text file".
This example does the same with the simulator's capture format:

1. run a trial series and save each run as a ``.cho`` capture file;
2. reload the directory cold (as a separate analysis session would);
3. run the Section-3 analysis and write the text report.

Run:  python examples/capture_pipeline.py  [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis import analyze_directory, load_series, render_report, save_series
from repro.testbeds import Testbed, fabric_shared_40g


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="choir-"))

    profile = fabric_shared_40g().at_duration(25e6)
    print(f"recording + replaying on {profile.name} ...")
    trials = Testbed(profile, seed=5).run_series(5)

    paths = save_series(trials, out)
    total = sum(p.stat().st_size for p in paths)
    print(f"saved {len(paths)} captures to {out} ({total / 1e6:.1f} MB)")

    # A fresh analysis session: everything below uses only the files.
    reloaded = load_series(out)
    assert all(len(a) == len(b) for a, b in zip(trials, reloaded))

    report = analyze_directory(out, environment=profile.name)
    report_path = out / "metrics.txt"
    report_path.write_text(render_report(report, histograms=True))
    print(f"analysis written to {report_path}")
    print()
    print(render_report(report, histograms=False))


if __name__ == "__main__":
    main()
