#!/usr/bin/env python3
"""Quickstart: measure a testbed's consistency with Choir.

Reproduces the paper's core workflow in ~20 lines:

1. pick an environment (the paper's local bare-metal testbed);
2. record one Choir replay buffer and replay it five times;
3. compare runs B-E against run A with the Section-3 metrics;
4. print the per-run metrics, the κ score, and the IAT-delta histogram.

Run:  python examples/quickstart.py  [duration_ms]
"""

import sys

from repro import compare_series
from repro.analysis import render_histogram, render_metric_rows
from repro.testbeds import Testbed, local_single_replayer


def main() -> None:
    duration_ms = float(sys.argv[1]) if len(sys.argv) > 1 else 30.0

    # The paper's Section-6 environment: 40 Gbps of 1400-byte packets
    # through a Tofino2, recorded on an Intel E810.
    profile = local_single_replayer().at_duration(duration_ms * 1e6)
    print(f"environment: {profile.name}  ({profile.describe()})")

    # Record once, replay five times (run A is the baseline).
    trials = Testbed(profile, seed=7).run_series(5)
    print(f"captured {len(trials)} runs of {len(trials[0]):,} packets each\n")

    # The Section-3 analysis: U, O, L, I and the compound kappa.
    report = compare_series(trials, environment=profile.name)
    print("per-run metrics vs run A:")
    print(render_metric_rows(
        report.run_rows(),
        columns=["run", "U", "O", "I", "L", "kappa", "pct_iat_10ns"],
    ))
    print("environment mean (a Table-2 row):")
    print(render_metric_rows([report.mean_row()]))

    # The Figure-4a view: how repeatable are inter-arrival times?
    print(render_histogram(report.pairs[0].iat_hist,
                           title="IAT deltas, run B vs run A:"))


if __name__ == "__main__":
    main()
