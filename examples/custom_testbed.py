#!/usr/bin/env python3
"""Model your own testbed and predict its consistency before measuring.

The profiles shipping with this package describe the paper's two
testbeds, but :class:`~repro.testbeds.EnvironmentProfile` is a kit: plug
in your switch, NIC, clock, and scheduling characteristics and the
calibration model predicts the metric magnitudes you should observe —
then the simulator checks the prediction.

This example builds a hypothetical 25 Gbps edge testbed (cheap NICs,
software switch, containerized apps) and compares prediction vs
simulation.

Run:  python examples/custom_testbed.py
"""

from repro import compare_series
from repro.analysis import render_metric_rows
from repro.net import SwitchModel, TxNicModel
from repro.replay import PollLoopCost, ReplayTimingModel
from repro.testbeds import EnvironmentProfile, Testbed, expected_metrics
from repro.timing import RealtimeHWStamper


def main() -> None:
    profile = EnvironmentProfile(
        name="edge-25g",
        rate_bps=10e9,              # 10 Gbps of traffic on a 25 Gbps port
        packet_bytes=1400,
        duration_ns=50e6,           # 50 ms captures
        loop_cost=PollLoopCost(iteration_ns=3000.0, per_packet_ns=60.0),
        tx_nic=TxNicModel(rate_bps=25e9, pull_delay_ns=1200.0, pull_jitter=0.3),
        switch=SwitchModel(
            name="software-switch",
            pipeline_latency_ns=15_000.0,  # a DPDK vSwitch, not an ASIC
            jitter_ns=40.0,
            egress_rate_bps=25e9,
        ),
        rx_stamper=RealtimeHWStamper(jitter_ns=6.0, resolution_ns=8.0),
        replay_timing=ReplayTimingModel(
            poll_granularity_ns=80.0,
            stall_prob=5e-3,           # containers share cores
            stall_scale_ns=12_000.0,
            freq_error_ppm=15.0,
        ),
        shared_port_rate_bps=25e9,
        notes="Hypothetical containerized edge testbed.",
    )

    predicted = expected_metrics(profile)
    print("calibration-model prediction:")
    print(f"  equilibrium burst size : {predicted.burst_size:.1f} packets")
    print(f"  IAT deltas within 10ns : {predicted.pct_iat_within_10ns:.1f} %")
    print(f"  I (IAT variation)      : {predicted.i_total:.4f}")
    print(f"  L (latency variation)  : {predicted.l_total:.2e}")
    print()

    print("simulating 5 runs ...")
    trials = Testbed(profile, seed=3).run_series(5)
    report = compare_series(trials, environment=profile.name)
    row = report.mean_row()
    row["pct10"] = float(report.pct_iat_within_10ns().mean())
    print(render_metric_rows([row]))

    ratio = row["I"] / predicted.i_total if predicted.i_total else float("nan")
    print(f"prediction quality: measured I / predicted I = {ratio:.2f} "
          "(the closed forms are first-order; 0.7-1.4 is normal)")


if __name__ == "__main__":
    main()
