"""Benchmarks of the Section-3 metric layer itself.

Covers the two analytic figures (the max-L and max-I worst-case
constructions of Figures 2 and 3) and the cost of the full κ analysis at
paper scale — the analysis-time claim of the artifact appendix ("no more
than 5 minutes each" per trial; ours takes seconds).
"""

import numpy as np

from repro.core import (
    Trial,
    compare_trials,
    iat_variation,
    latency_variation,
    max_iat_construction,
    max_latency_construction,
)

PAPER_N = 1_055_648  # packets per trial in Section 6.1


def test_fig2_max_latency_bound(once, emit, bench_params):
    """Figure 2: the max-L construction attains the normalizer exactly."""
    bench_params(n_common=100_000, span_ns=0.3e9)
    a, b = max_latency_construction(100_000, span_ns=0.3e9)
    value = once(lambda: latency_variation(a, b))
    emit(
        "fig2_max_latency",
        "Figure 2 construction (all common packets at opposite ends)\n"
        f"n_common=100000  span=0.3s\n"
        f"L = {value:.12f}   (bound: 1.0)\n",
    )
    assert abs(value - 1.0) < 1e-9


def test_fig3_max_iat_bound(once, emit, bench_params):
    """Figure 3: the max-I construction attains the normalizer exactly."""
    bench_params(n_common=100_000, span_ns=0.3e9)
    a, b = max_iat_construction(100_000, span_ns=0.3e9)
    value = once(lambda: iat_variation(a, b))
    emit(
        "fig3_max_iat",
        "Figure 3 construction (first/last common packets pinned)\n"
        f"n_common=100000  span=0.3s\n"
        f"I = {value:.12f}   (bound: 1.0)\n",
    )
    assert abs(value - 1.0) < 1e-9


def test_full_analysis_at_paper_scale(once, emit, bench_params):
    """Time the complete pair analysis on 1,055,648-packet trials."""
    bench_params(seed=0, n_packets=PAPER_N)
    rng = np.random.default_rng(0)
    times = np.cumsum(rng.exponential(284.0, PAPER_N))
    tags = np.arange(PAPER_N, dtype=np.int64)
    a = Trial(tags, times, label="A")
    jittered = times + rng.normal(0, 20.0, PAPER_N).cumsum() * 1e-3
    b = Trial(tags, np.maximum.accumulate(jittered), label="B")
    report = once(lambda: compare_trials(a, b))
    emit(
        "analysis_paper_scale",
        f"full pair analysis, {PAPER_N:,} packets/trial\n"
        f"metrics: {report.metrics}\n"
        f"(artifact appendix budget: <=5 min per trial)\n",
    )
    assert report.n_common == PAPER_N
