"""Ablation: O(n log n) LIS ordering metric vs the O(n²) textbook LCS.

Section 3 leans on Schensted's correspondence to make the ordering metric
tractable at packet-capture sizes ("the LCS is findable in O(n log n)
time").  This benchmark quantifies why: the naive dynamic program is
thousands of times slower already at 20k packets and simply cannot run at
the paper's 1M-packet captures.
"""

import time

import numpy as np

from repro.analysis import render_metric_rows
from repro.core import longest_increasing_subsequence, naive_lcs_length


def test_lis_vs_naive_lcs(once, emit, bench_params):
    bench_params(seed=0, sizes=[500, 2_000, 8_000])
    rng = np.random.default_rng(0)
    rows = []
    for n in (500, 2_000, 8_000):
        perm = rng.permutation(n)
        t0 = time.perf_counter()
        lis_len = longest_increasing_subsequence(perm).shape[0]
        t_lis = time.perf_counter() - t0
        t0 = time.perf_counter()
        lcs_len = naive_lcs_length(np.arange(n), perm)
        t_naive = time.perf_counter() - t0
        assert lis_len == lcs_len
        rows.append({
            "n": n,
            "lis_ms": t_lis * 1e3,
            "naive_dp_ms": t_naive * 1e3,
            "speedup": t_naive / t_lis,
        })

    # Paper scale: LIS only (the DP would need ~1e12 cell updates).
    perm = rng.permutation(1_055_648)
    t0 = time.perf_counter()
    once(lambda: longest_increasing_subsequence(perm))
    t_paper = time.perf_counter() - t0
    emit(
        "ablation_ordering_algorithms",
        render_metric_rows(rows)
        + f"\nLIS at paper scale (1,055,648 packets): {t_paper:.2f} s\n"
        "naive DP at paper scale: infeasible (~1.1e12 cell updates)\n",
    )
    assert rows[-1]["speedup"] > 10
