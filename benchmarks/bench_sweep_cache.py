"""Cold vs warm sweep wall time: the artifact store must actually pay.

The sweep orchestrator's pitch (``docs/sweeps.md``) is that a warm
content-addressed store turns a matrix evaluation into pure I/O — decode
and verify instead of simulate and analyze.  This benchmark runs the
same smoke matrix cold (empty store) and warm (second pass over the same
store), asserts every warm unit is a cache hit with the byte-identical
merged report, and gates on the headline: the warm sweep must be at
least 5x faster than the cold one.  Unlike the parallel-speedup gates
this one binds on a single core too — a cache hit skips *work*, not just
waits for more hardware — so it asserts under ``REPRO_BENCH_SMOKE`` as
well.

``REPRO_BENCH_SMOKE=1`` (CI) shrinks the matrix to three environments at
a short duration scale; the full run sweeps all nine.
"""

import json
import os
import time

from repro.parallel import shutdown_pool
from repro.sweep import ArtifactStore, plan_from_scenarios, run_sweep, write_sweep_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
KEYS = ["local-single", "local-dual", "fabric-shared-40g-noisy"] if SMOKE else None
SCALE = 0.02 if SMOKE else None  # None: REPRO_SCALE (default 0.25)
N_RUNS = 2 if SMOKE else 5
WARM_SPEEDUP_FLOOR = 5.0


def test_sweep_cold_vs_warm(once, emit, emit_json, tmp_path):
    plan = plan_from_scenarios(KEYS, n_runs=N_RUNS, duration_scale=SCALE)

    def cold():
        store = ArtifactStore(tmp_path / "store")
        t0 = time.perf_counter()
        result = run_sweep(plan, store, jobs=1)
        return result, store, time.perf_counter() - t0

    cold_result, cold_store, cold_s = once(cold)
    assert cold_result.outcomes == ("miss",) * len(plan)

    warm_store = ArtifactStore(tmp_path / "store")
    t0 = time.perf_counter()
    warm_result = run_sweep(plan, warm_store, jobs=1)
    warm_s = time.perf_counter() - t0

    # Correctness before speed: all hits, nothing recomputed, same bytes.
    assert warm_result.outcomes == ("hit",) * len(plan)
    assert warm_store.stats.misses == 0 and warm_store.stats.writes == 0
    cold_path, _ = write_sweep_report(cold_result, tmp_path / "cold")
    warm_path, _ = write_sweep_report(warm_result, tmp_path / "warm")
    assert cold_path.read_bytes() == warm_path.read_bytes()

    speedup = cold_s / warm_s
    n_units = len(plan)
    emit(
        "sweep_cache",
        f"sweep matrix: {n_units} units, n_runs={N_RUNS}, "
        f"scale={SCALE if SCALE is not None else 'default'}\n"
        f"cold: {cold_s * 1e3:9.1f} ms  "
        f"({json.dumps(cold_store.stats.as_dict())})\n"
        f"warm: {warm_s * 1e3:9.1f} ms  "
        f"({json.dumps(warm_store.stats.as_dict())})\n"
        f"warm speedup: {speedup:.1f}x  (gate: >= {WARM_SPEEDUP_FLOOR}x)\n",
    )
    emit_json(
        "sweep_cache",
        {
            "n_units": n_units,
            "n_runs": N_RUNS,
            "scale": SCALE,
            "seeds": [u.seed for u in plan],
            "smoke": SMOKE,
        },
        cold_s,
        {"cold": cold_s, "warm": warm_s},
    )

    # The headline gate: a warm store skips simulation AND analysis, so
    # even a 1-core runner must clear this by a wide margin.
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm sweep only {speedup:.1f}x faster than cold "
        f"({warm_s:.3f}s vs {cold_s:.3f}s)"
    )
    shutdown_pool()
