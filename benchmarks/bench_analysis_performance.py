"""Performance benchmarks of the analysis layer itself.

The artifact appendix budgets "no more than 5 minutes" per trial for
analysis; these benchmarks pin where this implementation actually spends
its time at paper scale and that the streaming path holds its
constant-memory promise at high throughput.  Unlike the figure/table
benches (one deterministic round), these run multiple pytest-benchmark
rounds — they measure code, not simulations.
"""

import numpy as np

from repro.analysis import StreamingComparison
from repro.core import (
    Trial,
    count_inversions,
    kendall_tau_distance,
    longest_increasing_subsequence,
    match_trials,
    ordering_variation,
)

N = 1_055_648  # the paper's Section-6.1 capture size


def _aligned_pair(seed=0, n=N):
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.exponential(284.0, n))
    tags = np.arange(n, dtype=np.int64)
    b = np.maximum.accumulate(base + rng.normal(0, 8.0, n))
    return Trial(tags, base, label="A"), Trial(tags, b, label="B")


def test_matching_throughput(benchmark, bench_params):
    """Tag matching (argsort + intersect) at 1.05M packets."""
    bench_params(seed=0, n_packets=N)
    a, b = _aligned_pair()
    m = benchmark(match_trials, a, b)
    assert m.n_common == N


def test_streaming_throughput(benchmark, bench_params):
    """The constant-memory path: packets/second through the accumulator."""
    bench_params(seed=0, n_packets=N, chunk=65_536)
    a, b = _aligned_pair()
    chunk = 65_536

    def run():
        sc = StreamingComparison()
        for lo in range(0, N, chunk):
            hi = lo + chunk
            sc.update(a.tags[lo:hi], a.times_ns[lo:hi],
                      b.tags[lo:hi], b.times_ns[lo:hi])
        return sc.result()

    result = benchmark(run)
    assert result.i >= 0.0
    # Throughput note lands in the benchmark table via the timer; assert
    # the workload actually streamed everything.


def test_ordering_metrics_on_permuted_capture(benchmark, bench_params):
    """LIS-based O and Kendall tau on a 200k-packet interleave."""
    bench_params(seed=1, n_packets=200_000)
    rng = np.random.default_rng(1)
    n = 200_000
    # An interleave-like permutation: two ordered halves merged randomly.
    take = np.sort(rng.choice(n, n // 2, replace=False))
    perm = np.empty(n, dtype=np.int64)
    perm[take] = np.arange(n // 2)
    rest = np.setdiff1d(np.arange(n), take)
    perm[rest] = np.arange(n // 2, n)
    t = np.arange(n, dtype=np.float64) * 284.0
    a = Trial(np.arange(n), t, label="A")
    b = Trial(perm, t, label="B")

    def run():
        return ordering_variation(a, b), kendall_tau_distance(a, b)

    o, tau = benchmark(run)
    assert 0.0 <= o <= 1.0 and 0.0 <= tau <= 1.0


def test_lis_scaling(benchmark, bench_params):
    """The one O(n log n) Python loop, at paper scale."""
    bench_params(seed=2, n_packets=N)
    rng = np.random.default_rng(2)
    perm = rng.permutation(N)
    idx = benchmark(longest_increasing_subsequence, perm)
    assert idx.shape[0] > 1000  # E[LIS] ~ 2*sqrt(N)


def test_inversion_counting_scaling(benchmark, bench_params):
    """Merge-sort inversion counting at paper scale."""
    bench_params(seed=3, n_packets=N)
    rng = np.random.default_rng(3)
    perm = rng.permutation(N)
    inv = benchmark(count_inversions, perm)
    # A uniform permutation inverts ~half of all pairs.
    assert inv == int(N * (N - 1) / 4 * 1.0) or abs(
        inv / (N * (N - 1) / 4) - 1.0
    ) < 0.01
