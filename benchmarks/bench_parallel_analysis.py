"""Scaling of the sharded parallel comparison engine (repro.parallel).

Compares one paper-scale pair (~1.05M packets, light jitter + drops —
the Section-6.1 regime) serially and under increasing job counts, checks
the parallel reports are *bit-identical* to serial, and emits the
wall-time/speedup table to ``benchmarks/out/parallel_analysis.txt``.

The ordering stage gets its own scaling table
(``test_ordering_stage_scaling``): the prefix-patience sharded LIS
(:mod:`repro.parallel.ordershard`) against the serial patience sort, plus
the per-task granularity check behind the engine's schedule — one
ordering block must be a *shorter* pool task than one timing shard, so
ordering can never be the longest single task in the pair's fan-out.

Honesty note: the speedup assertion (>= 2x at 4 jobs) only fires when the
runner actually exposes >= 4 usable cores — on a 1-core container the
measurement still runs and the exactness checks still bind, but physics
caps the speedup at ~1x and asserting otherwise would only test the
hardware.  The serial LIS extraction walk (~0.17 s at 1M rows) stays
serial in both paths, so ordering-stage speedup saturates near 2x even
with many cores; the point of the sharding is that the *patience loop*
(the dominant term) parallelizes and the blocks overlap the timing
shards.

The fused timing kernel gets its own stage table
(``test_fused_kernel_stage_table``): the single-pass
:func:`repro.core.fusedpass.fused_timings` against the pre-fusion
per-component passes it replaced, plus a jobs=2 steady-state parity
measurement of the engine (batched dispatch + forkserver + segment
reuse).  Gates: the fused path must stay within 10% of the component
passes in every mode (regression guard), jobs=2 must reach serial parity
when the runner actually has a second core, and in full mode the serial
comparison must beat the recorded pre-fusion baseline by >= 1.25x.

``REPRO_BENCH_SMOKE=1`` (CI) shrinks the pair to ~220k packets, skips
the full engine sweep, and turns the ordering table into a regression
gate: the sharded in-process ordering stage must stay within 10% of the
serial stage's wall time.
"""

import os
import time

import numpy as np
import pytest

from repro.core import compare_trials
from repro.parallel import ParallelComparator

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N = 221_000 if SMOKE else 1_055_648  # full: the paper's Section-6.1 capture size
JOB_COUNTS = (1, 2, 4, 8)

#: Serial wall time of this pair before the fused kernel and the
#: single-argsort/patience-fast-path rewrites (benchmarks/out/
#: parallel_analysis.json as of the observability PR), measured on the
#: same reference container the full benches regenerate artifacts on.
#: The full-mode gate below holds the optimized serial path to >= 1.25x
#: against it; smoke mode (CI, heterogeneous runners) gates ratios
#: measured in-run instead of absolute numbers from another machine.
PREFUSION_SERIAL_S = 0.926
FUSED_SPEEDUP_FLOOR = 1.25


def _paper_scale_pair(seed=0, n=N):
    """Baseline + one run with jitter, ~0.5% drops and occasional reorders."""
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(284.0, n))
    tags = np.arange(n, dtype=np.int64)
    from repro.core import Trial

    keep = rng.random(n) > 0.005
    bt = times[keep] + rng.normal(0.0, 40.0, int(keep.sum()))
    order = np.argsort(bt, kind="stable")
    a = Trial(tags, times, label="A")
    b = Trial(tags[keep][order], bt[order], label="B")
    return a, b


def _assert_exact(got, want):
    assert got.metrics == want.metrics
    assert got.n_common == want.n_common
    assert got.pct_iat_within_10ns == want.pct_iat_within_10ns
    assert got.move_stats == want.move_stats
    assert np.array_equal(got.iat_hist.counts, want.iat_hist.counts)
    assert np.array_equal(got.latency_hist.counts, want.latency_hist.counts)


@pytest.mark.skipif(SMOKE, reason="full engine sweep is not part of smoke mode")
def test_parallel_analysis_speedup(once, emit, emit_json):
    a, b = _paper_scale_pair()
    usable_cores = len(os.sched_getaffinity(0))

    def sweep():
        compare_trials(a, b)  # warm allocator/caches: every config is
        t0 = time.perf_counter()  # measured at steady state
        serial = compare_trials(a, b)
        serial_s = time.perf_counter() - t0

        rows = [("serial", serial_s, 1.0)]
        for jobs in JOB_COUNTS:
            with ParallelComparator(jobs=jobs) as pc:
                pc.compare(a, b)  # warm the pool: measure steady state
                t0 = time.perf_counter()
                rep = pc.compare(a, b)
                dt = time.perf_counter() - t0
            _assert_exact(rep, serial)
            rows.append((f"jobs={jobs}", dt, serial_s / dt))
        return rows

    rows = once(sweep)

    lines = [
        f"parallel comparison scaling, n={N} packets "
        f"({usable_cores} usable cores)",
        f"{'config':>8s}  {'seconds':>8s}  {'speedup':>7s}",
    ]
    for name, dt, speedup in rows:
        lines.append(f"{name:>8s}  {dt:8.3f}  {speedup:6.2f}x")
    lines.append("")
    lines.append("parallel output verified bit-identical to serial at every job count")
    emit("parallel_analysis", "\n".join(lines))
    emit_json(
        "parallel_analysis",
        {"n_packets": N, "seed": 0, "usable_cores": usable_cores, "smoke": SMOKE},
        rows[0][1],
        {name: dt for name, dt, _ in rows},
    )

    by_name = {name: speedup for name, _, speedup in rows}
    if usable_cores >= 4:
        assert by_name["jobs=4"] >= 2.0, (
            f"expected >= 2x speedup at 4 jobs on {usable_cores} cores, "
            f"got {by_name['jobs=4']:.2f}x"
        )


def _best_of(k, fn):
    """Minimum wall time of k runs — the standard noise floor estimator."""
    best = float("inf")
    for _ in range(k):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_fused_kernel_stage_table(once, emit, emit_json):
    """Fused timing kernel vs the per-component passes it replaced."""
    from repro.core import SymlogBins
    from repro.core.fusedpass import fused_timings
    from repro.core.histograms import DeltaHistogram, pct_within
    from repro.core.iat import iat_deltas_ns, iat_from_matching
    from repro.core.latency import latency_deltas_ns, latency_from_matching
    from repro.core.matching import match_trials

    a, b = _paper_scale_pair()
    usable_cores = len(os.sched_getaffinity(0))
    bins = SymlogBins()
    reps = 3 if SMOKE else 5

    def sweep():
        m = match_trials(a, b)

        def components():
            # The pre-fusion timing side of compare_trials, pass for
            # pass: two reduction gathers (L, I), two figure-series
            # gathers, the ±10 ns scan and both histogram passes.
            latency_from_matching(a, b, m)
            iat_from_matching(a, b, m)
            dl = latency_deltas_ns(a, b, matching=m)
            dg = iat_deltas_ns(a, b, matching=m)
            pct_within(dg, 10.0)
            DeltaHistogram.from_deltas(dg, bins)
            DeltaHistogram.from_deltas(dl, bins)

        components()  # warm
        fused_timings(a, b, m, bins=bins)
        components_s = _best_of(reps, components)
        fused_s = _best_of(reps, lambda: fused_timings(a, b, m, bins=bins))
        match_s = _best_of(reps, lambda: match_trials(a, b))

        want = compare_trials(a, b)  # warm
        serial_s = _best_of(reps, lambda: compare_trials(a, b))

        # jobs=2 steady state: batched dispatch, forkserver workers,
        # reused segments.  Pool startup is measured by the sim bench;
        # here the question is whether a warm two-worker engine holds
        # parity with the fused serial path.
        with ParallelComparator(jobs=2) as pc:
            _assert_exact(pc.compare(a, b), want)  # warm pool + exactness
            jobs2_s = _best_of(reps, lambda: pc.compare(a, b))
        return match_s, components_s, fused_s, serial_s, jobs2_s

    match_s, components_s, fused_s, serial_s, jobs2_s = once(sweep)

    lines = [
        f"fused timing kernel, n={N} packets "
        f"({usable_cores} usable cores{', smoke' if SMOKE else ''})",
        f"{'stage':>22s}  {'seconds':>8s}",
        f"{'match':>22s}  {match_s:8.3f}",
        f"{'timing (components)':>22s}  {components_s:8.3f}",
        f"{'timing (fused)':>22s}  {fused_s:8.3f}",
        f"{'serial compare_trials':>22s}  {serial_s:8.3f}",
        f"{'jobs=2 compare':>22s}  {jobs2_s:8.3f}",
        "",
        f"fused vs components: {components_s / fused_s:.2f}x; "
        f"jobs=2 vs serial: {serial_s / jobs2_s:.2f}x",
    ]
    if not SMOKE:
        lines.append(
            f"serial vs pre-fusion reference ({PREFUSION_SERIAL_S:.3f}s): "
            f"{PREFUSION_SERIAL_S / serial_s:.2f}x"
        )
    lines.append("fused kernel verified bit-identical by tests/test_fusedpass.py")
    emit("fused_kernel", "\n".join(lines))
    emit_json(
        "fused_kernel",
        {
            "n_packets": N,
            "seed": 0,
            "usable_cores": usable_cores,
            "smoke": SMOKE,
            "prefusion_serial_s": PREFUSION_SERIAL_S,
        },
        serial_s,
        {
            "match": match_s,
            "timing_components": components_s,
            "timing_fused": fused_s,
            "serial_compare": serial_s,
            "jobs2_compare": jobs2_s,
        },
    )

    # Regression guard (the CI fused-smoke gate): the fused single pass
    # must never fall more than 10% behind the component passes it fused.
    assert fused_s <= components_s * 1.10, (
        f"fused kernel regressed: {fused_s:.4f}s vs components "
        f"{components_s:.4f}s ({fused_s / components_s:.2f}x)"
    )

    # Parity gate: with the fan-out fixed costs cut, two workers must not
    # lose to one process — but only where a second core exists; on a
    # 1-core runner the JSON records why (host.usable_cores).  5% noise
    # allowance: parity, not speedup, is the claim.
    if usable_cores >= 2:
        assert jobs2_s <= serial_s * 1.05, (
            f"jobs=2 below serial parity on {usable_cores} cores: "
            f"{jobs2_s:.3f}s vs serial {serial_s:.3f}s"
        )

    if not SMOKE:
        assert serial_s * FUSED_SPEEDUP_FLOOR <= PREFUSION_SERIAL_S, (
            f"fused serial must be >= {FUSED_SPEEDUP_FLOOR}x the pre-fusion "
            f"baseline: {serial_s:.3f}s vs {PREFUSION_SERIAL_S:.3f}s "
            f"({PREFUSION_SERIAL_S / serial_s:.2f}x)"
        )


def test_ordering_stage_scaling(once, emit, emit_json):
    """The sharded ordering stage: scaling table + task-granularity gate."""
    from repro.core.matching import match_trials
    from repro.core.ordering import edit_script_from_matching, b_order_ranks
    from repro.parallel import (
        DEFAULT_ORDER_BLOCK_PACKETS,
        edit_script_from_matching_sharded,
        patience_block,
    )
    from repro.parallel.partials import compute_shard_partial
    from repro.core import SymlogBins

    a, b = _paper_scale_pair()
    usable_cores = len(os.sched_getaffinity(0))
    m = match_trials(a, b)
    seq = b_order_ranks(m)
    shard_rows = -(-m.n_common // 4)  # one jobs=4 timing shard's row count
    reps = 3 if SMOKE else 1  # smoke gates on a ratio: beat the noise down

    def sweep():
        want = edit_script_from_matching(m)  # warm
        serial_s = _best_of(reps, lambda: edit_script_from_matching(m))

        rows = [("serial", serial_s, 1.0)]
        sharded_walls = {}
        for jobs in JOB_COUNTS:
            if jobs > 1 and SMOKE:
                continue  # smoke: in-process gate only (CI runners vary)
            got = edit_script_from_matching_sharded(m, jobs=jobs)  # warm pool
            assert np.array_equal(got.lcs_mask_b_order, want.lcs_mask_b_order)
            assert np.array_equal(got.moved_distances, want.moved_distances)
            dt = _best_of(
                reps, lambda j=jobs: edit_script_from_matching_sharded(m, jobs=j)
            )
            sharded_walls[jobs] = dt
            rows.append((f"jobs={jobs}", dt, serial_s / dt))

        # Task granularity: one ordering block vs one jobs=4 timing shard.
        block_s = _best_of(
            3, lambda: patience_block(seq, 0, DEFAULT_ORDER_BLOCK_PACKETS)
        )
        bins = SymlogBins()
        shard_s = _best_of(
            3,
            lambda: compute_shard_partial(
                a.times_ns, b.times_ns, m.idx_a, m.idx_b, 0, shard_rows, bins, 10.0
            ),
        )
        return rows, sharded_walls, serial_s, block_s, shard_s

    rows, sharded_walls, serial_s, block_s, shard_s = once(sweep)

    lines = [
        f"ordering stage (prefix-patience sharded LIS), n_common={m.n_common} "
        f"({usable_cores} usable cores{', smoke' if SMOKE else ''})",
        f"{'config':>8s}  {'seconds':>8s}  {'speedup':>7s}",
    ]
    for name, dt, speedup in rows:
        lines.append(f"{name:>8s}  {dt:8.3f}  {speedup:6.2f}x")
    lines.append("")
    lines.append(
        f"longest-task check: ordering block "
        f"({DEFAULT_ORDER_BLOCK_PACKETS} rows) {block_s * 1e3:.2f} ms "
        f"vs jobs=4 timing shard ({shard_rows} rows) {shard_s * 1e3:.2f} ms"
    )
    lines.append("sharded ordering verified bit-identical to serial")
    emit("ordering_scaling", "\n".join(lines))
    per_stage = {name: dt for name, dt, _ in rows}
    per_stage["one_ordering_block"] = block_s
    per_stage["one_jobs4_timing_shard"] = shard_s
    emit_json(
        "ordering_scaling",
        {
            "n_common": int(m.n_common),
            "seed": 0,
            "block_packets": DEFAULT_ORDER_BLOCK_PACKETS,
            "usable_cores": usable_cores,
            "smoke": SMOKE,
        },
        serial_s,
        per_stage,
    )

    # The engine's schedule rests on this: an ordering block is a shorter
    # pool task than a timing shard, so at jobs >= 4 the ordering stage is
    # never the longest single task of the pair's fan-out.  Single-thread
    # measurement — holds on any core count.  The claim is about the
    # paper-scale pair (a smoke-sized pair's timing shards shrink with n
    # while the block size is fixed), so it binds in full mode only; smoke
    # still emits both numbers.
    if not SMOKE:
        assert block_s < shard_s, (
            f"an ordering block ({block_s * 1e3:.2f} ms) must undercut a "
            f"jobs=4 timing shard ({shard_s * 1e3:.2f} ms)"
        )

    # Regression gate (the CI smoke check): the in-process sharded path —
    # identical block pipeline, no pool — must stay close to serial.  The
    # bound was 10% when the serial patience loop dominated at ~0.6 us/row;
    # the append fast path and the pointer-doubling walk have since cut
    # serial ~5x, so the merge's fixed milliseconds weigh proportionally
    # more against a much faster baseline.  25% of the new serial wall is
    # still several times less absolute overhead than the old 10% was.
    overhead = sharded_walls[1] / serial_s
    assert overhead <= 1.25, (
        f"sharded ordering regressed: {overhead:.2f}x serial "
        f"({sharded_walls[1]:.3f}s vs {serial_s:.3f}s)"
    )

    if usable_cores >= 4 and 4 in sharded_walls:
        assert sharded_walls[4] < serial_s, (
            f"expected ordering-stage speedup at 4 jobs on {usable_cores} "
            f"cores, got {serial_s / sharded_walls[4]:.2f}x"
        )
