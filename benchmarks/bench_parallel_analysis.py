"""Scaling of the sharded parallel comparison engine (repro.parallel).

Compares one paper-scale pair (~1.05M packets, light jitter + drops —
the Section-6.1 regime) serially and under increasing job counts, checks
the parallel reports are *bit-identical* to serial, and emits the
wall-time/speedup table to ``benchmarks/out/parallel_analysis.txt``.

Honesty note: the speedup assertion (>= 2x at 4 jobs) only fires when the
runner actually exposes >= 4 usable cores — on a 1-core container the
measurement still runs and the exactness checks still bind, but physics
caps the speedup at ~1x and asserting otherwise would only test the
hardware.
"""

import os
import time

import numpy as np

from repro.core import compare_trials
from repro.parallel import ParallelComparator

N = 1_055_648  # the paper's Section-6.1 capture size
JOB_COUNTS = (1, 2, 4, 8)


def _paper_scale_pair(seed=0, n=N):
    """Baseline + one run with jitter, ~0.5% drops and occasional reorders."""
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(284.0, n))
    tags = np.arange(n, dtype=np.int64)
    from repro.core import Trial

    keep = rng.random(n) > 0.005
    bt = times[keep] + rng.normal(0.0, 40.0, int(keep.sum()))
    order = np.argsort(bt, kind="stable")
    a = Trial(tags, times, label="A")
    b = Trial(tags[keep][order], bt[order], label="B")
    return a, b


def _assert_exact(got, want):
    assert got.metrics == want.metrics
    assert got.n_common == want.n_common
    assert got.pct_iat_within_10ns == want.pct_iat_within_10ns
    assert got.move_stats == want.move_stats
    assert np.array_equal(got.iat_hist.counts, want.iat_hist.counts)
    assert np.array_equal(got.latency_hist.counts, want.latency_hist.counts)


def test_parallel_analysis_speedup(once, emit):
    a, b = _paper_scale_pair()
    usable_cores = len(os.sched_getaffinity(0))

    def sweep():
        compare_trials(a, b)  # warm allocator/caches: every config is
        t0 = time.perf_counter()  # measured at steady state
        serial = compare_trials(a, b)
        serial_s = time.perf_counter() - t0

        rows = [("serial", serial_s, 1.0)]
        for jobs in JOB_COUNTS:
            with ParallelComparator(jobs=jobs) as pc:
                pc.compare(a, b)  # warm the pool: measure steady state
                t0 = time.perf_counter()
                rep = pc.compare(a, b)
                dt = time.perf_counter() - t0
            _assert_exact(rep, serial)
            rows.append((f"jobs={jobs}", dt, serial_s / dt))
        return rows

    rows = once(sweep)

    lines = [
        f"parallel comparison scaling, n={N} packets "
        f"({usable_cores} usable cores)",
        f"{'config':>8s}  {'seconds':>8s}  {'speedup':>7s}",
    ]
    for name, dt, speedup in rows:
        lines.append(f"{name:>8s}  {dt:8.3f}  {speedup:6.2f}x")
    lines.append("")
    lines.append("parallel output verified bit-identical to serial at every job count")
    emit("parallel_analysis", "\n".join(lines))

    by_name = {name: speedup for name, _, speedup in rows}
    if usable_cores >= 4:
        assert by_name["jobs=4"] >= 2.0, (
            f"expected >= 2x speedup at 4 jobs on {usable_cores} cores, "
            f"got {by_name['jobs=4']:.2f}x"
        )
