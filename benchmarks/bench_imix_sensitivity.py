"""Workload-sensitivity ablation: is κ an artifact of fixed-size packets?

The paper's entire evaluation uses 1400-byte CBR.  This ablation replays
an IMIX workload (64/576/1500 at 7:4:1) through the identical local
environment at the same *packet* rate and compares the consistency
characterization.  Expected: the intra-burst core thins slightly (mixed
serialization times spread the wire spacing, and smaller mean frames
change burst byte budgets) but κ stays in the same band — the metric
characterizes the *environment*, not the workload.
"""

from dataclasses import replace

import numpy as np

from repro.analysis import render_metric_rows
from repro.core import compare_series
from repro.generators import IMIXGenerator
from repro.testbeds import Testbed, local_single_replayer


def test_imix_vs_fixed_size(once, emit, bench_params):
    bench_params(seed=17, n_runs=4, duration_ns=20e6)
    fixed_profile = local_single_replayer().at_duration(20e6)
    pps = fixed_profile.rate_bps / (fixed_profile.packet_bytes * 8)
    imix_profile = replace(
        fixed_profile,
        name="local-single-imix",
        workload=IMIXGenerator(pps=pps),
    )

    def run_both():
        out = {}
        for profile in (fixed_profile, imix_profile):
            trials = Testbed(profile, seed=17).run_series(4)
            out[profile.name] = compare_series(trials, environment=profile.name)
        return out

    reports = once(run_both)
    rows = []
    for name, rep in reports.items():
        row = rep.mean_row()
        row["pct10"] = float(rep.pct_iat_within_10ns().mean())
        rows.append(row)
    emit(
        "ablation_imix",
        render_metric_rows(rows, columns=["environment", "U", "O", "I", "L", "kappa", "pct10"])
        + f"\n(same environment, same packet rate {pps / 1e6:.2f} Mpps; "
        "1400 B fixed vs 64/576/1500 IMIX)\n",
    )

    fixed = reports["local-single"]
    imix = reports["local-single-imix"]
    # The characterization is workload-robust: kappa within a few
    # hundredths, no drops/reordering either way.
    assert np.all(imix.values("U") == 0.0)
    assert np.all(imix.values("O") == 0.0)
    assert abs(
        imix.values("kappa").mean() - fixed.values("kappa").mean()
    ) < 0.05
