"""Figures 4a/4b + the Section 6.1 metric rows (local single replayer).

Paper values to compare shapes against:
U = O = 0; 92.23-92.51 % of IAT deltas within ±10 ns; I 0.0268-0.0309;
L 2.5e-6 - 9.0e-6; κ 0.9845-0.9866.
"""

import numpy as np

from repro.analysis import render_metric_rows
from repro.experiments import fig4, run_scenario, scenario


def test_fig4_series_and_metrics(once, emit, bench_params):
    bench_params(scenario="local-single", seed=scenario("local-single").seed)
    fig4a, fig4b = once(lambda: fig4())
    report = run_scenario("local-single")  # memoized: same series

    rows = report.run_rows()
    paper = scenario("local-single").paper
    text = [
        fig4a.render(),
        fig4b.render(),
        "Section 6.1 per-run metrics:",
        render_metric_rows(rows, columns=["run", "U", "O", "I", "L", "kappa", "pct_iat_10ns"]),
        f"paper: U={paper.u} O={paper.o} I={paper.i} L={paper.l} kappa={paper.kappa} "
        f"pct10={paper.pct10_low}-{paper.pct10_high}",
    ]
    emit("fig4_local_single", "\n".join(text))

    # Shape assertions (paper Section 6.1).
    assert np.all(report.values("U") == 0.0)
    assert np.all(report.values("O") == 0.0)
    pct = report.pct_iat_within_10ns()
    assert np.all(pct > 85.0)
    assert 0.5 * paper.i < report.values("I").mean() < 2.0 * paper.i
    assert abs(report.values("kappa").mean() - paper.kappa) < 0.01
