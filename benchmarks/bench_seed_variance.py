"""Meta-reproducibility: how stable is each environment's κ across seeds?

The paper characterizes each environment from one 5-run session.  A
reproduction should ask: if the whole session were redone (new recording,
new run realizations), how much would the characterization move?  This
benchmark sweeps seeds for three representative environments and reports
bootstrap intervals — the "error bars" Table 2 doesn't have.

Expectation: quiet environments are tightly characterized (κ spread of a
few thousandths); the stall-dominated environments wobble more, which is
consistent with the paper's own test-1 κ ranging 0.65-0.82 across runs.
"""

from repro.analysis import render_metric_rows, seed_sweep
from repro.experiments import scenario


def test_seed_variance(once, emit, bench_params):
    keys = ("local-single", "fabric-shared-40g", "fabric-dedicated-40g")
    bench_params(scenarios=list(keys), seeds=list(range(5)), n_runs=3,
                 scale=0.05)

    def sweep_all():
        rows = []
        for key in keys:
            profile = scenario(key).profile(0.05)  # 15 ms windows
            rows.append(seed_sweep(profile, seeds=range(5), n_runs=3).row())
        return rows

    rows = once(sweep_all)
    emit(
        "seed_variance",
        render_metric_rows(rows)
        + "\n(5 full record+replay sessions per environment, 3 runs each)\n",
    )

    by_env = {r["environment"]: r for r in rows}
    # Quiet environments are characterized tightly across sessions.
    assert by_env["local-single"]["kappa_spread"] < 0.01
    assert by_env["fabric-shared-40g"]["kappa_spread"] < 0.01
    # The stall-dominated anomaly wobbles more, as the paper's own
    # per-run kappas (0.65-0.82) suggest.
    assert (
        by_env["fabric-dedicated-40g"]["kappa_spread"]
        > by_env["fabric-shared-40g"]["kappa_spread"]
    )
    # And the environments stay ordered under every seed (CI separation).
    assert (
        by_env["local-single"]["kappa_ci_low"]
        > by_env["fabric-dedicated-40g"]["kappa_ci_high"]
    )
