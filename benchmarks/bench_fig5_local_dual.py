"""Figure 5 + Section 6.2 metrics (local testbed, two parallel replayers).

Paper values: pct10 92.75-92.90 (longer tails than Fig 4a); I 0.149-0.311;
L 0.0051-0.0122; O 0.0137-0.0326; κ (per Eq. 5 on those components)
≈ 0.84-0.93; ~49.8 % of packets in each run's edit script.

Note: the paper's quoted dual-replayer κ values (0.9275-0.9290) are not
consistent with Equation 5 applied to its own I values — Eq. 5 with
I ≈ 0.2 gives κ ≈ 0.90.  We report what the formula produces.
"""

import numpy as np

from repro.analysis import render_metric_rows
from repro.experiments import fig5, run_scenario, scenario


def test_fig5_series_and_metrics(once, emit, bench_params):
    bench_params(scenario="local-dual", seed=scenario("local-dual").seed)
    series = once(lambda: fig5())
    report = run_scenario("local-dual")
    paper = scenario("local-dual").paper

    moved_frac = [p.move_stats.n_moved / p.n_common for p in report.pairs]
    text = [
        series.render(),
        "Section 6.2 per-run metrics:",
        render_metric_rows(
            report.run_rows(),
            columns=["run", "U", "O", "I", "L", "kappa", "pct_iat_10ns"],
        ),
        f"fraction of packets in the edit script per run: "
        f"{[f'{f:.3f}' for f in moved_frac]}  (paper: 0.498)",
        f"paper means: O={paper.o} I={paper.i} L={paper.l} kappa={paper.kappa}",
    ]
    emit("fig5_local_dual", "\n".join(text))

    assert np.all(report.values("U") == 0.0)
    assert np.all(report.values("O") > 0.0)  # reordering appears
    assert all(0.3 < f < 0.6 for f in moved_frac)
    # I roughly an order above the single-replayer runs.
    single_i = run_scenario("local-single").values("I").mean()
    assert report.values("I").mean() > 3 * single_i
