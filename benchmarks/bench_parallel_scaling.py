"""Extension ablation: consistency cost of parallel replay fan-out.

Figure 1 sketches three replay nodes; the paper measures one and two and
finds parallelism costs a measurable κ drop (Section 6.2).  This sweep
extends the calibrated local environment to 1-4 replayers at constant
total rate and quantifies the trend: every added node contributes an
independent per-run start offset, so ordering (O) and latency (L)
inconsistency grow with fan-out while the single-node metrics stay flat.

Also emits the sweep as an SVG line chart (benchmarks/out/*.svg).
"""

import numpy as np

from repro.analysis import render_metric_rows
from repro.core import compare_series
from repro.testbeds import Testbed, local_multi_replayer
from repro.viz import series_lines


def test_parallel_replayer_scaling(once, emit, outdir, bench_params):
    counts = (1, 2, 3, 4)
    bench_params(seed=21, n_runs=4, duration_ns=20e6,
                 replayer_counts=list(counts))

    def sweep():
        rows = []
        for n in counts:
            profile = local_multi_replayer(n).at_duration(20e6)
            trials = Testbed(profile, seed=21).run_series(4)
            rep = compare_series(trials, environment=profile.name)
            rows.append({
                "replayers": n,
                "O": float(rep.values("O").mean()),
                "I": float(rep.values("I").mean()),
                "L": float(rep.values("L").mean()),
                "kappa": float(rep.values("kappa").mean()),
            })
        return rows

    rows = once(sweep)
    emit(
        "parallel_scaling",
        render_metric_rows(rows)
        + "\n(total rate constant at 40 Gbps; rate/n per node)\n",
    )
    series_lines(
        [r["replayers"] for r in rows],
        {
            "kappa": np.array([r["kappa"] for r in rows]),
            "I": np.array([r["I"] for r in rows]),
            "O x10": np.array([r["O"] * 10 for r in rows]),
        },
        title="Consistency vs parallel replay fan-out",
        xlabel="replay nodes",
        ylabel="metric value",
    ).save(outdir / "parallel_scaling.svg")

    by_n = {r["replayers"]: r for r in rows}
    # One node: perfectly ordered.  More nodes: reordering appears and κ
    # degrades monotonically-ish (allow small wobble between 3 and 4).
    assert by_n[1]["O"] == 0.0
    for n in (2, 3, 4):
        assert by_n[n]["O"] > 0.0
    assert by_n[2]["kappa"] < by_n[1]["kappa"]
    assert by_n[4]["kappa"] < by_n[1]["kappa"] - 0.02
    assert by_n[4]["I"] > by_n[1]["I"]
