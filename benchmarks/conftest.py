"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures: it runs
(or reuses — scenario series are memoized per process) the corresponding
simulated evaluation, times the analysis step with pytest-benchmark, and
emits the rendered rows/series both to stdout and to
``benchmarks/out/<name>.txt`` so the artifacts survive the run.

Scale: ``REPRO_SCALE`` (default 0.25) scales capture duration relative to
the paper's 0.3 s.  ``REPRO_SCALE=1`` reproduces at full paper scale
(~1.05M packets per run); metrics are duration-invariant (see
tests/test_scaling_invariance.py), except the clock-step share of L which
grows as durations shrink.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"

# benchmarks/ is not a package; make the sibling _emit module importable
# regardless of how pytest set up sys.path for this rootdir.
if str(Path(__file__).parent) not in sys.path:
    sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(scope="session")
def outdir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(outdir):
    """Write a rendered artifact to benchmarks/out/ and echo it."""

    def _emit(name: str, text: str) -> Path:
        path = outdir / f"{name}.txt"
        path.write_text(text)
        sys.stdout.write(f"\n=== {name} ===\n{text}\n")
        return path

    return _emit


@pytest.fixture
def emit_json(outdir, _bench_record):
    """Write a benchmark's structured result to benchmarks/out/<name>.json.

    Schema and validation live in :mod:`benchmarks._emit`; the txt artifact
    from ``emit`` stays the human rendering, this one is the machine twin.
    Calling this suppresses the automatic per-test emission (the explicit
    document supersedes it).
    """
    from _emit import write_bench_json

    def _emit_json(bench: str, params: dict, wall_s: float, per_stage: dict):
        _bench_record.explicit = True
        path = write_bench_json(outdir, bench, params, wall_s, per_stage)
        sys.stdout.write(f"[{bench}] wrote {path}\n")
        return path

    return _emit_json


class _BenchRecord:
    """Per-test accumulator behind the automatic JSON emission."""

    def __init__(self) -> None:
        self.params: dict = {}
        self.per_stage: dict = {}
        self.wall_s = 0.0
        self.explicit = False


@pytest.fixture(autouse=True)
def _bench_record(request, outdir):
    """Emit a host-context JSON artifact for EVERY benchmark test.

    A speedup or wall-time number without the usable core count and pool
    start method it was measured under is noise; the sweep telemetry and
    the explicit ``emit_json`` callers already record that context, and
    this fixture closes the gap for every other bench: after each test it
    writes ``out/<module>__<test>.json`` in the ``benchmarks/_emit.py``
    schema (params + host + wall_s + per_stage).  ``wall_s`` is the whole
    test body; the ``once`` workload lands in ``per_stage``.  Tests add
    workload knobs via the ``bench_params`` fixture; a test that calls
    ``emit_json`` itself opts out of the automatic twin.
    """
    record = _BenchRecord()
    t0 = time.perf_counter()
    yield record
    record.wall_s = time.perf_counter() - t0
    if record.explicit:
        return
    from _emit import write_bench_json

    module = request.module.__name__.removeprefix("bench_")
    test = request.node.name.removeprefix("test_")
    name = f"{module}__{test}".replace("[", "-").replace("]", "")
    try:
        from repro.experiments.scenarios import default_duration_scale

        scale = default_duration_scale()
    except Exception:  # pragma: no cover - repro not importable
        scale = None
    params = {"test": request.node.nodeid, "scale": scale, **record.params}
    write_bench_json(outdir, name, params, record.wall_s, record.per_stage)


@pytest.fixture
def bench_params(_bench_record):
    """Declare workload knobs for the automatic JSON artifact.

    Call with keyword arguments — ``bench_params(seed=17, n_runs=4)`` —
    naming, at minimum, every seed the workload consumed (the seed
    discipline of ``benchmarks/_emit.py``).
    """

    def _declare(**params):
        _bench_record.params.update(params)

    return _declare


@pytest.fixture
def once(benchmark, _bench_record):
    """Run a heavy analysis exactly once under the benchmark timer.

    Scenario simulation + Section-3 analysis at paper scale take seconds;
    multi-round autocalibration would multiply that for no statistical
    benefit (the workload is deterministic given the memoized trials).
    The workload's wall time also lands in the automatic JSON artifact's
    ``per_stage`` (keyed ``once``, then ``once-2``, ... on reuse).
    """

    def _once(fn):
        t0 = time.perf_counter()
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
        dt = time.perf_counter() - t0
        key, k = "once", 1
        while key in _bench_record.per_stage:
            k += 1
            key = f"once-{k}"
        _bench_record.per_stage[key] = dt
        return result

    return _once
