"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures: it runs
(or reuses — scenario series are memoized per process) the corresponding
simulated evaluation, times the analysis step with pytest-benchmark, and
emits the rendered rows/series both to stdout and to
``benchmarks/out/<name>.txt`` so the artifacts survive the run.

Scale: ``REPRO_SCALE`` (default 0.25) scales capture duration relative to
the paper's 0.3 s.  ``REPRO_SCALE=1`` reproduces at full paper scale
(~1.05M packets per run); metrics are duration-invariant (see
tests/test_scaling_invariance.py), except the clock-step share of L which
grows as durations shrink.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"

# benchmarks/ is not a package; make the sibling _emit module importable
# regardless of how pytest set up sys.path for this rootdir.
if str(Path(__file__).parent) not in sys.path:
    sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture(scope="session")
def outdir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def emit(outdir):
    """Write a rendered artifact to benchmarks/out/ and echo it."""

    def _emit(name: str, text: str) -> Path:
        path = outdir / f"{name}.txt"
        path.write_text(text)
        sys.stdout.write(f"\n=== {name} ===\n{text}\n")
        return path

    return _emit


@pytest.fixture
def emit_json(outdir):
    """Write a benchmark's structured result to benchmarks/out/<name>.json.

    Schema and validation live in :mod:`benchmarks._emit`; the txt artifact
    from ``emit`` stays the human rendering, this one is the machine twin.
    """
    from _emit import write_bench_json

    def _emit_json(bench: str, params: dict, wall_s: float, per_stage: dict):
        path = write_bench_json(outdir, bench, params, wall_s, per_stage)
        sys.stdout.write(f"[{bench}] wrote {path}\n")
        return path

    return _emit_json


@pytest.fixture
def once(benchmark):
    """Run a heavy analysis exactly once under the benchmark timer.

    Scenario simulation + Section-3 analysis at paper scale take seconds;
    multi-round autocalibration would multiply that for no statistical
    benefit (the workload is deterministic given the memoized trials).
    """

    def _once(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _once
