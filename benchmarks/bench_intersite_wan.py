"""Future-work extension: consistency across a wide-area inter-site path.

Section 10 envisions exploring the κ metric "in more varied
environments".  The starkest variation FABRIC offers is an inter-site
circuit; this bench quantifies it against the same-site baseline:

* same-site (shared 40G, quiet): κ ≈ 0.97;
* inter-site, single path: WAN queueing jitter swamps every LAN-scale
  mechanism — I jumps several-fold, κ falls toward the anomalous-40G
  band, yet O stays 0 (the circuit is FIFO);
* inter-site over ECMP: the *network itself* reorders (path-skew races),
  the first environment where O > 0 without multiple replayers.
"""

import numpy as np

from repro.analysis import render_metric_rows
from repro.core import compare_series
from repro.experiments import run_scenario
from repro.testbeds import Testbed
from repro.testbeds.fabric import fabric_intersite_40g


def test_intersite_consistency(once, emit, bench_params):
    bench_params(seed=13, n_runs=4, duration_ns=20e6, ecmp_paths=[1, 4])

    def run_all():
        out = {}
        for label, ecmp in (("intersite-fifo", 1), ("intersite-ecmp4", 4)):
            profile = fabric_intersite_40g(ecmp_paths=ecmp).at_duration(20e6)
            trials = Testbed(profile, seed=13).run_series(4)
            out[label] = compare_series(trials, environment=label)
        return out

    reports = once(run_all)
    same_site = run_scenario("fabric-shared-40g")

    rows = [same_site.mean_row()]
    rows += [rep.mean_row() for rep in reports.values()]
    emit(
        "intersite_wan",
        render_metric_rows(rows, columns=["environment", "U", "O", "I", "L", "kappa"])
        + "\n(10 ms circuit, lognormal router jitter; ecmp4 adds 60 us path skew)\n",
    )

    fifo = reports["intersite-fifo"]
    ecmp = reports["intersite-ecmp4"]
    # WAN jitter swamps the same-site environment.
    assert fifo.values("I").mean() > 3 * same_site.values("I").mean()
    assert fifo.values("kappa").mean() < same_site.values("kappa").mean() - 0.05
    # FIFO circuit: no reordering; ECMP: the network reorders.
    assert np.all(fifo.values("O") == 0.0)
    assert np.any(ecmp.values("O") > 0.0)
