"""Section 9 ablations: why existing replay techniques fail in Choir's niche.

Three comparisons, each quantifying a related-work limitation the paper
argues from:

1. **MoonGen-style invalid-packet gap control** — nanosecond-accurate on
   owned line rate, but gaps shatter behind a contended shared port
   (FABRIC's SR-IOV NICs), and it burns the full wire even when idle.
2. **tcpreplay-style sleep pacing** — OS timer granularity makes µs-scale
   IAT errors at multi-Mpps rates; Choir's TSC busy-poll stays in the
   tens of ns.
3. **Choir on the same shared port** — degrades gracefully instead of
   collapsing, because it never assumes wire ownership.
"""

import numpy as np

from repro.analysis import render_metric_rows
from repro.core import Trial, compare_trials
from repro.generators import CaptureReplaySource, MoonGenGapControl, TCPNoiseGenerator
from repro.net import PacketArray, SharedPort


def _gap_stats(achieved, target):
    err = np.abs(achieved[1:] - target[1:])
    return float(np.mean(err)), float(np.percentile(err, 99))


def test_moongen_gap_control_vs_shared_port(once, emit, bench_params):
    bench_params(seed=1, n_packets=20_000, rate_bps=100e9, noise_streams=8)
    rng = np.random.default_rng(1)
    n = 20_000
    sizes = np.full(n, 1400)
    gaps = np.full(n, 284.0)
    gaps[0] = 0.0
    mg = MoonGenGapControl(rate_bps=100e9)

    bg = TCPNoiseGenerator(n_streams=8, mean_rate_bps=40e9).generate(
        n * 284.0 * 1.2, rng
    )

    def run_both():
        quiet = mg.transmit(sizes, gaps)
        loud = mg.transmit(
            sizes, gaps, shared_port=SharedPort(rate_bps=100e9), background=bg
        )
        return quiet, loud

    quiet, loud = once(run_both)
    q_mean, q_p99 = _gap_stats(quiet.achieved_gaps_ns, quiet.target_gaps_ns)
    l_mean, l_p99 = _gap_stats(loud.achieved_gaps_ns, loud.target_gaps_ns)
    emit(
        "ablation_moongen_shared",
        render_metric_rows([
            {"setting": "dedicated line rate", "mean_gap_err_ns": q_mean, "p99_gap_err_ns": q_p99},
            {"setting": "shared port, 40G co-tenant", "mean_gap_err_ns": l_mean, "p99_gap_err_ns": l_p99},
        ])
        + f"\nfiller frames burned: {quiet.n_fillers:,} "
        f"(wire fully occupied even with no useful traffic)\n",
    )
    assert q_mean < 6.0  # sub-filler-frame accuracy when the wire is owned
    assert l_mean > 10 * q_mean  # collapse under sharing (Section 9)


def test_sleep_vs_busy_pacing(once, emit, bench_params):
    bench_params(seed=2, n_packets=50_000)
    rng = np.random.default_rng(2)
    n = 50_000
    cap = PacketArray.uniform(n, 1400, np.arange(n) * 284.0)
    ref = np.arange(n) * 284.0

    def run_policies():
        out = {}
        for pol in ("asap", "sleep", "busy"):
            src = CaptureReplaySource(rate_bps=100e9, policy=pol)
            t = src.replay(cap, np.random.default_rng(7)).times_ns
            out[pol] = np.abs((t - t[0]) - ref).mean()
        return out

    errs = once(run_policies)
    emit(
        "ablation_pacing_policies",
        render_metric_rows(
            [{"policy": k, "mean_abs_schedule_err_ns": v} for k, v in errs.items()]
        )
        + "\n(tcpreplay ~ sleep; Choir ~ busy; --topspeed ~ asap)\n",
    )
    assert errs["busy"] < errs["sleep"] / 50
    assert errs["asap"] > errs["sleep"]  # ignoring gaps is worst of all


def test_tcp_connection_replay_fidelity(once, emit, bench_params):
    """TCPOpera/DETER semantics vs Choir: byte streams survive, IATs don't.

    A connection-level replay reproduces every byte of a TCP workload yet
    its packet-level timing is synthetic: MSS resegmentation plus a 5 µs
    pacing floor erase the original inter-arrival structure Choir
    preserves.  We quantify the IAT error of a connection replay against
    the 'original' packet schedule it was derived from.
    """
    from repro.generators import TCPConnectionReplayer, synthesize_connections

    rng = np.random.default_rng(5)
    records = synthesize_connections(200, rng, window_ns=20e6)

    def run_replay():
        return TCPConnectionReplayer(min_gap_ns=5_000.0).replay(records)

    out = once(run_replay)
    total_bytes = sum(r.bytes_a_to_b for r in records)
    # Exact byte accounting: every connection contributes 2 control frames
    # (60 B) and data segments carrying 52 B of headers each.
    from repro.generators.tcpconn import CTRL_BYTES

    n_ctrl = 2 * len(records)
    n_data = len(out) - n_ctrl
    replayed_bytes = int(out.sizes.sum()) - n_ctrl * CTRL_BYTES - n_data * 52
    gaps = np.diff(out.times_ns)
    emit(
        "ablation_tcp_replay",
        render_metric_rows([{
            "recorded_bytes": total_bytes,
            "replayed_bytes": replayed_bytes,
            "packets": len(out),
            "min_gap_ns": float(gaps.min()) if gaps.size else 0.0,
            "median_gap_ns": float(np.median(gaps)),
        }])
        + "\nbyte-stream fidelity: exact; packet-timing fidelity: none —\n"
        "segmentation and gaps are regenerated (TCPOpera), with a 5 us\n"
        "pacing floor (DETER).  Non-TCP traffic is rejected outright.\n",
    )
    # The byte stream reproduces exactly...
    assert replayed_bytes == total_bytes
    # ...but within any one connection, sub-5µs inter-arrival structure
    # cannot exist (merged-stream gaps can still be small where
    # connections overlap — that's cross-flow interleave, not pacing).
    from repro.generators import TCPConnectionReplayer as _Replayer

    one = _Replayer(min_gap_ns=5_000.0).replay_connection(records[0])
    if len(one) > 3:
        data_gaps = np.diff(one.times_ns[1:-1])
        assert np.all(data_gaps >= 5_000.0 - 1e-9)


def test_choir_degrades_gracefully_on_shared_port(once, emit, bench_params):
    """Replay consistency with vs without a co-tenant, same replayer."""
    bench_params(seed=3, n_runs=2, duration_ns=20e6)
    from repro.testbeds import Testbed, fabric_shared_40g, fabric_shared_40g_noisy

    def run_pair():
        quiet = Testbed(fabric_shared_40g().at_duration(20e6), seed=3).run_series(2)
        noisy = Testbed(fabric_shared_40g_noisy().at_duration(20e6), seed=3).run_series(2)
        return (
            compare_trials(quiet[0], quiet[1]),
            compare_trials(noisy[0], noisy[1]),
        )

    quiet, noisy = once(run_pair)
    emit(
        "ablation_choir_shared",
        render_metric_rows([
            {"setting": "quiet shared port", "I": quiet.metrics.i, "kappa": quiet.kappa},
            {"setting": "contended shared port", "I": noisy.metrics.i, "kappa": noisy.kappa},
        ])
        + "\nChoir still completes the replay and quantifies the damage —\n"
        "the invalid-packet techniques cannot run here at all.\n",
    )
    assert noisy.kappa < quiet.kappa
    assert noisy.kappa > 0.5  # degraded, not destroyed
