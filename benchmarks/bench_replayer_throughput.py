"""Section 5/10 throughput claims + the burst-size design ablation.

The paper: Choir "can sustain peak speeds of 100 Gbps (8.9 Mpps)", runs
with up to 64-packet bursts because "larger bursts helps to achieve
line-rate performance using fewer hardware resources", and needs ≥1 GB of
replay buffer.

The model equivalent: the replay loop's sustainable packet rate must
exceed the 100 Gbps packet rate at the 64-burst operating point, and the
ablation shows how the ceiling collapses at small burst sizes — the
design rationale, quantified.
"""

import numpy as np

from repro.analysis import render_metric_rows
from repro.generators import CBRGenerator
from repro.net import TxNicModel
from repro.net.units import rate_to_pps
from repro.replay import ChoirNode, PollLoopCost, Replayer, ReplayTimingModel


def test_100g_sustained(once, emit, bench_params):
    """Drive a 100 Gbps stream through record+replay; no backlog growth."""
    bench_params(seed=0, rate_bps=100e9, duration_ns=5e6)
    rng = np.random.default_rng(0)
    gen = CBRGenerator(rate_bps=100e9, packet_bytes=1400)
    stream = gen.generate(5e6, rng)  # 5 ms at 8.9 Mpps = ~44.6k packets

    node = ChoirNode("r", TxNicModel(rate_bps=100e9))

    def record_and_replay():
        node.record(stream, rng)
        return node.replay(1e9, rng)

    out = once(record_and_replay)
    in_span = stream.times_ns[-1] - stream.times_ns[0]
    out_span = out.egress.times_ns[-1] - out.egress.times_ns[0]
    achieved_pps = (len(out) - 1) / out_span * 1e9
    emit(
        "throughput_100g",
        f"offered: 100 Gbps, {gen.pps / 1e6:.2f} Mpps, {len(stream):,} packets\n"
        f"replayed: {achieved_pps / 1e6:.2f} Mpps over {out_span / 1e6:.3f} ms "
        f"(recorded span {in_span / 1e6:.3f} ms)\n"
        f"paper claim: sustains 100 Gbps (8.9 Mpps)\n",
    )
    # The replay keeps pace: output span within 1% of the recording span.
    assert out_span < in_span * 1.01
    assert achieved_pps > 8.8e6


def test_burst_size_ablation(once, emit):
    """Loop-limited Mpps ceiling vs burst size (why 64-packet bursts)."""
    rp = Replayer(
        tx_nic=TxNicModel(rate_bps=100e9),
        loop_cost=PollLoopCost(iteration_ns=800.0, per_packet_ns=20.0),
        timing=ReplayTimingModel(),
    )
    need = rate_to_pps(100e9, 1400)
    rows = []
    for b in (1, 2, 4, 8, 16, 32, 64, 128, 256):
        ceiling = rp.sustainable_pps(min(b, 64))
        rows.append({
            "burst": min(b, 64),
            "ceiling_mpps": ceiling / 1e6,
            "sustains_100g": ceiling > need,
        })
    table = once(lambda: render_metric_rows(rows))
    emit(
        "ablation_burst_size",
        table + f"\n100 Gbps needs {need / 1e6:.2f} Mpps of 1400 B packets\n",
    )
    # Single-packet bursts cannot reach 100 Gbps; 64-packet bursts can.
    assert not rows[0]["sustains_100g"]
    assert rows[6]["sustains_100g"]


def test_min_buffer_gates_capture_size(once, emit):
    """Section 5: RAM only bounds the replay buffer; 1 GB is the floor."""
    from repro.replay import MBUF_BYTES, MIN_BUFFER_BYTES, Recording, burstify_fixed
    from repro.net import PacketArray
    from repro.timing import TSC

    capacity = MIN_BUFFER_BYTES // MBUF_BYTES
    n = capacity + 10_000
    batch = PacketArray.uniform(n, 1400, np.arange(n) * 112.0)

    rec = once(lambda: Recording.capture(
        batch, burstify_fixed(n, 64), batch.times_ns, TSC()
    ))
    emit(
        "buffer_gating",
        f"offered {n:,} packets; 1 GB buffer holds {capacity:,} mbufs "
        f"({MBUF_BYTES} B each)\nrecorded {len(rec):,} packets, "
        f"truncated={rec.truncated}, memory={rec.memory_bytes / 2**30:.3f} GiB\n",
    )
    assert rec.truncated
    assert rec.memory_bytes <= MIN_BUFFER_BYTES
