"""Table 1: distances packets moved in the dual-replayer edit scripts.

Paper rows (distances in packet positions):

    Run  Mean (sigma)          Abs. Mean (sigma)    Min      Max
    B    1790.54 (8111.16)     7240.23 (4071.35)   -5632    16573
    C    3487.95 (16011.25)   14277.30 (8042.66)  -11072    32925
    D    3873.69 (17843.43)   15908.56 (8961.64)  -12352    36735
    E    4179.75 (19305.66)   17209.84 (9695.35)  -13378    39809

Shape expectations: thousands-of-positions displacements whose magnitude
tracks the relative replayer start offset of each run pair, with most
moved packets displaced by a similar distance (whole bursts move
together, Section 8.2).
"""

import numpy as np

from repro.analysis import render_metric_rows
from repro.experiments import run_scenario, table1


def test_table1_move_distances(once, emit, bench_params):
    from repro.experiments import SCENARIOS

    bench_params(seeds={sc.key: sc.seed for sc in SCENARIOS})
    rows = once(lambda: table1())
    emit(
        "table1_edit_distances",
        "Table 1 (measured):\n"
        + render_metric_rows(rows)
        + "\npaper abs-means: 7240 / 14277 / 15909 / 17210 (positions)\n",
    )

    report = run_scenario("local-dual")
    scale = report.pairs[0].n_common / 1_055_648  # positions scale with N
    for row in rows:
        if row["n_moved"] == 0:
            continue
        # Displacements land in the paper's positions-range once the
        # duration scale is factored out.
        assert 100 * scale < row["Abs. Mean"] < 60_000 * scale
    # Whole-burst moves: spread smaller than the displacement itself.
    assert any(row["(abs sigma)"] < row["Abs. Mean"] for row in rows)
