"""Minimal-runs economy: the stopping rule must beat the fixed-N sweep.

The pitch of the sequential estimator (``docs/stability.md``) is that a
stable environment should not pay for the worst case: instead of a fixed
``max_seeds``-session screen, sessions are added only until the κ
bootstrap CI half-width reaches ε.  This benchmark runs both designs on
the same quiet environment through the same store machinery and gates on
the headline: the adaptive screen must consume **fewer sessions** than
the fixed-N cap while landing inside tolerance of the fixed sweep's mean
— and its sessions must be the exact bit-identical prefix of the fixed
sweep's (same seeds, same store digests), so the saving is pure and not
a different experiment.

Session economy is hardware-free, so the gate binds under
``REPRO_BENCH_SMOKE`` (CI, 1 core) exactly like the full run.
"""

import os
import time

import numpy as np

from repro.parallel import shutdown_pool
from repro.sweep import ArtifactStore, run_adaptive_sweep
from repro.testbeds import local_single_replayer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SCALE_NS = 0.02 * 0.3e9 if SMOKE else 0.25 * 0.3e9
N_RUNS = 2 if SMOKE else 3
INITIAL_SEEDS = (0, 1, 2, 3)
MAX_SEEDS = 12
EPSILON = 0.005  # the stability layer's default κ resolution target


def test_adaptive_stops_before_the_fixed_cap(once, emit, emit_json, tmp_path):
    profile = local_single_replayer().at_duration(SCALE_NS)

    def fixed():
        t0 = time.perf_counter()
        result = run_adaptive_sweep(
            "fixed", profile,
            initial_seeds=range(INITIAL_SEEDS[0], INITIAL_SEEDS[0] + MAX_SEEDS),
            n_runs=N_RUNS, eps=0.0,
            store=ArtifactStore(tmp_path / "fixed-store"), jobs=1,
        )
        return result, time.perf_counter() - t0

    fixed_result, fixed_s = once(fixed)

    t0 = time.perf_counter()
    adaptive = run_adaptive_sweep(
        "adaptive", profile,
        initial_seeds=INITIAL_SEEDS, n_runs=N_RUNS,
        eps=EPSILON, max_seeds=MAX_SEEDS,
        store=ArtifactStore(tmp_path / "adaptive-store"), jobs=1,
    )
    adaptive_s = time.perf_counter() - t0

    n_fixed = len(fixed_result.plan)
    n_adaptive = len(adaptive.plan)

    # Correctness before economy: the adaptive sessions are the exact
    # prefix of the fixed sweep — same seeds, same content digests, same
    # per-seed κ bits — so fewer sessions is a saving, not a detour.
    assert tuple(u.seed for u in adaptive.plan) == tuple(
        u.seed for u in fixed_result.plan
    )[:n_adaptive]
    assert tuple(u.digest for u in adaptive.plan) == tuple(
        u.digest for u in fixed_result.plan
    )[:n_adaptive]
    assert np.array_equal(adaptive.values, fixed_result.values[:n_adaptive])
    assert abs(adaptive.values.mean() - fixed_result.values.mean()) <= EPSILON

    emit(
        "stability_minimal_runs",
        f"environment: {profile.name}, n_runs={N_RUNS}, "
        f"eps={EPSILON}, cap={MAX_SEEDS}\n"
        f"fixed-N : {n_fixed:2d} sessions  {fixed_s * 1e3:9.1f} ms  "
        f"mean kappa {fixed_result.values.mean():.6f}\n"
        f"adaptive: {n_adaptive:2d} sessions  {adaptive_s * 1e3:9.1f} ms  "
        f"mean kappa {adaptive.values.mean():.6f}  "
        f"(stopped={adaptive.stopped}, "
        f"half_width={adaptive.half_width:.2e})\n"
        f"sessions saved: {n_fixed - n_adaptive} "
        f"({(n_fixed - n_adaptive) / n_fixed:.0%})\n",
    )
    emit_json(
        "stability_minimal_runs",
        {
            "environment": profile.name,
            "seeds": [u.seed for u in fixed_result.plan],
            "n_runs": N_RUNS,
            "eps": EPSILON,
            "max_seeds": MAX_SEEDS,
            "smoke": SMOKE,
        },
        fixed_s,
        {
            "fixed": fixed_s,
            "adaptive": adaptive_s,
            "fixed_sessions": n_fixed,
            "adaptive_sessions": n_adaptive,
        },
    )

    # The headline gates: the rule stopped on its own, under the cap.
    assert adaptive.stopped, (
        f"stopping rule never converged: half_width="
        f"{adaptive.half_width:.2e} > eps={EPSILON} after {n_adaptive} sessions"
    )
    assert n_adaptive < n_fixed, (
        f"adaptive screen used {n_adaptive} sessions, no fewer than the "
        f"fixed-N sweep's {n_fixed}"
    )
    shutdown_pool()
