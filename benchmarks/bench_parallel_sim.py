"""End-to-end simulate+analyze scaling on the persistent worker pool.

The analysis benchmark (bench_parallel_analysis.py) measures the
Section-3 comparison alone; this one measures the pipeline a real
``repro report`` runs per environment — record once, replay N runs
(fanned out by :class:`repro.parallel.SimFarm`), then compare the series
(fanned out by the engine) — all drawing from the single process-global
pool.  A ~1M-packet workload (paper-scale duration x runs) is swept over
job counts, each report is checked bit-identical to serial, and the
wall-time/speedup table goes to ``benchmarks/out/parallel_sim.txt``.

Honesty note: the speedup assertion (>= 2x at 4 jobs) only fires when the
runner exposes >= 4 usable cores — on a 1-core container the measurement
still runs and the exactness checks still bind, but physics caps the
speedup at ~1x and asserting otherwise would only test the hardware.

``REPRO_BENCH_SMOKE=1`` (CI) shrinks the workload, sweeps serial and
jobs=2 only, and measures the pooled config at steady state (pool warm)
instead of including startup — the smoke question is whether a warm
two-worker pipeline holds serial parity, and it is only asserted when
the runner has a second core to run it on.
"""

import os
import time

import numpy as np

from repro.core import compare_series
from repro.parallel import pool_stats, shutdown_pool
from repro.testbeds import Testbed, local_single_replayer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
#: Full: 5 runs x ~210k packets/run ≈ 1.05M simulated packets end-to-end.
DURATION_NS = 16e6 if SMOKE else 63e6
N_RUNS = 5
SEED = 2025
JOB_COUNTS = (1, 2) if SMOKE else (1, 2, 4, 8)


def _pipeline(jobs: int):
    """One environment's full record -> replay x N -> compare pipeline."""
    profile = local_single_replayer().at_duration(DURATION_NS)
    trials = Testbed(profile, seed=SEED).run_series(N_RUNS, jobs=jobs)
    report = compare_series(trials, environment=profile.name) if jobs == 1 else None
    if report is None:
        from repro.parallel import compare_series_parallel

        report = compare_series_parallel(trials, environment=profile.name, jobs=jobs)
    return trials, report


def _assert_series_exact(got_trials, got_report, want_trials, want_report):
    for g, w in zip(got_trials, want_trials):
        assert np.array_equal(g.tags, w.tags)
        assert np.array_equal(g.times_ns, w.times_ns)
    for g, w in zip(got_report.pairs, want_report.pairs):
        assert g.metrics == w.metrics
        assert g.n_common == w.n_common
        assert g.move_stats == w.move_stats


def test_parallel_sim_speedup(once, emit, emit_json):
    usable_cores = len(os.sched_getaffinity(0))

    def sweep():
        _pipeline(1)  # warm allocator/caches: measure steady state
        t0 = time.perf_counter()
        want_trials, want_report = _pipeline(1)
        serial_s = time.perf_counter() - t0

        n_packets = sum(len(t) for t in want_trials)
        rows = [("serial", serial_s, 1.0)]
        pools_created = []
        for jobs in JOB_COUNTS[1:]:
            if SMOKE:
                _pipeline(jobs)  # warm the pool: smoke gates steady state
            else:
                shutdown_pool()  # fresh pool per config: startup is included,
            before = pool_stats().created_total  # as a real invocation pays it
            t0 = time.perf_counter()
            got_trials, got_report = _pipeline(jobs)
            dt = time.perf_counter() - t0
            _assert_series_exact(got_trials, got_report, want_trials, want_report)
            pools_created.append(pool_stats().created_total - before)
            rows.append((f"jobs={jobs}", dt, serial_s / dt))
        shutdown_pool()
        # The whole simulate+analyze pipeline shares one pool per config
        # (smoke measures with the warm pool, so none is created mid-sweep).
        assert pools_created == [0 if SMOKE else 1] * len(JOB_COUNTS[1:])
        return n_packets, rows

    n_packets, rows = once(sweep)

    lines = [
        f"end-to-end simulate+analyze scaling, ~{n_packets} packets across "
        f"{N_RUNS} runs ({usable_cores} usable cores"
        f"{', smoke' if SMOKE else ''})",
        f"{'config':>8s}  {'seconds':>8s}  {'speedup':>7s}",
    ]
    for name, dt, speedup in rows:
        lines.append(f"{name:>8s}  {dt:8.3f}  {speedup:6.2f}x")
    lines.append("")
    lines.append(
        "trials and reports verified bit-identical to serial at every job "
        "count; "
        + (
            "pooled configs measured against a warm pool"
            if SMOKE
            else "exactly one pool created per configuration"
        )
    )
    emit("parallel_sim", "\n".join(lines))
    emit_json(
        "parallel_sim",
        {
            "n_packets": n_packets,
            "n_runs": N_RUNS,
            "duration_ns": DURATION_NS,
            "seed": SEED,
            "usable_cores": usable_cores,
            "smoke": SMOKE,
        },
        rows[0][1],
        {name: dt for name, dt, _ in rows},
    )

    by_name = {name: speedup for name, _, speedup in rows}
    if usable_cores >= 4 and "jobs=4" in by_name:
        assert by_name["jobs=4"] >= 2.0, (
            f"expected >= 2x speedup at 4 jobs on {usable_cores} cores, "
            f"got {by_name['jobs=4']:.2f}x"
        )
    # Smoke parity gate: a warm two-worker pipeline must not lose to
    # serial — asserted only where a second core exists (the JSON records
    # the core count either way).  5% noise allowance: parity is the claim.
    if SMOKE and usable_cores >= 2:
        walls = {name: dt for name, dt, _ in rows}
        assert walls["jobs=2"] <= walls["serial"] * 1.05, (
            f"jobs=2 below serial parity on {usable_cores} cores: "
            f"{walls['jobs=2']:.3f}s vs serial {walls['serial']:.3f}s"
        )
