"""Section 8.2 ablation: κ under exponent balancing of the components.

The paper observes that I linearly overpowers L ("I varies within 1e-1
while L varies within 1e-5") and suggests weighting or nonlinear scaling
as future work.  This ablation applies :func:`repro.analysis.balanced_scaling`
— exponents chosen so each component's worst observed value maps to a
common target — across all nine environments and reports how the κ
landscape changes:

* environments whose inconsistency is latency-flavoured (the dedicated
  retest with its big clock steps) are penalized more once L can speak;
* drop-bearing runs separate from clean runs (the U story);
* the gross ordering (local best, anomalous/noisy worst) must survive —
  a rescaling that reshuffled everything would be suspect.
"""

import time

from repro.analysis import balanced_scaling, component_ranges, render_metric_rows
from repro.experiments import SCENARIOS, run_scenario


def test_balanced_kappa_across_environments(once, emit, emit_json):
    stage_s: dict[str, float] = {}

    def collect():
        out = []
        for sc in SCENARIOS:
            t0 = time.perf_counter()
            out.append(run_scenario(sc.key))
            stage_s[sc.key] = time.perf_counter() - t0
        return out

    reports = once(collect)
    scaling = balanced_scaling(reports)
    ranges = component_ranges(reports)

    rows = []
    for rep in reports:
        plain = rep.values("kappa").mean()
        balanced = sum(p.kappa_scaled(scaling) for p in rep.pairs) / len(rep.pairs)
        rows.append({
            "environment": rep.environment,
            "kappa_eq5": plain,
            "kappa_balanced": balanced,
            "delta": balanced - plain,
        })

    emit(
        "ablation_kappa_balancing",
        "component dynamic ranges: "
        + " ".join(f"{k}={v:.3g}" for k, v in ranges.items())
        + "\nexponents: "
        + f"U^{scaling.u_exponent:.3g} O^{scaling.o_exponent:.3g} "
        + f"L^{scaling.l_exponent:.3g} I^{scaling.i_exponent:.3g}\n\n"
        + render_metric_rows(rows),
    )
    emit_json(
        "ablation_kappa_balancing",
        {
            "n_environments": len(SCENARIOS),
            "seeds": {sc.key: sc.seed for sc in SCENARIOS},
        },
        sum(stage_s.values()),
        stage_s,
    )

    by_env = {r["environment"]: r for r in rows}
    # Balancing can only lower kappa (components are amplified, never shrunk).
    assert all(r["delta"] <= 1e-12 for r in rows)
    # The Section-8.2 intent realized: the two environments with
    # *structural* faults — reordering (local-dual) and drops (noisy
    # shared) — are penalized hardest once O and U can speak.
    structural = {"local-dual", "fabric-shared-40g-noisy"}
    worst_two = sorted(rows, key=lambda r: r["delta"])[:2]
    assert {r["environment"] for r in worst_two} == structural
    # The gross ordering survives the rescaling.
    assert (
        by_env["local-single"]["kappa_balanced"]
        > by_env["fabric-shared-40g"]["kappa_balanced"]
        > by_env["fabric-dedicated-40g"]["kappa_balanced"]
    )
