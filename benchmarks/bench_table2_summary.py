"""Table 2: mean U, O, I, L, κ for all nine environments, vs the paper.

This is the paper's headline artifact — the per-environment consistency
summary — regenerated end to end: every environment is simulated (record
once, five replays), analyzed with the Section-3 metrics, and tabulated
in the paper's presentation order with the published values interleaved.
"""

import numpy as np

from repro.experiments import SCENARIOS, render_table2_text, run_scenario, table2


def test_table2_all_environments(once, emit, bench_params):
    bench_params(seeds={sc.key: sc.seed for sc in SCENARIOS})
    rows = once(lambda: table2())
    emit("table2_summary", render_table2_text())

    by_env = {r["environment"]: r for r in rows}

    # Per-environment: kappa lands near the paper's value.
    for sc in SCENARIOS:
        row = by_env[sc.profile(1.0).name]
        assert abs(row["kappa"] - sc.paper.kappa) < 0.08, (
            f"{sc.key}: kappa {row['kappa']:.4f} vs paper {sc.paper.kappa}"
        )

    # The qualitative ordering of Table 2.
    k = {name: r["kappa"] for name, r in by_env.items()}
    assert k["local-single"] == max(k.values())
    assert k["local-single"] > k["fabric-shared-40g"] > k["fabric-dedicated-40g"]
    assert k["fabric-shared-40g"] > k["fabric-shared-40g-noisy"]

    # Drops only in the noisy shared environment.
    for name, r in by_env.items():
        if name == "fabric-shared-40g-noisy":
            assert r["U"] > 0.0
        else:
            assert r["U"] == 0.0

    # Reordering only in the dual-replayer environment.
    for name, r in by_env.items():
        if name == "local-dual":
            assert r["O"] > 0.0
        else:
            assert r["O"] == 0.0


def test_paper_conclusion_deltas(once, emit, bench_params):
    bench_params(seeds={sc.key: sc.seed for sc in SCENARIOS})
    """Section 10's quantified conclusions.

    'ideal FABRIC environments are only slightly (decrease of around 0.04
    on a 0-1 scale) less consistent while the noisier environments are
    significantly (0.2365 decrease) less consistent.'
    """
    local = once(lambda: run_scenario("local-single").values("kappa").mean())
    ideal_fabric = run_scenario("fabric-shared-40g").values("kappa").mean()
    noisy_fabric = run_scenario("fabric-shared-40g-noisy").values("kappa").mean()
    ideal_delta = local - ideal_fabric
    noisy_delta = local - noisy_fabric
    emit(
        "conclusion_deltas",
        f"local kappa             : {local:.4f}\n"
        f"ideal FABRIC (shared40) : {ideal_fabric:.4f}  (delta {ideal_delta:+.4f}; paper ~-0.018..-0.04)\n"
        f"noisy FABRIC            : {noisy_fabric:.4f}  (delta {noisy_delta:+.4f}; paper ~-0.2365)\n",
    )
    assert 0.0 < ideal_delta < 0.08
    assert noisy_delta > 0.15
