"""Figures 9a/9b + the 80 Gbps rows (Section 7) and the noisy-dedicated run.

Paper values at 80 Gbps (6.97 Mpps):

* dedicated: I 0.106-0.109, L 3.8e-6 - 1.0e-5, κ 0.9456-0.9469, pct10 ≈ 30.1
* shared:    I 0.110-0.111, L 1.7e-5 - 3.0e-5, κ 0.9443-0.9451, pct10 ≈ 30.2
* dedicated + iperf3 noise (Section 7.1): "almost identical" to quiet —
  I 0.105-0.114, pct10 30.15-32.16.

Shapes: dedicated ≈ shared at 80 Gbps; both better than the anomalous
40 Gbps dedicated runs; co-located noise does not touch the dedicated path.
"""

import numpy as np

from repro.analysis import render_metric_rows
from repro.experiments import fig9, run_scenario


def test_fig9_series_and_80g_rows(once, emit, bench_params):
    from repro.experiments import scenario

    bench_params(seeds={
        k: scenario(k).seed
        for k in ("fabric-dedicated-80g", "fabric-shared-80g",
                  "fabric-dedicated-80g-noisy")
    })
    fig9a, fig9b = once(lambda: fig9())
    ded = run_scenario("fabric-dedicated-80g")
    shd = run_scenario("fabric-shared-80g")
    noisy = run_scenario("fabric-dedicated-80g-noisy")

    text = [
        fig9a.render(),
        fig9b.render(),
        "80 Gbps mean rows (dedicated / shared / dedicated+noise):",
        render_metric_rows(
            [ded.mean_row(), shd.mean_row(), noisy.mean_row()],
            columns=["environment", "U", "O", "I", "L", "kappa"],
        ),
        "paper: I 0.1073 / 0.1105 / 0.1085, kappa 0.9463 / 0.9448 / 0.9458",
    ]
    emit("fig9_fabric_80g", "\n".join(text))

    # Dedicated ~ shared at 80 Gbps.
    np.testing.assert_allclose(
        ded.values("I").mean(), shd.values("I").mean(), rtol=0.3
    )
    # Better than the anomalous 40 Gbps dedicated runs.
    assert ded.values("I").mean() < run_scenario("fabric-dedicated-40g").values("I").mean()
    # Noise does not perturb the dedicated datapath.
    np.testing.assert_allclose(
        noisy.values("I").mean(), ded.values("I").mean(), rtol=0.25
    )
    for rep in (ded, shd, noisy):
        assert 0.90 < rep.values("kappa").mean() < 0.97
