"""Figures 6-8 + the Section 7 40 Gbps FABRIC metric rows.

* Fig 6a/6b — dedicated ConnectX-6 NICs (test 1, the anomalous one):
  paper I 0.489-0.514, L 2.1e-5 - 4.8e-5, κ 0.65-0.82, pct10 30.6-48.4.
* Fig 7a/7b — shared SR-IOV NICs: I 0.060-0.070, L 1.1e-5 - 4.0e-5,
  κ 0.965-0.970, pct10 26.4-29.2.
* Fig 8a/8b — dedicated retest (test 3): I ≈ 0.5 again, L 3.8e-4 - 4.6e-4,
  κ 0.743-0.756, pct10 24.0-27.2.

Shape: dedicated measured *less* consistent than shared (the paper's
anomaly), both far noisier in IAT than the local testbed.
"""

import numpy as np

from repro.analysis import render_metric_rows
from repro.experiments import fig6, fig7, fig8, run_scenario, scenario


def _rows(key):
    rep = run_scenario(key)
    return render_metric_rows(
        rep.run_rows(), columns=["run", "U", "O", "I", "L", "kappa", "pct_iat_10ns"]
    )


def test_fig6_fabric_dedicated(once, emit, bench_params):
    bench_params(scenario="fabric-dedicated-40g",
                 seed=scenario("fabric-dedicated-40g").seed)
    a, b = once(lambda: fig6())
    emit("fig6_fabric_dedicated40", "\n".join([a.render(), b.render(),
         "Section 7 test-1 rows:", _rows("fabric-dedicated-40g")]))
    rep = run_scenario("fabric-dedicated-40g")
    paper = scenario("fabric-dedicated-40g").paper
    assert np.all(rep.values("U") == 0.0) and np.all(rep.values("O") == 0.0)
    assert 0.5 * paper.i < rep.values("I").mean() < 1.5 * paper.i


def test_fig7_fabric_shared(once, emit, bench_params):
    bench_params(scenario="fabric-shared-40g",
                 seed=scenario("fabric-shared-40g").seed)
    a, b = once(lambda: fig7())
    emit("fig7_fabric_shared40", "\n".join([a.render(), b.render(),
         "Section 7 test-2 rows:", _rows("fabric-shared-40g")]))
    rep = run_scenario("fabric-shared-40g")
    paper = scenario("fabric-shared-40g").paper
    assert 0.5 * paper.i < rep.values("I").mean() < 2.0 * paper.i
    assert abs(rep.values("kappa").mean() - paper.kappa) < 0.02


def test_fig8_fabric_dedicated_retest(once, emit, bench_params):
    bench_params(scenario="fabric-dedicated-40g-2",
                 seed=scenario("fabric-dedicated-40g-2").seed)
    a, b = once(lambda: fig8())
    emit("fig8_fabric_dedicated40_retest", "\n".join([a.render(), b.render(),
         "Section 7 test-3 rows:", _rows("fabric-dedicated-40g-2")]))
    rep = run_scenario("fabric-dedicated-40g-2")
    # The retest confirms the anomaly and shows worse latency spikes.
    first = run_scenario("fabric-dedicated-40g")
    np.testing.assert_allclose(
        rep.values("I").mean(), first.values("I").mean(), rtol=0.5
    )
    assert rep.values("L").mean() > first.values("L").mean()


def test_anomaly_dedicated_worse_than_shared(once, emit, bench_params):
    """Section 8.1's headline surprise, as a standalone check."""
    bench_params(seeds={k: scenario(k).seed
                        for k in ("fabric-dedicated-40g", "fabric-shared-40g")})
    ded = once(lambda: run_scenario("fabric-dedicated-40g").mean_row())
    shd = run_scenario("fabric-shared-40g").mean_row()
    emit(
        "fabric40_anomaly",
        render_metric_rows([ded, shd],
                           columns=["environment", "I", "L", "kappa"])
        + "\npaper: dedicated kappa 0.7426 < shared kappa 0.9669\n",
    )
    assert ded["kappa"] < shd["kappa"] - 0.05
    assert ded["I"] > 3 * shd["I"]
