"""Throughput and memory of the streaming span sink (repro.obs.sink).

Two claims, two measurements, at two trace lengths (the longer 10× the
shorter):

* **Offer-path throughput** — spans/second through
  :meth:`SpanSink.offer_span` with the background flusher draining to a
  real file.  The offer path is lock-append-notify; it must stay cheap
  enough that a traced engine's wall time is the untraced wall time
  (the inertness story's performance half).
* **Memory bound** — the ring's high-water mark while streaming.  The
  acceptance criterion of the bounded-memory design: the high-water
  mark must stay **≤ capacity and flat** as the trace grows 10×,
  because the flusher frees the ring as fast as the engine fills it —
  the in-memory tracer's O(spans) growth is exactly what the sink
  removes.

Results go to ``benchmarks/out/obs_sink.{txt,json}``.

``REPRO_BENCH_SMOKE=1`` (CI) shrinks the traces and turns both claims
into regression gates: flat high-water, full drop accounting, and
long-trace throughput within 10× of short-trace throughput.
"""

import os
import time

from repro.obs import trace
from repro.obs.sink import SpanSink

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_SHORT = 20_000 if SMOKE else 200_000
N_LONG = 10 * N_SHORT
CAPACITY = 4096


def _spans(n):
    pid = os.getpid()
    return [
        trace.SpanRecord(
            "analysis.pair", 1_000_000 + i * 1_000, 700, 500, pid, 1, {"i": i}
        )
        for i in range(n)
    ]


def _stream(path, spans):
    sink = SpanSink(path, capacity=CAPACITY, flush_interval_s=0.001)
    t0 = time.perf_counter()
    for s in spans:
        sink.offer_span(s)
    offer_s = time.perf_counter() - t0
    sink.close()
    total_s = time.perf_counter() - t0
    return sink, offer_s, total_s


def test_sink_throughput_and_flat_memory(
    tmp_path, emit, emit_json, bench_params
):
    bench_params(n_short=N_SHORT, n_long=N_LONG, capacity=CAPACITY)
    rows = []
    per_stage = {}
    results = {}
    for label, n in (("short", N_SHORT), ("long", N_LONG)):
        spans = _spans(n)
        sink, offer_s, total_s = _stream(tmp_path / f"{label}.jsonl", spans)
        results[label] = (sink, offer_s, total_s, n)
        per_stage[f"offer_{label}"] = offer_s
        per_stage[f"drain_{label}"] = total_s - offer_s
        rows.append(
            f"{label:>6s}: {n:>9d} spans  "
            f"offer {n / offer_s / 1e6:6.2f} Mspan/s  "
            f"high-water {sink.high_water:>5d}/{CAPACITY}  "
            f"dropped {sink.dropped}  written {sink.events_written}"
        )

    short_sink = results["short"][0]
    long_sink = results["long"][0]

    # The bounded-memory gate: O(capacity) at any length, drops counted.
    assert short_sink.high_water <= CAPACITY
    assert long_sink.high_water <= CAPACITY
    for sink, _, _, n in results.values():
        assert sink.events_written + sink.dropped == n

    # Throughput must not degrade super-linearly with trace length.
    rate_short = results["short"][3] / results["short"][1]
    rate_long = results["long"][3] / results["long"][1]
    rows.append(
        f"  rate: short {rate_short / 1e6:.2f} long {rate_long / 1e6:.2f} "
        f"Mspan/s (ratio {rate_short / rate_long:.2f}x)"
    )
    if SMOKE:
        assert rate_long * 10 > rate_short, (
            "offer path got 10x slower on a 10x longer trace — the sink "
            "is no longer O(1) per span"
        )

    text = "== streaming span sink ==\n" + "\n".join(rows) + "\n"
    emit("obs_sink", text)
    emit_json(
        "obs_sink",
        {
            "n_short": N_SHORT,
            "n_long": N_LONG,
            "capacity": CAPACITY,
            "high_water_short": short_sink.high_water,
            "high_water_long": long_sink.high_water,
            "dropped_long": long_sink.dropped,
        },
        sum(r[2] for r in results.values()),
        per_stage,
    )
