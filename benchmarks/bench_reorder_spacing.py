"""Section 9's Bellardo-Savage comparison: reordering vs send spacing.

The paper positions its O metric against B&S's "reordering as a
probability as a function of inter-packet spacing" and notes its own
distances "could also be shown as a function of spacing".  This benchmark
does exactly that on the reproduction's captures:

* the local single-replayer runs show **zero** reordering at every lag;
* the dual-replayer merge shows per-node streams still in order (each
  node's substream is FIFO end-to-end) — the run-to-run displacement the
  O metric catches is invisible to the within-run B&S view, demonstrating
  why the paper needed a *cross-trial* ordering metric.
"""

import numpy as np

from repro.analysis import render_metric_rows
from repro.core import reorder_probability_by_spacing
from repro.experiments import run_scenario_trials


def test_reorder_by_spacing(once, emit, bench_params):
    from repro.experiments import scenario

    bench_params(max_lag=8, seeds={k: scenario(k).seed
                                   for k in ("local-single", "local-dual")})

    def measure():
        single = run_scenario_trials("local-single")[0]
        dual = run_scenario_trials("local-dual")[0]
        return (
            reorder_probability_by_spacing(single, max_lag=8),
            reorder_probability_by_spacing(dual, max_lag=8),
        )

    single, dual = once(measure)

    rows = []
    for k, ps, pd in zip(single.lags, single.probability, dual.probability):
        rows.append({
            "lag": int(k),
            "p_single": float(ps),
            "p_dual_per_node": float(pd),
        })
    emit(
        "reorder_by_spacing",
        render_metric_rows(rows)
        + "\nB&S view: within-capture, per-node send order vs arrival order.\n"
        "Both columns are ~0: each node's stream is FIFO end-to-end, so the\n"
        "dual-replayer inconsistency (O > 0 *between runs*) is invisible to\n"
        "a single-trial reordering measure — the gap the paper's cross-trial\n"
        "metric fills.\n",
    )

    assert not single.any_reordering
    # Per-node arrival order survives the merge (switch is FIFO per flow).
    assert np.all(dual.probability < 0.01)
