"""Throughput and memory of the streaming κ path (repro.analysis.streamkappa).

Two claims, two measurements, at two session lengths (the longer 10× the
shorter):

* **StreamKappa throughput** — packets/second through the exact
  incremental comparator at a fixed chunk size, checked bit-identical to
  the batch path on the same pair.  State here is O(session) by design.
* **KappaMonitor memory bound** — peak per-session buffered bytes while
  the monitor consumes both streams.  This is the acceptance criterion of
  the bounded-memory design: peak bytes must stay **flat** as the session
  grows 10×, because windows close and free as both streams pass them.

Results go to ``benchmarks/out/streaming_kappa.{txt,json}``.

``REPRO_BENCH_SMOKE=1`` (CI) shrinks the sessions and turns both claims
into regression gates: flat memory, and long-session throughput within
10% of short-session throughput (a machine-independent way to catch a
super-linear per-packet cost creeping into the hot path).
"""

import os
import time

import numpy as np

from repro.analysis.streamkappa import KappaMonitor, StreamKappa
from repro.core import Trial, compare_trials

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
N_SHORT = 20_000 if SMOKE else 100_000
N_LONG = 10 * N_SHORT
CHUNK = 4096
GAP_NS = 284.0
# Two windows per feed tick, exactly: a tick/window phase that drifted
# would make the mid-tick buffer high-water mark depend on how many ticks
# a session has (longer sessions sample worse alignments), which is
# measurement noise, not memory growth.
WINDOW_NS = CHUNK * GAP_NS / 2  # ~2048 packets per monitoring window


def _session_pair(n, seed=0):
    """Baseline + one run with jitter, ~0.5% drops and occasional reorders."""
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(GAP_NS, n))
    tags = np.arange(n, dtype=np.int64)
    keep = rng.random(n) > 0.005
    bt = times[keep] + rng.normal(0.0, 40.0, int(keep.sum()))
    order = np.argsort(bt, kind="stable")
    a = Trial(tags, times, label="A")
    b = Trial(tags[keep][order], bt[order], label="B")
    return a, b


def _best_of(k, fn):
    """Minimum wall time of k runs — the standard noise floor estimator."""
    best = float("inf")
    for _ in range(k):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _stream_once(a, b):
    sk = StreamKappa(a)
    for lo in range(0, len(b), CHUNK):
        sk.update(b.tags[lo : lo + CHUNK], b.times_ns[lo : lo + CHUNK])
    return sk


def _monitor_once(a, b):
    # A live tap delivers both streams up to the same wall clock each
    # tick, so feed on a shared time grid (index-aligned feeding would let
    # the droppy run drift ahead of the baseline by O(session) time).
    mon = KappaMonitor(WINDOW_NS)
    t_end = max(a.end_ns, b.end_ns)
    grid = np.arange(a.start_ns, t_end + CHUNK * GAP_NS, CHUNK * GAP_NS)
    cuts_a = np.searchsorted(a.times_ns, grid)
    cuts_b = np.searchsorted(b.times_ns, grid)
    ia = ib = 0
    for ja, jb in zip(cuts_a, cuts_b):
        if ja > ia:
            mon.feed_baseline("s", a.tags[ia:ja], a.times_ns[ia:ja])
            ia = ja
        if jb > ib:
            mon.feed_run("s", b.tags[ib:jb], b.times_ns[ib:jb])
            ib = jb
    if ia < len(a):
        mon.feed_baseline("s", a.tags[ia:], a.times_ns[ia:])
    if ib < len(b):
        mon.feed_run("s", b.tags[ib:], b.times_ns[ib:])
    mon.finish("s")
    return mon


def test_streaming_kappa_throughput_and_memory(once, emit, emit_json):
    reps = 3 if SMOKE else 2

    def sweep():
        rows = []
        for n in (N_SHORT, N_LONG):
            a, b = _session_pair(n)
            sk = _stream_once(a, b)  # warm + correctness
            assert sk.result() == compare_trials(a, b).metrics
            stream_s = _best_of(reps, lambda: _stream_once(a, b))
            mon = _monitor_once(a, b)  # warm + the memory number
            monitor_s = _best_of(reps, lambda: _monitor_once(a, b))
            rows.append({
                "n": n,
                "stream_s": stream_s,
                "stream_pps": len(b) / stream_s,
                "stream_state_bytes": sk.peak_bytes,
                "monitor_s": monitor_s,
                "monitor_pps": (len(a) + len(b)) / monitor_s,
                "monitor_peak_bytes": mon.peak_bytes("s"),
                "windows": mon.window_count("s"),
            })
        return rows

    rows = once(sweep)

    lines = [
        f"streaming kappa, chunk={CHUNK}, window={WINDOW_NS:g} ns"
        f"{' (smoke)' if SMOKE else ''}",
        f"{'packets':>9s}  {'stream pkt/s':>12s}  {'stream state':>12s}  "
        f"{'monitor pkt/s':>13s}  {'monitor peak':>12s}  {'windows':>7s}",
    ]
    for r in rows:
        lines.append(
            f"{r['n']:>9d}  {r['stream_pps']:>12.0f}  "
            f"{r['stream_state_bytes']:>11d}B  {r['monitor_pps']:>13.0f}  "
            f"{r['monitor_peak_bytes']:>11d}B  {r['windows']:>7d}"
        )
    short, long = rows
    mem_ratio = long["monitor_peak_bytes"] / max(short["monitor_peak_bytes"], 1)
    lines.append("")
    lines.append(
        f"monitor peak bytes at 10x session length: {mem_ratio:.2f}x "
        "(bounded-memory criterion: flat)"
    )
    lines.append(
        "stream state grows with the session (exactness costs O(session)): "
        f"{long['stream_state_bytes'] / max(short['stream_state_bytes'], 1):.1f}x"
    )
    lines.append("streaming result verified bit-identical to batch at both lengths")
    emit("streaming_kappa", "\n".join(lines))
    emit_json(
        "streaming_kappa",
        {"chunk": CHUNK, "window_ns": WINDOW_NS, "seed": 0, "smoke": SMOKE},
        short["stream_s"] + long["stream_s"] + short["monitor_s"] + long["monitor_s"],
        {
            f"{key}_{r['n']}": r[key]
            for r in rows
            for key in ("stream_s", "monitor_s", "stream_pps", "monitor_pps")
        },
    )

    # The acceptance criterion: monitor memory is O(window), not
    # O(session).  10x the session must not move the peak (small slack
    # for the bounded kappa ring and dict overhead).
    assert long["monitor_peak_bytes"] <= 1.5 * short["monitor_peak_bytes"] + 4096, (
        f"monitor peak bytes grew with session length: "
        f"{short['monitor_peak_bytes']}B -> {long['monitor_peak_bytes']}B"
    )

    if SMOKE:
        # Machine-independent throughput gate: per-packet cost must not
        # grow with session length (>10% drop at 10x flags a super-linear
        # term in the hot path).
        assert long["stream_pps"] >= 0.9 * short["stream_pps"], (
            f"streaming throughput regressed with session length: "
            f"{short['stream_pps']:.0f} pkt/s at n={short['n']} vs "
            f"{long['stream_pps']:.0f} pkt/s at n={long['n']}"
        )
