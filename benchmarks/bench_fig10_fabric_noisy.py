"""Figures 10a/10b + the Section 7.1 noisy shared-NIC rows.

Paper values (shared NICs, 40 Gbps, iperf3 co-tenant at ~40 Gbps):
pct10 9.31-13.81; I 0.475-0.530; L 1.8e-4 - 2.1e-4; first non-zero U —
runs missing 0 / 1,230 / 238 / 205 / 0 packets of ~1.05M, U up to 5.8e-4;
κ 0.735-0.763.

Shapes: an order-of-magnitude I collapse vs the quiet shared runs, drops
appear (tail events — some runs lose none), yet U's contribution to κ is
negligible (the paper's motivation for nonlinear U scaling, Section 8.2).
"""

import numpy as np

from repro.analysis import render_metric_rows
from repro.experiments import fig10, run_scenario
from repro.core import KappaScaling


def test_fig10_series_and_noisy_rows(once, emit, bench_params):
    from repro.experiments import scenario

    bench_params(seeds={
        k: scenario(k).seed
        for k in ("fabric-shared-40g-noisy", "fabric-shared-40g")
    })
    fig10a, fig10b = once(lambda: fig10())
    rep = run_scenario("fabric-shared-40g-noisy")
    quiet = run_scenario("fabric-shared-40g")

    rows = rep.run_rows()
    text = [
        fig10a.render(),
        fig10b.render(),
        "Section 7.1 noisy shared rows:",
        render_metric_rows(
            rows, columns=["run", "U", "I", "L", "kappa", "pct_iat_10ns", "n_missing"]
        ),
        f"paper: drops 1230/238/205 in 3 of 4 repeat runs; I ~0.5; kappa ~0.75",
    ]
    emit("fig10_fabric_noisy", "\n".join(text))

    # The collapse vs quiet shared NICs.
    assert rep.values("I").mean() > 3 * quiet.values("I").mean()
    assert rep.values("kappa").mean() < quiet.values("kappa").mean() - 0.1
    # Drops appear somewhere in the series.
    assert any(r["n_missing"] > 0 for r in rows)
    # pct10 collapses below the quiet runs' ~27 %.
    assert rep.pct_iat_within_10ns().mean() < quiet.pct_iat_within_10ns().mean()


def test_nonlinear_u_scaling_ablation(once, emit):
    """Section 8.2: sublinear U scaling makes drops matter.

    With plain Eq. 5 the drops move κ by <0.001; with a sqrt exponent on U
    the dropped-run κ separates measurably from the clean-run κ.
    """
    rep = once(lambda: run_scenario("fabric-shared-40g-noisy"))
    sqrt_u = KappaScaling(u_exponent=0.5)
    rows = []
    for p in rep.pairs:
        rows.append({
            "run": p.run_label,
            "n_missing": p.n_missing,
            "kappa_eq5": p.kappa,
            "kappa_sqrtU": p.kappa_scaled(sqrt_u),
            "delta": p.kappa - p.kappa_scaled(sqrt_u),
        })
    emit("ablation_nonlinear_u", render_metric_rows(rows))

    dropped = [r for r in rows if r["n_missing"] > 0]
    clean = [r for r in rows if r["n_missing"] == 0]
    for r in dropped:
        # sqrt scaling moves κ measurably on dropped runs (the quadratic
        # combination under a large I still damps it — which is itself a
        # finding about Eq. 5's sensitivity structure)...
        assert r["kappa_eq5"] - r["kappa_sqrtU"] > 5e-5
    for r in clean:
        # ...and leaves clean runs untouched.
        assert abs(r["kappa_eq5"] - r["kappa_sqrtU"]) < 1e-9
