"""Machine-readable benchmark emission: ``benchmarks/out/<name>.json``.

Every benchmark already writes its human-rendered table to
``benchmarks/out/<name>.txt``; this module adds the structured twin so
runs can be diffed, plotted or regression-tracked without re-parsing
tables.  One document per benchmark, fixed schema::

    {
      "bench": "<benchmark name>",
      "params": {...},        # workload knobs: sizes, seeds, core count
      "host": {...},          # measurement context: cores, start method
      "wall_s": <float>,      # the headline wall time (serial reference)
      "per_stage": {...}      # stage/config name -> seconds
    }

``params`` must name every seed the workload consumed, so an emitted
artifact is self-describing the same way the ``--trace`` files are (the
seed discipline of tests/conftest.py).  ``host`` is injected
automatically (:func:`host_info`): a speedup number is meaningless
without the usable core count it was measured under — a jobs=2 run on a
1-core box records *why* it cannot beat serial, and the CI perf gates
condition on exactly this field rather than pretending every runner has
cores to spare.  :func:`bench_document` validates the shape;
:func:`write_bench_json` writes it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

__all__ = ["bench_document", "write_bench_json", "host_info", "usable_cores"]


def usable_cores() -> int:
    """Cores this process may actually schedule on (affinity-aware)."""
    try:
        from repro.obs.export import usable_cores as _cores

        return _cores()
    except Exception:  # pragma: no cover - repro not importable
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:
            return os.cpu_count() or 1


def host_info() -> dict:
    """The measurement context recorded in every benchmark JSON.

    Delegates to :func:`repro.obs.export.host_context` so the bench
    artifacts and the sweep telemetry documents share one host schema.
    """
    try:
        from repro.obs.export import host_context

        return host_context()
    except Exception:  # pragma: no cover - repro not importable
        return {
            "usable_cores": usable_cores(),
            "cpu_count": os.cpu_count() or 1,
            "cpu_affinity": list(range(os.cpu_count() or 1)),
            "pool_start_method": multiprocessing.get_start_method(),
        }


def bench_document(
    bench: str, params: dict, wall_s: float, per_stage: dict
) -> dict:
    """Assemble and validate one benchmark result document."""
    if not bench or not isinstance(bench, str):
        raise ValueError("bench must be a non-empty string")
    if not isinstance(params, dict):
        raise ValueError("params must be a dict")
    wall_s = float(wall_s)
    if not wall_s >= 0.0:  # also rejects NaN
        raise ValueError(f"wall_s must be finite and >= 0, got {wall_s!r}")
    stages = {}
    for key, value in per_stage.items():
        value = float(value)
        if not value >= 0.0:
            raise ValueError(f"per_stage[{key!r}] must be >= 0, got {value!r}")
        stages[str(key)] = value
    return {
        "bench": bench,
        "params": dict(params),
        "host": host_info(),
        "wall_s": wall_s,
        "per_stage": stages,
    }


def write_bench_json(
    outdir, bench: str, params: dict, wall_s: float, per_stage: dict
) -> Path:
    """Write the validated document to ``<outdir>/<bench>.json``."""
    doc = bench_document(bench, params, wall_s, per_stage)
    path = Path(outdir) / f"{bench}.json"
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    return path
