"""Publication-style SVG renderings of the reproduction's charts.

Three chart types cover the paper's visual vocabulary:

* :func:`histogram_figure` — the Figures 4-10 layout: percentage of
  packets (log y) against signed delta (symlog x), one polyline-with-
  markers series per run, shared bins, legend;
* :func:`kappa_bars` — Table 2 as a horizontal bar chart of κ per
  environment, with the paper's published values as reference ticks;
* :func:`series_lines` — generic multi-series line chart (used by the
  ablations: burst-size ceilings, reorder-by-spacing, ...).

All outputs are deterministic standalone SVG files.
"""

from __future__ import annotations

import numpy as np

from ..core.histograms import DeltaHistogram
from .scales import LinearScale, LogScale, SymlogScale
from .svg import SvgDocument

__all__ = ["histogram_figure", "kappa_bars", "series_lines", "PALETTE"]

#: Color cycle for run series (colorblind-safe-ish).
PALETTE = ("#3465a4", "#cc4125", "#6aa84f", "#8e63ce", "#e69138", "#444444")

_MARGIN = {"left": 64.0, "right": 16.0, "top": 34.0, "bottom": 46.0}


def _frame(doc: SvgDocument, x0, y0, x1, y1, title: str) -> None:
    doc.rect(x0, y0, x1 - x0, y1 - y0, fill="none", stroke="#888888")
    if title:
        doc.text((x0 + x1) / 2, 18, title, size=13, anchor="middle", weight="bold")


def histogram_figure(
    histograms: list[DeltaHistogram],
    *,
    title: str = "",
    xlabel: str = "delta (ns)",
    ylabel: str = "% of packets",
    width: float = 640.0,
    height: float = 360.0,
    min_pct: float = 1e-5,
) -> SvgDocument:
    """The paper's histogram-figure layout over shared symlog bins."""
    if not histograms:
        raise ValueError("need at least one histogram")
    bins = histograms[0].bins
    for h in histograms[1:]:
        if h.bins != bins:
            raise ValueError("histograms must share bins")

    doc = SvgDocument(width, height)
    x0, y0 = _MARGIN["left"], _MARGIN["top"]
    x1, y1 = width - _MARGIN["right"], height - _MARGIN["bottom"]
    _frame(doc, x0, y0, x1, y1, title)

    limit = 10.0 ** bins.max_decade
    xs = SymlogScale(limit=limit, linthresh=bins.linthresh, p0=x0, p1=x1)
    ymax = max(float(h.percent.max(initial=min_pct)) for h in histograms)
    ys = LogScale(d0=min_pct, d1=max(ymax * 1.3, min_pct * 10), p0=y1, p1=y0)

    # Grid + ticks.
    for v, label in xs.ticks():
        px = xs(v)
        doc.line(px, y0, px, y1, stroke="#dddddd")
        doc.text(px, y1 + 14, label, size=9, anchor="middle")
    for v, label in ys.ticks():
        py = ys(v)
        doc.line(x0, py, x1, py, stroke="#eeeeee")
        doc.text(x0 - 4, py + 3, label, size=9, anchor="end")
    doc.text((x0 + x1) / 2, height - 8, xlabel, size=11, anchor="middle")
    doc.text(14, (y0 + y1) / 2, ylabel, size=11, anchor="middle", rotate=-90)

    centers = bins.centers()
    finite = np.isfinite(centers)
    for i, h in enumerate(histograms):
        color = PALETTE[i % len(PALETTE)]
        pct = h.percent
        mask = finite & (pct > min_pct)
        pts = [(xs(c), ys(p)) for c, p in zip(centers[mask], pct[mask])]
        if len(pts) > 1:
            doc.polyline(pts, stroke=color, stroke_width=1.5, opacity=0.9)
        for px, py in pts:
            doc.circle(px, py, 2.2, fill=color)
        # Legend entry.
        lx, ly = x1 - 70, y0 + 14 + i * 14
        doc.line(lx, ly - 3, lx + 18, ly - 3, stroke=color, stroke_width=2)
        doc.text(lx + 22, ly, f"run {h.label or '?'}", size=10)
    return doc


def kappa_bars(
    rows: list[dict],
    *,
    title: str = "Consistency score per environment",
    width: float = 680.0,
    height: float | None = None,
    paper_key: str = "paper_kappa",
) -> SvgDocument:
    """Horizontal κ bars per environment, with paper reference markers.

    ``rows`` carry ``environment`` and ``kappa`` (and optionally the
    paper's value under ``paper_key``, drawn as a vertical notch).
    """
    if not rows:
        raise ValueError("need at least one row")
    bar_h, gap = 18.0, 8.0
    height = height or (_MARGIN["top"] + 30 + len(rows) * (bar_h + gap))
    doc = SvgDocument(width, height)
    x0 = 200.0
    x1 = width - _MARGIN["right"]
    y = _MARGIN["top"]
    _frame(doc, x0, y - 6, x1, height - 20, title)
    xs = LinearScale(d0=0.0, d1=1.0, p0=x0, p1=x1)

    for v, label in xs.ticks(5):
        px = xs(v)
        doc.line(px, y - 6, px, height - 20, stroke="#e5e5e5")
        doc.text(px, height - 6, label, size=9, anchor="middle")

    for i, row in enumerate(rows):
        top = y + i * (bar_h + gap)
        k = float(row["kappa"])
        doc.text(x0 - 6, top + bar_h * 0.72, str(row["environment"]), size=10, anchor="end")
        doc.rect(x0, top, xs(k) - x0, bar_h, fill=PALETTE[0], opacity=0.85)
        doc.text(xs(k) + 4, top + bar_h * 0.72, f"{k:.3f}", size=9)
        if paper_key in row and row[paper_key] is not None:
            px = xs(float(row[paper_key]))
            doc.line(px, top - 2, px, top + bar_h + 2, stroke="#cc4125",
                     stroke_width=2)
    return doc


def series_lines(
    x_values,
    series: dict[str, np.ndarray],
    *,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    width: float = 640.0,
    height: float = 360.0,
    log_y: bool = False,
) -> SvgDocument:
    """Generic multi-series line chart on a linear x axis."""
    if not series:
        raise ValueError("need at least one series")
    x = np.asarray(x_values, dtype=np.float64)
    doc = SvgDocument(width, height)
    x0, y0 = _MARGIN["left"], _MARGIN["top"]
    x1, y1 = width - _MARGIN["right"], height - _MARGIN["bottom"]
    _frame(doc, x0, y0, x1, y1, title)

    xs = LinearScale(d0=float(x.min()), d1=float(x.max()) or 1.0, p0=x0, p1=x1)
    all_y = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    if log_y:
        positive = all_y[all_y > 0]
        lo = float(positive.min()) if positive.size else 1e-6
        ys = LogScale(d0=lo / 2, d1=float(all_y.max()) * 1.3, p0=y1, p1=y0)
        y_ticks = ys.ticks()
    else:
        lo, hi = float(all_y.min()), float(all_y.max())
        if lo == hi:
            lo, hi = lo - 1.0, hi + 1.0
        ys = LinearScale(d0=min(lo, 0.0), d1=hi * 1.1, p0=y1, p1=y0)
        y_ticks = ys.ticks(5)

    for v, label in xs.ticks(6):
        px = xs(v)
        doc.line(px, y0, px, y1, stroke="#eeeeee")
        doc.text(px, y1 + 14, label, size=9, anchor="middle")
    for v, label in y_ticks:
        py = ys(v)
        doc.line(x0, py, x1, py, stroke="#eeeeee")
        doc.text(x0 - 4, py + 3, label, size=9, anchor="end")
    doc.text((x0 + x1) / 2, height - 8, xlabel, size=11, anchor="middle")
    doc.text(14, (y0 + y1) / 2, ylabel, size=11, anchor="middle", rotate=-90)

    for i, (name, values) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        v = np.asarray(values, dtype=np.float64)
        if log_y:
            mask = v > 0
        else:
            mask = np.isfinite(v)
        pts = [(xs(a), ys(b)) for a, b in zip(x[mask], v[mask])]
        if len(pts) > 1:
            doc.polyline(pts, stroke=color)
        for px, py in pts:
            doc.circle(px, py, 2.5, fill=color)
        lx, ly = x0 + 10, y0 + 14 + i * 14
        doc.line(lx, ly - 3, lx + 18, ly - 3, stroke=color, stroke_width=2)
        doc.text(lx + 22, ly, name, size=10)
    return doc
