"""Axis scales and tick generation for the figure renderers.

Three scales cover every chart in the paper: linear (κ bars), log (the
figures' percentage y-axes), and symmetric-log (the IAT/latency delta
x-axes spanning ±10⁰..10⁹ ns with a linear core).  Each scale maps data
space onto a pixel interval and produces labeled ticks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["LinearScale", "LogScale", "SymlogScale"]


@dataclass(frozen=True)
class LinearScale:
    """Affine data→pixel mapping."""

    d0: float
    d1: float
    p0: float
    p1: float

    def __post_init__(self) -> None:
        if self.d0 == self.d1:
            raise ValueError("degenerate data domain")

    def __call__(self, value):
        frac = (np.asarray(value, dtype=np.float64) - self.d0) / (self.d1 - self.d0)
        out = self.p0 + frac * (self.p1 - self.p0)
        return float(out) if out.ndim == 0 else out

    def ticks(self, n: int = 5) -> list[tuple[float, str]]:
        """~n nicely rounded (value, label) ticks inside the domain."""
        lo, hi = min(self.d0, self.d1), max(self.d0, self.d1)
        span = hi - lo
        step = 10 ** math.floor(math.log10(span / max(n, 1)))
        for mult in (1, 2, 5, 10):
            if span / (step * mult) <= n:
                step *= mult
                break
        first = math.ceil(lo / step) * step
        vals = np.arange(first, hi + step * 0.5, step)
        return [(float(v), f"{v:g}") for v in vals]


@dataclass(frozen=True)
class LogScale:
    """Log10 data→pixel mapping for strictly positive data."""

    d0: float
    d1: float
    p0: float
    p1: float

    def __post_init__(self) -> None:
        if self.d0 <= 0 or self.d1 <= 0 or self.d0 == self.d1:
            raise ValueError("log scale needs a positive, non-degenerate domain")

    def __call__(self, value):
        v = np.log10(np.asarray(value, dtype=np.float64))
        l0, l1 = math.log10(self.d0), math.log10(self.d1)
        out = self.p0 + (v - l0) / (l1 - l0) * (self.p1 - self.p0)
        return float(out) if out.ndim == 0 else out

    def ticks(self) -> list[tuple[float, str]]:
        """Decade ticks inside the domain."""
        lo = math.ceil(math.log10(min(self.d0, self.d1)))
        hi = math.floor(math.log10(max(self.d0, self.d1)))
        out = []
        for e in range(lo, hi + 1):
            v = 10.0**e
            label = f"1e{e}" if not -3 <= e <= 3 else f"{v:g}"
            out.append((v, label))
        return out


@dataclass(frozen=True)
class SymlogScale:
    """Symmetric-log mapping: linear inside ±linthresh, log outside.

    Mirrors matplotlib's symlog: the transform is
    ``sign(x) * (1 + log10(|x|/linthresh))`` outside the threshold and
    ``x / linthresh`` inside, then affine to pixels.
    """

    limit: float
    linthresh: float
    p0: float
    p1: float

    def __post_init__(self) -> None:
        if self.linthresh <= 0 or self.limit <= self.linthresh:
            raise ValueError("need 0 < linthresh < limit")

    def _transform(self, x: np.ndarray) -> np.ndarray:
        ax = np.abs(x)
        with np.errstate(divide="ignore"):
            outer = np.sign(x) * (1.0 + np.log10(np.maximum(ax, self.linthresh) / self.linthresh))
        inner = x / self.linthresh
        return np.where(ax <= self.linthresh, inner, outer)

    def __call__(self, value):
        v = self._transform(np.asarray(value, dtype=np.float64))
        vmax = float(self._transform(np.asarray(self.limit)))
        out = self.p0 + (v + vmax) / (2 * vmax) * (self.p1 - self.p0)
        return float(out) if out.ndim == 0 else out

    def ticks(self) -> list[tuple[float, str]]:
        """0, ±linthresh and ± decades up to the limit, SI-labelled."""
        from ..analysis.textplot import format_si

        decades = []
        e = math.ceil(math.log10(self.linthresh))
        while 10.0**e <= self.limit:
            decades.append(10.0**e)
            e += 1
        vals = sorted({-d for d in decades} | {0.0} | set(decades))
        return [(v, format_si(v)) for v in vals]
