"""Dependency-free SVG figure rendering.

The paper's artifact produces figures; this package regenerates them as
standalone SVG documents without a plotting stack:
:func:`~repro.viz.figures.histogram_figure` for the Figures 4-10 layout,
:func:`~repro.viz.figures.kappa_bars` for Table-2-style comparisons, and
:func:`~repro.viz.figures.series_lines` for the ablations.
"""

from .figures import PALETTE, histogram_figure, kappa_bars, series_lines
from .scales import LinearScale, LogScale, SymlogScale
from .svg import SvgDocument

__all__ = [
    "SvgDocument",
    "LinearScale",
    "LogScale",
    "SymlogScale",
    "histogram_figure",
    "kappa_bars",
    "series_lines",
    "PALETTE",
]
