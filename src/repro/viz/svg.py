"""A minimal, dependency-free SVG document builder.

The paper's artifact emits figures; this environment has no plotting
stack, so the package carries its own small SVG layer — enough for the
publication-style charts in :mod:`repro.viz.figures`: rectangles, lines,
polylines, paths, text with anchoring, and grouped/translated content.

Elements are accumulated as strings with proper XML escaping; the
document serializes deterministically (attribute order fixed by
insertion), which keeps figure outputs diffable across runs.
"""

from __future__ import annotations

from xml.sax.saxutils import escape, quoteattr

__all__ = ["SvgDocument"]


def _fmt(value) -> str:
    """Compact numeric formatting: 3 decimals, no trailing zeros."""
    if isinstance(value, float):
        s = f"{value:.3f}".rstrip("0").rstrip(".")
        return s if s not in ("", "-") else "0"
    return str(value)


def _attrs(attrs: dict) -> str:
    parts = []
    for k, v in attrs.items():
        if v is None:
            continue
        name = k.rstrip("_").replace("_", "-")
        parts.append(f" {name}={quoteattr(_fmt(v))}")
    return "".join(parts)


class SvgDocument:
    """An SVG canvas with a fluent element-appending API.

    All coordinates are in user units (pixels).  The y-axis is SVG's
    (down-positive); chart code flips via its scale mapping.
    """

    def __init__(self, width: float, height: float, *, background: str | None = "#ffffff"):
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = float(width)
        self.height = float(height)
        self._body: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke=None)

    # -- primitives --------------------------------------------------------
    def rect(self, x, y, w, h, *, fill="#000000", stroke=None, stroke_width=1.0,
             opacity=None, rx=None) -> "SvgDocument":
        """Append a rectangle."""
        self._body.append(
            "<rect"
            + _attrs({
                "x": x, "y": y, "width": w, "height": h, "fill": fill,
                "stroke": stroke, "stroke_width": stroke_width if stroke else None,
                "opacity": opacity, "rx": rx,
            })
            + "/>"
        )
        return self

    def line(self, x1, y1, x2, y2, *, stroke="#000000", stroke_width=1.0,
             dash=None, opacity=None) -> "SvgDocument":
        """Append a line segment."""
        self._body.append(
            "<line"
            + _attrs({
                "x1": x1, "y1": y1, "x2": x2, "y2": y2, "stroke": stroke,
                "stroke_width": stroke_width, "stroke_dasharray": dash,
                "opacity": opacity,
            })
            + "/>"
        )
        return self

    def polyline(self, points, *, stroke="#000000", stroke_width=1.5,
                 fill="none", opacity=None) -> "SvgDocument":
        """Append a polyline through ``(x, y)`` pairs."""
        pts = " ".join(f"{_fmt(float(x))},{_fmt(float(y))}" for x, y in points)
        self._body.append(
            "<polyline"
            + _attrs({
                "points": pts, "stroke": stroke, "stroke_width": stroke_width,
                "fill": fill, "opacity": opacity,
            })
            + "/>"
        )
        return self

    def circle(self, cx, cy, r, *, fill="#000000", stroke=None,
               opacity=None) -> "SvgDocument":
        """Append a circle marker."""
        self._body.append(
            "<circle"
            + _attrs({
                "cx": cx, "cy": cy, "r": r, "fill": fill, "stroke": stroke,
                "opacity": opacity,
            })
            + "/>"
        )
        return self

    def text(self, x, y, content, *, size=11, anchor="start", fill="#222222",
             rotate=None, family="Helvetica, Arial, sans-serif",
             weight=None) -> "SvgDocument":
        """Append a text label; ``anchor`` is start/middle/end."""
        transform = None
        if rotate is not None:
            transform = f"rotate({_fmt(float(rotate))} {_fmt(float(x))} {_fmt(float(y))})"
        self._body.append(
            "<text"
            + _attrs({
                "x": x, "y": y, "font_size": size, "text_anchor": anchor,
                "fill": fill, "font_family": family, "font_weight": weight,
                "transform": transform,
            })
            + f">{escape(str(content))}</text>"
        )
        return self

    def group_open(self, *, translate: tuple[float, float] | None = None,
                   opacity=None) -> "SvgDocument":
        """Open a ``<g>``; pair with :meth:`group_close`."""
        transform = None
        if translate is not None:
            transform = f"translate({_fmt(float(translate[0]))} {_fmt(float(translate[1]))})"
        self._body.append("<g" + _attrs({"transform": transform, "opacity": opacity}) + ">")
        return self

    def group_close(self) -> "SvgDocument":
        """Close the innermost ``<g>``."""
        self._body.append("</g>")
        return self

    # -- output -------------------------------------------------------------
    def render(self) -> str:
        """The complete SVG document."""
        head = (
            '<?xml version="1.0" encoding="UTF-8"?>\n'
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{_fmt(self.width)}" height="{_fmt(self.height)}" '
            f'viewBox="0 0 {_fmt(self.width)} {_fmt(self.height)}">'
        )
        return head + "".join(self._body) + "</svg>\n"

    def save(self, path) -> None:
        """Write the document to disk."""
        from pathlib import Path

        Path(path).write_text(self.render())
