"""Precision Time Protocol (PTP) synchronization model.

Section 2.2: FABRIC hosts receive GPS-disciplined PTP time on a NIC, VMs
synchronize to the host clock through the kernel's ``ptp_kvm`` driver
(claimed sub-microsecond error), and an Ansible-installed service then
disciplines the VM's NICs from the system clock.  On the local testbed the
generator's system clock (NTP stratum-1 conditioned) acts as grandmaster
with in-band PTP to the replay nodes.

What the experiments actually depend on is the *residual* error left on
each node's clock after synchronization, and how it changes between runs:
Section 6.2 attributes the dual-replayer reordering to per-run offsets
between the two replayers' disciplined clocks.  The model therefore keeps
one grandmaster and, per sync epoch, gives each follower clock a fresh
residual offset drawn from the profile's error scale, plus the slow drift
between syncs that the underlying :class:`~repro.timing.clock.SystemClock`
already provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .clock import SystemClock

__all__ = ["PTPProfile", "PTPDomain"]


@dataclass(frozen=True)
class PTPProfile:
    """Error characteristics of one PTP deployment.

    Parameters
    ----------
    residual_ns:
        Standard deviation of the follower's offset right after a sync
        exchange.  The paper's setups: "synchronizes to within 10s of
        nanoseconds" locally; ``ptp_kvm`` claims sub-microsecond on FABRIC.
    sync_interval_ns:
        Time between sync exchanges (log message period).
    path_asymmetry_ns:
        Fixed error from asymmetric network paths, which PTP cannot
        observe; applied as a constant bias per follower.
    """

    residual_ns: float = 30.0
    sync_interval_ns: float = 1e9
    path_asymmetry_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.residual_ns < 0:
            raise ValueError("residual_ns must be non-negative")
        if self.sync_interval_ns <= 0:
            raise ValueError("sync_interval_ns must be positive")


#: Local testbed: stratum-1-conditioned grandmaster, bare-metal followers.
LOCAL_PTP = PTPProfile(residual_ns=30.0)
#: FABRIC: GPS → host NIC → ptp_kvm → VM chain, sub-microsecond per hop.
FABRIC_PTP = PTPProfile(residual_ns=400.0)


@dataclass
class PTPDomain:
    """A grandmaster and its follower clocks.

    Followers are registered by name; :meth:`synchronize_all` steps each
    follower to grandmaster time plus a fresh residual, which is the state
    a trial starts from.
    """

    profile: PTPProfile
    rng: np.random.Generator
    grandmaster: SystemClock = field(default_factory=SystemClock)
    followers: dict[str, SystemClock] = field(default_factory=dict)

    def add_follower(self, name: str, clock: SystemClock | None = None) -> SystemClock:
        """Register (and return) a follower clock under ``name``."""
        if name in self.followers:
            raise ValueError(f"follower {name!r} already registered")
        clock = clock if clock is not None else SystemClock()
        self.followers[name] = clock
        return clock

    def synchronize_all(self, true_now_ns: float = 0.0) -> dict[str, float]:
        """Run one sync epoch; returns each follower's post-sync offset.

        Each follower's offset becomes the grandmaster's current error plus
        an independent residual draw plus the fixed path asymmetry —
        the state of the domain at the start of a recording or replay.
        """
        gm_err = self.grandmaster.error_at(true_now_ns)
        offsets: dict[str, float] = {}
        for name, clock in self.followers.items():
            residual = self.rng.normal(0.0, self.profile.residual_ns)
            offset = gm_err + residual + self.profile.path_asymmetry_ns
            clock.set_offset(offset)
            offsets[name] = offset
        return offsets

    def worst_pairwise_offset_ns(self, true_now_ns: float = 0.0) -> float:
        """Largest clock disagreement between any two followers right now."""
        if len(self.followers) < 2:
            return 0.0
        errs = [c.error_at(true_now_ns) for c in self.followers.values()]
        return float(max(errs) - min(errs))
