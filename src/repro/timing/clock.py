"""System clock model: offset, frequency error, and wander.

Every node in the simulated testbed owns a :class:`SystemClock` that maps
*true* simulation time to the time that node believes it is.  The three
standard imperfections are modeled:

* a fixed **offset** left over from the last synchronization;
* a **frequency error** (drift) in parts-per-million, as crystal
  oscillators exhibit;
* **wander** — a slow random walk of the frequency error caused by
  temperature and load, realized as an integrated Gaussian process.

PTP/NTP (see :mod:`repro.timing.ptp`, :mod:`repro.timing.ntp`) discipline
a clock by re-estimating and cancelling the offset, leaving a residual
error characteristic of the protocol and transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SystemClock"]


@dataclass
class SystemClock:
    """A drifting, wandering system clock.

    Parameters
    ----------
    offset_ns:
        Current clock-minus-true-time offset.
    drift_ppm:
        Fixed frequency error in parts per million.  +10 ppm gains 10 µs
        per second of true time.
    wander_ppm:
        Standard deviation of the random-walk component of the frequency
        error, applied per :attr:`wander_step_ns` of true time.  Zero gives
        a deterministic clock.
    wander_step_ns:
        Resolution of the wander process; one Gaussian increment of the
        frequency random walk is drawn per step.
    rng:
        Random source for the wander process.  Required when
        ``wander_ppm > 0``.
    """

    offset_ns: float = 0.0
    drift_ppm: float = 0.0
    wander_ppm: float = 0.0
    wander_step_ns: float = 1e6  # 1 ms
    rng: np.random.Generator | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.wander_step_ns <= 0:
            raise ValueError("wander_step_ns must be positive")
        if self.wander_ppm < 0:
            raise ValueError("wander_ppm must be non-negative")
        if self.wander_ppm > 0 and self.rng is None:
            raise ValueError("wander requires an rng")

    def reading_ns(self, true_ns):
        """Clock reading(s) for true time(s), vectorized.

        For array input the wander realization is drawn once across the
        spanned interval so that readings within one call are mutually
        consistent (the same clock trajectory), which is what per-trial
        timestamping needs.
        """
        t = np.asarray(true_ns, dtype=np.float64)
        scalar = t.ndim == 0
        t = np.atleast_1d(t)
        out = t + self.offset_ns + t * (self.drift_ppm * 1e-6)
        if self.wander_ppm > 0 and t.size:
            out = out + self._wander_component(t)
        return float(out[0]) if scalar else out

    def _wander_component(self, t: np.ndarray) -> np.ndarray:
        """Integrated frequency random walk evaluated at times ``t``.

        The frequency error follows a random walk with per-step std
        ``wander_ppm``; integrating it gives the phase error.  The walk is
        realized on a uniform grid covering [min(t), max(t)] and linearly
        interpolated onto ``t``.
        """
        t0, t1 = float(t.min()), float(t.max())
        n_steps = max(2, int(np.ceil((t1 - t0) / self.wander_step_ns)) + 1)
        grid = np.linspace(t0, t1, n_steps)
        dt = (t1 - t0) / (n_steps - 1) if n_steps > 1 else 0.0
        freq_walk = np.cumsum(self.rng.normal(0.0, self.wander_ppm * 1e-6, n_steps))
        phase = np.concatenate([[0.0], np.cumsum(freq_walk[:-1] * dt)])
        return np.interp(t, grid, phase)

    def set_offset(self, offset_ns: float) -> None:
        """Step the clock (what a synchronization protocol does)."""
        self.offset_ns = float(offset_ns)

    def error_at(self, true_ns: float) -> float:
        """Clock-minus-true error at one instant (diagnostics)."""
        return float(self.reading_ns(true_ns)) - float(true_ns)
