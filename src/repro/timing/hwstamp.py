"""NIC receive-timestamping models.

Section 8.1 singles out a hardware difference between the testbeds'
recorders:

* the local recorder's **Intel E810** "uses real-time HW timestamps" —
  the PHC runs on wall-clock time and stamps each packet directly;
* FABRIC's **Mellanox ConnectX-6** "uses HW clock timestamps converted to
  ns by sampling the HW clock" — the free-running cycle counter is
  periodically sampled against the system clock and packet stamps are
  converted through that piecewise-linear fit, which adds a sawtooth
  conversion error between samples.

Both models also quantize to the counter resolution and add front-end
jitter.  Timestampers are pure functions of (true arrival times, rng), so
trials remain reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RxTimestamper", "RealtimeHWStamper", "SampledClockStamper"]


class RxTimestamper:
    """Interface: map true arrival times to what the NIC reports."""

    def stamp(self, true_times_ns: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Timestamps the host records for packets arriving at given times."""
        raise NotImplementedError


def _quantize(times: np.ndarray, resolution_ns: float) -> np.ndarray:
    if resolution_ns <= 0:
        return times
    return np.floor(times / resolution_ns) * resolution_ns


@dataclass(frozen=True)
class RealtimeHWStamper(RxTimestamper):
    """Direct PHC stamping (Intel E810 style).

    Parameters
    ----------
    jitter_ns:
        Std of per-packet analog/front-end jitter.
    resolution_ns:
        Counter granularity; E810's PHC increments in single-digit ns.
    """

    jitter_ns: float = 2.0
    resolution_ns: float = 1.0

    def stamp(self, true_times_ns: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        t = np.asarray(true_times_ns, dtype=np.float64)
        if self.jitter_ns > 0:
            t = t + rng.normal(0.0, self.jitter_ns, t.shape)
        out = _quantize(t, self.resolution_ns)
        # Stamping cannot reorder a serial link: enforce monotonicity the
        # way a NIC's strictly-increasing counter does.
        return np.maximum.accumulate(out)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"realtime-hw(jitter={self.jitter_ns}ns)"


@dataclass(frozen=True)
class SampledClockStamper(RxTimestamper):
    """Free-running clock with periodic sampled conversion (CX-6 style).

    The driver samples (hw_clock, system_time) pairs every
    ``sample_interval_ns`` and converts packet stamps linearly between
    samples.  Each sample carries a reading error of ``sample_error_ns``,
    so the conversion error is a random sawtooth: continuous, piecewise
    linear, re-anchored at every sample.  This is the extra nanoseconds of
    IAT variation the paper observes on FABRIC recorders.
    """

    jitter_ns: float = 2.0
    resolution_ns: float = 1.0
    sample_interval_ns: float = 1e6  # 1 ms sampling loop
    sample_error_ns: float = 25.0

    def stamp(self, true_times_ns: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        t = np.asarray(true_times_ns, dtype=np.float64)
        if t.size == 0:
            return t.copy()
        out = t.copy()
        if self.sample_error_ns > 0:
            t0, t1 = float(t.min()), float(t.max())
            n_anchor = max(2, int(np.ceil((t1 - t0) / self.sample_interval_ns)) + 2)
            anchors = t0 + np.arange(n_anchor) * self.sample_interval_ns
            anchor_err = rng.normal(0.0, self.sample_error_ns, n_anchor)
            out = out + np.interp(t, anchors, anchor_err)
        if self.jitter_ns > 0:
            out = out + rng.normal(0.0, self.jitter_ns, t.shape)
        out = _quantize(out, self.resolution_ns)
        return np.maximum.accumulate(out)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"sampled-clock(jitter={self.jitter_ns}ns, "
            f"sample_err={self.sample_error_ns}ns/{self.sample_interval_ns}ns)"
        )
