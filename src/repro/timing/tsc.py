"""Time Stamp Counter (TSC) model.

Choir records and schedules replays with the CPU's TSC because it is the
cheapest monotone time source available to a busy-polling DPDK thread
(Section 4).  The properties that matter to the replayer — and that this
model captures — are:

* the counter ticks at a fixed nominal frequency (*constant/invariant*
  TSC, which the paper notes FABRIC nodes provide);
* reads are integer cycle counts, so converting a wall-clock replay start
  time into a cycle target quantizes to the cycle period;
* a non-invariant TSC (frequency scaling with the core clock) breaks the
  cycle↔nanosecond conversion — modeled so tests can demonstrate why
  Choir requires invariance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TSC"]


@dataclass(frozen=True)
class TSC:
    """A per-core time stamp counter.

    Parameters
    ----------
    frequency_hz:
        Nominal tick rate.  FABRIC VM hosts and the local testbed in the
        paper run in the low-GHz range; the default matches a common
        2.4 GHz part.
    invariant:
        When False, :meth:`read` applies the instantaneous ``scale`` factor
        (e.g. turbo/powersave excursions), breaking the constant-frequency
        assumption Choir relies on.
    scale:
        Instantaneous frequency multiplier used only when not invariant.
    """

    frequency_hz: float = 2.4e9
    invariant: bool = True
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency_hz must be positive")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def period_ns(self) -> float:
        """Nanoseconds per tick."""
        return 1e9 / self.frequency_hz

    def read(self, true_time_ns):
        """Cycle count at a true time (scalar or array) since counter zero."""
        rate = self.frequency_hz * (1.0 if self.invariant else self.scale)
        cycles = np.floor(np.multiply(true_time_ns, rate / 1e9))
        return cycles.astype(np.int64) if isinstance(cycles, np.ndarray) else np.int64(cycles)

    def cycles_to_ns(self, cycles):
        """Convert cycle counts to nanoseconds at the *nominal* frequency.

        This is what software does with a recorded TSC value; under a
        non-invariant counter the result is wrong by ``scale``, which is
        exactly the failure mode the invariance requirement avoids.
        """
        return np.multiply(cycles, 1e9 / self.frequency_hz)

    def ns_to_cycles(self, ns):
        """Convert a nanosecond duration to a whole number of cycles."""
        cycles = np.floor(np.multiply(ns, self.frequency_hz / 1e9))
        return cycles.astype(np.int64) if isinstance(cycles, np.ndarray) else np.int64(cycles)

    def quantize_ns(self, ns):
        """Round a time down to the TSC tick grid (scheduling resolution)."""
        return self.cycles_to_ns(self.ns_to_cycles(ns))
