"""Network Time Protocol (NTP) model.

The local testbed's generator synchronizes its system clock to a local
stratum-1 NTP server (Section 6) and then serves as PTP grandmaster.  NTP
accuracy is orders of magnitude coarser than PTP; what matters for the
experiments is only the grandmaster's absolute error floor, so the model
is deliberately simple: per stratum hop, an offset-estimation error scaled
by the path's round-trip jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .clock import SystemClock

__all__ = ["NTPServer", "ntp_discipline"]


@dataclass(frozen=True)
class NTPServer:
    """An NTP time source at a given stratum.

    Parameters
    ----------
    stratum:
        1 is a reference-clock server (GPS/atomic); each hop adds one.
    base_error_ns:
        Typical offset error contributed per stratum hop on the path to
        this server.  A LAN stratum-1 sync lands in the 10s-of-µs range;
        cross-internet syncs in the ms range.
    """

    stratum: int = 1
    base_error_ns: float = 50_000.0  # 50 µs: LAN stratum-1 quality

    def __post_init__(self) -> None:
        if self.stratum < 1 or self.stratum > 15:
            raise ValueError("NTP stratum must be in [1, 15]")
        if self.base_error_ns < 0:
            raise ValueError("base_error_ns must be non-negative")

    def offset_error_scale_ns(self) -> float:
        """Std of the offset error a client syncing to this server gets."""
        return self.base_error_ns * self.stratum


def ntp_discipline(
    clock: SystemClock, server: NTPServer, rng: np.random.Generator
) -> float:
    """Discipline ``clock`` against ``server``; returns the applied offset.

    The client's post-sync offset is one draw at the server's error scale.
    The clock keeps its own drift/wander — NTP only steps the phase here,
    which is all the downstream experiments observe between syncs.
    """
    offset = float(rng.normal(0.0, server.offset_error_scale_ns()))
    clock.set_offset(offset)
    return offset
