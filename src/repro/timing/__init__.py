"""Clock substrate: TSC, system clocks, PTP/NTP sync, NIC RX timestamping.

These models supply the time sources the paper's machinery depends on:
Choir schedules replays off the TSC (Section 4), nodes compare timestamps
across PTP-disciplined clocks (Section 2.2), and the recorder's NIC
timestamping model shapes the observed IAT distributions (Section 8.1).
"""

from .clock import SystemClock
from .hwstamp import RealtimeHWStamper, RxTimestamper, SampledClockStamper
from .ntp import NTPServer, ntp_discipline
from .ptp import FABRIC_PTP, LOCAL_PTP, PTPDomain, PTPProfile
from .tsc import TSC

__all__ = [
    "TSC",
    "SystemClock",
    "PTPProfile",
    "PTPDomain",
    "LOCAL_PTP",
    "FABRIC_PTP",
    "NTPServer",
    "ntp_discipline",
    "RxTimestamper",
    "RealtimeHWStamper",
    "SampledClockStamper",
]
