"""Command-line interface: ``python -m repro <command>``.

Mirrors the artifact's workflow from a shell:

* ``repro scenarios`` — list the nine registered evaluation environments;
* ``repro simulate <scenario>`` — run a trial series, print the report,
  optionally save captures;
* ``repro analyze <dir>`` — Section-3 analysis of saved captures;
* ``repro monitor <dir>`` — stream the captures through the online κ
  path: exact streaming metrics per run (:mod:`repro.analysis.streamkappa`)
  plus windowed κ with live degradation flagging;
* ``repro table1`` / ``repro table2`` — regenerate the paper's tables;
* ``repro figure <id>`` — regenerate one figure's series (e.g. ``4a``);
* ``repro sweep`` — run a scenario × seed matrix through the persistent
  content-addressed artifact store (:mod:`repro.sweep`): completed units
  are deduplicated and a killed sweep resumes from its last finished
  unit; ``--store``/``REPRO_STORE`` points the other scenario-driven
  commands at the same store so they reuse and feed it;
* ``repro stability`` — the PASTRAMI-style stability screen
  (:mod:`repro.analysis.stability`): per-environment κ *distributions*
  over many seeded sessions with bootstrap intervals, MAD outlier
  flagging and — with ``--eps`` — the sequential minimal-runs stopping
  rule ("add sessions until the κ CI half-width is ≤ ε or ``--max-runs``
  is hit").  ``repro table2 --ci`` and ``repro validate --ci`` surface
  the same interval columns inside the paper-facing drivers.

All commands honor ``--scale`` (capture duration relative to the paper's
0.3 s; default from ``REPRO_SCALE`` or 0.25) and print plain text so
output can be redirected into experiment logs.  ``--trace FILE.json``
(or ``REPRO_TRACE=FILE.json``) records a Chrome ``trace_event`` timeline
of every pipeline stage — parent and worker processes alike — loadable in
Perfetto / ``chrome://tracing``; ``--stats`` prints the stage/counter
summary to stderr after the command (see :mod:`repro.obs` and
``docs/observability.md``).  Long-running invocations stream instead of
buffering: ``--stream-trace FILE`` flushes spans incrementally through a
bounded ring (O(buffer) memory at any trace length), ``--counter-tick
MS`` samples engine counters into Chrome ``ph:"C"`` tracks, and
``--serve-metrics PORT`` exposes ``/metrics`` (Prometheus text) +
``/healthz`` while the command runs.  Commands that simulate or
run the Section-3 analysis honor ``--jobs N`` (default from ``REPRO_JOBS``
or 1), fanning both the trial simulation and the comparison across N
processes via :mod:`repro.parallel` — every comparison stage shards,
including the global-LCS ordering metric (prefix-patience blocks, see
:mod:`repro.parallel.ordershard`); output is identical at any job count.
Every worker draws from one process-global pool, created lazily on the
first parallel stage and torn down when the command exits — including on
error paths (see :mod:`repro.parallel.pool`).
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Network Replay and Consistency "
        "Across Testbeds' (Choir).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_jobs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="worker processes for simulation and analysis (default "
            "REPRO_JOBS or 1; output is identical at any N)",
        )
        p.add_argument(
            "--store", default=None, metavar="DIR",
            help="persistent artifact store for simulated series (default "
            "REPRO_STORE if set; results are identical with or without it)",
        )
        add_obs(p)

    def add_obs(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace", default=None, metavar="FILE.json",
            help="write a Chrome trace_event timeline of every stage "
            "(Perfetto-loadable; default REPRO_TRACE if set)",
        )
        p.add_argument(
            "--stream-trace", default=None, metavar="FILE",
            help="stream spans incrementally to FILE (.json Chrome array "
            "or .jsonl) through a bounded ring — O(buffer) memory for "
            "runs of any length (default REPRO_STREAM_TRACE if set; "
            "mutually exclusive with --trace)",
        )
        p.add_argument(
            "--serve-metrics", type=int, default=None, metavar="PORT",
            help="serve /metrics (Prometheus text) and /healthz on "
            "127.0.0.1:PORT while the command runs (0 picks a free "
            "port; default REPRO_METRICS_PORT if set)",
        )
        p.add_argument(
            "--counter-tick", type=float, default=None, metavar="MS",
            help="sample engine counters/gauges into Chrome counter "
            "tracks every MS milliseconds (default "
            "REPRO_COUNTER_TICK_MS, else 250 when tracing; 0 disables)",
        )
        p.add_argument(
            "--stats", action="store_true",
            help="print stage timings and engine counters (with "
            "p50/p95/p99 histogram quantiles) to stderr",
        )

    add_obs(sub.add_parser(
        "scenarios", help="list registered evaluation environments"
    ))

    p = sub.add_parser("simulate", help="run a scenario's trial series")
    p.add_argument("scenario", nargs="?", default=None,
                   help="scenario key (see `repro scenarios`)")
    p.add_argument("--profile", default=None, metavar="JSON",
                   help="run a custom environment from a profile JSON instead")
    p.add_argument("--runs", type=int, default=5, help="number of runs (default 5)")
    p.add_argument("--seed", type=int, default=None, help="override the scenario seed")
    p.add_argument("--scale", type=float, default=None, help="duration scale (default REPRO_SCALE)")
    p.add_argument("-o", "--output", default=None, help="directory to save captures into")
    p.add_argument("--histograms", action="store_true", help="include figure histograms")
    add_jobs(p)

    p = sub.add_parser("analyze", help="analyze a directory of saved captures")
    p.add_argument("directory")
    p.add_argument("--histograms", action="store_true")
    add_jobs(p)

    p = sub.add_parser(
        "monitor", help="stream saved captures through the online kappa monitor"
    )
    p.add_argument("directory")
    p.add_argument("--window-ms", type=float, default=10.0, metavar="MS",
                   help="monitoring window length (default 10 ms)")
    p.add_argument("--chunk", type=int, default=4096,
                   help="packets per streamed chunk (default 4096; results "
                   "are identical at any chunking)")
    p.add_argument("--kappa-step", type=float, default=0.02, metavar="STEP",
                   help="smallest windowed-kappa drop flagged as degradation")
    p.add_argument("--fail-on-degraded", action="store_true",
                   help="exit 1 if any session degrades")
    add_obs(p)

    p = sub.add_parser("table1", help="regenerate Table 1 (edit-script distances)")
    p.add_argument("--scale", type=float, default=None)
    add_jobs(p)

    def add_ci(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--ci", action="store_true",
            help="report kappa with bootstrap interval columns from a "
            "multi-seed stability screen instead of one point estimate",
        )
        p.add_argument(
            "--ci-seeds", type=int, default=4, metavar="N",
            help="seeded sessions per environment for --ci (default 4)",
        )

    p = sub.add_parser("table2", help="regenerate Table 2 (all environments)")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--no-paper", action="store_true", help="omit the paper's columns")
    add_ci(p)
    add_jobs(p)

    p = sub.add_parser("validate", help="grade the reproduction against the paper's Table 2")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--kappa-tol", type=float, default=0.08)
    add_ci(p)
    add_jobs(p)

    p = sub.add_parser("report", help="regenerate the full evaluation into a directory")
    p.add_argument("-o", "--output", default="report", help="output directory")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--no-svg", action="store_true", help="skip SVG figure rendering")
    add_jobs(p)

    p = sub.add_parser(
        "sweep",
        help="run a scenario x seed matrix through the artifact store",
    )
    p.add_argument(
        "scenario", nargs="*",
        help="scenario keys to sweep (default: all nine environments)",
    )
    p.add_argument(
        "--seeds", default=None, metavar="S1,S2,...",
        help="comma-separated seeds applied to every scenario (default: "
        "each scenario's registered seed)",
    )
    p.add_argument("--runs", type=int, default=5, help="runs per unit (default 5)")
    p.add_argument("--scale", type=float, default=None,
                   help="duration scale (default REPRO_SCALE)")
    p.add_argument(
        "--resume", action=argparse.BooleanOptionalAction, default=True,
        help="reuse completed units from the store (default; --no-resume "
        "recomputes and rewrites every unit)",
    )
    p.add_argument(
        "-o", "--output", default=None, metavar="DIR",
        help="write sweep.json + sweep_telemetry.json into DIR",
    )
    add_jobs(p)

    p = sub.add_parser(
        "stability",
        help="PASTRAMI-style multi-seed kappa stability screen with "
        "bootstrap intervals and a minimal-runs stopping rule",
    )
    p.add_argument(
        "scenario", nargs="*",
        help="scenario keys to screen (default: all nine environments)",
    )
    p.add_argument(
        "--seeds", default=None, metavar="S1,S2,...",
        help="comma-separated initial seeds applied to every scenario "
        "(default: 4 consecutive seeds from each scenario's registered "
        "seed)",
    )
    p.add_argument(
        "--eps", type=float, default=0.005, metavar="EPS",
        help="target kappa CI half-width: sessions are added until the "
        "95%% bootstrap interval is within +/-EPS (default 0.005); 0 "
        "evaluates exactly the given seeds with no extension",
    )
    p.add_argument(
        "--max-runs", type=int, default=12, metavar="N",
        help="cap on seeded sessions per environment in adaptive mode "
        "(default 12)",
    )
    p.add_argument("--runs", type=int, default=3,
                   help="replay runs per session (default 3)")
    p.add_argument("--scale", type=float, default=None,
                   help="duration scale (default REPRO_SCALE)")
    p.add_argument(
        "-o", "--output", default=None, metavar="DIR",
        help="write stability.json + stability_telemetry.json into DIR",
    )
    add_jobs(p)

    p = sub.add_parser("figure", help="regenerate one figure's series")
    p.add_argument("figure_id", help="4a, 4b, 5, 6a..10b")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--svg", default=None, metavar="PATH",
                   help="additionally write the figure as an SVG file")
    add_jobs(p)

    return parser


def _run_kwargs(args) -> dict:
    """kwargs forwarded to ``run_scenario`` from --scale / --jobs flags."""
    kwargs = {}
    if getattr(args, "scale", None) is not None:
        kwargs["duration_scale"] = args.scale
    if getattr(args, "jobs", None) is not None:
        kwargs["jobs"] = args.jobs
    return kwargs


def _cmd_scenarios(_args) -> int:
    from .experiments import SCENARIOS

    for sc in SCENARIOS:
        figs = ",".join(sc.figures) if sc.figures else "-"
        print(f"{sc.key:28s} figs {figs:10s} {sc.description}")
    return 0


def _cmd_simulate(args) -> int:
    from .analysis import render_report, save_series
    from .experiments import analyze_trials, scenario
    from .testbeds import Testbed

    if (args.scenario is None) == (args.profile is None):
        print("simulate: give exactly one of <scenario> or --profile", file=sys.stderr)
        return 2
    if args.profile:
        from .testbeds import load_profile

        profile = load_profile(args.profile)
        if args.scale is not None:
            profile = profile.at_duration(profile.duration_ns * args.scale)
        seed = 0 if args.seed is None else args.seed
    else:
        sc = scenario(args.scenario)
        profile = sc.profile(args.scale)
        seed = sc.seed if args.seed is None else args.seed
    from .obs import trace

    trace.set_meta("seed", int(seed))
    trace.set_meta("environment", profile.name)
    if args.scale is not None:
        trace.set_meta("scale", args.scale)
    print(f"simulating {profile.name} ({profile.describe()}) seed={seed}", file=sys.stderr)
    trials = Testbed(profile, seed=seed).run_series(args.runs, jobs=args.jobs)
    if args.output:
        paths = save_series(trials, args.output)
        print(f"saved {len(paths)} captures under {args.output}", file=sys.stderr)
    report = analyze_trials(trials, environment=profile.name, jobs=args.jobs)
    print(render_report(report, histograms=args.histograms))
    return 0


def _cmd_analyze(args) -> int:
    from .analysis import analyze_directory, render_report

    report = analyze_directory(args.directory, jobs=args.jobs)
    print(render_report(report, histograms=args.histograms))
    return 0


def _cmd_monitor(args) -> int:
    from .analysis import KappaMonitor, StreamKappa, load_series, render_metric_rows

    trials = load_series(args.directory)
    if len(trials) < 2:
        print("monitor: need a baseline plus at least one run", file=sys.stderr)
        return 2
    baseline = trials[0]
    chunk = max(1, args.chunk)
    mon = KappaMonitor(args.window_ms * 1e6, min_kappa_step=args.kappa_step)
    rows = []
    for run in trials[1:]:
        sid = run.label or f"run{len(rows) + 1}"
        sk = StreamKappa(baseline, run_label=sid)
        # Interleave baseline and run chunks, as a live tap would deliver
        # them; the monitor closes each window once both streams pass it.
        for lo in range(0, max(len(baseline), len(run)), chunk):
            if lo < len(baseline):
                mon.feed_baseline(
                    sid, baseline.tags[lo : lo + chunk],
                    baseline.times_ns[lo : lo + chunk],
                )
            if lo < len(run):
                sk.update(run.tags[lo : lo + chunk], run.times_ns[lo : lo + chunk])
                mon.feed_run(
                    sid, run.tags[lo : lo + chunk], run.times_ns[lo : lo + chunk]
                )
        mon.finish(sid)
        vec = sk.result()
        rows.append({
            "run": sid,
            "U": vec.u, "O": vec.o, "I": vec.i, "L": vec.l,
            "kappa": vec.kappa(),
            "windows": mon.window_count(sid),
            "degraded": len(mon.degraded.get(sid, [])),
        })
    print(
        f"baseline run: {baseline.label or 'A'}  "
        f"window: {args.window_ms:g} ms  chunk: {chunk}"
    )
    print("streaming metrics (exact, vs baseline):")
    print(render_metric_rows(
        rows, columns=["run", "U", "O", "I", "L", "kappa", "windows", "degraded"]
    ))
    n_degraded = 0
    for sid, events in mon.degraded.items():
        for e in events:
            n_degraded += 1
            print(
                f"degradation: session {sid} window {e.window} "
                f"kappa {e.kappa_before:.4f} -> {e.kappa_after:.4f}"
            )
    return 1 if (args.fail_on_degraded and n_degraded) else 0


def _cmd_sweep(args) -> int:
    import os

    from .experiments.scenarios import default_duration_scale
    from .sweep import (
        ArtifactStore,
        plan_from_scenarios,
        render_sweep_summary,
        run_sweep,
        write_sweep_report,
    )

    seeds = None
    if args.seeds:
        try:
            seeds = [int(tok) for tok in args.seeds.split(",") if tok.strip()]
        except ValueError:
            print(f"sweep: --seeds must be integers, got {args.seeds!r}",
                  file=sys.stderr)
            return 2
    scale = args.scale if args.scale is not None else default_duration_scale()
    try:
        plan = plan_from_scenarios(
            args.scenario or None, seeds=seeds, n_runs=args.runs,
            duration_scale=scale,
        )
    except KeyError as exc:
        print(f"sweep: {exc.args[0]}", file=sys.stderr)
        return 2
    store_dir = args.store or os.environ.get("REPRO_STORE") or ".repro-store"
    store = ArtifactStore(store_dir)
    matrix = {
        "scenarios": sorted({u.name for u in plan}),
        "seeds": seeds if seeds else "registered",
        "n_runs": args.runs,
        "duration_scale": scale,
    }
    print(
        f"sweeping {len(plan)} units through {store_dir} "
        f"(resume={'on' if args.resume else 'off'})",
        file=sys.stderr,
    )
    result = run_sweep(
        plan, store, jobs=args.jobs, resume=args.resume, matrix=matrix
    )
    print(render_sweep_summary(result, plan))
    s = store.stats
    print(
        f"store: {s.hits} hits, {s.misses} misses, {s.writes} writes, "
        f"{s.corrupt} corrupt, {s.races} races",
        file=sys.stderr,
    )
    if args.output:
        report_path, telemetry_path = write_sweep_report(result, args.output)
        print(f"wrote {report_path} and {telemetry_path}", file=sys.stderr)
    return 0


def _cmd_table1(args) -> int:
    from .experiments import render_table1_text

    print(render_table1_text(**_run_kwargs(args)))
    return 0


def _cmd_table2(args) -> int:
    from .experiments import render_table2_text

    print(render_table2_text(
        with_paper=not args.no_paper, ci=args.ci, ci_seeds=args.ci_seeds,
        **_run_kwargs(args),
    ))
    return 0


def _cmd_stability(args) -> int:
    import os
    import time

    from .analysis.stability import (
        environment_stability,
        stability_document,
        stability_seed_plan,
        write_stability_report,
    )
    from .analysis.textplot import render_metric_rows
    from .experiments.scenarios import (
        SCENARIOS,
        default_duration_scale,
        scenario,
    )
    from .obs import metrics
    from .obs.export import host_context
    from .sweep import ArtifactStore

    seeds = None
    if args.seeds:
        try:
            seeds = [int(tok) for tok in args.seeds.split(",") if tok.strip()]
        except ValueError:
            print(f"stability: --seeds must be integers, got {args.seeds!r}",
                  file=sys.stderr)
            return 2
    scale = args.scale if args.scale is not None else default_duration_scale()
    keys = args.scenario or [sc.key for sc in SCENARIOS]
    try:
        scenarios = [scenario(k) for k in keys]
    except KeyError as exc:
        print(f"stability: {exc.args[0]}", file=sys.stderr)
        return 2
    store_dir = args.store or os.environ.get("REPRO_STORE") or ".repro-store"
    store = ArtifactStore(store_dir)
    print(
        f"screening {len(scenarios)} environments through {store_dir} "
        f"(eps={args.eps:g}, max {args.max_runs} sessions each)",
        file=sys.stderr,
    )
    t_start = time.perf_counter()
    blocks = []
    rows = []
    try:
        for sc in scenarios:
            env_seeds = seeds if seeds else stability_seed_plan(sc.seed, 4)
            st = environment_stability(
                sc.profile(scale),
                seeds=env_seeds,
                n_runs=args.runs,
                jobs=args.jobs,
                store=store,
                eps=args.eps,
                max_seeds=args.max_runs,
            )
            blocks.append((sc.key, st))
            row = dict(st.row(), scenario=sc.key, n_seeds=len(st.seeds))
            row["stopped"] = (
                ("yes" if st.decision.stopped else "cap") if args.eps > 0
                else "-"
            )
            rows.append(row)
    except ValueError as exc:
        print(f"stability: {exc}", file=sys.stderr)
        return 2
    print(render_metric_rows(rows, columns=[
        "scenario", "n_seeds", "n_eff", "kappa", "kappa_ci_low",
        "kappa_ci_high", "kappa_spread", "outliers", "stopped",
    ]))
    params = {
        "scenarios": [sc.key for sc in scenarios],
        "seeds": seeds if seeds else "derived",
        "eps": args.eps,
        "max_runs": args.max_runs,
        "n_runs": args.runs,
        "duration_scale": scale,
    }
    if args.output:
        doc = stability_document(blocks, params)
        telemetry = {
            "bench": "stability",
            "params": params,
            "host": host_context(),
            "wall_s": time.perf_counter() - t_start,
            "per_stage": {},
            "store": store.stats.as_dict(),
            "metrics": {
                name: value
                for name, value in sorted(
                    metrics.REGISTRY.snapshot()["counters"].items()
                )
                if name.startswith(("stability.", "sweep.", "pool."))
            },
        }
        report_path, telemetry_path = write_stability_report(
            doc, telemetry, args.output
        )
        print(f"wrote {report_path} and {telemetry_path}", file=sys.stderr)
    return 0


def _cmd_figure(args) -> int:
    from .experiments import ALL_FIGURES

    try:
        gen = ALL_FIGURES[args.figure_id]
    except KeyError:
        print(
            f"unknown figure {args.figure_id!r}; available: "
            f"{', '.join(sorted(ALL_FIGURES))}",
            file=sys.stderr,
        )
        return 2
    series = gen(**_run_kwargs(args))
    print(series.render())
    if args.svg:
        series.to_svg(args.svg)
        print(f"wrote {args.svg}", file=sys.stderr)
    return 0


def _cmd_validate(args) -> int:
    from .experiments import validate_against_paper

    result = validate_against_paper(
        kappa_abs_tol=args.kappa_tol, ci=args.ci, ci_seeds=args.ci_seeds,
        **_run_kwargs(args),
    )
    print(result.render())
    return 0 if result.passed else 1


def _cmd_report(args) -> int:
    from pathlib import Path

    from .experiments import (
        ALL_FIGURES,
        SCENARIOS,
        render_table1_text,
        render_table2_text,
        run_scenario,
    )
    from .viz import kappa_bars

    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    kwargs = _run_kwargs(args)

    print("regenerating Table 2 (all nine environments)...", file=sys.stderr)
    (out / "table2.txt").write_text(render_table2_text(**kwargs))
    print("regenerating Table 1...", file=sys.stderr)
    (out / "table1.txt").write_text(render_table1_text(**kwargs))

    rows = []
    for sc in SCENARIOS:
        rep = run_scenario(sc.key, **kwargs)
        row = rep.mean_row()
        row["paper_kappa"] = sc.paper.kappa
        rows.append(row)
    if not args.no_svg:
        kappa_bars(rows, title="kappa per environment (bar: measured, notch: paper)").save(
            out / "table2_kappa.svg"
        )

    for fid, gen in ALL_FIGURES.items():
        print(f"regenerating Figure {fid}...", file=sys.stderr)
        series = gen(**kwargs)
        (out / f"fig{fid}.txt").write_text(series.render())
        if not args.no_svg:
            series.to_svg(out / f"fig{fid}.svg")

    print(f"report written to {out}/", file=sys.stderr)
    print(render_table2_text(**kwargs))
    return 0


_COMMANDS = {
    "scenarios": _cmd_scenarios,
    "simulate": _cmd_simulate,
    "analyze": _cmd_analyze,
    "monitor": _cmd_monitor,
    "sweep": _cmd_sweep,
    "stability": _cmd_stability,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "figure": _cmd_figure,
    "report": _cmd_report,
    "validate": _cmd_validate,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    The worker pool (if any stage created one) is torn down before
    returning — on success, error exit codes, and exceptions alike — so a
    CLI invocation can never leak worker processes.  Observability
    teardown is ordered after it so every artifact includes worker
    telemetry from every stage: pool drains, then the counter sampler
    takes its final sample, then the streaming sink flushes and closes,
    then the one-shot trace/stats are emitted, and the metrics server
    (which only ever reads snapshots) goes down last.
    """
    import os

    from .parallel.pool import shutdown_pool

    args = build_parser().parse_args(argv)
    if getattr(args, "store", None) and args.command not in ("sweep", "stability"):
        # Scenario-driven commands (tables, figures, validate, report,
        # simulate) read and feed the persistent series store; the sweep
        # and stability commands manage their own store instances.
        from .experiments.runner import configure_store

        configure_store(args.store)
    trace_path = getattr(args, "trace", None) or os.environ.get("REPRO_TRACE")
    stream_path = (
        getattr(args, "stream_trace", None)
        or os.environ.get("REPRO_STREAM_TRACE")
    )
    if trace_path and stream_path:
        print(
            "repro: --trace and --stream-trace are mutually exclusive "
            "(one-shot export vs incremental streaming)",
            file=sys.stderr,
        )
        return 2
    want_stats = bool(getattr(args, "stats", False))
    serve_port = getattr(args, "serve_metrics", None)
    if serve_port is None and os.environ.get("REPRO_METRICS_PORT"):
        serve_port = int(os.environ["REPRO_METRICS_PORT"])
    tick_ms = getattr(args, "counter_tick", None)
    if tick_ms is None and os.environ.get("REPRO_COUNTER_TICK_MS"):
        tick_ms = float(os.environ["REPRO_COUNTER_TICK_MS"])
    if tick_ms is None:
        tick_ms = 250.0 if (trace_path or stream_path) else 0.0

    tracing = bool(trace_path or stream_path or want_stats)
    sink = sampler = server = None
    if tracing:
        from .obs import trace

        trace.enable()
        trace.set_meta("command", args.command)
    if stream_path:
        from .obs import trace
        from .obs.sink import SpanSink

        sink = SpanSink(stream_path)
        trace.install_sink(sink)
    if tick_ms > 0 and (sink is not None or trace_path):
        from .obs.live import COUNTER_EVENTS, CounterSampler

        sampler = CounterSampler(
            sink if sink is not None else COUNTER_EVENTS,
            interval_s=tick_ms / 1e3,
        )
    if serve_port is not None:
        from .obs.live import MetricsServer

        server = MetricsServer(serve_port).start()
        print(f"metrics: serving on {server.url}/metrics", file=sys.stderr)
    try:
        if tracing:
            with trace.span("cli." + args.command):
                return _COMMANDS[args.command](args)
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early — not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    finally:
        shutdown_pool()
        if sampler is not None:
            sampler.close()
        if sink is not None:
            from .obs import trace

            trace.uninstall_sink()
            sink.close()
            print(f"streaming trace written to {stream_path}", file=sys.stderr)
        if trace_path or want_stats:
            _emit_observability(trace_path, want_stats)
        if server is not None:
            # Flush before the optional hold: the scrape-then-kill CI
            # pattern SIGTERMs us mid-hold, and block-buffered stdout
            # would lose the command's output.
            for stream in (sys.stdout, sys.stderr):
                try:
                    stream.flush()
                except Exception:
                    pass
            hold_s = os.environ.get("REPRO_METRICS_HOLD_S")
            if hold_s:
                import time

                time.sleep(float(hold_s))
            server.close()


def _emit_observability(trace_path: str | None, want_stats: bool) -> None:
    """Write the trace file and/or print the stats table (best effort)."""
    try:
        if trace_path:
            from .obs.export import write_chrome_trace

            write_chrome_trace(trace_path)
            print(f"trace written to {trace_path}", file=sys.stderr)
        if want_stats:
            from .obs.export import stats_table

            print(stats_table(), file=sys.stderr)
    except BrokenPipeError:  # pragma: no cover - stderr piped and closed
        pass
