"""The university (local, bare-metal) testbed of Section 6.

Hardware being modeled: Mellanox ConnectX-5 NICs on generator and
replayers, one port of an Intel E810 on the recorder (real-time HW
timestamps), an AS9516-32D Tofino2 switch, applications in the host OS
(no virtualization), PTP grandmastered by the generator's stratum-1-NTP
system clock, commands in-band.

Calibration targets (paper, Sections 6.1-6.2 and Table 2):

* single replayer, 40 Gbps / 1400 B / 3.52 Mpps, 0.3 s (1,055,648 pkts):
  U = O = 0; ~92.2-92.5 % of IAT deltas within ±10 ns; I ≈ 0.029;
  L ≈ 4.3e-6; κ ≈ 0.985.
* dual replayers (20 Gbps each): reordering appears — ~50 % of packets in
  the edit script, whole bursts displaced by thousands of positions
  (Table 1); O ≈ 0.026, I ≈ 0.20, L ≈ 9.7e-3, κ ≈ 0.928.
"""

from __future__ import annotations

from ..net.nicmodel import TxNicModel
from ..net.switch import TOFINO2
from ..replay.burst import PollLoopCost
from ..replay.replayer import ReplayTimingModel
from ..timing.hwstamp import RealtimeHWStamper
from ..timing.ptp import LOCAL_PTP
from .profiles import ClockStepModel, EnvironmentProfile

__all__ = ["local_single_replayer", "local_dual_replayer", "local_multi_replayer"]

#: Choir's forwarding-loop cost on the local bare-metal hosts.  The
#: equilibrium burst size at 40 Gbps (284 ns arrivals) is
#: iteration/(iat - per_packet) ≈ 18 packets, putting ~94.5 % of packets
#: in the repeatable intra-burst core — the paper's 92 % cluster.
LOCAL_LOOP = PollLoopCost(iteration_ns=4500.0, per_packet_ns=40.0)

#: Replay-mode loop on bare metal (TSC spin + TX enqueue only).
LOCAL_REPLAY_LOOP = PollLoopCost(iteration_ns=800.0, per_packet_ns=20.0)

#: ConnectX-5 transmit path: PCIe DMA pull after the doorbell.
LOCAL_TX = TxNicModel(rate_bps=100e9, pull_delay_ns=600.0, pull_jitter=0.26)

#: Bare-metal replay scheduling: fine busy-poll, no hypervisor stalls,
#: TSC frequency calibrated to a few ppm per run.
LOCAL_TIMING = ReplayTimingModel(
    poll_granularity_ns=40.0,
    stall_prob=2e-5,
    stall_scale_ns=4_000.0,
    freq_error_ppm=8.0,
    start_latency_median_ns=2.0e6,  # ~2 ms command-to-first-burst
    start_latency_sigma=1.0,
)

#: Intel E810 recorder: real-time hardware timestamps, ns resolution.
LOCAL_STAMPER = RealtimeHWStamper(jitter_ns=2.3, resolution_ns=1.0)


def local_single_replayer(rate_bps: float = 40e9) -> EnvironmentProfile:
    """Section 6.1: generator → replayer → recorder through the Tofino2."""
    return EnvironmentProfile(
        name="local-single",
        rate_bps=rate_bps,
        packet_bytes=1400,
        duration_ns=0.3e9,
        n_replayers=1,
        loop_cost=LOCAL_LOOP,
        replay_loop_cost=LOCAL_REPLAY_LOOP,
        tx_nic=LOCAL_TX,
        switch=TOFINO2,
        rx_stamper=LOCAL_STAMPER,
        replay_timing=LOCAL_TIMING,
        ptp=LOCAL_PTP,
        clock_steps=ClockStepModel(),  # bare metal: no sync steps
        paper_section="6.1",
        notes="Local bare-metal linear topology, single replayer.",
    )


def local_dual_replayer(rate_bps: float = 40e9) -> EnvironmentProfile:
    """Section 6.2: the Figure-1 parallel topology with two replayers.

    Total traffic stays at ``rate_bps`` (20 Gbps per replayer); the
    consistency impact comes from per-run *relative* start latencies
    between the two replay loops, which displace whole bursts of one
    substream against the other in the merged capture.
    """
    return EnvironmentProfile(
        name="local-dual",
        rate_bps=rate_bps,
        packet_bytes=1400,
        duration_ns=0.3e9,
        n_replayers=2,
        loop_cost=LOCAL_LOOP,
        replay_loop_cost=LOCAL_REPLAY_LOOP,
        tx_nic=LOCAL_TX,
        switch=TOFINO2,
        rx_stamper=LOCAL_STAMPER,
        replay_timing=LOCAL_TIMING,
        ptp=LOCAL_PTP,
        clock_steps=ClockStepModel(),
        paper_section="6.2",
        notes="Two parallel replayers merging at the switch (Figure 1).",
    )


def local_multi_replayer(n_replayers: int, rate_bps: float = 40e9) -> EnvironmentProfile:
    """The Figure-1 topology generalized to ``n`` parallel replay nodes.

    Figure 1 itself sketches *three* replay nodes; the paper evaluates one
    and two.  This constructor extends the calibrated local environment to
    arbitrary fan-out (total rate held constant, ``rate/n`` per node) so
    the parallelism cost of the architecture can be swept — see
    ``benchmarks/bench_parallel_scaling.py``.
    """
    if n_replayers < 1:
        raise ValueError("n_replayers must be >= 1")
    return EnvironmentProfile(
        name=f"local-{n_replayers}x",
        rate_bps=rate_bps,
        packet_bytes=1400,
        duration_ns=0.3e9,
        n_replayers=n_replayers,
        loop_cost=LOCAL_LOOP,
        replay_loop_cost=LOCAL_REPLAY_LOOP,
        tx_nic=LOCAL_TX,
        switch=TOFINO2,
        rx_stamper=LOCAL_STAMPER,
        replay_timing=LOCAL_TIMING,
        ptp=LOCAL_PTP,
        clock_steps=ClockStepModel(),
        paper_section="Fig. 1 (extension)",
        notes=f"{n_replayers} parallel replayers merging at the switch.",
    )
