"""Environment profiles: every knob that distinguishes the 9 evaluations.

A profile bundles the mechanistic models (loop costs, NIC TX pull, switch,
RX timestamping) with the stochastic imperfections (replay stalls, clock
frequency error, sync steps, background load) that differ between the
paper's environments.  The numeric constants are **calibrated**, not
measured: they were tuned (see :mod:`repro.testbeds.calibration`) so the
simulated environments land on the paper's reported metric magnitudes
while every mechanism stays physically plausible.  ``DESIGN.md`` records
the mapping; ``EXPERIMENTS.md`` records paper-vs-measured.

Mechanism → metric cheat sheet (derived in calibration.py):

========================  =============================================
Knob                       Dominant observable
========================  =============================================
``rx jitter``              width of the IAT-delta core (±10 ns %)
``loop cost``              burst size → fraction of packets in the core
``tx pull jitter``         burst-boundary IAT outliers (histogram tails)
``replay stalls``          far IAT outliers → the I ≈ 0.5 regimes
``freq_error_ppm``         linearly growing latency deltas → L (local)
``clock steps``            latency-delta spikes → L (FABRIC)
``start latency``          inter-replayer offsets → O, Table 1 (dual)
``background + VF queue``  contention delays and drops → U (noisy)
========================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..generators.tcpnoise import TCPNoiseGenerator
from ..net.nicmodel import TxNicModel
from ..net.switch import SwitchModel
from ..net.wan import WanSegment
from ..replay.burst import PollLoopCost
from ..replay.replayer import ReplayTimingModel
from ..timing.hwstamp import RxTimestamper
from ..timing.ptp import PTPProfile

__all__ = ["ClockStepModel", "BackgroundLoad", "EnvironmentProfile"]


@dataclass(frozen=True)
class ClockStepModel:
    """Mid-trial clock step events (``ptp_kvm`` re-sync corrections).

    On FABRIC, the VM's PTP chain occasionally steps the clock during a
    capture; every packet recorded after the step carries the new phase.
    ``rate_per_sec`` steps occur per second of capture (Poisson), each
    stepping by a ``N(0, scale_ns)`` draw.
    """

    rate_per_sec: float = 0.0
    scale_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_per_sec < 0 or self.scale_ns < 0:
            raise ValueError("step parameters must be non-negative")

    def apply(
        self, times_ns: np.ndarray, duration_ns: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Add this run's step realization to recorded timestamps."""
        if self.rate_per_sec == 0 or self.scale_ns == 0 or times_ns.size == 0:
            return times_ns
        n_steps = rng.poisson(self.rate_per_sec * duration_ns / 1e9)
        if n_steps == 0:
            return times_ns
        t0 = float(times_ns[0])
        step_at = np.sort(rng.uniform(t0, t0 + duration_ns, n_steps))
        step_by = rng.normal(0.0, self.scale_ns, n_steps)
        offset = np.cumsum(step_by)
        idx = np.searchsorted(step_at, times_ns, side="right")
        shifted = times_ns + np.concatenate([[0.0], offset])[idx]
        # A step back in time cannot reorder already-delivered packets in
        # the capture file; the recorder writes monotonically.
        return np.maximum.accumulate(shifted)


@dataclass(frozen=True)
class BackgroundLoad:
    """Co-tenant traffic sharing the physical NIC (Section 7.1)."""

    generator: TCPNoiseGenerator
    vf_queue_packets: int | None = None

    def __post_init__(self) -> None:
        if self.vf_queue_packets is not None and self.vf_queue_packets < 1:
            raise ValueError("vf_queue_packets must be >= 1 when set")


@dataclass(frozen=True)
class EnvironmentProfile:
    """Everything needed to run one of the paper's evaluation environments.

    See the module docstring for the knob → observable mapping.
    """

    name: str
    # Workload ------------------------------------------------------------
    rate_bps: float
    packet_bytes: int = 1400
    duration_ns: float = 0.3e9
    n_replayers: int = 1
    # Node / path models ---------------------------------------------------
    loop_cost: PollLoopCost = field(default_factory=PollLoopCost)
    #: Replay-mode loop cost (cheaper than the record loop; see ChoirNode).
    replay_loop_cost: PollLoopCost | None = None
    tx_nic: TxNicModel = field(
        default_factory=lambda: TxNicModel(rate_bps=100e9)
    )
    switch: SwitchModel | None = None
    rx_stamper: RxTimestamper | None = None
    replay_timing: ReplayTimingModel = field(default_factory=ReplayTimingModel)
    ptp: PTPProfile = field(default_factory=PTPProfile)
    clock_steps: ClockStepModel = field(default_factory=ClockStepModel)
    # Sharing --------------------------------------------------------------
    background: BackgroundLoad | None = None
    shared_port_rate_bps: float = 100e9
    #: Optional wide-area segment between the replayer site and the
    #: recorder site (inter-site topologies; None = same-site L2Bridge).
    wan: "WanSegment | None" = None
    #: Optional workload override: any object with a
    #: ``generate(duration_ns, rng) -> PacketArray`` method (e.g.
    #: :class:`~repro.generators.imix.IMIXGenerator`).  ``None`` uses the
    #: paper's fixed-size CBR stream at ``rate_bps``.
    workload: object | None = None
    # Node resources --------------------------------------------------------
    #: Replay buffer RAM per node (Section 5); the paper-scale captures
    #: (1.05M packets ≈ 2.3 GB of mbufs) need more than the 1 GB minimum.
    buffer_bytes: int = 4 << 30
    # Bookkeeping ----------------------------------------------------------
    paper_section: str = ""
    notes: str = ""

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if self.packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        if self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        if self.n_replayers < 1:
            raise ValueError("n_replayers must be >= 1")

    def at_duration(self, duration_ns: float) -> "EnvironmentProfile":
        """The same environment over a shorter/longer capture window.

        Rates, per-packet mechanics, and all noise processes are
        duration-invariant, so scaling the window preserves the metric
        expectations (the scaling test verifies this) — except clock-step
        ``L`` contributions, which scale as ``1/duration`` because a step
        of fixed physical size is normalized by a smaller span.
        """
        return replace(self, duration_ns=float(duration_ns))

    @property
    def per_replayer_rate_bps(self) -> float:
        """The rate each replayer carries (Section 6.2: 20 Gbps each)."""
        return self.rate_bps / self.n_replayers

    def describe(self) -> dict:
        """Flat summary for reports and experiment logs."""
        return {
            "name": self.name,
            "rate_gbps": self.rate_bps / 1e9,
            "packet_bytes": self.packet_bytes,
            "duration_ms": self.duration_ns / 1e6,
            "n_replayers": self.n_replayers,
            "switch": self.switch.name if self.switch else "none",
            "shared": self.background is not None,
            "paper_section": self.paper_section,
        }
