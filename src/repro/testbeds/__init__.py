"""Testbed environments: the local university testbed and FABRIC.

Nine scenario constructors (one per Table-2 row) plus the machinery to
run them: build a profile, hand it to :class:`~repro.testbeds.base.Testbed`,
call :meth:`~repro.testbeds.base.Testbed.run_series`.
"""

from .base import RunArtifacts, Testbed
from .calibration import ExpectedMetrics, equilibrium_burst_size, expected_metrics
from .fabric import (
    fabric_dedicated_40g,
    fabric_dedicated_40g_retest,
    fabric_dedicated_80g,
    fabric_dedicated_80g_noisy,
    fabric_shared_40g,
    fabric_shared_40g_noisy,
    fabric_shared_80g,
)
from .local import local_dual_replayer, local_multi_replayer, local_single_replayer
from .profiles import BackgroundLoad, ClockStepModel, EnvironmentProfile
from .serialization import (
    canonical_profile_json,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from .slices import (
    NICComponent,
    NICKind,
    NetworkService,
    NetworkServiceKind,
    Site,
    Slice,
    SliceError,
    SliceNode,
    default_site,
)

__all__ = [
    "ExpectedMetrics",
    "expected_metrics",
    "equilibrium_burst_size",
    "EnvironmentProfile",
    "ClockStepModel",
    "BackgroundLoad",
    "Testbed",
    "RunArtifacts",
    "local_single_replayer",
    "local_dual_replayer",
    "local_multi_replayer",
    "fabric_dedicated_40g",
    "fabric_shared_40g",
    "fabric_dedicated_40g_retest",
    "fabric_dedicated_80g",
    "fabric_shared_80g",
    "fabric_dedicated_80g_noisy",
    "fabric_shared_40g_noisy",
    "Slice",
    "SliceNode",
    "SliceError",
    "Site",
    "NICKind",
    "NICComponent",
    "NetworkService",
    "NetworkServiceKind",
    "default_site",
    "profile_to_dict",
    "profile_from_dict",
    "save_profile",
    "load_profile",
    "canonical_profile_json",
]
