"""The testbed runner: record once, replay N times, capture each run.

This is the simulation equivalent of the paper's evaluation protocol
(Sections 6-7):

1. the generator produces the CBR stream (split across replayers in the
   Figure-1 parallel topologies);
2. each Choir node forwards and records its substream once;
3. for every run, the PTP domain re-synchronizes, every node replays its
   recording toward one common scheduled instant, the substreams merge at
   the switch, traverse the (possibly shared) recorder port, and the
   recorder's timestamping hardware produces the capture;
4. captures are aligned to the run's scheduled start and returned as
   :class:`~repro.core.trial.Trial` objects for the Section-3 analysis.

Each run draws fresh per-run imperfections (start latency, frequency
error, stalls, clock steps, background realization) from a seeded
generator, so a series is exactly reproducible from its seed.

Seed discipline (pinned by ``tests/test_sim_seed_scheme.py``): the series
seed is a :class:`numpy.random.SeedSequence` root; each ``run_series``
call spawns one *series* child, which spawns one child for the shared
record phase plus one **per run**.  Every run therefore owns a private,
independent random stream keyed only by ``(seed, series index, run
index)`` — a run's packets do not depend on how many runs precede it, in
which order runs execute, or whether they execute in this process at all.
That independence is what lets :class:`repro.parallel.simfarm.SimFarm`
fan runs out across the persistent worker pool with bit-identical
results at any ``jobs`` count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.trial import Trial
from ..generators.cbr import CBRGenerator
from ..generators.splitter import split_by_port
from ..obs import metrics, trace
from ..net.link import Link
from ..net.pktarray import PacketArray
from ..net.sriov import SharedPort
from ..replay.choir import ChoirNode, ChoirState
from ..replay.recording import Recording
from ..timing.clock import SystemClock
from ..timing.hwstamp import RealtimeHWStamper
from ..timing.ptp import PTPDomain
from .profiles import EnvironmentProfile

__all__ = [
    "Testbed",
    "RunArtifacts",
    "SeriesSeedPlan",
    "series_seed_plan",
    "build_nodes",
    "simulate_run",
]

#: Scheduled replay start used for every run; runs are simulated
#: independently, so a common virtual epoch keeps alignment trivial.
REPLAY_EPOCH_NS = 1e9


@dataclass(frozen=True)
class RunArtifacts:
    """Diagnostics of one simulated run (beyond the Trial itself)."""

    trial: Trial
    n_dropped: int
    n_stalls: int
    freq_errors_ppm: tuple[float, ...]
    start_offsets_ns: tuple[float, ...]
    #: Spawn key of the run's :class:`~numpy.random.SeedSequence` (empty
    #: for legacy callers that drive :meth:`Testbed.run_one` directly).
    #: Together with the testbed seed it identifies the run's random
    #: stream exactly — the provenance the differential suite pins.
    seed_key: tuple[int, ...] = ()


@dataclass(frozen=True)
class SeriesSeedPlan:
    """The seed derivation of one trial series — the reproducibility key.

    Derivation (do not change without updating the pinned regression
    test): ``SeedSequence(seed).spawn(series_index + 1)[series_index]``
    is the series sequence; its first child seeds the record phase, and
    child ``1 + i`` seeds run ``i``.  Run streams are therefore mutually
    independent by :meth:`numpy.random.SeedSequence.spawn` construction.
    """

    entropy: int
    record: np.random.SeedSequence
    runs: tuple[np.random.SeedSequence, ...]


def series_seed_plan(seed: int, n_runs: int, series_index: int = 0) -> SeriesSeedPlan:
    """Derive the record-phase and per-run seed sequences of one series."""
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    if series_index < 0:
        raise ValueError("series_index must be >= 0")
    root = np.random.SeedSequence(int(seed))
    series = root.spawn(series_index + 1)[series_index]
    children = series.spawn(n_runs + 1)
    return SeriesSeedPlan(int(seed), children[0], tuple(children[1:]))


def build_nodes(profile: EnvironmentProfile) -> list[ChoirNode]:
    """The environment's replay nodes, fresh and in standby.

    Node construction is deterministic given the profile — workers of the
    simulation fan-out rebuild identical nodes from the pickled profile
    and only the recordings travel through shared memory.
    """
    return [
        ChoirNode(
            name=f"replayer-{k}",
            tx_nic=profile.tx_nic,
            loop_cost=profile.loop_cost,
            replay_loop_cost=profile.replay_loop_cost,
            timing=profile.replay_timing,
            clock=SystemClock(),
            buffer_bytes=profile.buffer_bytes,
        )
        for k in range(profile.n_replayers)
    ]


def simulate_run(
    profile: EnvironmentProfile,
    recordings: list[Recording],
    run_seq: np.random.SeedSequence,
    label: str = "",
) -> RunArtifacts:
    """Simulate one replay run from its seed sequence — the fan-out unit.

    Rebuilds fresh nodes, arms them with the (immutable) recordings, and
    replays with a private generator seeded from ``run_seq``.  This is the
    exact function the serial path runs in-process and the worker pool
    runs remotely; a run's output depends only on ``(profile, recordings,
    run_seq, label)``, never on sibling runs.
    """
    nodes = build_nodes(profile)
    if len(recordings) != len(nodes):
        raise ValueError(
            f"profile has {len(nodes)} replayers but {len(recordings)} "
            "recordings were supplied"
        )
    for node, recording in zip(nodes, recordings):
        node.recording = recording
        node.state = ChoirState.ARMED

    rng = np.random.default_rng(run_seq)
    ptp = PTPDomain(profile=profile.ptp, rng=rng)
    for node in nodes:
        ptp.followers[node.name] = node.clock

    artifacts = _replay_once(profile, nodes, ptp, rng, label)
    return replace(
        artifacts, seed_key=tuple(int(k) for k in run_seq.spawn_key)
    )


def _replay_once(
    profile: EnvironmentProfile,
    nodes: list[ChoirNode],
    ptp: PTPDomain,
    rng: np.random.Generator,
    label: str = "",
) -> RunArtifacts:
    """Phase 3-4 for a single run (shared by legacy and seeded drivers)."""
    p = profile
    ptp.synchronize_all()

    outcomes = [node.replay(REPLAY_EPOCH_NS, rng) for node in nodes]

    if p.switch is not None:
        merged = p.switch.forward_merged([o.egress for o in outcomes], rng)
    else:
        merged, _ = PacketArray.merge([o.egress for o in outcomes])

    if p.wan is not None:
        merged = p.wan.traverse(merged, rng)

    n_dropped = 0
    if p.background is not None:
        bg_gen = p.background.generator
        # Background spans the replay window with margin on both sides.
        t0 = float(merged.times_ns[0]) - 1e6
        span = float(merged.times_ns[-1]) - t0 + 2e6
        background = bg_gen.generate(span, rng, start_ns=t0)
        port = SharedPort(
            rate_bps=p.shared_port_rate_bps,
            vf_queue_packets=p.background.vf_queue_packets,
        )
        result = port.traverse(merged, background)
        delivered = result.batch
        n_dropped = result.n_dropped
    else:
        recorder_link = Link(rate_bps=p.shared_port_rate_bps, propagation_ns=500.0)
        delivered = recorder_link.traverse(merged)

    stamper = p.rx_stamper if p.rx_stamper is not None else RealtimeHWStamper()
    stamped = stamper.stamp(delivered.times_ns, rng)
    stamped = p.clock_steps.apply(stamped, p.duration_ns, rng)

    # The recorder's own clock phase (PTP residual of this epoch).
    recorder_offset = float(rng.normal(0.0, p.ptp.residual_ns))
    stamped = stamped + recorder_offset

    trial = Trial.from_arrival_events(
        delivered.tags,
        stamped - REPLAY_EPOCH_NS,
        label=label,
        meta={"environment": p.name, "n_dropped": n_dropped},
    )
    return RunArtifacts(
        trial=trial,
        n_dropped=n_dropped,
        n_stalls=sum(o.n_stalls for o in outcomes),
        freq_errors_ppm=tuple(o.freq_error_ppm for o in outcomes),
        start_offsets_ns=tuple(
            o.achieved_start_ns - REPLAY_EPOCH_NS for o in outcomes
        ),
    )


@dataclass
class Testbed:
    """One environment, instantiated and ready to run trial series."""

    # Not a pytest test class despite the name (it gets imported into
    # test modules); no annotation, so dataclass ignores it.
    __test__ = False

    profile: EnvironmentProfile
    seed: int = 0
    #: Series spawned so far; successive run_series calls on one testbed
    #: derive distinct (but reproducible) seed plans.
    _series_count: int = field(init=False, default=0, repr=False)

    # ------------------------------------------------------------------
    def _build_nodes(self) -> list[ChoirNode]:
        return build_nodes(self.profile)

    def _record_all(
        self, nodes: list[ChoirNode], rng: np.random.Generator
    ) -> None:
        """Generate the stream and record it on every node (phase 1-2)."""
        p = self.profile
        generator = p.workload if p.workload is not None else CBRGenerator(
            rate_bps=p.rate_bps, packet_bytes=p.packet_bytes
        )
        stream = generator.generate(p.duration_ns, rng)
        substreams = split_by_port(stream, p.n_replayers)
        ingress_link = Link(rate_bps=p.tx_nic.rate_bps, propagation_ns=500.0)
        for node, sub in zip(nodes, substreams):
            node.record(ingress_link.traverse(sub), rng)

    # ------------------------------------------------------------------
    def run_one(
        self, nodes: list[ChoirNode], ptp: PTPDomain, rng: np.random.Generator,
        label: str = "",
    ) -> RunArtifacts:
        """Phase 3-4 for a single run (caller-managed nodes/PTP/rng)."""
        return _replay_once(self.profile, nodes, ptp, rng, label)

    # ------------------------------------------------------------------
    def run_series(
        self, n_runs: int = 5, *, labels: list[str] | None = None,
        collect_artifacts: bool = False, jobs: int | None = None,
    ):
        """Record once, replay ``n_runs`` times; return the trials.

        With ``collect_artifacts=True`` returns ``(trials, artifacts)``.
        Labels default to the paper's A, B, C, ... convention.

        ``jobs`` fans the (seed-independent) runs out across the
        persistent worker pool; ``None`` honors ``REPRO_JOBS`` (default
        1 — in-process).  The trials are bit-identical at any job count:
        each run's stream comes from its own spawned
        :class:`~numpy.random.SeedSequence` (see :func:`series_seed_plan`),
        so fan-out changes scheduling, never sampling.
        """
        if n_runs < 1:
            raise ValueError("n_runs must be >= 1")
        plan = series_seed_plan(self.seed, n_runs, series_index=self._series_count)
        self._series_count += 1

        nodes = self._build_nodes()
        with trace.span(
            "testbed.record", environment=self.profile.name, n_runs=n_runs
        ):
            self._record_all(nodes, np.random.default_rng(plan.record))
        recordings = [node.recording for node in nodes]
        metrics.counter("testbed.series_recorded").add()

        if labels is None:
            labels = [chr(ord("A") + i) if i < 26 else f"run{i}" for i in range(n_runs)]

        from ..parallel.simfarm import SimFarm

        artifacts = SimFarm(jobs=jobs).run_series(
            self.profile, recordings, plan.runs, labels
        )
        trials = [a.trial for a in artifacts]
        if collect_artifacts:
            return trials, artifacts
        return trials
