"""The testbed runner: record once, replay N times, capture each run.

This is the simulation equivalent of the paper's evaluation protocol
(Sections 6-7):

1. the generator produces the CBR stream (split across replayers in the
   Figure-1 parallel topologies);
2. each Choir node forwards and records its substream once;
3. for every run, the PTP domain re-synchronizes, every node replays its
   recording toward one common scheduled instant, the substreams merge at
   the switch, traverse the (possibly shared) recorder port, and the
   recorder's timestamping hardware produces the capture;
4. captures are aligned to the run's scheduled start and returned as
   :class:`~repro.core.trial.Trial` objects for the Section-3 analysis.

Each run draws fresh per-run imperfections (start latency, frequency
error, stalls, clock steps, background realization) from a seeded
generator, so a series is exactly reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.trial import Trial
from ..generators.cbr import CBRGenerator
from ..generators.splitter import split_by_port
from ..net.link import Link
from ..net.pktarray import PacketArray
from ..net.sriov import SharedPort
from ..replay.choir import ChoirNode
from ..timing.clock import SystemClock
from ..timing.hwstamp import RealtimeHWStamper
from ..timing.ptp import PTPDomain
from .profiles import EnvironmentProfile

__all__ = ["Testbed", "RunArtifacts"]

#: Scheduled replay start used for every run; runs are simulated
#: independently, so a common virtual epoch keeps alignment trivial.
REPLAY_EPOCH_NS = 1e9


@dataclass(frozen=True)
class RunArtifacts:
    """Diagnostics of one simulated run (beyond the Trial itself)."""

    trial: Trial
    n_dropped: int
    n_stalls: int
    freq_errors_ppm: tuple[float, ...]
    start_offsets_ns: tuple[float, ...]


@dataclass
class Testbed:
    """One environment, instantiated and ready to run trial series."""

    # Not a pytest test class despite the name (it gets imported into
    # test modules); no annotation, so dataclass ignores it.
    __test__ = False

    profile: EnvironmentProfile
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def _build_nodes(self) -> list[ChoirNode]:
        p = self.profile
        return [
            ChoirNode(
                name=f"replayer-{k}",
                tx_nic=p.tx_nic,
                loop_cost=p.loop_cost,
                replay_loop_cost=p.replay_loop_cost,
                timing=p.replay_timing,
                clock=SystemClock(),
                buffer_bytes=p.buffer_bytes,
            )
            for k in range(p.n_replayers)
        ]

    def _record_all(
        self, nodes: list[ChoirNode], rng: np.random.Generator
    ) -> None:
        """Generate the stream and record it on every node (phase 1-2)."""
        p = self.profile
        generator = p.workload if p.workload is not None else CBRGenerator(
            rate_bps=p.rate_bps, packet_bytes=p.packet_bytes
        )
        stream = generator.generate(p.duration_ns, rng)
        substreams = split_by_port(stream, p.n_replayers)
        ingress_link = Link(rate_bps=p.tx_nic.rate_bps, propagation_ns=500.0)
        for node, sub in zip(nodes, substreams):
            node.record(ingress_link.traverse(sub), rng)

    # ------------------------------------------------------------------
    def run_one(
        self, nodes: list[ChoirNode], ptp: PTPDomain, rng: np.random.Generator,
        label: str = "",
    ) -> RunArtifacts:
        """Phase 3-4 for a single run."""
        p = self.profile
        ptp.synchronize_all()

        outcomes = [node.replay(REPLAY_EPOCH_NS, rng) for node in nodes]

        if p.switch is not None:
            merged = p.switch.forward_merged([o.egress for o in outcomes], rng)
        else:
            merged, _ = PacketArray.merge([o.egress for o in outcomes])

        if p.wan is not None:
            merged = p.wan.traverse(merged, rng)

        n_dropped = 0
        if p.background is not None:
            bg_gen = p.background.generator
            # Background spans the replay window with margin on both sides.
            t0 = float(merged.times_ns[0]) - 1e6
            span = float(merged.times_ns[-1]) - t0 + 2e6
            background = bg_gen.generate(span, rng, start_ns=t0)
            port = SharedPort(
                rate_bps=p.shared_port_rate_bps,
                vf_queue_packets=p.background.vf_queue_packets,
            )
            result = port.traverse(merged, background)
            delivered = result.batch
            n_dropped = result.n_dropped
        else:
            recorder_link = Link(rate_bps=p.shared_port_rate_bps, propagation_ns=500.0)
            delivered = recorder_link.traverse(merged)

        stamper = p.rx_stamper if p.rx_stamper is not None else RealtimeHWStamper()
        stamped = stamper.stamp(delivered.times_ns, rng)
        stamped = p.clock_steps.apply(stamped, p.duration_ns, rng)

        # The recorder's own clock phase (PTP residual of this epoch).
        recorder_offset = float(rng.normal(0.0, p.ptp.residual_ns))
        stamped = stamped + recorder_offset

        trial = Trial.from_arrival_events(
            delivered.tags,
            stamped - REPLAY_EPOCH_NS,
            label=label,
            meta={"environment": p.name, "n_dropped": n_dropped},
        )
        return RunArtifacts(
            trial=trial,
            n_dropped=n_dropped,
            n_stalls=sum(o.n_stalls for o in outcomes),
            freq_errors_ppm=tuple(o.freq_error_ppm for o in outcomes),
            start_offsets_ns=tuple(
                o.achieved_start_ns - REPLAY_EPOCH_NS for o in outcomes
            ),
        )

    # ------------------------------------------------------------------
    def run_series(
        self, n_runs: int = 5, *, labels: list[str] | None = None,
        collect_artifacts: bool = False,
    ):
        """Record once, replay ``n_runs`` times; return the trials.

        With ``collect_artifacts=True`` returns ``(trials, artifacts)``.
        Labels default to the paper's A, B, C, ... convention.
        """
        if n_runs < 1:
            raise ValueError("n_runs must be >= 1")
        p = self.profile
        nodes = self._build_nodes()
        self._record_all(nodes, self._rng)

        ptp = PTPDomain(profile=p.ptp, rng=self._rng)
        for node in nodes:
            ptp.followers[node.name] = node.clock

        if labels is None:
            labels = [chr(ord("A") + i) if i < 26 else f"run{i}" for i in range(n_runs)]
        artifacts = [
            self.run_one(nodes, ptp, self._rng, label=labels[i])
            for i in range(n_runs)
        ]
        trials = [a.trial for a in artifacts]
        if collect_artifacts:
            return trials, artifacts
        return trials
