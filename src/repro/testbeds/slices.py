"""FABlib-style slice reservation model (Section 2.1).

FABRIC experiments are organized as *slices* — reservations of virtual
and physical resources across the federation: nodes (VMs or hardware),
components (NICs), and network services connecting them.  The paper
provisions a three-VM slice with two dedicated smart NICs over an
L2Bridge, on a site with 2 % CPU / 1.1 % RAM / 0.8 % disk allocated.

This module models exactly the slice semantics the evaluation depends
on: per-site resource accounting (utilization drives the co-tenant noise
story), dedicated vs shared NIC components (the paper's central
comparison), PTP availability (23 of 33 sites), L2 network services, and
the submit/validate/delete lifecycle.  :meth:`Slice.to_topology` lowers
a submitted slice onto the packet-level :class:`~repro.net.topology.Topology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..net.link import Link
from ..net.topology import NodeRole, Topology

__all__ = [
    "NICKind",
    "NICComponent",
    "SliceNode",
    "NetworkServiceKind",
    "NetworkService",
    "Site",
    "Slice",
    "SliceError",
    "default_site",
]


class SliceError(RuntimeError):
    """Raised when a slice operation violates reservation semantics."""


class NICKind(Enum):
    """NIC component models available on FABRIC sites (Section 2.1/7)."""

    #: A dedicated ConnectX-6 smart NIC: the tenant owns the physical port.
    DEDICATED_CX6 = "NIC_ConnectX_6"
    #: An SR-IOV virtual function on a shared ConnectX-6 port.
    SHARED_VF = "NIC_Basic"
    #: A dedicated ConnectX-5 (the local testbed's part, for comparison).
    DEDICATED_CX5 = "NIC_ConnectX_5"


@dataclass(frozen=True)
class NICComponent:
    """One NIC attached to a slice node."""

    name: str
    kind: NICKind
    rate_bps: float = 100e9

    @property
    def is_shared(self) -> bool:
        """True for SR-IOV virtual functions on shared silicon."""
        return self.kind is NICKind.SHARED_VF


@dataclass
class SliceNode:
    """A VM (or bare-metal host) reserved inside a slice."""

    name: str
    cores: int = 4
    ram_gb: int = 16
    disk_gb: int = 50
    role: str = NodeRole.REPLAYER
    nics: list[NICComponent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.cores < 1 or self.ram_gb < 1 or self.disk_gb < 1:
            raise SliceError(f"node {self.name!r}: resources must be positive")

    def add_nic(self, name: str, kind: NICKind, rate_bps: float = 100e9) -> NICComponent:
        """Attach a NIC component; returns it for service wiring."""
        if any(n.name == name for n in self.nics):
            raise SliceError(f"node {self.name!r} already has NIC {name!r}")
        nic = NICComponent(name=name, kind=kind, rate_bps=rate_bps)
        self.nics.append(nic)
        return nic

    def nic(self, name: str) -> NICComponent:
        """Look up an attached NIC by name."""
        for n in self.nics:
            if n.name == name:
                return n
        raise SliceError(f"node {self.name!r} has no NIC {name!r}")


class NetworkServiceKind(Enum):
    """FABRIC network service types (Section 2.1; Ruth et al.)."""

    #: Intra-site L2 bridge connecting several interfaces.
    L2_BRIDGE = "L2Bridge"
    #: Point-to-point L2 circuit (possibly inter-site).
    L2_PTP = "L2PTP"
    #: The federation's routed IPv4 service.
    FABNET_V4 = "FABNetv4"


@dataclass(frozen=True)
class NetworkService:
    """A connection between node interfaces."""

    name: str
    kind: NetworkServiceKind
    endpoints: tuple[tuple[str, str], ...]  # (node name, nic name) pairs

    def __post_init__(self) -> None:
        if self.kind is NetworkServiceKind.L2_PTP and len(self.endpoints) != 2:
            raise SliceError("an L2PTP service connects exactly two interfaces")
        if len(self.endpoints) < 2:
            raise SliceError("a network service needs at least two endpoints")


@dataclass
class Site:
    """One FABRIC site's aggregate resources.

    The defaults approximate a large site; the paper's site had only
    ~2 % CPU, 1.1 % RAM and 0.8 % disk allocated when the evaluation ran.
    """

    name: str = "STAR"
    total_cores: int = 1280
    total_ram_gb: int = 8192
    total_disk_gb: int = 100_000
    ptp_available: bool = True  # 23 of FABRIC's 33 sites provide PTP
    allocated_cores: int = 0
    allocated_ram_gb: int = 0
    allocated_disk_gb: int = 0

    def utilization(self) -> dict[str, float]:
        """Fractional allocation per resource (the Section 7 site quote)."""
        return {
            "cores": self.allocated_cores / self.total_cores,
            "ram": self.allocated_ram_gb / self.total_ram_gb,
            "disk": self.allocated_disk_gb / self.total_disk_gb,
        }

    def _reserve(self, cores: int, ram: int, disk: int) -> None:
        if (
            self.allocated_cores + cores > self.total_cores
            or self.allocated_ram_gb + ram > self.total_ram_gb
            or self.allocated_disk_gb + disk > self.total_disk_gb
        ):
            raise SliceError(f"site {self.name!r} cannot satisfy the reservation")
        self.allocated_cores += cores
        self.allocated_ram_gb += ram
        self.allocated_disk_gb += disk

    def _release(self, cores: int, ram: int, disk: int) -> None:
        self.allocated_cores -= cores
        self.allocated_ram_gb -= ram
        self.allocated_disk_gb -= disk


def default_site() -> Site:
    """A quiet large site like the paper's (≈2 % CPU / 1.1 % RAM / 0.8 % disk
    already allocated by other tenants)."""
    s = Site()
    s.allocated_cores = int(s.total_cores * 0.02)
    s.allocated_ram_gb = int(s.total_ram_gb * 0.011)
    s.allocated_disk_gb = int(s.total_disk_gb * 0.008)
    return s


@dataclass
class Slice:
    """A reservation of nodes and network services on one site."""

    name: str
    site: Site = field(default_factory=default_site)
    nodes: dict[str, SliceNode] = field(default_factory=dict)
    services: list[NetworkService] = field(default_factory=list)
    submitted: bool = False

    # -- build phase ------------------------------------------------------
    def add_node(self, name: str, **kwargs) -> SliceNode:
        """Declare a node; keyword args match :class:`SliceNode`."""
        self._mutable()
        if name in self.nodes:
            raise SliceError(f"slice already has node {name!r}")
        node = SliceNode(name=name, **kwargs)
        self.nodes[name] = node
        return node

    def add_network_service(
        self, name: str, kind: NetworkServiceKind, endpoints: list[tuple[str, str]]
    ) -> NetworkService:
        """Declare a service over already-declared node interfaces."""
        self._mutable()
        for node_name, nic_name in endpoints:
            if node_name not in self.nodes:
                raise SliceError(f"service {name!r}: unknown node {node_name!r}")
            self.nodes[node_name].nic(nic_name)  # raises if missing
        svc = NetworkService(name=name, kind=kind, endpoints=tuple(endpoints))
        self.services.append(svc)
        return svc

    def _mutable(self) -> None:
        if self.submitted:
            raise SliceError(f"slice {self.name!r} is submitted; delete it first")

    # -- lifecycle ---------------------------------------------------------
    def submit(self) -> None:
        """Validate and reserve the slice against the site."""
        self._mutable()
        if not self.nodes:
            raise SliceError("cannot submit an empty slice")
        cores = sum(n.cores for n in self.nodes.values())
        ram = sum(n.ram_gb for n in self.nodes.values())
        disk = sum(n.disk_gb for n in self.nodes.values())
        self.site._reserve(cores, ram, disk)
        self.submitted = True

    def delete(self) -> None:
        """Release the reservation (idempotent on unsubmitted slices)."""
        if not self.submitted:
            return
        cores = sum(n.cores for n in self.nodes.values())
        ram = sum(n.ram_gb for n in self.nodes.values())
        disk = sum(n.disk_gb for n in self.nodes.values())
        self.site._release(cores, ram, disk)
        self.submitted = False

    @property
    def ptp_synchronized(self) -> bool:
        """Whether this slice's VMs can run the FABRIC PTP stack."""
        return self.site.ptp_available

    def uses_shared_nics(self) -> bool:
        """True when any data-plane NIC is an SR-IOV VF."""
        return any(n.is_shared for node in self.nodes.values() for n in node.nics)

    # -- lowering ------------------------------------------------------------
    def to_topology(self, propagation_ns: float = 500.0) -> Topology:
        """Lower the submitted slice onto a packet-level topology.

        Each L2 service becomes a switch node (the site's Cisco 5700 data
        plane) with a link per endpoint at the endpoint NIC's rate.
        """
        if not self.submitted:
            raise SliceError("submit the slice before lowering it")
        topo = Topology(self.name)
        for node in self.nodes.values():
            topo.add_node(node.name, node.role)
        for svc in self.services:
            sw_name = f"svc-{svc.name}"
            topo.add_node(sw_name, NodeRole.SWITCH)
            for node_name, nic_name in svc.endpoints:
                nic = self.nodes[node_name].nic(nic_name)
                topo.add_link(
                    node_name,
                    sw_name,
                    Link(rate_bps=nic.rate_bps, propagation_ns=propagation_ns),
                )
        return topo
