"""JSON (de)serialization of environment profiles.

Custom environments shouldn't require writing Python: an operator
describing their testbed (the `examples/custom_testbed.py` workflow)
can keep the profile as a JSON document, version it next to their
experiment configs, and run it through the CLI
(``repro simulate --profile my-testbed.json``).

Round-trip contract: ``profile_from_dict(profile_to_dict(p)) == p`` for
every profile expressible in JSON (enforced by tests across all shipped
scenarios).  Polymorphic fields — the RX stamper and, in general, any
model with multiple implementations — carry a ``"type"`` tag resolved
through an explicit registry; unknown tags and unknown keys fail loudly
rather than defaulting silently.

The ``workload`` hook (an arbitrary generator object) is the one field
that does not serialize; profiles carrying one are rejected with a clear
message, since reconstructing arbitrary objects from JSON would be a
deserialization hazard as much as a modeling one.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from ..generators.tcpnoise import TCPNoiseGenerator
from ..net.nicmodel import TxNicModel
from ..net.switch import SwitchModel
from ..net.wan import WanSegment
from ..replay.burst import PollLoopCost
from ..replay.replayer import ReplayTimingModel
from ..timing.hwstamp import RealtimeHWStamper, SampledClockStamper
from ..timing.ptp import PTPProfile
from .profiles import BackgroundLoad, ClockStepModel, EnvironmentProfile

__all__ = [
    "profile_to_dict",
    "profile_from_dict",
    "save_profile",
    "load_profile",
    "canonical_profile_json",
]

#: Polymorphic RX stamper registry: type tag <-> class.
_STAMPERS = {
    "realtime-hw": RealtimeHWStamper,
    "sampled-clock": SampledClockStamper,
}
_STAMPER_TAGS = {cls: tag for tag, cls in _STAMPERS.items()}

#: Plain nested dataclasses (single implementation each).
_PLAIN = {
    "loop_cost": PollLoopCost,
    "replay_loop_cost": PollLoopCost,
    "tx_nic": TxNicModel,
    "switch": SwitchModel,
    "replay_timing": ReplayTimingModel,
    "ptp": PTPProfile,
    "clock_steps": ClockStepModel,
    "wan": WanSegment,
}


def _dc_to_dict(obj) -> dict:
    return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}


def _dc_from_dict(cls, data: dict, context: str):
    valid = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - valid
    if unknown:
        raise ValueError(f"{context}: unknown keys {sorted(unknown)}")
    return cls(**data)


def profile_to_dict(profile: EnvironmentProfile) -> dict:
    """A JSON-ready dict capturing the whole profile."""
    if profile.workload is not None:
        raise ValueError(
            "profiles with a custom `workload` object cannot be serialized; "
            "express the workload as rate_bps/packet_bytes or build it in code"
        )
    out: dict = {}
    for f in dataclasses.fields(profile):
        value = getattr(profile, f.name)
        if value is None or f.name == "workload":
            continue
        if f.name == "rx_stamper":
            out[f.name] = {"type": _STAMPER_TAGS[type(value)], **_dc_to_dict(value)}
        elif f.name == "background":
            out[f.name] = {
                "generator": _dc_to_dict(value.generator),
                "vf_queue_packets": value.vf_queue_packets,
            }
        elif f.name in _PLAIN:
            out[f.name] = _dc_to_dict(value)
        else:
            out[f.name] = value
    return out


def profile_from_dict(data: dict) -> EnvironmentProfile:
    """Reconstruct a profile from :func:`profile_to_dict` output."""
    data = dict(data)  # shallow copy; we pop as we go
    kwargs: dict = {}

    stamper = data.pop("rx_stamper", None)
    if stamper is not None:
        stamper = dict(stamper)
        tag = stamper.pop("type", None)
        if tag not in _STAMPERS:
            raise ValueError(
                f"rx_stamper: unknown type {tag!r}; known: {sorted(_STAMPERS)}"
            )
        kwargs["rx_stamper"] = _dc_from_dict(_STAMPERS[tag], stamper, "rx_stamper")

    background = data.pop("background", None)
    if background is not None:
        gen = _dc_from_dict(
            TCPNoiseGenerator, dict(background.get("generator", {})),
            "background.generator",
        )
        kwargs["background"] = BackgroundLoad(
            generator=gen,
            vf_queue_packets=background.get("vf_queue_packets"),
        )

    for name, cls in _PLAIN.items():
        nested = data.pop(name, None)
        if nested is not None:
            kwargs[name] = _dc_from_dict(cls, dict(nested), name)

    valid = {f.name for f in dataclasses.fields(EnvironmentProfile)}
    unknown = set(data) - valid
    if unknown:
        raise ValueError(f"profile: unknown keys {sorted(unknown)}")
    kwargs.update(data)
    return EnvironmentProfile(**kwargs)


def canonical_profile_json(profile: EnvironmentProfile) -> str:
    """One canonical byte string per profile *value* — the digest input.

    The persistent artifact store (:mod:`repro.sweep.store`) keys cached
    trials and reports by a content digest whose profile component is this
    string: ``profile_to_dict`` (so only code-relevant simulation
    parameters participate — never job counts, pool start methods or host
    facts), serialized with sorted keys, no whitespace, and ``repr``-exact
    floats.  Two profiles digest equal iff they would simulate identically
    from the same seed.

    Profiles carrying a custom ``workload`` object are rejected (by
    ``profile_to_dict``); callers treat that as "not cacheable".
    """
    return json.dumps(
        profile_to_dict(profile),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def save_profile(profile: EnvironmentProfile, path: str | Path) -> Path:
    """Write a profile as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(profile_to_dict(profile), indent=2, sort_keys=True) + "\n")
    return path


def load_profile(path: str | Path) -> EnvironmentProfile:
    """Load a profile JSON written by :func:`save_profile` (or by hand)."""
    return profile_from_dict(json.loads(Path(path).read_text()))
