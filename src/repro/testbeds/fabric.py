"""The FABRIC testbed environments of Section 7.

Hardware being modeled: ConnectX-6 NICs (dedicated smart-NIC or SR-IOV
VF on a shared port), Cisco 5700 site switches, applications inside VMs
(vCPU scheduling stalls), ``ptp_kvm``-chained PTP (sub-microsecond
residual, occasional mid-capture step corrections), and the CX-6's
sampled-clock RX timestamp conversion.

The seven FABRIC environments differ only in which imperfections are
active and how strongly — the table below summarizes the calibration
targets from Sections 7, 7.1 and Table 2:

=============================  ======  ======  =======  =========  ======
Environment                    U       O       I        L          κ
=============================  ======  ======  =======  =========  ======
dedicated 40 Gbps (test 1)     0       0       0.50     3.1e-5     0.743
shared 40 Gbps                 0       0       0.066    2.2e-5     0.967
dedicated 40 Gbps (test 3)     0       0       0.50     4.2e-4     0.750
dedicated 80 Gbps              0       0       0.107    8.2e-6     0.946
shared 80 Gbps                 0       0       0.111    2.3e-5     0.945
dedicated 80 Gbps + noise      0       0       0.109    1.4e-5     0.946
shared 40 Gbps + noise         2e-4    0       0.50     2.0e-5     0.749
=============================  ======  ======  =======  =========  ======

The paper itself flags the two dedicated-40G tests as anomalous ("the
first dedicated NIC test was anomalous", Section 8.1) and cannot attribute
the extra variation; the model reproduces the anomaly as heavy vCPU-stall
activity on those slices, which is a *calibrated hypothesis*, not an
explanation — exactly the epistemic state the paper ends in.
"""

from __future__ import annotations

from dataclasses import replace

from ..generators.tcpnoise import TCPNoiseGenerator
from ..net.nicmodel import TxNicModel
from ..net.switch import CISCO_5700
from ..net.wan import WanSegment
from ..replay.burst import PollLoopCost
from ..replay.replayer import ReplayTimingModel
from ..timing.hwstamp import SampledClockStamper
from ..timing.ptp import FABRIC_PTP
from .profiles import BackgroundLoad, ClockStepModel, EnvironmentProfile

__all__ = [
    "fabric_intersite_40g",
    "fabric_dedicated_40g",
    "fabric_shared_40g",
    "fabric_dedicated_40g_retest",
    "fabric_dedicated_80g",
    "fabric_shared_80g",
    "fabric_dedicated_80g_noisy",
    "fabric_shared_40g_noisy",
]

#: The forwarding loop inside a FABRIC VM: same software as local, a bit
#: more per-packet cost through the virtualized PCIe path.
FABRIC_LOOP = PollLoopCost(iteration_ns=4500.0, per_packet_ns=45.0)

#: Replay-mode loop inside a VM (TSC spin + TX enqueue only).
FABRIC_REPLAY_LOOP = PollLoopCost(iteration_ns=900.0, per_packet_ns=22.0)

#: ConnectX-6 TX through a VM: slightly slower, jitterier DMA pulls.
FABRIC_TX = TxNicModel(rate_bps=100e9, pull_delay_ns=900.0, pull_jitter=0.18)

#: CX-6 recorder: free-running HW clock sampled against system time.
FABRIC_STAMPER = SampledClockStamper(
    jitter_ns=14.5, resolution_ns=1.0, sample_interval_ns=1e6, sample_error_ns=25.0
)

#: Baseline VM replay timing: coarser polls and rare-but-real vCPU stalls
#: even on an idle site (host housekeeping, VM exits).
FABRIC_TIMING = ReplayTimingModel(
    poll_granularity_ns=60.0,
    stall_prob=2e-3,
    stall_scale_ns=6_000.0,
    freq_error_ppm=10.0,
    start_latency_median_ns=2.0e6,
    start_latency_sigma=1.0,
)

#: The anomalous dedicated-NIC slices: heavy stall activity.
FABRIC_TIMING_STALLY = replace(
    FABRIC_TIMING, stall_prob=0.102, stall_scale_ns=20_000.0
)

#: ptp_kvm step corrections: ~1 per capture, ~10 µs steps.
FABRIC_STEPS = ClockStepModel(rate_per_sec=3.0, scale_ns=10_000.0)
#: The retest slice stepped much harder (L jumped to 4.2e-4).
FABRIC_STEPS_LARGE = ClockStepModel(rate_per_sec=4.0, scale_ns=110_000.0)


def _fabric_base(name: str, rate_bps: float, section: str, **overrides) -> EnvironmentProfile:
    defaults = dict(
        name=name,
        rate_bps=rate_bps,
        packet_bytes=1400,
        duration_ns=0.3e9,
        n_replayers=1,
        loop_cost=FABRIC_LOOP,
        replay_loop_cost=FABRIC_REPLAY_LOOP,
        tx_nic=FABRIC_TX,
        switch=CISCO_5700,
        rx_stamper=FABRIC_STAMPER,
        replay_timing=FABRIC_TIMING,
        ptp=FABRIC_PTP,
        clock_steps=FABRIC_STEPS,
        paper_section=section,
    )
    defaults.update(overrides)
    return EnvironmentProfile(**defaults)


def fabric_dedicated_40g() -> EnvironmentProfile:
    """Section 7, test 1: dedicated ConnectX-6 pair at 40 Gbps (anomalous)."""
    return _fabric_base(
        "fabric-dedicated-40g",
        40e9,
        "7 (test 1)",
        replay_timing=FABRIC_TIMING_STALLY,
        notes="Dedicated smart NICs; anomalously heavy stall activity.",
    )


def fabric_shared_40g() -> EnvironmentProfile:
    """Section 7, test 2: shared (SR-IOV VF) NICs at 40 Gbps, idle site."""
    return _fabric_base(
        "fabric-shared-40g",
        40e9,
        "7 (test 2)",
        notes="Shared NICs on an idle site: full physical bandwidth available.",
    )


def fabric_dedicated_40g_retest() -> EnvironmentProfile:
    """Section 7, test 3: dedicated NICs re-tested; large clock steps."""
    return _fabric_base(
        "fabric-dedicated-40g-2",
        40e9,
        "7 (test 3)",
        replay_timing=FABRIC_TIMING_STALLY,
        clock_steps=FABRIC_STEPS_LARGE,
        notes="Dedicated-NIC retest confirming the anomaly; worse latency spikes.",
    )


def fabric_dedicated_80g() -> EnvironmentProfile:
    """Section 7: dedicated NICs at 80 Gbps (6.97 Mpps)."""
    return _fabric_base(
        "fabric-dedicated-80g",
        80e9,
        "7 (80 Gbps)",
        notes="Rate raised to 80 Gbps after observing occasional path-rate dips at 100.",
    )


def fabric_shared_80g() -> EnvironmentProfile:
    """Section 7: shared NICs at 80 Gbps."""
    return _fabric_base(
        "fabric-shared-80g",
        80e9,
        "7 (80 Gbps)",
        notes="Shared NICs at 80 Gbps, idle site.",
    )


def fabric_dedicated_80g_noisy() -> EnvironmentProfile:
    """Section 7.1: dedicated NICs at 80 Gbps with a co-located iperf3 load.

    The noise rides a different (shared) NIC, so the dedicated datapath is
    untouched; the only coupling is host-level (slightly elevated stall
    activity).  The paper found this "almost identical" to the quiet
    80 Gbps test.
    """
    return _fabric_base(
        "fabric-dedicated-80g-noisy",
        80e9,
        "7.1",
        replay_timing=replace(FABRIC_TIMING, stall_prob=2.6e-3),
        notes="Noise slice active but on separate NICs; host-level coupling only.",
    )


def fabric_shared_40g_noisy() -> EnvironmentProfile:
    """Section 7.1: shared NICs at 40 Gbps against an 8-stream iperf3 load.

    The co-tenant's ~40 Gbps TCP aggregate shares the physical port:
    foreground frames wait behind background frames (IAT collapse) and the
    VF ring occasionally overflows — the evaluation's only drops.
    """
    return _fabric_base(
        "fabric-shared-40g-noisy",
        40e9,
        "7.1",
        replay_timing=replace(FABRIC_TIMING, stall_prob=0.078, stall_scale_ns=20_000.0),
        background=BackgroundLoad(
            generator=TCPNoiseGenerator(
                n_streams=8, mean_rate_bps=40e9, train_packets=43.0
            ),
            vf_queue_packets=256,
        ),
        notes="Second slice on the same machines running iperf3 with 8 TCP streams.",
    )


def fabric_intersite_40g(*, ecmp_paths: int = 1) -> EnvironmentProfile:
    """Future-work extension: replayer and recorder on *different* sites.

    Section 10 leaves "more varied environments" to future work; the most
    consequential variation FABRIC offers is an inter-site L2 circuit,
    where the path crosses the wide area.  Long propagation by itself is
    invisible to the metrics (a constant shift), but WAN queueing jitter
    swamps every LAN-scale mechanism, and with ``ecmp_paths > 1`` the
    parallel-path skew makes O fire without any replayer misbehaviour —
    the first environment where reordering is the *network's* fault.
    """
    return _fabric_base(
        "fabric-intersite-40g" + ("-ecmp" if ecmp_paths > 1 else ""),
        40e9,
        "10 (future work)",
        wan=WanSegment(
            propagation_ns=10e6,        # ~10 ms circuit
            jitter_scale_ns=20_000.0,   # router queueing, long-tailed
            jitter_sigma=0.7,
            ecmp_paths=ecmp_paths,
            path_skew_ns=60_000.0,
        ),
        notes="Inter-site L2 circuit: WAN jitter dominates; ECMP adds reordering.",
    )
