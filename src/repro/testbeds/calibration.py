"""Analytic calibration model: profile knobs → expected metric magnitudes.

The environment profiles' constants were fixed by combining the closed
forms below with simulation sweeps.  The formulas are first-order
expectations, good to ~25 % — enough to pick a knob's decade before the
simulation fine-tunes it, and enough for tests to verify that the shipped
profiles sit where the derivations say they should.

Notation: ``N`` packets per trial, ``S`` trial span (ns), ``pps = N/S``,
burst size ``b`` (so ``N/b`` bursts and a ``1/b`` burst-head fraction).

**IAT core (stamper jitter j).**  Within a burst, wire spacing is
deterministic; each receive timestamp carries independent jitter ``j``.
An IAT uses two stamps and a delta across two runs uses four, so
``Δg ~ N(0, 2j)`` and the ±10 ns statistic is ``P(|Δg| ≤ 10) = erf(10 /
(2j·√2))``.  The core's I contribution is ``N·E|Δg| / 2S`` with
``E|Δg| = 2j·√(2/π)``.

**Burst-boundary outliers (DMA pull jitter).**  A burst head's gap spans
two independent pull latencies per run; with lognormal pulls of median
``m`` and sigma ``σ``, the per-boundary delta has mean magnitude
``≈ 2·m·σ·√(2/π)·√2`` for small σ.  Contribution: that times ``N/b / 2S``.

**Scheduler stalls.**  A stall of mean ``s`` displaces one burst: the gap
into it grows by ``s`` and the gap out shrinks, so each stall adds
``≈ 2s`` of IAT deviation (plus catch-up chaining when ``s`` exceeds the
loop slack — the simulation captures that; the closed form here is the
floor).  I contribution: ``2·p·(N/b)·s·2 / 2S`` for stall probability
``p`` counting both runs; L contribution ``≈ 2·p·s / S`` per packet.

**Frequency error.**  A per-run ppm error ``ε`` stretches the schedule;
between two runs the latency delta grows linearly to ``Δε·1e-6·S``,
averaging half that, so ``L ≈ E|Δε|·1e-6 / 2`` with
``E|Δε| = σ_ppm·√2·√(2/π)`` — duration-invariant.

**Clock steps.**  A step of magnitude ``d`` at a uniform point shifts the
tail of one capture: ``E[L] ≈ λ·(S/1e9)·E|d| / (2S)`` per run pair (two
runs' steps add) — so step-driven L scales as ``1/S`` for fixed step size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .profiles import EnvironmentProfile

__all__ = ["ExpectedMetrics", "expected_metrics", "equilibrium_burst_size"]


def equilibrium_burst_size(profile: EnvironmentProfile) -> float:
    """Steady-state forwarding-loop burst size for the profile's workload.

    The loop accumulates arrivals while processing the previous burst:
    ``b = iteration / (iat - per_packet)``, capped at 64 (Choir's limit)
    and floored at 1.  Valid while ``per_packet < iat`` (otherwise the
    loop cannot keep up and bursts pin at the cap).
    """
    iat = 1e9 / (
        profile.rate_bps / (profile.packet_bytes * 8) / profile.n_replayers
    )
    lc = profile.loop_cost
    if lc.per_packet_ns >= iat:
        return 64.0
    return float(min(64.0, max(1.0, lc.iteration_ns / (iat - lc.per_packet_ns))))


@dataclass(frozen=True)
class ExpectedMetrics:
    """First-order expectations for one environment's metric components."""

    burst_size: float
    pct_iat_within_10ns: float
    i_core: float
    i_boundary: float
    i_stall: float
    l_freq: float
    l_stall: float
    l_steps: float

    @property
    def i_total(self) -> float:
        """Expected I (sum of the modeled contributions)."""
        return self.i_core + self.i_boundary + self.i_stall

    @property
    def l_total(self) -> float:
        """Expected L (sum of the modeled contributions)."""
        return self.l_freq + self.l_stall + self.l_steps


def expected_metrics(profile: EnvironmentProfile) -> ExpectedMetrics:
    """Evaluate the calibration formulas for a profile.

    Only the quiet-path mechanisms are closed-form; shared-port contention
    and the dual-replayer interleave are simulation-only.
    """
    n_pkts = profile.rate_bps / (profile.packet_bytes * 8) * (
        profile.duration_ns / 1e9
    )
    span = profile.duration_ns
    b = equilibrium_burst_size(profile)

    # --- stamper jitter -> core ---------------------------------------
    # Switch arbitration jitter is excluded: it is one-sided and the
    # egress FIFO's monotonicity constraint makes it strongly correlated
    # between neighbouring packets, so it largely cancels in the gaps.
    j = getattr(profile.rx_stamper, "jitter_ns", 0.0) if profile.rx_stamper else 0.0
    dg_sigma = 2.0 * j
    if dg_sigma > 0:
        pct10 = math.erf(10.0 / (dg_sigma * math.sqrt(2.0))) * 100.0
        e_dg = dg_sigma * math.sqrt(2.0 / math.pi)
    else:
        pct10, e_dg = 100.0, 0.0
    interior = 1.0 - 1.0 / b
    i_core = n_pkts * interior * e_dg / (2.0 * span)
    pct10_total = interior * pct10

    # --- pull jitter -> boundaries ------------------------------------
    tx = profile.tx_nic
    pull_sd = tx.pull_delay_ns * tx.pull_jitter  # small-sigma lognormal std
    e_boundary = 2.0 * pull_sd * math.sqrt(2.0 / math.pi)
    i_boundary = (n_pkts / b) * e_boundary / (2.0 * span)

    # --- stalls ---------------------------------------------------------
    t = profile.replay_timing
    stall_sum = 2.0 * t.stall_prob * (n_pkts / b) * (2.0 * t.stall_scale_ns)
    # 0.6: empirical correction from simulation sweeps — overlapping and
    # chained stalls partially absorb each other's gap deviations.
    i_stall = 0.6 * stall_sum / (2.0 * span)
    l_stall = 2.0 * t.stall_prob * t.stall_scale_ns / span * 1.0

    # --- frequency error -------------------------------------------------
    e_dppm = t.freq_error_ppm * math.sqrt(2.0) * math.sqrt(2.0 / math.pi)
    l_freq = e_dppm * 1e-6 / 2.0

    # --- clock steps ------------------------------------------------------
    cs = profile.clock_steps
    e_step = cs.scale_ns * math.sqrt(2.0 / math.pi)
    steps_per_run = cs.rate_per_sec * span / 1e9
    l_steps = 2.0 * steps_per_run * e_step / (2.0 * span)

    return ExpectedMetrics(
        burst_size=b,
        pct_iat_within_10ns=pct10_total,
        i_core=i_core,
        i_boundary=i_boundary,
        i_stall=i_stall,
        l_freq=l_freq,
        l_stall=l_stall,
        l_steps=l_steps,
    )
