"""The resumable sweep orchestrator: expand, deduplicate, fan out, merge.

A *sweep* evaluates a scenario × seed matrix — the shape behind Table 2,
every figure series, and the PASTRAMI-style many-run stability screens —
as a list of independent **work units** (one trial series + its Section-3
analysis each).  The coordinator:

1. expands the matrix into a deterministic work plan
   (:func:`plan_from_scenarios` for registered scenarios,
   :func:`plan_unit` for ad-hoc profiles);
2. probes the :class:`~repro.sweep.store.ArtifactStore` and satisfies
   hits without simulating anything;
3. fans misses out over the persistent worker pool
   (:mod:`repro.parallel.pool`) — one unit per task, computed with the
   *serial* simulation and analysis paths worker-side so the stored and
   merged bits equal ``analyze_trials`` exactly;
4. persists each finished unit **immediately and atomically**, so a
   killed sweep resumes from its last completed unit, not from zero;
5. merges the per-unit reports, in plan order, into one machine-readable
   sweep report plus a separate telemetry document.

Determinism contract (pinned by ``tests/test_sweep_differential.py``):
the merged report (:attr:`SweepResult.report`, serialized by
:func:`write_sweep_report` as ``sweep.json``) is **byte-identical**
across job counts, cold/warm caches, and kill + ``--resume`` cycles.
Everything run-dependent — wall times, hit/miss tallies, host context,
merged worker telemetry — lives in the *telemetry* document
(``sweep_telemetry.json``), which extends the ``benchmarks/_emit.py``
bench-artifact schema (``bench``/``params``/``host``/``wall_s``/
``per_stage``) with a ``store`` block and the drained
:mod:`repro.obs.metrics` counters.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import as_completed
from dataclasses import dataclass
from pathlib import Path

from ..core.report import RunSeriesReport, compare_series
from ..core.trial import Trial
from ..experiments.scenarios import default_duration_scale, scenario
from ..obs import metrics
from ..obs.export import host_context
from ..obs.trace import span
from ..parallel.shard import default_jobs
from ..testbeds.base import Testbed
from ..testbeds.profiles import EnvironmentProfile
from .codec import series_report_from_dict, series_report_to_dict
from .store import ArtifactStore, compute_digest, digest_key_doc

__all__ = [
    "SweepUnit",
    "SweepResult",
    "AdaptiveSweepResult",
    "plan_unit",
    "plan_from_scenarios",
    "run_sweep",
    "run_adaptive_sweep",
    "write_sweep_report",
    "render_sweep_summary",
    "SWEEP_REPORT_SCHEMA",
]

#: Version of the merged sweep report document.
SWEEP_REPORT_SCHEMA = 1


@dataclass(frozen=True)
class SweepUnit:
    """One work unit: a (profile, seed) cell of the sweep matrix."""

    name: str
    profile: EnvironmentProfile
    seed: int
    n_runs: int
    digest: str

    @property
    def environment(self) -> str:
        return self.profile.name


def plan_unit(
    name: str, profile: EnvironmentProfile, seed: int, n_runs: int
) -> SweepUnit:
    """Build one unit, computing its content digest."""
    return SweepUnit(
        name=name,
        profile=profile,
        seed=int(seed),
        n_runs=int(n_runs),
        digest=compute_digest(profile, seed, n_runs),
    )


def plan_from_scenarios(
    keys: list[str] | None = None,
    *,
    seeds: list[int] | None = None,
    n_runs: int = 5,
    duration_scale: float | None = None,
) -> list[SweepUnit]:
    """Expand registered scenarios × seeds into a deterministic plan.

    ``keys=None`` sweeps all nine Table-2 environments; ``seeds=None``
    uses each scenario's registered seed (the exact series the figure and
    table drivers consume), while an explicit seed list is applied to
    every scenario (the many-seed stability-screen shape).  Plan order is
    scenario-major in registry order, then seed order — the merge order
    of the final report.
    """
    from ..experiments.scenarios import SCENARIOS

    keys = list(keys) if keys else [sc.key for sc in SCENARIOS]
    scale = duration_scale if duration_scale is not None else default_duration_scale()
    plan = []
    for key in keys:
        sc = scenario(key)
        profile = sc.profile(scale)
        for seed in seeds if seeds else [sc.seed]:
            plan.append(plan_unit(sc.key, profile, seed, n_runs))
    return plan


@dataclass(frozen=True)
class SweepResult:
    """Everything one sweep produced."""

    #: Deterministic merged report (the ``sweep.json`` payload).
    report: dict
    #: Run-dependent context (the ``sweep_telemetry.json`` payload).
    telemetry: dict
    #: Decoded per-unit series reports, in plan order.
    series: tuple[RunSeriesReport, ...]
    #: Per-unit cache outcome, in plan order: ``"hit"`` or ``"miss"``.
    outcomes: tuple[str, ...]


# -- the fan-out unit ------------------------------------------------------

def _compute_unit(task: tuple) -> tuple[list[Trial], dict]:
    """Simulate and analyze one unit with the serial reference paths.

    Runs in a worker process (or in-process at ``jobs=1``).  Everything
    here is deliberately serial — ``run_series(jobs=1)`` plus
    ``compare_series`` — so a stored artifact is the bit-exact output of
    ``analyze_trials`` regardless of how the *sweep* fans out.  The
    report travels codec-encoded: the same bytes that will be stored and
    merged, so no float ever takes a detour through repr-and-back twice.
    """
    profile, seed, n_runs = task
    with span(
        "sweep.unit", environment=profile.name, seed=int(seed), n_runs=int(n_runs)
    ):
        trials = Testbed(profile, seed=seed).run_series(n_runs, jobs=1)
        report = compare_series(trials, environment=profile.name)
    metrics.counter("sweep.units_computed").add()
    return trials, series_report_to_dict(report)


def _compute_unit_remote(task: tuple) -> tuple[list[Trial], dict, dict]:
    """Worker-side wrapper: compute, then drain this worker's metrics.

    The drained deltas ride back on the result so the parent can merge
    worker telemetry even on untraced runs (traced runs additionally ship
    spans through the pool's envelope machinery).
    """
    trials, report = _compute_unit(task)
    return trials, report, metrics.REGISTRY.drain_deltas()


# -- the orchestrator ------------------------------------------------------

def run_sweep(
    plan: list[SweepUnit],
    store: ArtifactStore | None = None,
    *,
    jobs: int | None = None,
    resume: bool = True,
    matrix: dict | None = None,
) -> SweepResult:
    """Run a sweep plan through the store and the worker pool.

    ``resume=True`` (the default) satisfies units from existing store
    entries; ``resume=False`` recomputes every unit and rewrites its
    entry (a "fresh" sweep).  With ``store=None`` nothing persists and
    every unit computes.  ``jobs`` defaults to ``REPRO_JOBS`` or serial.

    Duplicate digests in the plan (the same cell listed twice) compute at
    most once; every occurrence receives the identical result.
    """
    jobs = default_jobs() if jobs is None else int(jobs)
    t_start = time.perf_counter()
    per_stage: dict[str, float] = {}
    # Progress gauges for the live observation channel (/metrics, counter
    # tracks): total plan size up front, completed units as they land.
    metrics.gauge("sweep.units_total").set(len(plan))
    metrics.gauge("sweep.units_done").set(0)

    # -- stage 1: probe the store -----------------------------------------
    t0 = time.perf_counter()
    results: dict[str, tuple[tuple[Trial, ...], dict]] = {}
    outcomes: dict[str, str] = {}
    with span("sweep.probe", n_units=len(plan)):
        for unit in plan:
            if unit.digest in results:
                continue
            if store is not None and resume:
                entry = store.get(unit.digest)
                if entry is not None and entry.report is not None:
                    results[unit.digest] = (
                        entry.trials, series_report_to_dict(entry.report)
                    )
                    outcomes[unit.digest] = "hit"
                    continue
                if entry is not None:
                    # Trials cached (e.g. by a runner-side simulate) but
                    # analysis missing: compute it here and upgrade the
                    # entry in place — still no re-simulation.
                    report = compare_series(
                        list(entry.trials), environment=unit.environment
                    )
                    encoded = series_report_to_dict(report)
                    store.put(
                        unit.digest, entry.trials, report,
                        key=digest_key_doc(unit.profile, unit.seed, unit.n_runs),
                    )
                    results[unit.digest] = (entry.trials, encoded)
                    outcomes[unit.digest] = "hit"
                    continue
            outcomes[unit.digest] = "miss"
    per_stage["probe"] = time.perf_counter() - t0

    # -- stage 2: compute the misses --------------------------------------
    t0 = time.perf_counter()
    misses = []
    seen = set()
    for unit in plan:
        if outcomes[unit.digest] == "miss" and unit.digest not in seen:
            seen.add(unit.digest)
            misses.append(unit)
    metrics.counter("sweep.units_hit").add(len(results))
    metrics.counter("sweep.units_missed").add(len(misses))
    metrics.gauge("sweep.units_done").set(len(results))

    def _persist(unit: SweepUnit, trials, report_doc: dict) -> None:
        trials = tuple(trials)
        results[unit.digest] = (trials, report_doc)
        metrics.gauge("sweep.units_done").set(len(results))
        if store is not None:
            store.put(
                unit.digest,
                trials,
                series_report_from_dict(report_doc),
                key=digest_key_doc(unit.profile, unit.seed, unit.n_runs),
            )

    if misses:
        with span("sweep.compute", n_units=len(misses), jobs=jobs):
            if jobs > 1 and len(misses) > 1:
                from ..parallel.pool import get_pool, submit_task

                pool = get_pool(jobs)
                futures = {}
                for unit in misses:
                    f = submit_task(
                        pool,
                        _compute_unit_remote,
                        (unit.profile, unit.seed, unit.n_runs),
                        name="sweep.unit.remote",
                        environment=unit.environment,
                        seed=unit.seed,
                    )
                    futures[f] = unit
                try:
                    # Persist in completion order: a killed sweep keeps
                    # every finished unit, whatever the schedule was.
                    for f in as_completed(futures):
                        trials, report_doc, deltas = f.result()
                        metrics.REGISTRY.merge_deltas(deltas)
                        _persist(futures[f], trials, report_doc)
                except BaseException:
                    for f in futures:
                        f.cancel()
                    raise
            else:
                for unit in misses:
                    trials, report_doc = _compute_unit(
                        (unit.profile, unit.seed, unit.n_runs)
                    )
                    _persist(unit, trials, report_doc)
    per_stage["compute"] = time.perf_counter() - t0

    # -- stage 3: merge, in plan order ------------------------------------
    t0 = time.perf_counter()
    with span("sweep.merge", n_units=len(plan)):
        unit_rows = []
        series = []
        outcome_list = []
        for unit in plan:
            _, report_doc = results[unit.digest]
            report = series_report_from_dict(report_doc)
            series.append(report)
            outcome_list.append(outcomes[unit.digest])
            unit_rows.append({
                "scenario": unit.name,
                "environment": unit.environment,
                "seed": unit.seed,
                "n_runs": unit.n_runs,
                "digest": unit.digest,
                "mean": report.mean_row(),
                "runs": report.run_rows(),
            })
        merged = {
            "schema": SWEEP_REPORT_SCHEMA,
            "kind": "sweep-report",
            "matrix": dict(matrix or {}),
            "n_units": len(plan),
            "units": unit_rows,
        }
    per_stage["merge"] = time.perf_counter() - t0

    n_hits = sum(1 for o in outcome_list if o == "hit")
    telemetry = {
        "bench": "sweep",
        "params": {
            "n_units": len(plan),
            "jobs": jobs,
            "resume": resume,
            "matrix": dict(matrix or {}),
        },
        "host": host_context(),
        "wall_s": time.perf_counter() - t_start,
        "per_stage": per_stage,
        "store": store.stats.as_dict() if store is not None else None,
        "cache": {"hits": n_hits, "misses": len(plan) - n_hits},
        "metrics": {
            name: value
            for name, value in sorted(
                metrics.REGISTRY.snapshot()["counters"].items()
            )
            if name.startswith(("sweep.", "pool.", "testbed."))
        },
    }
    return SweepResult(
        report=merged,
        telemetry=telemetry,
        series=tuple(series),
        outcomes=tuple(outcome_list),
    )


# -- the sequential stopping rule ------------------------------------------

@dataclass(frozen=True)
class AdaptiveSweepResult:
    """A sweep grown seed-by-seed until its estimate stabilized (or a cap).

    The coordinator-level face of the PASTRAMI-style minimal-runs
    estimator (:mod:`repro.analysis.stability`): the plan is not fixed up
    front but extended in batches until the bootstrap CI half-width of the
    per-seed metric means is at most ``eps``.
    """

    #: Every unit evaluated, in seed order (initial seeds, then extensions).
    plan: tuple[SweepUnit, ...]
    #: Decoded per-unit series reports, in plan order.
    series: tuple["RunSeriesReport", ...]
    #: Per-unit cache outcome, in plan order.
    outcomes: tuple[str, ...]
    #: Per-seed session means of the stopping metric, in plan order.
    values: "np.ndarray"
    #: The half-width target (0 = fixed plan, no extension).
    eps: float
    #: True when the target was reached before ``max_seeds``.
    stopped: bool
    #: Final CI half-width.
    half_width: float
    #: Half-width after each batch — the convergence trace.
    history: tuple[float, ...]


def run_adaptive_sweep(
    name: str,
    profile: EnvironmentProfile,
    *,
    initial_seeds,
    n_runs: int = 3,
    eps: float = 0.0,
    max_seeds: int = 12,
    batch: int | None = None,
    store: ArtifactStore | None = None,
    jobs: int | None = None,
    resume: bool = True,
    confidence: float = 0.95,
    metric: str = "kappa",
) -> AdaptiveSweepResult:
    """Sweep seeds for one environment until the metric's CI is tight.

    Runs :func:`run_sweep` over ``initial_seeds``, then — while ``eps > 0``
    and the bootstrap CI half-width of the per-seed ``metric`` means
    exceeds ``eps`` — extends the plan with fresh consecutive seeds
    (``max(seeds) + 1`` onward), ``batch`` at a time (default: the job
    count, so each extension fills the pool), up to ``max_seeds`` total.
    Every batch goes through the same store/pool machinery as a fixed
    sweep, so a warm store replays the whole adaptive trajectory from
    cache and a killed screen resumes where it stopped.

    ``eps=0`` degenerates to a fixed sweep plus one half-width
    measurement — the fixed-N baseline the stopping rule is graded
    against (``benchmarks/bench_stability.py``).
    """
    import numpy as np

    from ..analysis.stability import ci_half_width

    seeds = [int(s) for s in initial_seeds]
    if not seeds:
        raise ValueError("need at least one initial seed")
    if eps < 0:
        raise ValueError("eps must be >= 0")
    if eps > 0 and len(seeds) < 3:
        raise ValueError(
            "adaptive mode needs >= 3 initial seeds (below that the "
            "bootstrap interval degenerates to the sample range)"
        )
    max_seeds = max(int(max_seeds), len(seeds))
    jobs_resolved = default_jobs() if jobs is None else int(jobs)
    batch = max(1, jobs_resolved) if batch is None else max(1, int(batch))

    plan: list[SweepUnit] = []
    series: list = []
    outcomes: list[str] = []
    history: list[float] = []
    stopped = False
    pending = seeds
    with span(
        "sweep.adaptive",
        environment=profile.name,
        eps=eps,
        max_seeds=max_seeds,
    ):
        while True:
            units = [plan_unit(name, profile, s, n_runs) for s in pending]
            result = run_sweep(units, store, jobs=jobs, resume=resume)
            plan.extend(units)
            series.extend(result.series)
            outcomes.extend(result.outcomes)
            metrics.counter("sweep.adaptive_batches").add()
            values = np.asarray(
                [rep.values(metric).mean() for rep in series]
            )
            hw = ci_half_width(values, confidence=confidence)
            history.append(hw)
            if eps > 0 and hw <= eps:
                stopped = True
                metrics.counter("sweep.adaptive_early_stops").add()
                break
            if eps <= 0:
                break
            if len(plan) >= max_seeds:
                metrics.counter("sweep.adaptive_cap_hits").add()
                break
            next_seed = max(u.seed for u in plan) + 1
            n_new = min(batch, max_seeds - len(plan))
            pending = list(range(next_seed, next_seed + n_new))
    return AdaptiveSweepResult(
        plan=tuple(plan),
        series=tuple(series),
        outcomes=tuple(outcomes),
        values=values,
        eps=eps,
        stopped=stopped,
        half_width=history[-1],
        history=tuple(history),
    )


def write_sweep_report(result: SweepResult, outdir: str | Path) -> tuple[Path, Path]:
    """Write ``sweep.json`` (deterministic) + ``sweep_telemetry.json``.

    ``sweep.json`` bytes depend only on the plan and the simulated
    content — diffing two of them is the sweep-level exactness check the
    CI smoke job performs.
    """
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    report_path = outdir / "sweep.json"
    report_path.write_text(
        json.dumps(result.report, sort_keys=True, indent=1) + "\n"
    )
    telemetry_path = outdir / "sweep_telemetry.json"
    telemetry_path.write_text(
        json.dumps(result.telemetry, sort_keys=True, indent=1) + "\n"
    )
    return report_path, telemetry_path


def render_sweep_summary(result: SweepResult, plan: list[SweepUnit]) -> str:
    """The human table: one row per unit with κ and its cache outcome."""
    from ..analysis.textplot import render_metric_rows

    rows = []
    for unit, report, outcome in zip(plan, result.series, result.outcomes):
        row = report.mean_row()
        rows.append({
            "scenario": unit.name,
            "seed": unit.seed,
            "U": row["U"],
            "O": row["O"],
            "I": row["I"],
            "L": row["L"],
            "kappa": row["kappa"],
            "cache": outcome,
        })
    return render_metric_rows(
        rows, columns=["scenario", "seed", "U", "O", "I", "L", "kappa", "cache"]
    )
