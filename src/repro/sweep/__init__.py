"""κ-as-a-service: the persistent artifact store and the sweep orchestrator.

The paper's evaluation — and every production replay-consistency workflow
built on it — is a scenario × environment × seed matrix whose cells are
expensive (seconds of simulation each) and perfectly deterministic (the
engine's differential suites prove bit-identity under any fan-out).  This
package exploits that determinism end to end:

* :mod:`~repro.sweep.store` — :class:`ArtifactStore`, a content-addressed
  on-disk cache mapping a canonical digest of (environment profile ×
  seed scheme × series length × analysis version) to the serialized
  trial series and its :class:`~repro.core.report.RunSeriesReport`;
  atomic publishes, sha256-verified reads, corruption degrades to a
  counted recompute — never a crash, never a wrong κ;
* :mod:`~repro.sweep.codec` — exact JSON round-trips for the report
  types (floats via repr, bit-identical back);
* :mod:`~repro.sweep.coordinator` — :func:`run_sweep`, which expands a
  matrix into a work plan, satisfies cache hits, fans misses over the
  persistent worker pool, persists each unit as it completes (so a
  killed sweep resumes), and merges everything into one deterministic
  sweep report plus a telemetry sidecar.

Entry points: ``repro sweep`` on the command line, ``REPRO_STORE=<dir>``
(or :func:`repro.experiments.runner.configure_store`) to let the
Table-2/figure/validation drivers read and feed the same store.  See
``docs/sweeps.md``.
"""

from .coordinator import (
    SWEEP_REPORT_SCHEMA,
    AdaptiveSweepResult,
    SweepResult,
    SweepUnit,
    plan_from_scenarios,
    plan_unit,
    render_sweep_summary,
    run_adaptive_sweep,
    run_sweep,
    write_sweep_report,
)
from .store import (
    ANALYSIS_VERSION,
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    StoredEntry,
    StoreStats,
    compute_digest,
    digest_key_doc,
)

__all__ = [
    "ArtifactStore",
    "StoredEntry",
    "StoreStats",
    "compute_digest",
    "digest_key_doc",
    "STORE_SCHEMA_VERSION",
    "ANALYSIS_VERSION",
    "SweepUnit",
    "SweepResult",
    "AdaptiveSweepResult",
    "plan_unit",
    "plan_from_scenarios",
    "run_sweep",
    "run_adaptive_sweep",
    "write_sweep_report",
    "render_sweep_summary",
    "SWEEP_REPORT_SCHEMA",
]
