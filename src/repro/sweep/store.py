"""The persistent, content-addressed artifact store behind ``repro sweep``.

``run_series`` memoization (:mod:`repro.experiments.runner`) dies with the
process; every new invocation of a Table-2 / figure / validation driver
re-simulates series it has produced a thousand times before.  This module
makes those results durable: a **digest-keyed** store mapping the full
content of a work unit — environment profile × seed scheme × series
length × analysis code version — to its simulated :class:`Trial` series
and (optionally) its Section-3 :class:`RunSeriesReport`.

Digest scheme
-------------
The key document (:func:`digest_key_doc`) contains **only values that
determine the simulated bits**:

* the canonical profile JSON (:func:`repro.testbeds.canonical_profile_json`)
  — duration scale is inside it, because ``at_duration`` rewrites the
  profile;
* the series seed and series index (the
  :func:`repro.testbeds.base.series_seed_plan` inputs) and ``n_runs``;
* ``ANALYSIS_VERSION`` — bumped when the metric code changes output —
  and the store schema version.

It deliberately excludes job counts, pool start methods, host facts and
wall-clock anything: the engine's differential suites prove output is
invariant under all of them, so a series simulated at ``jobs=4`` under
``spawn`` must hit the cache entry written at ``jobs=1`` under
``forkserver`` (the same rule the in-process ``run_series`` cache
follows; pinned by ``tests/test_sweep_differential.py``).

Store layout (under ``<root>/v<schema>/``)::

    <digest[:2]>/<digest>/
        entry.json      # schema, key doc, labels, per-file sha256 checksums
        run-<k>.cho     # binary captures (repro.analysis.capture), k = run index
        run-<k>.cho.json  # capture sidecars (label + meta)
        report.json     # optional codec-encoded RunSeriesReport

Write discipline: an entry is assembled in ``<root>/tmp/`` (payloads
fsynced) and published with one atomic ``os.replace`` — readers can never
observe a half-written entry.  Losing a publish race to a concurrent
writer is harmless (both writers derived identical content from the same
digest) and is counted, not raised.

Read discipline: every payload byte is verified against the entry's
sha256 manifest before anything is decoded, and every decode failure —
truncation, bit flips, stale schema, a vanished file — degrades to a
counted cache miss (``sweep.store.corrupt``): the corrupted entry is
quarantined (removed) so the caller recomputes and rewrites.  Corruption
is **never** an exception and can never yield a silently wrong κ; the
fault-injection suite (``tests/test_sweep_store_faults.py``) drives every
one of these paths.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

from ..analysis.capture import read_capture, write_capture
from ..core.report import RunSeriesReport
from ..core.trial import Trial
from ..obs import metrics
from ..obs.trace import span
from ..testbeds.profiles import EnvironmentProfile
from ..testbeds.serialization import canonical_profile_json
from .codec import series_report_from_dict, series_report_to_dict

__all__ = [
    "ArtifactStore",
    "StoredEntry",
    "StoreStats",
    "compute_digest",
    "digest_key_doc",
    "STORE_SCHEMA_VERSION",
    "ANALYSIS_VERSION",
]

#: On-disk layout version; entries of any other version are recomputed.
STORE_SCHEMA_VERSION = 1

#: Version of the analysis code whose outputs the store caches.  Bump
#: whenever a change legitimately alters simulated trials or Section-3
#: metric bits — stale entries then miss instead of resurrecting old
#: results.
ANALYSIS_VERSION = 1


def digest_key_doc(
    profile: EnvironmentProfile,
    seed: int,
    n_runs: int,
    series_index: int = 0,
) -> dict:
    """The canonical key document a work unit digests to.

    Raises ``ValueError`` for profiles that cannot be canonicalized
    (custom ``workload`` objects) — such units are not cacheable.
    """
    return {
        "schema": STORE_SCHEMA_VERSION,
        "analysis": ANALYSIS_VERSION,
        "profile": canonical_profile_json(profile),
        "seed": int(seed),
        "series_index": int(series_index),
        "n_runs": int(n_runs),
    }


def compute_digest(
    profile: EnvironmentProfile,
    seed: int,
    n_runs: int,
    series_index: int = 0,
) -> str:
    """sha256 hex digest of the canonical key document."""
    doc = digest_key_doc(profile, seed, n_runs, series_index)
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class StoredEntry:
    """One artifact loaded (and verified) from the store."""

    digest: str
    trials: tuple[Trial, ...]
    report: RunSeriesReport | None
    key: dict


@dataclass
class StoreStats:
    """Per-instance operation tallies (the global registry twin)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    races: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "races": self.races,
        }


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class ArtifactStore:
    """Digest-keyed persistent cache of trial series and their reports."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = StoreStats()

    # -- paths ------------------------------------------------------------
    @property
    def _version_root(self) -> Path:
        return self.root / f"v{STORE_SCHEMA_VERSION}"

    def entry_dir(self, digest: str) -> Path:
        """Where an entry for ``digest`` lives (existing or not)."""
        return self._version_root / digest[:2] / digest

    # -- read side ---------------------------------------------------------
    def get(self, digest: str) -> StoredEntry | None:
        """The verified entry for ``digest``, or ``None`` (counted miss).

        Any integrity failure quarantines the entry and reports a miss;
        this method never raises for on-disk damage.
        """
        with span("sweep.store.get", digest=digest[:12]):
            entry = self._load_verified(digest)
        if entry is None:
            self.stats.misses += 1
            metrics.counter("sweep.store.misses").add()
        else:
            self.stats.hits += 1
            metrics.counter("sweep.store.hits").add()
        return entry

    def _load_verified(self, digest: str) -> StoredEntry | None:
        d = self.entry_dir(digest)
        if not (d / "entry.json").exists():
            return None
        try:
            meta = json.loads((d / "entry.json").read_text())
        except (OSError, ValueError):
            return self._quarantine(digest, "entry-unreadable")
        if not isinstance(meta, dict) or meta.get("schema") != STORE_SCHEMA_VERSION:
            return self._quarantine(digest, "stale-schema")
        if meta.get("digest") != digest:
            return self._quarantine(digest, "digest-mismatch")
        files = meta.get("files")
        labels = meta.get("labels")
        if not isinstance(files, dict) or not isinstance(labels, list) or not labels:
            return self._quarantine(digest, "entry-malformed")
        # Verify every payload byte before decoding anything.
        for name, want_sha in files.items():
            try:
                data = (d / name).read_bytes()
            except OSError:
                return self._quarantine(digest, "payload-missing")
            if _sha256(data) != want_sha:
                return self._quarantine(digest, "payload-checksum")
        expected = {f"run-{k}.cho" for k in range(len(labels))}
        expected |= {f"run-{k}.cho.json" for k in range(len(labels))}
        if meta.get("has_report"):
            expected.add("report.json")
        if set(files) != expected:
            return self._quarantine(digest, "manifest-mismatch")
        try:
            trials = []
            for k, label in enumerate(labels):
                t = read_capture(d / f"run-{k}.cho", mmap=False)
                # The capture header truncates labels to 12 bytes; the
                # manifest keeps the authoritative full label.
                trials.append(t if t.label == label else t.relabel(label))
            report = None
            if meta.get("has_report"):
                report = series_report_from_dict(
                    json.loads((d / "report.json").read_text())
                )
        except Exception:
            return self._quarantine(digest, "payload-decode")
        return StoredEntry(
            digest=digest,
            trials=tuple(trials),
            report=report,
            key=meta.get("key", {}),
        )

    def _quarantine(self, digest: str, reason: str) -> None:
        """Count and remove a damaged entry so the caller rewrites it."""
        self.stats.corrupt += 1
        metrics.counter("sweep.store.corrupt").add()
        metrics.counter(f"sweep.store.corrupt.{reason}").add()
        shutil.rmtree(self.entry_dir(digest), ignore_errors=True)
        return None

    # -- write side --------------------------------------------------------
    def put(
        self,
        digest: str,
        trials: list[Trial] | tuple[Trial, ...],
        report: RunSeriesReport | None = None,
        key: dict | None = None,
    ) -> bool:
        """Atomically publish an entry; ``True`` if this call wrote it.

        Content is assembled under ``<root>/tmp`` and renamed into place
        in one step.  Losing the rename race to a concurrent writer of
        the same digest returns ``False`` (their content is identical by
        construction) and is counted in ``sweep.store.races``.
        """
        if not trials:
            raise ValueError("an entry needs at least one trial")
        with span("sweep.store.put", digest=digest[:12], n_trials=len(trials)):
            tmp_root = self.root / "tmp"
            tmp_root.mkdir(parents=True, exist_ok=True)
            token = f"{os.getpid()}-{os.urandom(4).hex()}"
            tmp = tmp_root / f"{digest}.{token}"
            tmp.mkdir()
            try:
                files: dict[str, str] = {}
                labels = []
                for k, t in enumerate(trials):
                    name = f"run-{k}.cho"
                    write_capture(t, tmp / name, sidecar=True)
                    files[name] = _sha256((tmp / name).read_bytes())
                    files[f"{name}.json"] = _sha256((tmp / f"{name}.json").read_bytes())
                    labels.append(t.label)
                if report is not None:
                    blob = json.dumps(
                        series_report_to_dict(report), sort_keys=True, indent=1
                    ) + "\n"
                    (tmp / "report.json").write_text(blob)
                    files["report.json"] = _sha256(blob.encode())
                meta = {
                    "schema": STORE_SCHEMA_VERSION,
                    "digest": digest,
                    "key": dict(key or {}),
                    "labels": labels,
                    "has_report": report is not None,
                    "files": files,
                }
                (tmp / "entry.json").write_text(
                    json.dumps(meta, sort_keys=True, indent=1) + "\n"
                )
                self._fsync_dir_contents(tmp)
                final = self.entry_dir(digest)
                final.parent.mkdir(parents=True, exist_ok=True)
                try:
                    os.replace(tmp, final)
                except OSError:
                    # The entry already exists.  If ours is strictly
                    # richer (we carry the analysis, the published entry
                    # is trials-only — the runner-write / sweep-upgrade
                    # shape), evict the old entry and publish; otherwise
                    # a concurrent writer beat us to identical content.
                    if report is not None and not self._has_report(final):
                        old = tmp_root / f"{digest}.old-{token}"
                        try:
                            os.replace(final, old)
                            os.replace(tmp, final)
                        except OSError:
                            self.stats.races += 1
                            metrics.counter("sweep.store.races").add()
                            return False
                        finally:
                            shutil.rmtree(old, ignore_errors=True)
                        self.stats.writes += 1
                        metrics.counter("sweep.store.writes").add()
                        return True
                    self.stats.races += 1
                    metrics.counter("sweep.store.races").add()
                    return False
                self.stats.writes += 1
                metrics.counter("sweep.store.writes").add()
                return True
            finally:
                shutil.rmtree(tmp, ignore_errors=True)

    @staticmethod
    def _has_report(entry_dir: Path) -> bool:
        """Whether a published entry already carries its analysis."""
        try:
            meta = json.loads((entry_dir / "entry.json").read_text())
            return bool(meta.get("has_report"))
        except (OSError, ValueError):
            return False  # damaged or half-gone: let the writer replace it

    @staticmethod
    def _fsync_dir_contents(d: Path) -> None:
        """Flush the staged payloads before publishing the rename."""
        try:
            for p in d.iterdir():
                fd = os.open(p, os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
        except OSError:  # pragma: no cover - fsync is best-effort
            pass

    # -- maintenance -------------------------------------------------------
    def entries(self) -> list[str]:
        """Digests currently published under the live schema version."""
        if not self._version_root.exists():
            return []
        return sorted(
            p.name
            for bucket in self._version_root.iterdir()
            if bucket.is_dir()
            for p in bucket.iterdir()
            if (p / "entry.json").exists()
        )
