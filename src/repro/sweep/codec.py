"""Exact JSON codecs for the artifact store's report payloads.

The store's contract is *bit-identity*: an analysis loaded from disk must
equal the analysis that was stored, down to the last float bit, so that a
swept (cached) run is indistinguishable from a cold run.  JSON can carry
that contract — Python serializes floats via ``repr``, the shortest
round-tripping decimal, and parses them back with correctly-rounded
``float()`` — as long as nothing on the way re-derives, truncates or
re-formats a value.  These codecs therefore copy every field verbatim:
no recomputation on decode, no ``default=`` fallbacks that would silently
stringify unexpected payloads (unknown types fail loudly instead).

Scope: :class:`~repro.core.kappa.MetricVector`,
:class:`~repro.core.ordering.MoveDistanceStats`,
:class:`~repro.core.histograms.DeltaHistogram` (bins config + integer
counts), :class:`~repro.core.report.PairReport` and
:class:`~repro.core.report.RunSeriesReport`.  Trials are **not** JSON —
they round-trip through the binary capture format
(:mod:`repro.analysis.capture`), which is already exact.

The decode side validates shape via a schema tag per document and the
dataclass constructors' own invariants (e.g. ``MetricVector`` rejects
non-finite components), so a corrupted report fails decoding rather than
producing a silently wrong κ — the store maps any decode failure to a
counted cache miss.
"""

from __future__ import annotations

import numpy as np

from ..core.histograms import DeltaHistogram, SymlogBins
from ..core.kappa import MetricVector
from ..core.ordering import MoveDistanceStats
from ..core.report import PairReport, RunSeriesReport

__all__ = [
    "series_report_to_dict",
    "series_report_from_dict",
    "pair_report_to_dict",
    "pair_report_from_dict",
]

#: Bump when the encoded shape changes; decoders reject other versions.
REPORT_CODEC_VERSION = 1


def _check_version(data: dict, context: str) -> None:
    v = data.get("codec")
    if v != REPORT_CODEC_VERSION:
        raise ValueError(
            f"{context}: unsupported codec version {v!r} "
            f"(expected {REPORT_CODEC_VERSION})"
        )


def _hist_to_dict(h: DeltaHistogram) -> dict:
    return {
        "bins": {
            "linthresh": h.bins.linthresh,
            "max_decade": h.bins.max_decade,
            "bins_per_decade": h.bins.bins_per_decade,
        },
        "counts": [int(c) for c in h.counts],
        "n_total": int(h.n_total),
        "label": h.label,
        "meta": dict(h.meta),
    }


def _hist_from_dict(data: dict, context: str) -> DeltaHistogram:
    bins = SymlogBins(**data["bins"])
    counts = np.asarray(data["counts"], dtype=np.int64)
    if counts.shape != (bins.edges().size - 1,):
        raise ValueError(f"{context}: histogram counts do not match bin layout")
    return DeltaHistogram(
        bins=bins,
        counts=counts,
        n_total=int(data["n_total"]),
        label=data["label"],
        meta=dict(data["meta"]),
    )


def _move_stats_to_dict(s: MoveDistanceStats) -> dict:
    return {
        "n_moved": s.n_moved,
        "mean": s.mean,
        "std": s.std,
        "abs_mean": s.abs_mean,
        "abs_std": s.abs_std,
        "min": s.min,
        "max": s.max,
    }


def pair_report_to_dict(p: PairReport) -> dict:
    """Encode one :class:`PairReport`, every float verbatim."""
    return {
        "codec": REPORT_CODEC_VERSION,
        "baseline_label": p.baseline_label,
        "run_label": p.run_label,
        "metrics": {"u": p.metrics.u, "o": p.metrics.o,
                    "l": p.metrics.l, "i": p.metrics.i},
        "n_baseline": p.n_baseline,
        "n_run": p.n_run,
        "n_common": p.n_common,
        "pct_iat_within_10ns": p.pct_iat_within_10ns,
        "move_stats": _move_stats_to_dict(p.move_stats),
        "iat_hist": _hist_to_dict(p.iat_hist),
        "latency_hist": _hist_to_dict(p.latency_hist),
        "meta": dict(p.meta),
    }


def pair_report_from_dict(data: dict) -> PairReport:
    """Decode :func:`pair_report_to_dict` output; fails loudly on drift."""
    _check_version(data, "pair report")
    m = data["metrics"]
    return PairReport(
        baseline_label=data["baseline_label"],
        run_label=data["run_label"],
        metrics=MetricVector(m["u"], m["o"], m["l"], m["i"]),
        n_baseline=int(data["n_baseline"]),
        n_run=int(data["n_run"]),
        n_common=int(data["n_common"]),
        pct_iat_within_10ns=data["pct_iat_within_10ns"],
        move_stats=MoveDistanceStats(**data["move_stats"]),
        iat_hist=_hist_from_dict(data["iat_hist"], "iat_hist"),
        latency_hist=_hist_from_dict(data["latency_hist"], "latency_hist"),
        meta=dict(data["meta"]),
    )


def series_report_to_dict(report: RunSeriesReport) -> dict:
    """Encode a whole :class:`RunSeriesReport` (the store's report payload)."""
    return {
        "codec": REPORT_CODEC_VERSION,
        "environment": report.environment,
        "baseline_label": report.baseline_label,
        "pairs": [pair_report_to_dict(p) for p in report.pairs],
    }


def series_report_from_dict(data: dict) -> RunSeriesReport:
    """Decode :func:`series_report_to_dict` output."""
    _check_version(data, "series report")
    return RunSeriesReport(
        environment=data["environment"],
        baseline_label=data["baseline_label"],
        pairs=tuple(pair_report_from_dict(p) for p in data["pairs"]),
    )
