"""Control plane: the out-of-band command channel and replay scheduling.

Section 4: "All middleboxes are joined out-of-band for inter-communication
and receiving user commands."  The control plane's job in the experiments
is sequencing — arm recordings, schedule replays at a common future
instant across replayers — and its only data-plane-relevant property is
*when* each node learns of a command.  Out-of-band commands pay a small
control-network latency; in-band commands (the evaluation's
resource-saving configuration, Section 5/6) ride the experimental path
and pay its latency instead.

The command layer runs on the discrete-event loop
(:class:`~repro.net.events.EventLoop`); the bulk packet work stays
vectorized inside the node models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..net.events import EventLoop

__all__ = ["ControlChannel", "CommandLog", "ChoirCommand", "CommandKind"]


class CommandKind(Enum):
    """The user commands Choir understands."""

    RECORD_START = "record-start"
    RECORD_STOP = "record-stop"
    REPLAY_AT = "replay-at"
    STANDBY = "standby"


@dataclass(frozen=True)
class ChoirCommand:
    """One user command addressed to a middlebox."""

    kind: CommandKind
    target: str
    issue_ns: float
    # REPLAY_AT carries the future start instant; record commands carry
    # their effective start/stop times.
    param_ns: float | None = None


@dataclass(frozen=True)
class ControlChannel:
    """Delivery model for commands.

    Parameters
    ----------
    in_band:
        True when control shares the experimental path (Section 6's
        evaluations); False for the dedicated control NIC.
    latency_ns:
        One-way command delivery latency.
    """

    in_band: bool = True
    latency_ns: float = 150_000.0  # TCP/SSH-scale delivery, 150 µs

    def __post_init__(self) -> None:
        if self.latency_ns < 0:
            raise ValueError("latency_ns must be non-negative")

    def delivery_time(self, issue_ns: float) -> float:
        """When a command issued at ``issue_ns`` reaches its target."""
        return issue_ns + self.latency_ns


@dataclass
class CommandLog:
    """Sequenced command delivery over an event loop.

    Drives delivery timing and keeps an auditable log; the per-node packet
    work is performed by the caller when it consumes :attr:`delivered`.
    """

    channel: ControlChannel
    loop: EventLoop = field(default_factory=EventLoop)
    delivered: list[ChoirCommand] = field(default_factory=list)

    def issue(self, command: ChoirCommand) -> None:
        """Issue a command; it is logged when the channel delivers it."""
        self.loop.schedule(
            self.channel.delivery_time(command.issue_ns),
            lambda _loop, c=command: self.delivered.append(c),
            label=f"{command.kind.value}->{command.target}",
        )

    def schedule_replay(
        self, targets: list[str], issue_ns: float, start_ns: float
    ) -> None:
        """Issue REPLAY_AT to several replayers for a common start instant.

        Raises if the start would land before any target learns of the
        command — the real tool would miss the epoch.
        """
        for t in targets:
            delivery = self.channel.delivery_time(issue_ns)
            if start_ns <= delivery:
                raise ValueError(
                    f"replay start {start_ns} ns precedes command delivery "
                    f"to {t!r} at {delivery} ns; schedule further ahead"
                )
            self.issue(
                ChoirCommand(CommandKind.REPLAY_AT, t, issue_ns, start_ns)
            )

    def run(self) -> list[ChoirCommand]:
        """Drain the loop; returns commands in delivery order."""
        self.loop.run()
        return list(self.delivered)
