"""Interactive-debugging primitives over recordings and captures.

Section 1 motivates Choir as "a foundation for more interactive debugging
primitives, such as breakpointing and backtracing".  This module builds
those two primitives on the data the middleboxes already hold:

* **breakpoints** — predicates over packet batches; a recording can be
  scanned for the first (or all) matching packets, and a watch can arm a
  capture to stop at the match (the record-until-event workflow);
* **backtraces** — given a packet tag, reconstruct its full journey:
  which replay node emitted it, in which doorbell burst and in-burst
  position, at what recorded transmit time, and when (or whether) the
  recorder saw it.  A packet recorded at a middlebox but absent from the
  capture is localized as lost *downstream* of that node — the evidence
  the paper's debugging story needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.trial import Trial
from ..net.pktarray import PacketArray
from .recording import Recording

__all__ = [
    "match_tags",
    "match_time_window",
    "match_size_at_least",
    "find_matches",
    "first_match",
    "NodeTrace",
    "Backtrace",
    "backtrace",
]

#: A breakpoint predicate: batch -> boolean mask over its packets.
PacketPredicate = Callable[[PacketArray], np.ndarray]


def match_tags(tags) -> PacketPredicate:
    """Break on specific packet identities."""
    wanted = np.asarray(tags, dtype=np.int64)

    def predicate(batch: PacketArray) -> np.ndarray:
        return np.isin(batch.tags, wanted)

    return predicate


def match_time_window(start_ns: float, end_ns: float) -> PacketPredicate:
    """Break on packets timestamped inside ``[start_ns, end_ns]``."""
    if end_ns < start_ns:
        raise ValueError("end_ns must be >= start_ns")

    def predicate(batch: PacketArray) -> np.ndarray:
        return (batch.times_ns >= start_ns) & (batch.times_ns <= end_ns)

    return predicate


def match_size_at_least(size_bytes: int) -> PacketPredicate:
    """Break on frames of at least ``size_bytes`` (e.g. jumbo detection)."""

    def predicate(batch: PacketArray) -> np.ndarray:
        return batch.sizes >= size_bytes

    return predicate


def find_matches(recording: Recording, predicate: PacketPredicate) -> np.ndarray:
    """All packet indices in a recording matching a breakpoint predicate."""
    mask = np.asarray(predicate(recording.packets), dtype=bool)
    if mask.shape[0] != len(recording):
        raise ValueError("predicate must return one boolean per packet")
    return np.flatnonzero(mask)


def first_match(recording: Recording, predicate: PacketPredicate) -> int | None:
    """Index of the first matching packet, or None (the breakpoint hit)."""
    idx = find_matches(recording, predicate)
    return int(idx[0]) if idx.size else None


@dataclass(frozen=True)
class NodeTrace:
    """One node's view of a packet."""

    node: str
    present: bool
    position: int | None = None
    burst_id: int | None = None
    offset_in_burst: int | None = None
    tx_time_ns: float | None = None


@dataclass(frozen=True)
class Backtrace:
    """A packet's reconstructed journey across the topology."""

    tag: int
    node_traces: tuple[NodeTrace, ...]
    received: bool
    rx_time_ns: float | None
    rx_position: int | None

    @property
    def emitted_by(self) -> str | None:
        """The replay node that carried the packet, if any."""
        for t in self.node_traces:
            if t.present:
                return t.node
        return None

    @property
    def lost_downstream_of(self) -> str | None:
        """Where the packet vanished: recorded at a node, absent at RX."""
        if self.received:
            return None
        return self.emitted_by

    def latency_ns(self) -> float | None:
        """Recorded-transmit to recorder-receive latency, when both exist.

        Note: meaningful only when the recording and the capture share a
        clock epoch (same-run analysis); cross-run backtraces should
        compare positions instead.
        """
        for t in self.node_traces:
            if t.present and t.tx_time_ns is not None and self.rx_time_ns is not None:
                return self.rx_time_ns - t.tx_time_ns
        return None

    def render(self) -> str:
        """Human-readable trace (the debugger's print form)."""
        lines = [f"backtrace for tag {self.tag:#x}:"]
        for t in self.node_traces:
            if not t.present:
                lines.append(f"  {t.node}: not seen")
                continue
            lines.append(
                f"  {t.node}: position {t.position}, burst {t.burst_id}"
                f" (+{t.offset_in_burst}), tx @ {t.tx_time_ns:.0f} ns"
            )
        if self.received:
            lines.append(
                f"  recorder: position {self.rx_position}, rx @ {self.rx_time_ns:.0f} ns"
            )
        else:
            origin = self.lost_downstream_of
            where = f"downstream of {origin}" if origin else "before any recording point"
            lines.append(f"  recorder: MISSING — lost {where}")
        return "\n".join(lines)


def backtrace(
    tag: int,
    capture: Trial,
    recordings: dict[str, Recording],
) -> Backtrace:
    """Reconstruct one packet's journey from node recordings and a capture.

    Parameters
    ----------
    tag:
        The packed Choir tag (see :mod:`repro.analysis.tagging`).
    capture:
        The recorder-side trial for the run under investigation.
    recordings:
        Node name → that node's armed :class:`Recording`.
    """
    traces = []
    for node, rec in recordings.items():
        pos = np.flatnonzero(rec.packets.tags == tag)
        if pos.size == 0:
            traces.append(NodeTrace(node=node, present=False))
            continue
        p = int(pos[0])
        burst = int(rec.burst_ids[p])
        first_of_burst = int(np.searchsorted(rec.burst_ids, burst, side="left"))
        traces.append(
            NodeTrace(
                node=node,
                present=True,
                position=p,
                burst_id=burst,
                offset_in_burst=p - first_of_burst,
                tx_time_ns=float(rec.packets.times_ns[p]),
            )
        )

    rx_pos = np.flatnonzero(capture.tags == tag)
    received = rx_pos.size > 0
    return Backtrace(
        tag=int(tag),
        node_traces=tuple(traces),
        received=received,
        rx_time_ns=float(capture.times_ns[rx_pos[0]]) if received else None,
        rx_position=int(rx_pos[0]) if received else None,
    )
