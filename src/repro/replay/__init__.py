"""The Choir application model: record/replay transparent middleboxes.

Structure mirrors Section 4-5 of the paper:

* :mod:`~repro.replay.burst` — forwarding-loop burstification (≤64 pkts);
* :mod:`~repro.replay.recording` — in-memory recordings with TSC stamps;
* :mod:`~repro.replay.middlebox` — the transparent forward/record path;
* :mod:`~repro.replay.replayer` — TSC busy-poll replay scheduling;
* :mod:`~repro.replay.control` — out-of-band/in-band command sequencing;
* :mod:`~repro.replay.choir` — the per-node lifecycle facade.
"""

from .burst import (
    MAX_BURST,
    PollLoopCost,
    burst_bounds,
    burstify_fixed,
    burstify_poll_loop,
)
from .choir import ChoirNode, ChoirState
from .control import ChoirCommand, CommandKind, CommandLog, ControlChannel
from .debug import (
    Backtrace,
    NodeTrace,
    backtrace,
    find_matches,
    first_match,
    match_size_at_least,
    match_tags,
    match_time_window,
)
from .middlebox import ForwardResult, TransparentMiddlebox
from .recording import MBUF_BYTES, MIN_BUFFER_BYTES, Recording
from .replayer import Replayer, ReplayOutcome, ReplayTimingModel
from .from_capture import recording_from_trial
from .session import ReplaySession

__all__ = [
    "MAX_BURST",
    "PollLoopCost",
    "burstify_poll_loop",
    "burstify_fixed",
    "burst_bounds",
    "Recording",
    "MBUF_BYTES",
    "MIN_BUFFER_BYTES",
    "TransparentMiddlebox",
    "ForwardResult",
    "Replayer",
    "ReplayOutcome",
    "ReplayTimingModel",
    "ControlChannel",
    "CommandLog",
    "ChoirCommand",
    "CommandKind",
    "ChoirNode",
    "ChoirState",
    "backtrace",
    "Backtrace",
    "NodeTrace",
    "find_matches",
    "first_match",
    "match_tags",
    "match_time_window",
    "match_size_at_least",
    "ReplaySession",
    "recording_from_trial",
]
