"""In-memory replay recordings.

Section 4: "A recording is made by holding forwarded packets in memory
after their transmission without making a copy. ... the recording also
stores the time of transmission through reading the Time Stamp Counter."

A :class:`Recording` therefore stores, per packet, the frame (tag + size —
the simulator never materializes payloads) and its doorbell burst, and per
burst, the TSC read taken at transmission.  The RAM budget is the only
capacity limit (Section 5): each held packet pins one mbuf, so a recording
is truncated — not spilled to disk — when the buffer fills.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..net.pktarray import PacketArray
from ..timing.tsc import TSC
from .burst import burst_bounds

__all__ = ["Recording", "MBUF_BYTES", "MIN_BUFFER_BYTES"]

#: DPDK default mbuf size (2 KiB data room + headroom/metadata).
MBUF_BYTES = 2048 + 128
#: Section 5: "the program can run with a minimum of 1 GB".
MIN_BUFFER_BYTES = 1 << 30


@dataclass(frozen=True)
class Recording:
    """A captured burst sequence ready for replay.

    Attributes
    ----------
    packets:
        The recorded frames; ``times_ns`` holds each packet's original
        transmission time on the recording node's clock (diagnostic — the
        replayer schedules off the per-burst TSC stamps, like the real
        tool).
    burst_ids:
        Per-packet doorbell burst index, non-decreasing.
    burst_tsc:
        Per-burst TSC cycle stamp taken at the original transmission.
    tsc:
        The TSC model the stamps were read from; replay needs its
        frequency to convert the schedule delta.
    truncated:
        True when the RAM budget cut the recording short.
    """

    packets: PacketArray
    burst_ids: np.ndarray
    burst_tsc: np.ndarray
    tsc: TSC
    truncated: bool = False
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        bids = np.ascontiguousarray(self.burst_ids, dtype=np.int64)
        btsc = np.ascontiguousarray(self.burst_tsc, dtype=np.int64)
        if bids.shape[0] != len(self.packets):
            raise ValueError("burst_ids must have one entry per packet")
        if bids.size and np.any(np.diff(bids) < 0):
            raise ValueError("burst_ids must be non-decreasing")
        n_bursts = int(np.unique(bids).shape[0]) if bids.size else 0
        if btsc.shape[0] != n_bursts:
            raise ValueError(
                f"burst_tsc has {btsc.shape[0]} stamps for {n_bursts} bursts"
            )
        if btsc.size and np.any(np.diff(btsc) < 0):
            raise ValueError("burst TSC stamps must be non-decreasing")
        object.__setattr__(self, "burst_ids", bids)
        object.__setattr__(self, "burst_tsc", btsc)

    def __len__(self) -> int:
        return len(self.packets)

    @property
    def n_bursts(self) -> int:
        """Number of recorded doorbell bursts."""
        return int(self.burst_tsc.shape[0])

    @property
    def memory_bytes(self) -> int:
        """RAM pinned by the recording (one mbuf per held packet)."""
        return len(self) * MBUF_BYTES

    @property
    def duration_ns(self) -> float:
        """Span of the recording on the recorder's TSC, in nanoseconds."""
        if self.n_bursts < 2:
            return 0.0
        return float(
            self.tsc.cycles_to_ns(self.burst_tsc[-1] - self.burst_tsc[0])
        )

    def burst_sizes(self) -> np.ndarray:
        """Packets per burst."""
        starts, ends = burst_bounds(self.burst_ids)
        return (ends - starts).astype(np.int64)

    def relative_burst_times_ns(self) -> np.ndarray:
        """Per-burst transmit time relative to the first burst, in ns.

        This is the replay schedule: burst *k* should be handed to the NIC
        ``relative_burst_times_ns()[k]`` after the replay's start.
        """
        if self.n_bursts == 0:
            return np.empty(0, dtype=np.float64)
        return np.asarray(
            self.tsc.cycles_to_ns(self.burst_tsc - self.burst_tsc[0]),
            dtype=np.float64,
        )

    @classmethod
    def capture_rolling(
        cls,
        packets: PacketArray,
        burst_ids: np.ndarray,
        tx_times_ns: np.ndarray,
        tsc: TSC,
        buffer_bytes: int = MIN_BUFFER_BYTES,
        meta: dict | None = None,
    ) -> "Recording":
        """Ring-buffer capture: keep the *most recent* bufferful.

        Section 4 marks this as future work ("future work can add
        recording in a rolling manner"); it is the mode a debugging
        deployment wants — stand by indefinitely, and on an incident keep
        the traffic leading up to it.  Semantics mirror :meth:`capture`
        but the truncation discards the *head* (oldest bursts) instead of
        the tail, again on a burst boundary.
        """
        if buffer_bytes < MIN_BUFFER_BYTES:
            raise ValueError(
                f"Choir requires at least {MIN_BUFFER_BYTES} bytes of buffer "
                f"(got {buffer_bytes})"
            )
        capacity = buffer_bytes // MBUF_BYTES
        n = len(packets)
        truncated = n > capacity
        if truncated:
            bids = np.asarray(burst_ids)
            cut = n - int(capacity)  # first index kept
            while cut < n and bids[cut - 1] == bids[cut]:
                cut += 1  # advance to the next burst boundary
            packets = packets.select(slice(cut, None))
            burst_ids = bids[cut:] - bids[cut]  # renumber from 0
            tx_times_ns = np.asarray(tx_times_ns)[cut:]
        rec = cls.capture(
            packets, burst_ids, tx_times_ns, tsc,
            buffer_bytes=buffer_bytes, meta=meta,
        )
        if truncated:
            rec = replace(rec, truncated=True)
        return rec

    @classmethod
    def capture(
        cls,
        packets: PacketArray,
        burst_ids: np.ndarray,
        tx_times_ns: np.ndarray,
        tsc: TSC,
        buffer_bytes: int = MIN_BUFFER_BYTES,
        meta: dict | None = None,
    ) -> "Recording":
        """Build a recording from a transmission, honoring the RAM budget.

        ``tx_times_ns`` is the per-packet software transmit time; the TSC
        stamp of a burst is the read taken when its doorbell rang (the last
        packet's enqueue time).
        """
        if buffer_bytes < MIN_BUFFER_BYTES:
            raise ValueError(
                f"Choir requires at least {MIN_BUFFER_BYTES} bytes of buffer "
                f"(got {buffer_bytes})"
            )
        capacity = buffer_bytes // MBUF_BYTES
        truncated = len(packets) > capacity
        if truncated:
            # Cut on a burst boundary: a burst is recorded atomically.
            bids = np.asarray(burst_ids)
            cut = int(capacity)
            while 0 < cut < len(bids) and bids[cut - 1] == bids[cut]:
                cut -= 1
            packets = packets.select(slice(0, cut))
            burst_ids = bids[:cut]
            tx_times_ns = np.asarray(tx_times_ns)[:cut]

        bids = np.asarray(burst_ids, dtype=np.int64)
        starts, ends = burst_bounds(bids)
        doorbell_times = np.asarray(tx_times_ns, dtype=np.float64)[ends - 1]
        burst_tsc = np.asarray(tsc.read(doorbell_times), dtype=np.int64)
        # A later doorbell can never carry an earlier stamp; integer TSC
        # quantization of near-simultaneous doorbells could tie.
        burst_tsc = np.maximum.accumulate(burst_tsc)
        return cls(
            packets=packets,
            burst_ids=bids,
            burst_tsc=burst_tsc,
            tsc=tsc,
            truncated=truncated,
            meta=dict(meta or {}),
        )
