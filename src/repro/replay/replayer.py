"""The replay engine: TSC busy-poll scheduling of recorded bursts.

Section 4's replay loop: the user command names a future start time; the
replayer converts it to a TSC delta using the CPU frequency; the loop then
spins on TSC reads, handing each recorded burst to the NIC once the read
passes the burst's stored stamp plus the delta.

The model reproduces each accuracy-limiting mechanism the paper names or
that shared infrastructure adds:

* **start latency** — command dispatch, ARM→RUN transition and loop
  warm-up put the actual epoch a little after the scheduled instant; the
  *relative* start latency between two replayers is what reorders the
  dual-replayer merge (Section 6.2);
* **frequency error** — the wall-clock→cycles conversion uses a measured
  CPU frequency; its per-run error stretches the whole schedule linearly,
  producing the slowly-growing latency deltas of Figure 4b;
* **poll granularity** — the loop notices the TSC passed a target only at
  its next read, adding a sub-iteration overshoot per burst;
* **scheduler stalls** — on shared/virtualized hosts the vCPU is
  occasionally preempted mid-spin, displacing whole bursts by
  microseconds (the FABRIC IAT tails);
* **loop serialization** — a late burst delays its successors through the
  burst-processing cost, the same FIFO recurrence as everywhere else;
* **NIC DMA pull** — the Section 2.3 transmit delay, via
  :class:`~repro.net.nicmodel.TxNicModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..net.nicmodel import TxNicModel
from ..net.pktarray import PacketArray
from ..net.queueing import fifo_departures
from .burst import PollLoopCost
from .recording import Recording

__all__ = ["ReplayTimingModel", "ReplayOutcome", "Replayer"]


@dataclass(frozen=True)
class ReplayTimingModel:
    """Per-environment replay timing imperfections.

    Parameters
    ----------
    poll_granularity_ns:
        Worst-case overshoot of one busy-poll iteration (uniform draw).
    stall_prob:
        Probability any given burst's spin is hit by a scheduler stall.
    stall_scale_ns:
        Mean of the (exponential) stall duration.
    freq_error_ppm:
        Std of the per-run CPU-frequency calibration error.
    start_latency_median_ns:
        Median of the (lognormal) start latency after the scheduled epoch.
    start_latency_sigma:
        Lognormal sigma of the start latency.
    """

    poll_granularity_ns: float = 40.0
    stall_prob: float = 0.0
    stall_scale_ns: float = 0.0
    freq_error_ppm: float = 1.5
    start_latency_median_ns: float = 200_000.0
    start_latency_sigma: float = 0.6

    def __post_init__(self) -> None:
        if self.poll_granularity_ns < 0:
            raise ValueError("poll_granularity_ns must be non-negative")
        if not 0.0 <= self.stall_prob <= 1.0:
            raise ValueError("stall_prob must lie in [0, 1]")
        if self.stall_scale_ns < 0 or self.freq_error_ppm < 0:
            raise ValueError("noise scales must be non-negative")
        if self.start_latency_median_ns < 0 or self.start_latency_sigma < 0:
            raise ValueError("start latency parameters must be non-negative")


@dataclass(frozen=True)
class ReplayOutcome:
    """A completed replay: wire-time batch plus per-run diagnostics."""

    egress: PacketArray
    achieved_start_ns: float
    freq_error_ppm: float
    n_stalls: int

    def __len__(self) -> int:
        return len(self.egress)


@dataclass(frozen=True)
class Replayer:
    """A Choir node in replay mode."""

    tx_nic: TxNicModel
    loop_cost: PollLoopCost = field(default_factory=PollLoopCost)
    timing: ReplayTimingModel = field(default_factory=ReplayTimingModel)

    def replay(
        self,
        recording: Recording,
        scheduled_start_ns: float,
        rng: np.random.Generator,
    ) -> ReplayOutcome:
        """Replay a recording scheduled to begin at ``scheduled_start_ns``.

        All returned times are true simulation time; the per-run clock and
        frequency imperfections are drawn from ``rng`` inside.
        """
        n_bursts = recording.n_bursts
        if n_bursts == 0:
            return ReplayOutcome(
                recording.packets, float(scheduled_start_ns), 0.0, 0
            )
        t = self.timing

        start_latency = (
            t.start_latency_median_ns
            * rng.lognormal(0.0, t.start_latency_sigma)
            if t.start_latency_median_ns > 0
            else 0.0
        )
        epoch = float(scheduled_start_ns) + start_latency

        freq_error_ppm = float(rng.normal(0.0, t.freq_error_ppm))
        stretch = 1.0 + freq_error_ppm * 1e-6

        rel = recording.relative_burst_times_ns()
        targets = epoch + rel * stretch

        overshoot = rng.uniform(0.0, t.poll_granularity_ns, n_bursts)
        n_stalls = 0
        if t.stall_prob > 0 and t.stall_scale_ns > 0:
            stalled = rng.random(n_bursts) < t.stall_prob
            # The first burst fires with the vCPU freshly scheduled (it just
            # processed the arm command and has been spinning on the TSC),
            # so it is not a preemption candidate.  This matters to the L
            # metric: the first packet anchors every relative latency.
            stalled[0] = False
            n_stalls = int(np.count_nonzero(stalled))
            if n_stalls:
                overshoot[stalled] += rng.exponential(
                    t.stall_scale_ns, n_stalls
                )
        ready = targets + overshoot

        # The loop is a single thread: a late burst pushes its successors
        # through the burst-processing cost (the usual FIFO recurrence).
        burst_sizes = recording.burst_sizes()
        cost = (
            self.loop_cost.iteration_ns
            + self.loop_cost.per_packet_ns * burst_sizes
        )
        done = fifo_departures(ready, cost)
        notify_per_burst = done  # doorbell rings when the burst is enqueued

        burst_index = np.repeat(
            np.arange(n_bursts), burst_sizes.astype(np.intp)
        )
        notify = notify_per_burst[burst_index]

        tx = self.tx_nic.transmit(
            notify, recording.packets.sizes, recording.burst_ids, rng
        )
        egress = recording.packets.with_times(tx.wire_times_ns)
        return ReplayOutcome(egress, epoch, freq_error_ppm, n_stalls)

    def sustainable_pps(self, mean_burst_size: float) -> float:
        """Loop-limited packet rate for a given mean burst size.

        The replay loop spends ``iteration + per_packet*burst`` per burst;
        larger bursts amortize the fixed cost — the Section 5 rationale for
        64-packet bursts ("larger bursts help to achieve line-rate
        performance using fewer hardware resources").
        """
        if mean_burst_size <= 0:
            raise ValueError("mean_burst_size must be positive")
        per_burst = self.loop_cost.iteration_ns + (
            self.loop_cost.per_packet_ns * mean_burst_size
        )
        return mean_burst_size / (per_burst * 1e-9)
