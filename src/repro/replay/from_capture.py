"""Build replayable recordings from external captures.

Choir records its own forwarded traffic; a downstream user often has a
*capture* instead (a pcap from production, a trace from another tool) and
wants to ask "how consistently would testbed X replay this?".  This
module bridges the two: it reconstructs a :class:`Recording` from any
:class:`~repro.core.trial.Trial`, re-deriving the burst structure either
from the wire gaps (a capture of DPDK traffic shows its bursts) or by
simulating the forwarding loop's pickup pattern over the capture's
timestamps.

The reconstructed recording replays through the standard
:class:`~repro.replay.replayer.Replayer` / testbed machinery unchanged.
"""

from __future__ import annotations

import numpy as np

from ..analysis.tracestats import detect_bursts
from ..core.trial import Trial
from ..net.pktarray import PacketArray
from ..replay.burst import PollLoopCost, burstify_poll_loop
from ..timing.tsc import TSC
from .recording import MIN_BUFFER_BYTES, Recording

__all__ = ["recording_from_trial"]


def recording_from_trial(
    trial: Trial,
    *,
    packet_bytes: int = 1400,
    sizes: np.ndarray | None = None,
    tsc: TSC | None = None,
    burst_mode: str = "gaps",
    gap_threshold_ns: float | None = None,
    loop_cost: PollLoopCost | None = None,
    buffer_bytes: int = MIN_BUFFER_BYTES,
) -> Recording:
    """Reconstruct a replayable recording from a capture.

    Parameters
    ----------
    trial:
        The capture (tags + receive timestamps).
    packet_bytes / sizes:
        Frame sizes: a scalar for fixed-size traffic or a per-packet array
        (captures exported by :mod:`repro.analysis.pcap` are fixed-size;
        real pcaps carry sizes the caller can pass through).
    tsc:
        The TSC model to stamp bursts with (defaults to a stock counter).
    burst_mode:
        ``"gaps"`` recovers bursts from wire spacing via
        :func:`~repro.analysis.tracestats.detect_bursts` — right when the
        capture *is* burst-structured traffic.  ``"loop"`` simulates the
        forwarding loop's pickup over the capture timestamps — right when
        the capture is smooth traffic that a Choir middlebox would
        burstify on ingest.
    gap_threshold_ns:
        Burst-detection threshold for ``"gaps"`` (default: 3x median gap).
    loop_cost:
        Loop model for ``"loop"`` mode.
    buffer_bytes:
        Replay buffer budget; long captures truncate like real recordings.
    """
    if trial.is_empty:
        raise ValueError("cannot build a recording from an empty capture")

    if sizes is None:
        sizes = np.full(len(trial), packet_bytes, dtype=np.int64)
    else:
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.shape[0] != len(trial):
            raise ValueError("sizes must have one entry per packet")

    if burst_mode == "gaps":
        if gap_threshold_ns is None:
            gaps = trial.iats_ns()[1:]
            med = float(np.median(gaps)) if gaps.size else 1.0
            gap_threshold_ns = max(3.0 * med, 1.0)
        burst_ids = detect_bursts(trial, gap_threshold_ns)
    elif burst_mode == "loop":
        burst_ids = burstify_poll_loop(
            trial.times_ns, loop_cost if loop_cost is not None else PollLoopCost()
        )
    else:
        raise ValueError(f"burst_mode must be 'gaps' or 'loop', got {burst_mode!r}")

    packets = PacketArray(
        trial.tags, sizes, trial.times_ns, meta={"source": "capture", **trial.meta}
    )
    return Recording.capture(
        packets,
        burst_ids,
        trial.times_ns,
        tsc if tsc is not None else TSC(),
        buffer_bytes=buffer_bytes,
        meta={"from_capture": trial.label or True},
    )
