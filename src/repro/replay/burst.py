"""Burstification: how a forwarding loop groups packets into bursts.

A DPDK forwarding loop alternates ``rx_burst`` → process → ``tx_burst``;
every packet that arrived while the loop was busy with the previous burst
is picked up together, up to the 64-packet burst limit Choir uses
(Section 5).  Burst boundaries are therefore a function of the arrival
process and the loop's per-iteration cost — and they matter enormously
downstream: packets inside one burst leave back-to-back (highly repeatable
IATs), while inter-burst gaps absorb all the scheduling jitter.  The
paper's "majority within 10 ns" IAT clusters are exactly the intra-burst
packets.

:func:`burstify_poll_loop` reproduces the loop's grouping: given arrival
times and a loop-cost model, it assigns each packet a burst id.  The loop
is sequential by nature (the next poll time depends on the previous
burst's size), but it iterates per *burst*, not per packet, so even a
million-packet trial only loops tens of thousands of times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PollLoopCost", "burstify_poll_loop", "burstify_fixed", "burst_bounds"]

#: Choir's compiled-in burst ceiling (Section 5).
MAX_BURST = 64


@dataclass(frozen=True)
class PollLoopCost:
    """Per-iteration cost model of the forwarding loop.

    ``iteration_ns`` is the fixed poll overhead (ring doorbells, TSC read,
    branch); ``per_packet_ns`` the marginal cost of handling one packet
    (prefetch, record bookkeeping, tx enqueue).
    """

    iteration_ns: float = 250.0
    per_packet_ns: float = 55.0

    def __post_init__(self) -> None:
        if self.iteration_ns <= 0:
            raise ValueError("iteration_ns must be positive")
        if self.per_packet_ns < 0:
            raise ValueError("per_packet_ns must be non-negative")

    def burst_cost_ns(self, n_packets: int) -> float:
        """Wall time one loop iteration spends on an ``n_packets`` burst."""
        return self.iteration_ns + self.per_packet_ns * n_packets


def burstify_poll_loop(
    arrival_ns: np.ndarray,
    cost: PollLoopCost | None = None,
    max_burst: int = MAX_BURST,
) -> np.ndarray:
    """Assign burst ids by simulating the poll loop's pickup pattern.

    The loop polls; every packet already waiting (arrival ≤ poll time) is
    taken, capped at ``max_burst``; the next poll happens after the burst's
    processing cost.  When the queue is empty the loop spins at the
    iteration cost until the next arrival.

    Returns an int64 array of non-decreasing burst ids, one per packet.
    """
    cost = cost if cost is not None else PollLoopCost()
    if max_burst < 1:
        raise ValueError("max_burst must be >= 1")
    t = np.asarray(arrival_ns, dtype=np.float64)
    n = t.shape[0]
    ids = np.empty(n, dtype=np.int64)
    if n == 0:
        return ids
    if np.any(np.diff(t) < 0):
        raise ValueError("arrival times must be non-decreasing")

    burst = 0
    i = 0
    # Poll time starts at the first arrival (the loop was idle-spinning).
    poll = float(t[0]) + cost.iteration_ns
    while i < n:
        if t[i] > poll:
            # Idle: loop spins; next poll lands one iteration after the
            # arrival-containing spin tick.  The sub-iteration phase is
            # deterministic here; scheduling noise is injected later by the
            # replayer model, not by burstification.
            spins = np.ceil((t[i] - poll) / cost.iteration_ns)
            poll = poll + spins * cost.iteration_ns
        # Take everything waiting, up to the cap.
        j = int(np.searchsorted(t, poll, side="right"))
        j = min(j, i + max_burst)
        ids[i:j] = burst
        burst += 1
        poll += cost.burst_cost_ns(j - i)
        i = j
    return ids


def burstify_fixed(n_packets: int, burst_size: int) -> np.ndarray:
    """Fixed-size burst ids (ablation baseline; real loops never do this)."""
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    return np.arange(n_packets, dtype=np.int64) // burst_size


def burst_bounds(burst_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(start, end) packet index of each burst; ids must be non-decreasing."""
    ids = np.asarray(burst_ids)
    if ids.shape[0] == 0:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
    change = np.flatnonzero(np.diff(ids)) + 1
    starts = np.concatenate([[0], change])
    ends = np.concatenate([change, [ids.shape[0]]])
    return starts.astype(np.intp), ends.astype(np.intp)
