"""Scripted experiment sessions: the control plane driving real nodes.

:class:`~repro.replay.control.CommandLog` sequences command delivery;
this module closes the loop by executing the delivered commands against
:class:`~repro.replay.choir.ChoirNode` instances — the programmatic
equivalent of the artifact notebook's "execute commands that will record
and run replays" step, with the paper's operational constraints enforced:

* a replay must be scheduled far enough ahead that every replayer learns
  of it before the epoch (otherwise the tool misses the start);
* all replayers of one run share a single scheduled epoch (the Figure-1
  synchronization model) — each node still starts per *its own clock*;
* commands are only executed once the channel delivers them, so an
  out-of-band channel's latency is visible in the session timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..net.pktarray import PacketArray
from .choir import ChoirNode
from .control import ChoirCommand, CommandKind, CommandLog, ControlChannel
from .replayer import ReplayOutcome

__all__ = ["ReplaySession"]


@dataclass
class ReplaySession:
    """One operator session over a set of Choir nodes.

    Parameters
    ----------
    nodes:
        The replay nodes, in substream order.
    channel:
        Command-delivery model (in-band by default, as the evaluations).
    rng:
        Randomness source shared with the nodes' packet operations.
    """

    nodes: list[ChoirNode]
    rng: np.random.Generator
    channel: ControlChannel = field(default_factory=ControlChannel)
    log: CommandLog = field(init=False)
    now_ns: float = 0.0

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a session needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        self.log = CommandLog(channel=self.channel)
        self._by_name = {n.name: n for n in self.nodes}

    # ------------------------------------------------------------------
    def record_all(self, substreams: list[PacketArray]) -> None:
        """Issue record commands and capture one substream per node."""
        if len(substreams) != len(self.nodes):
            raise ValueError(
                f"{len(self.nodes)} nodes need {len(self.nodes)} substreams, "
                f"got {len(substreams)}"
            )
        for node, stream in zip(self.nodes, substreams):
            self.log.issue(
                ChoirCommand(CommandKind.RECORD_START, node.name, self.now_ns)
            )
            node.record(stream, self.rng)
            stop_at = self.now_ns + (
                float(stream.times_ns[-1] - stream.times_ns[0]) if len(stream) else 0.0
            )
            self.log.issue(
                ChoirCommand(CommandKind.RECORD_STOP, node.name, stop_at)
            )
            self.now_ns = max(self.now_ns, stop_at)

    def replay_all(self, start_ns: float) -> list[ReplayOutcome]:
        """Schedule one replay epoch across every node and execute it.

        Raises (via the command log) when ``start_ns`` precedes command
        delivery to any node — the session refuses to schedule a replay
        the tool would miss.
        """
        self.log.schedule_replay(
            [n.name for n in self.nodes], issue_ns=self.now_ns, start_ns=start_ns
        )
        delivered = self.log.run()
        outcomes = []
        for cmd in delivered:
            if cmd.kind is not CommandKind.REPLAY_AT:
                continue
            if cmd.param_ns != start_ns:
                continue  # an epoch from a previous replay_all
            node = self._by_name[cmd.target]
            outcomes.append(node.replay(cmd.param_ns, self.rng))
        self.now_ns = max(
            [self.now_ns]
            + [float(o.egress.times_ns[-1]) for o in outcomes if len(o)]
        )
        return outcomes

    def standby_all(self) -> None:
        """Drop every node back to transparent standby."""
        for node in self.nodes:
            self.log.issue(ChoirCommand(CommandKind.STANDBY, node.name, self.now_ns))
        self.log.run()  # deliver before acting, like every other command
        for node in self.nodes:
            node.standby()

    @property
    def command_history(self) -> list[ChoirCommand]:
        """Commands delivered so far, in delivery order."""
        return list(self.log.delivered)
