"""The Choir node facade: standby → record → replay lifecycle.

Ties the middlebox (forward/record path), the replay engine, and the
node's clock together behind the lifecycle the paper describes: a node
idles as an invisible transparent forwarder, records on command without
leaving the datapath, and later replays the recording at a scheduled
instant.  One :class:`ChoirNode` corresponds to one replayer VM/host in
the evaluation topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from ..net.nicmodel import TxNicModel
from ..net.pktarray import PacketArray
from ..timing.clock import SystemClock
from ..timing.tsc import TSC
from .burst import PollLoopCost
from .middlebox import TransparentMiddlebox
from .recording import MIN_BUFFER_BYTES, Recording
from .replayer import Replayer, ReplayOutcome, ReplayTimingModel

__all__ = ["ChoirNode", "ChoirState"]


class ChoirState(Enum):
    """Lifecycle states of a Choir middlebox."""

    STANDBY = "standby"
    RECORDING = "recording"
    ARMED = "armed"
    REPLAYING = "replaying"


@dataclass
class ChoirNode:
    """One Choir instance: a transparent middlebox that can record & replay.

    Parameters
    ----------
    name:
        Node name in the topology.
    tx_nic:
        Egress NIC model (one of the two bridged interfaces).
    loop_cost:
        Forwarding/replay loop cost model.
    timing:
        Replay-scheduling imperfection model for this node's environment.
    tsc / clock:
        The node's time sources.
    buffer_bytes:
        Replay buffer budget (Section 5: ≥ 1 GB).
    """

    name: str
    tx_nic: TxNicModel
    loop_cost: PollLoopCost = field(default_factory=PollLoopCost)
    #: The replay loop does strictly less work than the forwarding/record
    #: loop (no RX polling, no record bookkeeping — a TSC spin and a TX
    #: enqueue), so it runs well under the recorded inter-burst spacing;
    #: this headroom is what lets the replay track the recorded schedule.
    replay_loop_cost: PollLoopCost | None = None
    timing: ReplayTimingModel = field(default_factory=ReplayTimingModel)
    tsc: TSC = field(default_factory=TSC)
    clock: SystemClock = field(default_factory=SystemClock)
    buffer_bytes: int = MIN_BUFFER_BYTES
    state: ChoirState = ChoirState.STANDBY
    recording: Recording | None = None

    def __post_init__(self) -> None:
        self._middlebox = TransparentMiddlebox(
            tx_nic=self.tx_nic,
            tsc=self.tsc,
            loop_cost=self.loop_cost,
            buffer_bytes=self.buffer_bytes,
        )
        if self.replay_loop_cost is None:
            # A tuned replay loop: a TSC read, a compare, a tx_burst post.
            # Cheap enough to track 100 Gbps recordings even when the
            # arrival process produced small bursts.
            self.replay_loop_cost = PollLoopCost(iteration_ns=150.0, per_packet_ns=12.0)
        self._replayer = Replayer(
            tx_nic=self.tx_nic, loop_cost=self.replay_loop_cost, timing=self.timing
        )

    # ------------------------------------------------------------------
    def forward(self, ingress: PacketArray, rng: np.random.Generator) -> PacketArray:
        """Standby-mode transparent forwarding (no recording)."""
        return self._middlebox.forward(ingress, rng, record=False).egress

    def record(
        self, ingress: PacketArray, rng: np.random.Generator
    ) -> tuple[PacketArray, Recording]:
        """Forward *and* record an ingress stream; stores the recording.

        The node remains transparent while recording (Section 4); the
        egress stream is identical in timing to plain forwarding.
        """
        self.state = ChoirState.RECORDING
        result = self._middlebox.forward(
            ingress, rng, record=True, meta={"node": self.name}
        )
        assert result.recording is not None
        self.recording = result.recording
        self.state = ChoirState.ARMED
        return result.egress, result.recording

    def replay(
        self, scheduled_start_ns: float, rng: np.random.Generator
    ) -> ReplayOutcome:
        """Replay the stored recording at a scheduled instant.

        The scheduled instant is interpreted on the node's *own clock*:
        clock offset (e.g. the PTP residual of this sync epoch) shifts the
        achieved start in true time, which is the cross-replayer
        synchronization mechanism the dual-replayer evaluation exercises.
        """
        if self.recording is None:
            raise RuntimeError(f"{self.name}: no recording armed for replay")
        self.state = ChoirState.REPLAYING
        # The node starts when its own clock shows the scheduled value; a
        # clock running offset_ns fast reaches it offset_ns early.
        true_start = float(scheduled_start_ns) - self.clock.offset_ns
        outcome = self._replayer.replay(self.recording, true_start, rng)
        self.state = ChoirState.ARMED
        return outcome

    def standby(self) -> None:
        """Drop back to invisible standby (keeps the recording armed)."""
        self.state = ChoirState.STANDBY

    @property
    def sustainable_pps_at_full_burst(self) -> float:
        """Loop throughput ceiling at the 64-packet burst size."""
        return self._replayer.sustainable_pps(64.0)
