"""The transparent middlebox: Choir's standby/record forwarding path.

Section 4: middleboxes sit on links between nodes and "forward traffic,
unmodified, at line rate"; at the user's instruction they record the
forwarded bursts (without copying) together with per-burst TSC stamps.

The forwarding model composes the substrate pieces:

1. ingress frames arrive on the wire (the feeding link already serialized
   them);
2. the poll loop groups waiting frames into ≤64-packet bursts
   (:mod:`repro.replay.burst`);
3. each burst is re-enqueued to the TX NIC one loop-iteration after its
   last frame arrived (the processing cost), and the TSC is read at the
   doorbell — that read becomes the recording's timestamp;
4. the TX NIC's DMA pull puts the burst on the wire
   (:class:`~repro.net.nicmodel.TxNicModel`).

The evaluation tags packets at the replayer (Section 6: "the packets were
stamped with unique 16-byte tags in the replayer"); tagging is the
caller's job via :func:`repro.net.pktarray.make_tags` so the middlebox
stays payload-transparent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..net.nicmodel import TxNicModel
from ..net.pktarray import PacketArray
from ..net.queueing import fifo_departures
from ..timing.tsc import TSC
from .burst import PollLoopCost, burst_bounds, burstify_poll_loop
from .recording import MIN_BUFFER_BYTES, Recording

__all__ = ["TransparentMiddlebox", "ForwardResult"]


@dataclass(frozen=True)
class ForwardResult:
    """Output of one forwarding pass."""

    egress: PacketArray
    recording: Recording | None


@dataclass(frozen=True)
class TransparentMiddlebox:
    """A Choir node in standby/record mode.

    Parameters
    ----------
    tx_nic:
        The bridged egress NIC model.
    tsc:
        The node's time stamp counter.
    loop_cost:
        Forwarding-loop cost model driving burstification.
    buffer_bytes:
        Replay buffer RAM budget (recording capacity).
    """

    tx_nic: TxNicModel
    tsc: TSC = field(default_factory=TSC)
    loop_cost: PollLoopCost = field(default_factory=PollLoopCost)
    buffer_bytes: int = MIN_BUFFER_BYTES

    def forward(
        self,
        ingress: PacketArray,
        rng: np.random.Generator,
        *,
        record: bool = False,
        meta: dict | None = None,
    ) -> ForwardResult:
        """Forward an ingress stream; optionally record it for replay.

        Returns the egress wire-time batch and, when recording, the
        :class:`Recording` whose TSC stamps reflect the actual doorbell
        times of this forwarding pass.
        """
        if len(ingress) == 0:
            return ForwardResult(ingress, None)

        burst_ids = burstify_poll_loop(ingress.times_ns, self.loop_cost)
        starts, ends = burst_bounds(burst_ids)
        # A burst's doorbell rings one processing interval after its last
        # frame was picked up.
        sizes_per_burst = (ends - starts).astype(np.int64)
        # A burst's doorbell rings after its processing cost, and the
        # single-threaded loop serializes bursts — the FIFO recurrence.
        cost = (
            self.loop_cost.iteration_ns
            + self.loop_cost.per_packet_ns * sizes_per_burst
        )
        doorbell = fifo_departures(ingress.times_ns[ends - 1], cost)
        # Per-packet software enqueue time = its burst's doorbell.
        burst_index = np.repeat(np.arange(starts.shape[0]), sizes_per_burst)
        notify = doorbell[burst_index]

        tx = self.tx_nic.transmit(notify, ingress.sizes, burst_ids, rng)
        egress = ingress.with_times(tx.wire_times_ns)

        recording = None
        if record:
            recording = Recording.capture(
                packets=ingress.with_times(notify),
                burst_ids=burst_ids,
                tx_times_ns=notify,
                tsc=self.tsc,
                buffer_bytes=self.buffer_bytes,
                meta=dict(meta or {}),
            )
        return ForwardResult(egress, recording)
