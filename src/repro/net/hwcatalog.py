"""Hardware catalog: named models for the NICs and switches of Section 8.1.

The paper enumerates the hardware differences between its testbeds
(ConnectX-5 vs ConnectX-6, Tofino2 vs Cisco 5700, E810 vs CX-6
timestamping); this catalog gives each part a named, documented model so
profiles and user code reference hardware by name instead of magic
numbers.  Parameters are behavioural calibrations, not datasheet claims
— see ``docs/calibration.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..timing.hwstamp import RealtimeHWStamper, RxTimestamper, SampledClockStamper
from .nicmodel import TxNicModel
from .switch import CISCO_5700, TOFINO2, SwitchModel

__all__ = ["NicPart", "NIC_CATALOG", "SWITCH_CATALOG", "nic", "switch"]


@dataclass(frozen=True)
class NicPart:
    """One NIC model: its TX path and its RX timestamping behaviour."""

    name: str
    rate_bps: float
    tx: TxNicModel
    rx_stamper: RxTimestamper
    notes: str = ""


#: The parts the paper's testbeds use, plus the virtualized VF variant.
NIC_CATALOG: dict[str, NicPart] = {
    "connectx-5": NicPart(
        name="Mellanox ConnectX-5",
        rate_bps=100e9,
        tx=TxNicModel(rate_bps=100e9, pull_delay_ns=600.0, pull_jitter=0.26),
        rx_stamper=SampledClockStamper(jitter_ns=8.0, sample_error_ns=20.0),
        notes="The local testbed's generator/replayer NIC (bare metal).",
    ),
    "connectx-6": NicPart(
        name="Mellanox ConnectX-6",
        rate_bps=100e9,
        tx=TxNicModel(rate_bps=100e9, pull_delay_ns=900.0, pull_jitter=0.18),
        rx_stamper=SampledClockStamper(jitter_ns=14.5, sample_error_ns=25.0),
        notes="FABRIC's smart NIC; HW clock sampled for ns conversion (§8.1).",
    ),
    "connectx-6-vf": NicPart(
        name="Mellanox ConnectX-6 (SR-IOV VF)",
        rate_bps=100e9,
        tx=TxNicModel(rate_bps=100e9, pull_delay_ns=1100.0, pull_jitter=0.22),
        rx_stamper=SampledClockStamper(jitter_ns=14.5, sample_error_ns=25.0),
        notes="A virtual function of a shared port; pair with SharedPort.",
    ),
    "e810": NicPart(
        name="Intel E810",
        rate_bps=100e9,
        tx=TxNicModel(rate_bps=100e9, pull_delay_ns=700.0, pull_jitter=0.25),
        rx_stamper=RealtimeHWStamper(jitter_ns=2.3, resolution_ns=1.0),
        notes="The local recorder: real-time hardware timestamps (§8.1).",
    ),
}

#: Switch parts (the models live in repro.net.switch; indexed here by name).
SWITCH_CATALOG: dict[str, SwitchModel] = {
    "tofino2": TOFINO2,
    "cisco-5700": CISCO_5700,
}


def nic(name: str) -> NicPart:
    """Look up a NIC part by catalog key."""
    try:
        return NIC_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown NIC {name!r}; catalog: {sorted(NIC_CATALOG)}"
        ) from None


def switch(name: str) -> SwitchModel:
    """Look up a switch model by catalog key."""
    try:
        return SWITCH_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown switch {name!r}; catalog: {sorted(SWITCH_CATALOG)}"
        ) from None
