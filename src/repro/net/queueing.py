"""FIFO service primitives, vectorized.

The workhorse of the whole simulator is the single-server FIFO recurrence

.. math::

    \\mathrm{done}_i = \\max(\\mathrm{ready}_i, \\mathrm{done}_{i-1})
                      + \\mathrm{service}_i

(link serialization, switch egress, DMA engines, and the shared-NIC
scheduler are all instances).  A naive Python loop over a million packets
would dominate the runtime; :func:`fifo_departures` computes the exact
recurrence in a handful of NumPy passes:

with ``c = cumsum(service)`` and ``c_prev = c - service``,

.. math::

    \\mathrm{done}_i = c_i + \\max_{j \\le i}(\\mathrm{ready}_j - c_{j-1})

because unrolling the recurrence shows every prefix maximum candidate is
"packet j started service exactly at ready_j, everything after was
back-to-back".  The inner maximum is a single ``np.maximum.accumulate``.

Finite buffers (tail drop) break the closed form — whether packet *i* is
dropped feeds back into every later departure — so :func:`fifo_tail_drop`
falls back to an exact O(n) scalar loop.  Only contended shared-NIC
scenarios take that path, and only for the queue in contention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["fifo_departures", "fifo_tail_drop", "TailDropResult"]


def fifo_departures(ready_ns: np.ndarray, service_ns: np.ndarray) -> np.ndarray:
    """Exact FIFO service-completion times, vectorized.

    Parameters
    ----------
    ready_ns:
        Times packets become available to the server, **non-decreasing**.
    service_ns:
        Per-packet service durations (non-negative).

    Returns
    -------
    ndarray
        Time each packet finishes service; non-decreasing.
    """
    ready = np.asarray(ready_ns, dtype=np.float64)
    service = np.asarray(service_ns, dtype=np.float64)
    if ready.shape != service.shape:
        raise ValueError("ready_ns and service_ns must have equal shape")
    if ready.size == 0:
        return np.empty(0, dtype=np.float64)
    c = np.cumsum(service)
    start_slack = ready - (c - service)  # ready_j - c_{j-1}
    return c + np.maximum.accumulate(start_slack)


@dataclass(frozen=True)
class TailDropResult:
    """Outcome of finite-buffer FIFO service.

    Attributes
    ----------
    done_ns:
        Service-completion times of **accepted** packets.
    accepted:
        Boolean mask over the input marking accepted packets.
    n_dropped:
        Convenience count of drops.
    """

    done_ns: np.ndarray
    accepted: np.ndarray

    @property
    def n_dropped(self) -> int:
        return int(self.accepted.size - np.count_nonzero(self.accepted))


def fifo_tail_drop(
    ready_ns: np.ndarray,
    service_ns: np.ndarray,
    queue_capacity: int,
) -> TailDropResult:
    """FIFO service with a finite queue: arrivals beyond capacity are dropped.

    A packet arriving while ``queue_capacity`` packets are already waiting
    or in service is discarded (tail drop), as a NIC RX/TX ring or switch
    egress queue does.  Exact sequential semantics; O(n) Python loop kept
    deliberately lean (scalar locals only) since it is only used for
    contended queues.
    """
    ready = np.asarray(ready_ns, dtype=np.float64)
    service = np.asarray(service_ns, dtype=np.float64)
    if ready.shape != service.shape:
        raise ValueError("ready_ns and service_ns must have equal shape")
    if queue_capacity < 1:
        raise ValueError("queue_capacity must be >= 1")
    n = ready.size
    accepted = np.zeros(n, dtype=bool)
    done = []
    done_append = done.append
    # Completion times of packets still "in the system" relative to a
    # candidate arrival form a sliding window; track them in a ring buffer.
    from collections import deque

    in_system: deque[float] = deque()
    last_done = -np.inf
    r_list = ready.tolist()
    s_list = service.tolist()
    for i in range(n):
        t = r_list[i]
        while in_system and in_system[0] <= t:
            in_system.popleft()
        if len(in_system) >= queue_capacity:
            continue  # tail drop
        start = t if t > last_done else last_done
        last_done = start + s_list[i]
        in_system.append(last_done)
        accepted[i] = True
        done_append(last_done)
    return TailDropResult(np.asarray(done, dtype=np.float64), accepted)
