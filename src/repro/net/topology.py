"""Topology graph: nodes, ports, links, and path assembly.

Testbeds (Section 6's linear generator→replayer→recorder chain through a
switch, Section 6.2's dual-replayer fan-in, FABRIC's L2Bridge) are built
as a :mod:`networkx` directed multigraph whose edges carry
:class:`~repro.net.link.Link` models and whose nodes carry a role.  The
topology is *descriptive*: testbed drivers look paths up here and compose
the corresponding vectorized pipeline stages.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .link import Link

__all__ = ["NodeRole", "Topology"]


class NodeRole:
    """Role constants for topology nodes."""

    GENERATOR = "generator"
    REPLAYER = "replayer"
    RECORDER = "recorder"
    SWITCH = "switch"
    NOISE = "noise"


@dataclass(frozen=True)
class Hop:
    """One traversed edge of a path."""

    src: str
    dst: str
    link: Link


class Topology:
    """A directed multigraph of simulation nodes joined by links."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.graph = nx.MultiDiGraph(name=name)

    # ------------------------------------------------------------------
    def add_node(self, name: str, role: str, **attrs) -> None:
        """Register a node under a role (see :class:`NodeRole`)."""
        if name in self.graph:
            raise ValueError(f"node {name!r} already exists")
        self.graph.add_node(name, role=role, **attrs)

    def add_link(self, src: str, dst: str, link: Link, *, bidirectional: bool = True) -> None:
        """Join two registered nodes with a link model."""
        for n in (src, dst):
            if n not in self.graph:
                raise KeyError(f"unknown node {n!r}")
        self.graph.add_edge(src, dst, link=link)
        if bidirectional:
            self.graph.add_edge(dst, src, link=link)

    # ------------------------------------------------------------------
    def role_of(self, name: str) -> str:
        """The registered role of a node."""
        return self.graph.nodes[name]["role"]

    def nodes_with_role(self, role: str) -> list[str]:
        """All node names carrying ``role``, in insertion order."""
        return [n for n, d in self.graph.nodes(data=True) if d["role"] == role]

    def path(self, src: str, dst: str) -> list[Hop]:
        """Shortest hop path between two nodes, as traversable Hops.

        Raises ``networkx.NetworkXNoPath`` when disconnected.
        """
        names = nx.shortest_path(self.graph, src, dst)
        hops: list[Hop] = []
        for a, b in zip(names[:-1], names[1:]):
            # Multi-edges: take the first registered link.
            data = min(self.graph[a][b].values(), key=lambda d: id(d))
            hops.append(Hop(a, b, data["link"]))
        return hops

    def degree_report(self) -> dict[str, int]:
        """Node-name → total degree, for topology sanity checks."""
        return {n: d for n, d in self.graph.degree()}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology({self.name!r}, {self.graph.number_of_nodes()} nodes, "
            f"{self.graph.number_of_edges()} links)"
        )
