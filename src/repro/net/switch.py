"""Switch port-forwarding models.

Both testbeds interpose exactly one switch on the measured path: the local
testbed an **AS9516-32D Tofino2** running "a simple ingress to egress port
forwarding program", FABRIC sites **Cisco 5700s** (Section 8.1).  A modern
switch at this role contributes:

* a near-constant pipeline latency (parse → match → deparse);
* a small per-packet jitter from arbitration and cell scheduling;
* egress serialization at the output port's rate (another FIFO), which
  only matters if the port is congested — never the case in the paper's
  single-stream topologies, but modeled so multi-ingress setups (the
  dual-replayer case) contend realistically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pktarray import PacketArray
from .queueing import fifo_departures
from .units import wire_time_ns

__all__ = ["SwitchModel", "TOFINO2", "CISCO_5700"]


@dataclass(frozen=True)
class SwitchModel:
    """A store-and-forward switch doing port-to-port forwarding.

    Parameters
    ----------
    name:
        Model label for reports.
    pipeline_latency_ns:
        Fixed forwarding latency through the pipeline.
    jitter_ns:
        Std of per-packet arbitration jitter (one-sided; realized as the
        absolute value of a Gaussian so latency never dips below the
        pipeline minimum).
    egress_rate_bps:
        Output port line rate for egress serialization.
    """

    name: str
    pipeline_latency_ns: float
    jitter_ns: float
    egress_rate_bps: float
    overhead_bytes: int = 0

    def __post_init__(self) -> None:
        if self.pipeline_latency_ns < 0:
            raise ValueError("pipeline_latency_ns must be non-negative")
        if self.jitter_ns < 0:
            raise ValueError("jitter_ns must be non-negative")
        if self.egress_rate_bps <= 0:
            raise ValueError("egress_rate_bps must be positive")

    def forward(self, batch: PacketArray, rng: np.random.Generator) -> PacketArray:
        """Forward one ingress stream to the egress port."""
        return self.forward_merged([batch], rng)

    def forward_merged(
        self, ingress: list[PacketArray], rng: np.random.Generator
    ) -> PacketArray:
        """Forward several ingress streams onto one egress port.

        Streams are merged in arrival order at the crossbar (the
        dual-replayer topology), then the merged stream pays pipeline
        latency + jitter and serializes out the egress port.
        """
        merged, _ = PacketArray.merge([b for b in ingress if len(b)])
        if len(merged) == 0:
            return merged
        t = merged.times_ns + self.pipeline_latency_ns
        if self.jitter_ns > 0:
            t = t + np.abs(rng.normal(0.0, self.jitter_ns, len(merged)))
            # Jitter cannot reorder frames inside one ingress-to-egress
            # queue; restore monotonicity as the egress FIFO would.
            t = np.maximum.accumulate(t)
        service = wire_time_ns(
            merged.sizes, self.egress_rate_bps, overhead_bytes=self.overhead_bytes
        )
        return merged.with_times(fifo_departures(t, service))


#: The local testbed's switch: Tofino2 forwarding pipeline, 400 Gbps-class
#: ports run at 100 Gbps here; sub-microsecond fixed latency, tiny jitter.
TOFINO2 = SwitchModel(
    name="AS9516-32D Tofino2",
    pipeline_latency_ns=450.0,
    jitter_ns=3.0,
    egress_rate_bps=100e9,
)

#: FABRIC's site switch; deeper-buffered chassis switch, slightly larger
#: fixed latency and arbitration jitter than a Tofino pipeline.
CISCO_5700 = SwitchModel(
    name="Cisco 5700",
    pipeline_latency_ns=800.0,
    jitter_ns=8.0,
    egress_rate_bps=100e9,
)
