"""Wide-area path segments for inter-site topologies.

FABRIC is intercontinental (33 sites); the paper evaluates a single site
and leaves "more varied environments" to future work (Section 10).  This
model supplies the missing piece: a WAN segment with long propagation,
heavy-tailed queueing jitter from cross traffic at intermediate hops, and
— unlike every LAN element in the simulator — genuine *in-flight
reordering* when packets take parallel paths (ECMP), which is how a WAN
makes the O metric fire without any replayer misbehaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pktarray import PacketArray

__all__ = ["WanSegment"]


@dataclass(frozen=True)
class WanSegment:
    """One wide-area hop between sites.

    Parameters
    ----------
    propagation_ns:
        Base one-way delay (e.g. ~10 ms for a cross-country circuit).
    jitter_scale_ns:
        Scale of per-packet queueing jitter at intermediate routers
        (lognormal; long-tailed like real WAN delay distributions).
    jitter_sigma:
        Lognormal shape; 0 disables jitter.
    ecmp_paths:
        Number of equal-cost paths.  With more than one, packets hash
        onto paths with slightly different delays and *may reorder*;
        with exactly one the segment is FIFO.
    path_skew_ns:
        Delay difference between adjacent ECMP paths.
    """

    propagation_ns: float = 10e6
    jitter_scale_ns: float = 30_000.0
    jitter_sigma: float = 0.8
    ecmp_paths: int = 1
    path_skew_ns: float = 50_000.0

    def __post_init__(self) -> None:
        if self.propagation_ns < 0:
            raise ValueError("propagation_ns must be non-negative")
        if self.jitter_scale_ns < 0 or self.jitter_sigma < 0:
            raise ValueError("jitter parameters must be non-negative")
        if self.ecmp_paths < 1:
            raise ValueError("ecmp_paths must be >= 1")
        if self.path_skew_ns < 0:
            raise ValueError("path_skew_ns must be non-negative")

    @property
    def can_reorder(self) -> bool:
        """True when parallel paths make in-flight reordering possible."""
        return self.ecmp_paths > 1

    def traverse(self, batch: PacketArray, rng: np.random.Generator) -> PacketArray:
        """Carry a batch across the segment.

        Returns the batch in *arrival order at the far end* — with ECMP,
        that order may differ from the send order (tags travel with their
        packets, so downstream analysis sees the reordering).
        """
        n = len(batch)
        if n == 0:
            return batch
        delay = np.full(n, self.propagation_ns)
        if self.jitter_scale_ns > 0 and self.jitter_sigma > 0:
            delay = delay + self.jitter_scale_ns * rng.lognormal(
                0.0, self.jitter_sigma, n
            )
        if self.ecmp_paths > 1:
            # Flow-less hash: tags spread across paths deterministically,
            # so the *same* packet rides the same path in every run — the
            # run-to-run variation comes only from queueing jitter.
            path = (batch.tags % self.ecmp_paths).astype(np.float64)
            delay = delay + path * self.path_skew_ns
            arrivals = batch.times_ns + delay
            order = np.argsort(arrivals, kind="stable")
            return PacketArray(
                batch.tags[order],
                batch.sizes[order],
                arrivals[order],
                meta=dict(batch.meta),
            )
        # Single path: FIFO — jitter defers but never overtakes.
        arrivals = np.maximum.accumulate(batch.times_ns + delay)
        return batch.with_times(arrivals)
