"""NIC models: the TX DMA-pull path and the RX timestamping path.

Section 2.3 describes the transmit behaviour that bounds every DPDK
replayer's timing accuracy: software posts packets to the ring and rings a
doorbell, but the NIC *pulls* them by DMA "at a future time".  The TX
model therefore has three parts:

1. a per-doorbell **pull latency** (PCIe round trip + scheduling), drawn
   lognormal so the tail is one-sided like real DMA latencies;
2. the line-rate **serializer** (a FIFO over the pulled frames);
3. optional **pull batching**: the engine fetches up to a descriptor-burst
   worth of frames per transaction, so frames in one pull leave
   back-to-back regardless of their software spacing — this is what makes
   intra-burst IATs highly repeatable (the ±10 ns cluster in the figures)
   while inter-burst gaps carry the jitter.

The RX model timestamps arriving frames with whichever
:class:`~repro.timing.hwstamp.RxTimestamper` the recorder hardware uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..timing.hwstamp import RealtimeHWStamper, RxTimestamper
from .pktarray import PacketArray
from .queueing import fifo_departures
from .units import wire_time_ns

__all__ = ["TxNicModel", "RxNicModel", "TxResult"]


@dataclass(frozen=True)
class TxResult:
    """Outcome of a TX operation."""

    wire_times_ns: np.ndarray
    pull_delays_ns: np.ndarray

    @property
    def n_packets(self) -> int:
        return int(self.wire_times_ns.shape[0])


@dataclass(frozen=True)
class TxNicModel:
    """Transmit path of a NIC.

    Parameters
    ----------
    rate_bps:
        Port line rate.
    pull_delay_ns:
        Median DMA pull latency after a doorbell.
    pull_jitter:
        Lognormal sigma of the pull latency (dimensionless; 0 disables).
    overhead_bytes:
        Per-frame on-wire overhead for serialization accounting.
    """

    rate_bps: float
    pull_delay_ns: float = 600.0
    pull_jitter: float = 0.25
    overhead_bytes: int = 0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if self.pull_delay_ns < 0:
            raise ValueError("pull_delay_ns must be non-negative")
        if self.pull_jitter < 0:
            raise ValueError("pull_jitter must be non-negative")

    def _pull_delays(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.pull_delay_ns == 0:
            return np.zeros(n)
        if self.pull_jitter == 0:
            return np.full(n, self.pull_delay_ns)
        return self.pull_delay_ns * rng.lognormal(0.0, self.pull_jitter, n)

    def transmit(
        self,
        notify_times_ns: np.ndarray,
        sizes_bytes: np.ndarray,
        burst_ids: np.ndarray,
        rng: np.random.Generator,
    ) -> TxResult:
        """Wire departure times for packets posted in doorbell bursts.

        Parameters
        ----------
        notify_times_ns:
            Per-packet time the software posted it (non-decreasing).  Only
            the **last** notify of each burst matters: the doorbell rings
            once per burst, after the burst is fully posted.
        sizes_bytes:
            Frame sizes.
        burst_ids:
            Per-packet doorbell-burst index, non-decreasing, contiguous.
        rng:
            Randomness source for pull latencies.
        """
        notify = np.asarray(notify_times_ns, dtype=np.float64)
        sizes = np.asarray(sizes_bytes)
        bids = np.asarray(burst_ids, dtype=np.int64)
        n = notify.shape[0]
        if sizes.shape[0] != n or bids.shape[0] != n:
            raise ValueError("per-packet arrays must have equal length")
        if n == 0:
            return TxResult(np.empty(0), np.empty(0))
        if np.any(np.diff(bids) < 0):
            raise ValueError("burst_ids must be non-decreasing")

        # Last notify per burst = doorbell time.  Bursts are contiguous
        # runs, so the run-end positions index the doorbell notifies.
        run_end = np.flatnonzero(np.diff(np.append(bids, bids[-1] + 1)))
        doorbell = notify[run_end]
        n_bursts = run_end.shape[0]
        pulls = self._pull_delays(n_bursts, rng)
        pull_time = doorbell + pulls
        # The DMA engine itself serves doorbells in order: a pull cannot
        # complete before the previous burst's pull completed.
        pull_time = np.maximum.accumulate(pull_time)

        # Map burst pull times back to packets, then serialize at line rate.
        burst_index = np.cumsum(np.append(0, np.diff(bids) != 0))
        ready = pull_time[burst_index]
        service = wire_time_ns(sizes, self.rate_bps, overhead_bytes=self.overhead_bytes)
        wire = fifo_departures(ready, service)
        return TxResult(wire, pulls)

    def transmit_batch(
        self, batch: PacketArray, burst_ids: np.ndarray, rng: np.random.Generator
    ) -> PacketArray:
        """Pipeline-stage form: batch times are the software notify times."""
        result = self.transmit(batch.times_ns, batch.sizes, burst_ids, rng)
        return batch.with_times(result.wire_times_ns)


@dataclass(frozen=True)
class RxNicModel:
    """Receive path of a NIC: wire arrival → recorded timestamp.

    The recorder never sees true wire times; it sees what its
    timestamping hardware reports (Section 8.1's E810-vs-CX-6 difference).
    """

    stamper: RxTimestamper = field(default_factory=RealtimeHWStamper)

    def receive(self, wire_times_ns: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Recorded timestamps for frames whose last bit lands at given times."""
        return self.stamper.stamp(np.asarray(wire_times_ns, dtype=np.float64), rng)
