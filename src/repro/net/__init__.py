"""Network substrate: packets, links, NICs, switches, shared ports, DES.

Everything the testbed models compose to turn transmit schedules into
receive-timestamp sequences.  All bulk operations are vectorized over
structure-of-arrays packet batches (:class:`~repro.net.pktarray.PacketArray`).
"""

from . import units
from .events import Event, EventLoop
from .hwcatalog import NIC_CATALOG, SWITCH_CATALOG, NicPart, nic, switch
from .link import Link
from .nicmodel import RxNicModel, TxNicModel, TxResult
from .pktarray import PacketArray, make_tags
from .queueing import TailDropResult, fifo_departures, fifo_tail_drop
from .sriov import SharedPort, SharedPortResult
from .switch import CISCO_5700, TOFINO2, SwitchModel
from .topology import NodeRole, Topology
from .wan import WanSegment

__all__ = [
    "units",
    "PacketArray",
    "make_tags",
    "Link",
    "fifo_departures",
    "fifo_tail_drop",
    "TailDropResult",
    "TxNicModel",
    "RxNicModel",
    "TxResult",
    "SharedPort",
    "SharedPortResult",
    "SwitchModel",
    "TOFINO2",
    "CISCO_5700",
    "EventLoop",
    "Event",
    "NodeRole",
    "Topology",
    "WanSegment",
    "NicPart",
    "NIC_CATALOG",
    "SWITCH_CATALOG",
    "nic",
    "switch",
]
