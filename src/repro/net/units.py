"""Unit conversions and wire-format constants for the packet substrate.

All internal simulator time is kept in **nanoseconds as float64**.  A
nanosecond float64 grid keeps sub-ns resolution over spans far longer than
any trial here (float64 has ~15-16 significant digits; a 0.3 s trial spans
3e8 ns, leaving picosecond-scale resolution), while staying directly
compatible with vectorized NumPy arithmetic.  Rates are carried in bits per
second (bps) or packets per second (pps).

Ethernet wire accounting follows the usual convention used by traffic
generators such as Pktgen-DPDK and MoonGen: the on-the-wire cost of a frame
is the L2 frame length plus preamble, start-of-frame delimiter, FCS, and
the inter-frame gap.  The paper's rate figures (40 Gbps of 1400-byte
packets = 3.52 Mpps) treat the quoted packet size as the full on-wire unit,
so :func:`wire_time_ns` exposes both conventions via ``overhead_bytes``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NS_PER_SEC",
    "NS_PER_US",
    "NS_PER_MS",
    "GBPS",
    "MBPS",
    "KBPS",
    "ETH_PREAMBLE_BYTES",
    "ETH_IFG_BYTES",
    "ETH_FCS_BYTES",
    "ETH_OVERHEAD_BYTES",
    "bits",
    "wire_time_ns",
    "rate_to_pps",
    "pps_to_iat_ns",
    "gbps",
    "mpps",
    "seconds_to_ns",
    "ns_to_seconds",
]

#: Nanoseconds in one second.
NS_PER_SEC = 1_000_000_000.0
#: Nanoseconds in one microsecond.
NS_PER_US = 1_000.0
#: Nanoseconds in one millisecond.
NS_PER_MS = 1_000_000.0

#: One gigabit per second, in bits/second.
GBPS = 1_000_000_000.0
#: One megabit per second, in bits/second.
MBPS = 1_000_000.0
#: One kilobit per second, in bits/second.
KBPS = 1_000.0

#: Ethernet preamble + start-of-frame delimiter.
ETH_PREAMBLE_BYTES = 8
#: Minimum inter-frame gap.
ETH_IFG_BYTES = 12
#: Frame check sequence.
ETH_FCS_BYTES = 4
#: Total per-frame overhead beyond the L2 payload when accounting strictly.
ETH_OVERHEAD_BYTES = ETH_PREAMBLE_BYTES + ETH_IFG_BYTES


def bits(nbytes):
    """Convert a byte count (scalar or array) to bits."""
    return np.multiply(nbytes, 8)


def gbps(value: float) -> float:
    """Express ``value`` gigabits/second in bits/second."""
    return float(value) * GBPS


def mpps(value: float) -> float:
    """Express ``value`` mega-packets/second in packets/second."""
    return float(value) * 1e6


def seconds_to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return float(seconds) * NS_PER_SEC


def ns_to_seconds(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return float(ns) / NS_PER_SEC


def wire_time_ns(size_bytes, rate_bps: float, *, overhead_bytes: int = 0):
    """Serialization time of frames of ``size_bytes`` at ``rate_bps``.

    Parameters
    ----------
    size_bytes:
        Scalar or array of L2 frame sizes in bytes.
    rate_bps:
        Link (or shaping) rate in bits per second.  Must be positive.
    overhead_bytes:
        Extra per-frame on-wire bytes (preamble + IFG).  The paper's
        packet-rate arithmetic uses 0; strict Ethernet accounting uses
        :data:`ETH_OVERHEAD_BYTES`.

    Returns
    -------
    float or ndarray
        Time on the wire in nanoseconds.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate_bps must be positive, got {rate_bps}")
    total = np.add(size_bytes, overhead_bytes)
    return bits(total) / rate_bps * NS_PER_SEC


def rate_to_pps(rate_bps: float, size_bytes: float, *, overhead_bytes: int = 0) -> float:
    """Packets per second achieved by ``size_bytes`` frames at ``rate_bps``."""
    if size_bytes <= 0:
        raise ValueError(f"size_bytes must be positive, got {size_bytes}")
    if rate_bps <= 0:
        raise ValueError(f"rate_bps must be positive, got {rate_bps}")
    return rate_bps / float(bits(size_bytes + overhead_bytes))


def pps_to_iat_ns(pps: float) -> float:
    """Mean inter-arrival time in nanoseconds of a ``pps`` packet stream."""
    if pps <= 0:
        raise ValueError(f"pps must be positive, got {pps}")
    return NS_PER_SEC / pps
