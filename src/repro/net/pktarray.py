"""Structure-of-arrays packet batches.

All bulk packet state in the simulator lives in :class:`PacketArray`:
parallel NumPy arrays of tags, sizes, and timestamps.  Per-packet Python
objects never appear on a hot path (a paper-scale trial is ~1M packets and
traverses half a dozen pipeline stages), following the vectorization
guidance this project builds to.

The meaning of :attr:`times_ns` is positional: each pipeline stage
consumes the times at which packets become available to it and produces
the times at which they leave it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PacketArray", "make_tags"]


def make_tags(n: int, *, replayer_id: int = 0, start: int = 0) -> np.ndarray:
    """Unique int64 tags encoding a replayer id in the high bits.

    Mirrors the paper's 16-byte trailer tags "which included the replay
    node they were emitted by" (Section 6): the replayer id occupies bits
    48+, the sequence number the low 48 bits, so tags from different
    replayers never collide and the emitting node is recoverable with
    :func:`repro.analysis.tagging.split_tag`.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0 <= replayer_id < 2**15:
        raise ValueError("replayer_id must fit in 15 bits")
    if start < 0 or start + n > 2**48:
        raise ValueError("sequence range must fit in 48 bits")
    return (np.int64(replayer_id) << np.int64(48)) + np.arange(
        start, start + n, dtype=np.int64
    )


@dataclass(frozen=True)
class PacketArray:
    """A batch of packets as parallel arrays.

    Parameters
    ----------
    tags:
        int64 unique-ish identifiers (see :func:`make_tags`).
    sizes:
        int64 L2 frame sizes in bytes.
    times_ns:
        float64 stage-relative timestamps, non-decreasing.
    """

    tags: np.ndarray
    sizes: np.ndarray
    times_ns: np.ndarray
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        tags = np.ascontiguousarray(self.tags, dtype=np.int64)
        sizes = np.ascontiguousarray(self.sizes, dtype=np.int64)
        times = np.ascontiguousarray(self.times_ns, dtype=np.float64)
        n = tags.shape[0]
        if sizes.shape != (n,) or times.shape != (n,):
            raise ValueError("tags, sizes and times_ns must be 1-D and equal length")
        if n and sizes.min() <= 0:
            raise ValueError("packet sizes must be positive")
        if n and np.any(np.diff(times) < 0):
            raise ValueError("times_ns must be non-decreasing within a batch")
        object.__setattr__(self, "tags", tags)
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "times_ns", times)

    def __len__(self) -> int:
        return int(self.tags.shape[0])

    @classmethod
    def uniform(
        cls,
        n: int,
        size_bytes: int,
        times_ns: np.ndarray,
        *,
        replayer_id: int = 0,
        meta: dict | None = None,
    ) -> "PacketArray":
        """A batch of ``n`` equal-sized packets at the given times."""
        return cls(
            make_tags(n, replayer_id=replayer_id),
            np.full(n, size_bytes, dtype=np.int64),
            np.asarray(times_ns, dtype=np.float64),
            meta=dict(meta or {}),
        )

    def with_times(self, times_ns: np.ndarray) -> "PacketArray":
        """Same packets with new timestamps (the per-stage transform)."""
        return PacketArray(self.tags, self.sizes, times_ns, meta=dict(self.meta))

    def select(self, mask_or_idx) -> "PacketArray":
        """Subset of packets, preserving order (used for drops/filters)."""
        return PacketArray(
            self.tags[mask_or_idx],
            self.sizes[mask_or_idx],
            self.times_ns[mask_or_idx],
            meta=dict(self.meta),
        )

    @staticmethod
    def merge(batches: list["PacketArray"]) -> tuple["PacketArray", np.ndarray]:
        """Time-merge several batches into one arrival-ordered batch.

        Returns the merged batch and an int array identifying, per merged
        packet, which input batch it came from (for later extraction).
        Stable under ties: earlier-listed batches win, matching a
        round-robin arbiter's bias toward its first port.
        """
        if not batches:
            return PacketArray(
                np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.float64)
            ), np.empty(0, np.int64)
        tags = np.concatenate([b.tags for b in batches])
        sizes = np.concatenate([b.sizes for b in batches])
        times = np.concatenate([b.times_ns for b in batches])
        source = np.concatenate(
            [np.full(len(b), i, dtype=np.int64) for i, b in enumerate(batches)]
        )
        order = np.argsort(times, kind="stable")
        return (
            PacketArray(tags[order], sizes[order], times[order]),
            source[order],
        )

    @property
    def total_bytes(self) -> int:
        """Sum of frame sizes."""
        return int(self.sizes.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if len(self) == 0:
            return "PacketArray(empty)"
        return (
            f"PacketArray({len(self)} pkts, {self.total_bytes} B, "
            f"[{self.times_ns[0]:.0f}..{self.times_ns[-1]:.0f}] ns)"
        )
