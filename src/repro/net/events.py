"""A small discrete-event loop for control-plane sequencing.

Bulk packet timing is computed vectorized (see :mod:`repro.net.queueing`);
the event loop exists for the *control plane*: out-of-band user commands,
record start/stop, scheduled replay starts, PTP sync epochs.  These are
dozens of events per trial, so a classic heap-based DES is both simple and
free.

Events fire in (time, sequence) order; handlers may schedule further
events.  The loop is deterministic: equal-time events fire in scheduling
order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["EventLoop", "Event"]


@dataclass(order=True)
class Event:
    """A scheduled callback; ordered by (time, seq)."""

    time_ns: float
    seq: int
    action: Callable[["EventLoop"], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it."""
        self.cancelled = True


class EventLoop:
    """Heap-based discrete-event simulation loop."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now_ns: float = 0.0
        self.n_fired: int = 0

    def schedule(
        self, time_ns: float, action: Callable[["EventLoop"], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` at an absolute time; returns a cancellable handle."""
        if time_ns < self.now_ns:
            raise ValueError(
                f"cannot schedule at {time_ns} ns: loop is already at {self.now_ns} ns"
            )
        ev = Event(float(time_ns), next(self._counter), action, label)
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(
        self, delay_ns: float, action: Callable[["EventLoop"], None], label: str = ""
    ) -> Event:
        """Schedule ``action`` ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise ValueError("delay_ns must be non-negative")
        return self.schedule(self.now_ns + delay_ns, action, label)

    def run(self, until_ns: float | None = None, max_events: int = 1_000_000) -> None:
        """Fire events in order until the heap drains or ``until_ns`` passes.

        ``max_events`` guards against runaway self-scheduling handlers.
        """
        fired = 0
        while self._heap:
            if until_ns is not None and self._heap[0].time_ns > until_ns:
                break
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if fired >= max_events:
                raise RuntimeError(f"event budget exhausted ({max_events} events)")
            self.now_ns = ev.time_ns
            ev.action(self)
            fired += 1
            self.n_fired += 1
        if until_ns is not None and until_ns > self.now_ns:
            self.now_ns = float(until_ns)

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)
