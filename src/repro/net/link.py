"""Point-to-point link model: serialization plus propagation.

A link serializes frames at its line rate (a FIFO whose service time is
the frame's wire time) and then delays them by a fixed propagation time.
Links are the composition unit of every path in the simulated testbeds;
they are stateless and vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pktarray import PacketArray
from .queueing import fifo_departures
from .units import wire_time_ns

__all__ = ["Link"]


@dataclass(frozen=True)
class Link:
    """A unidirectional link.

    Parameters
    ----------
    rate_bps:
        Line rate in bits/second.
    propagation_ns:
        One-way propagation delay (cable length + PHY latency).
    overhead_bytes:
        Extra on-wire bytes per frame (preamble + IFG) when strict
        Ethernet accounting is wanted; 0 matches the paper's packet-rate
        arithmetic.
    """

    rate_bps: float
    propagation_ns: float = 50.0
    overhead_bytes: int = 0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if self.propagation_ns < 0:
            raise ValueError("propagation_ns must be non-negative")

    def serialization_ns(self, sizes_bytes) -> np.ndarray:
        """Wire time of each frame at this link's rate."""
        return wire_time_ns(sizes_bytes, self.rate_bps, overhead_bytes=self.overhead_bytes)

    def traverse_times(self, ready_ns: np.ndarray, sizes_bytes: np.ndarray) -> np.ndarray:
        """Arrival times at the far end for frames ready at ``ready_ns``.

        A frame "arrives" when its last bit does (store-and-forward
        convention), i.e. serialization completion plus propagation.
        """
        service = self.serialization_ns(sizes_bytes)
        return fifo_departures(ready_ns, service) + self.propagation_ns

    def traverse(self, batch: PacketArray) -> PacketArray:
        """Pipeline-stage form of :meth:`traverse_times`."""
        return batch.with_times(self.traverse_times(batch.times_ns, batch.sizes))

    def utilization(self, batch: PacketArray) -> float:
        """Offered load of ``batch`` relative to the line rate, in [0, ∞)."""
        if len(batch) < 2:
            return 0.0
        span = float(batch.times_ns[-1] - batch.times_ns[0])
        if span <= 0:
            return np.inf
        return float(self.serialization_ns(batch.sizes).sum()) / span
