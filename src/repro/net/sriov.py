"""SR-IOV shared-NIC model: virtual functions contending for one port.

Most FABRIC NICs are "100 Gbps SR-IOV Virtual Functions shared NIC"
(Section 9): several tenants' VFs multiplex onto one physical port.  The
consequences the paper measures are:

* under light background load the VF behaves almost like the physical
  port ("the shared NIC could use all the bandwidth of the physical
  hardware", Section 8.1);
* under heavy co-tenant load, foreground frames are delayed by the
  interleaved background frames' wire time, IAT consistency collapses by
  an order of magnitude, and the finite VF queue produces the paper's
  first observed **drops** (Section 7.1).

The model merges foreground and background frame streams by ready time,
serves the merged stream through the physical port's exact FIFO, and
extracts the foreground departures.  Finite VF queueing (for the drop
regime) applies tail drop on the foreground stream only, approximating a
per-VF ring in front of the shared scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pktarray import PacketArray
from .queueing import fifo_departures, fifo_tail_drop
from .units import wire_time_ns

__all__ = ["SharedPort", "SharedPortResult"]


@dataclass(frozen=True)
class SharedPortResult:
    """Foreground outcome of traversing a shared port."""

    batch: PacketArray
    n_dropped: int
    background_load: float


@dataclass(frozen=True)
class SharedPort:
    """One physical port multiplexing a foreground VF with background traffic.

    Parameters
    ----------
    rate_bps:
        Physical port line rate.
    vf_queue_packets:
        Foreground VF ring capacity; ``None`` means effectively infinite
        (the uncontended regimes, where the closed-form FIFO applies).
    overhead_bytes:
        Per-frame wire overhead.
    """

    rate_bps: float
    vf_queue_packets: int | None = None
    overhead_bytes: int = 0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if self.vf_queue_packets is not None and self.vf_queue_packets < 1:
            raise ValueError("vf_queue_packets must be >= 1 when set")

    def traverse(
        self,
        foreground: PacketArray,
        background: PacketArray | None = None,
    ) -> SharedPortResult:
        """Serve foreground (and optional background) frames through the port.

        Background frames consume wire time but are discarded from the
        output; only the foreground batch's departure times are returned.
        """
        if background is None or len(background) == 0:
            times = fifo_departures(
                foreground.times_ns, self._service(foreground.sizes)
            )
            return SharedPortResult(foreground.with_times(times), 0, 0.0)

        merged, source = PacketArray.merge([foreground, background])
        service = self._service(merged.sizes)
        fg_mask = source == 0

        if self.vf_queue_packets is None:
            done = fifo_departures(merged.times_ns, service)
            out = foreground.with_times(done[fg_mask])
            return SharedPortResult(out, 0, self._bg_load(background))

        # Finite VF ring: exact tail-drop semantics over the merged stream,
        # but only foreground packets can be dropped — the background
        # tenants have their own rings, modeled as always-accepted load.
        result = fifo_tail_drop(merged.times_ns, service, self.vf_queue_packets + self._bg_allowance(background))
        accepted_fg = result.accepted & fg_mask
        # Departure times of accepted packets, filtered to foreground.
        acc_positions = np.flatnonzero(result.accepted)
        fg_in_accepted = fg_mask[acc_positions]
        fg_done = result.done_ns[fg_in_accepted]

        kept = foreground.select(accepted_fg[fg_mask])
        out = kept.with_times(fg_done)
        n_dropped = len(foreground) - len(kept)
        return SharedPortResult(out, n_dropped, self._bg_load(background))

    def _service(self, sizes: np.ndarray) -> np.ndarray:
        return wire_time_ns(sizes, self.rate_bps, overhead_bytes=self.overhead_bytes)

    def _bg_load(self, background: PacketArray) -> float:
        if len(background) < 2:
            return 0.0
        span = float(background.times_ns[-1] - background.times_ns[0])
        if span <= 0:
            return np.inf
        return float(self._service(background.sizes).sum()) / span

    def _bg_allowance(self, background: PacketArray) -> int:
        """Extra queue slots representing the background tenants' rings.

        The shared scheduler's queue holds everyone's in-flight frames;
        granting the background its proportional share keeps the
        foreground's effective ring at ``vf_queue_packets``.
        """
        if len(background) == 0:
            return 0
        return self.vf_queue_packets
