"""Table drivers: regenerate Table 1 and Table 2 with paper comparison.

``table1()`` reruns the local dual-replayer series and summarizes the
edit-script move distances; ``table2()`` reruns all nine environments and
assembles the mean-metric table, optionally annotated with the paper's
reported values for side-by-side comparison (the EXPERIMENTS.md format).

``table2(ci=True)`` is the statistically honest variant: instead of one
session per environment it runs a PASTRAMI-style stability screen
(:mod:`repro.analysis.stability`) over several seeds and reports κ with
bootstrap interval columns — ``kappa_ci_low``/``kappa_ci_high``, the
effective sample size ``n_eff`` after MAD outlier screening, and the
count of flagged-but-reported ``outliers``.  Seed 0 of each screen is the
scenario's registered seed, so the interval brackets the exact series the
point-estimate table prints.
"""

from __future__ import annotations

from ..analysis.tables import render_table1, table1_rows
from ..analysis.textplot import render_metric_rows
from .runner import persistent_store, run_scenario
from .scenarios import SCENARIOS

__all__ = [
    "table1",
    "render_table1_text",
    "table2",
    "render_table2_text",
    "TABLE2_CI_COLUMNS",
]

#: The interval columns ``table2(ci=True)`` adds to every row.
TABLE2_CI_COLUMNS = ["kappa_ci_low", "kappa_ci_high", "n_eff", "outliers"]


def table1(**run_kwargs) -> list[dict]:
    """Table 1 rows (move-distance statistics, local dual-replayer)."""
    return table1_rows(run_scenario("local-dual", **run_kwargs))


def render_table1_text(**run_kwargs) -> str:
    """Table 1 as text."""
    return render_table1(run_scenario("local-dual", **run_kwargs))


def _stability_row(sc, ci_seeds: int, run_kwargs: dict) -> dict:
    """One environment's interval-bearing row via the stability screen."""
    from ..analysis.stability import environment_stability, stability_seed_plan
    from .scenarios import default_duration_scale

    scale = run_kwargs.get("duration_scale")
    scale = default_duration_scale() if scale is None else scale
    st = environment_stability(
        sc.profile(scale),
        seeds=stability_seed_plan(sc.seed, ci_seeds),
        n_runs=run_kwargs.get("n_runs", 5),
        jobs=run_kwargs.get("jobs"),
        store=persistent_store(),
    )
    return st.row()


def table2(
    *,
    with_paper: bool = True,
    ci: bool = False,
    ci_seeds: int = 4,
    **run_kwargs,
) -> list[dict]:
    """Table 2: one mean-metrics row per environment, presentation order.

    With ``with_paper=True`` each row carries ``paper_*`` columns holding
    the published values, so the shape comparison is in the data itself.
    ``ci=True`` replaces each point estimate with a ``ci_seeds``-session
    stability screen: κ becomes the screened mean and every row gains the
    interval columns (:data:`TABLE2_CI_COLUMNS`).  Screens reuse the
    persistent series store when one is configured, and fan out across
    ``jobs`` like every other driver.
    """
    if ci_seeds < 1:
        raise ValueError("ci_seeds must be >= 1")
    rows = []
    for sc in SCENARIOS:
        if ci:
            row = _stability_row(sc, ci_seeds, run_kwargs)
        else:
            report = run_scenario(sc.key, **run_kwargs)
            row = report.mean_row()
        if with_paper:
            row.update(
                paper_U=sc.paper.u,
                paper_O=sc.paper.o,
                paper_I=sc.paper.i,
                paper_L=sc.paper.l,
                paper_kappa=sc.paper.kappa,
            )
        rows.append(row)
    return rows


def render_table2_text(
    *,
    with_paper: bool = True,
    ci: bool = False,
    ci_seeds: int = 4,
    **run_kwargs,
) -> str:
    """Table 2 as text (measured, with paper values interleaved if asked)."""
    rows = table2(with_paper=with_paper, ci=ci, ci_seeds=ci_seeds, **run_kwargs)
    if ci:
        columns = ["environment", "kappa"] + TABLE2_CI_COLUMNS
        if with_paper:
            columns.append("paper_kappa")
        header = (
            "Table 2: mean kappa per environment with 95% bootstrap "
            f"intervals ({ci_seeds} seeded sessions each; outliers are "
            "MAD-flagged and excluded from the interval, never dropped "
            "from the data)"
        )
    elif with_paper:
        columns = [
            "environment",
            "U", "paper_U",
            "O", "paper_O",
            "I", "paper_I",
            "L", "paper_L",
            "kappa", "paper_kappa",
        ]
        header = "Table 2: mean Section-3 metrics per environment (measured vs paper)"
    else:
        columns = ["environment", "U", "O", "I", "L", "kappa"]
        header = "Table 2: mean Section-3 metrics per environment"
    return header + ".\n" + render_metric_rows(rows, columns=columns)
