"""Table drivers: regenerate Table 1 and Table 2 with paper comparison.

``table1()`` reruns the local dual-replayer series and summarizes the
edit-script move distances; ``table2()`` reruns all nine environments and
assembles the mean-metric table, optionally annotated with the paper's
reported values for side-by-side comparison (the EXPERIMENTS.md format).
"""

from __future__ import annotations

from ..analysis.tables import render_table1, table1_rows
from ..analysis.textplot import render_metric_rows
from .runner import run_scenario
from .scenarios import SCENARIOS

__all__ = ["table1", "render_table1_text", "table2", "render_table2_text"]


def table1(**run_kwargs) -> list[dict]:
    """Table 1 rows (move-distance statistics, local dual-replayer)."""
    return table1_rows(run_scenario("local-dual", **run_kwargs))


def render_table1_text(**run_kwargs) -> str:
    """Table 1 as text."""
    return render_table1(run_scenario("local-dual", **run_kwargs))


def table2(*, with_paper: bool = True, **run_kwargs) -> list[dict]:
    """Table 2: one mean-metrics row per environment, presentation order.

    With ``with_paper=True`` each row carries ``paper_*`` columns holding
    the published values, so the shape comparison is in the data itself.
    """
    rows = []
    for sc in SCENARIOS:
        report = run_scenario(sc.key, **run_kwargs)
        row = report.mean_row()
        if with_paper:
            row.update(
                paper_U=sc.paper.u,
                paper_O=sc.paper.o,
                paper_I=sc.paper.i,
                paper_L=sc.paper.l,
                paper_kappa=sc.paper.kappa,
            )
        rows.append(row)
    return rows


def render_table2_text(*, with_paper: bool = True, **run_kwargs) -> str:
    """Table 2 as text (measured, with paper values interleaved if asked)."""
    rows = table2(with_paper=with_paper, **run_kwargs)
    if with_paper:
        columns = [
            "environment",
            "U", "paper_U",
            "O", "paper_O",
            "I", "paper_I",
            "L", "paper_L",
            "kappa", "paper_kappa",
        ]
    else:
        columns = ["environment", "U", "O", "I", "L", "kappa"]
    header = "Table 2: mean Section-3 metrics per environment"
    if with_paper:
        header += " (measured vs paper)"
    return header + ".\n" + render_metric_rows(rows, columns=columns)
