"""One-command reproduction validation: measured vs paper, with verdicts.

``repro validate`` (or :func:`validate_against_paper`) reruns every
scenario, compares the mean metrics against the published Table-2 values
under explicit tolerances, and returns structured verdicts — the same
checks the benchmark suite asserts, packaged for downstream users who
want a single yes/no "does this reproduction still hold on my machine?".

Tolerances encode the DESIGN.md shape contract:

* κ within ``kappa_abs_tol`` absolute (the headline number);
* I within ``i_rel_tol`` relative when the paper's I is non-negligible;
* U and O must be zero exactly where the paper has them zero, and
  non-zero where the paper reports drops/reordering;
* the full κ ordering across environments must match the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

from .runner import run_scenario
from .scenarios import SCENARIOS, Scenario

__all__ = ["ScenarioVerdict", "ValidationResult", "validate_against_paper"]

#: Per-scenario κ tolerance overrides (multipliers on the base tolerance).
#: local-dual: the paper's printed κ (0.9282) is not consistent with Eq. 5
#: applied to its own printed I values (0.149-0.311 → κ ≈ 0.84-0.93, mean
#: ≈ 0.90); see EXPERIMENTS.md "Known deviations".  We grade it against
#: the published number anyway, but with slack covering that discrepancy
#: plus the scenario's high run-to-run offset variance.
_KAPPA_TOL_MULTIPLIER = {"local-dual": 2.5}
#: Same reasoning for I: the dual-replayer interleave inflates I at
#: reduced window scales (offsets are duration-independent).
_I_TOL_MULTIPLIER = {"local-dual": 2.0}


@dataclass(frozen=True)
class ScenarioVerdict:
    """Pass/fail detail for one environment.

    The interval fields are populated only by CI-aware validation
    (``validate_against_paper(ci=True)``); point-estimate runs leave them
    at their NaN/zero defaults.
    """

    key: str
    passed: bool
    kappa_measured: float
    kappa_paper: float
    i_measured: float
    i_paper: float
    failures: tuple[str, ...]
    kappa_ci_low: float = float("nan")
    kappa_ci_high: float = float("nan")
    n_eff: int = 0
    outliers: int = 0

    @property
    def has_interval(self) -> bool:
        """True when this verdict was graded against a bootstrap interval."""
        return self.kappa_ci_low == self.kappa_ci_low  # not NaN


@dataclass(frozen=True)
class ValidationResult:
    """The whole validation run."""

    verdicts: tuple[ScenarioVerdict, ...]
    ordering_ok: bool

    @property
    def passed(self) -> bool:
        return self.ordering_ok and all(v.passed for v in self.verdicts)

    def render(self) -> str:
        lines = []
        for v in self.verdicts:
            mark = "PASS" if v.passed else "FAIL"
            interval = (
                f" [{v.kappa_ci_low:.4f}, {v.kappa_ci_high:.4f}]"
                f" n_eff={v.n_eff}"
                + (f" outliers={v.outliers}" if v.outliers else "")
                if v.has_interval
                else ""
            )
            lines.append(
                f"[{mark}] {v.key:28s} kappa {v.kappa_measured:.4f}"
                f"{interval} "
                f"(paper {v.kappa_paper:.4f})  I {v.i_measured:.4f} "
                f"(paper {v.i_paper:.4f})"
            )
            for f in v.failures:
                lines.append(f"       - {f}")
        lines.append(
            f"[{'PASS' if self.ordering_ok else 'FAIL'}] "
            "cross-environment kappa ordering matches Table 2"
        )
        lines.append(
            f"overall: {'PASS' if self.passed else 'FAIL'} "
            f"({sum(v.passed for v in self.verdicts)}/{len(self.verdicts)} "
            "environments in tolerance)"
        )
        return "\n".join(lines) + "\n"


def _check_one(
    sc: Scenario,
    *,
    kappa_abs_tol: float,
    i_rel_tol: float,
    stability=None,
    **run_kwargs,
) -> tuple[ScenarioVerdict, float]:
    failures: list[str] = []
    kappa_abs_tol = kappa_abs_tol * _KAPPA_TOL_MULTIPLIER.get(sc.key, 1.0)
    i_rel_tol = i_rel_tol * _I_TOL_MULTIPLIER.get(sc.key, 1.0)

    interval = {}
    if stability is not None:
        # CI-aware grading: the screened cross-seed means carry the κ
        # check, and the distance that must clear the tolerance is from
        # the paper value to the *interval*, not to the point estimate —
        # an environment is out of tolerance only when its whole
        # plausible range is.
        lo, k, hi = stability.interval()
        i = float(stability.i_values.mean())
        u = float(stability.u_values.mean())
        o = float(stability.o_values.mean())
        kappa_gap = max(lo - sc.paper.kappa, sc.paper.kappa - hi, 0.0)
        interval = dict(
            kappa_ci_low=lo,
            kappa_ci_high=hi,
            n_eff=stability.n_eff,
            outliers=stability.screen.n_flagged,
        )
    else:
        rep = run_scenario(sc.key, **run_kwargs)
        k = float(rep.values("kappa").mean())
        i = float(rep.values("I").mean())
        u = float(rep.values("U").mean())
        o = float(rep.values("O").mean())
        kappa_gap = abs(k - sc.paper.kappa)

    if kappa_gap > kappa_abs_tol:
        failures.append(
            f"kappa off by {kappa_gap:.4f} (tol {kappa_abs_tol})"
        )
    if sc.paper.i >= 0.01 and abs(i - sc.paper.i) > i_rel_tol * sc.paper.i:
        failures.append(
            f"I off by {abs(i - sc.paper.i) / sc.paper.i:.0%} (tol {i_rel_tol:.0%})"
        )
    if sc.paper.u == 0.0 and u != 0.0:
        failures.append(f"unexpected drops: U = {u:.2e}")
    if sc.paper.u > 0.0 and u == 0.0:
        failures.append("expected drops (paper U > 0) but observed none")
    if sc.paper.o == 0.0 and o != 0.0:
        failures.append(f"unexpected reordering: O = {o:.2e}")
    if sc.paper.o > 0.0 and o == 0.0:
        failures.append("expected reordering (paper O > 0) but observed none")

    return (
        ScenarioVerdict(
            key=sc.key,
            passed=not failures,
            kappa_measured=k,
            kappa_paper=sc.paper.kappa,
            i_measured=i,
            i_paper=sc.paper.i,
            failures=tuple(failures),
            **interval,
        ),
        k,
    )


def _scenario_stability(sc: Scenario, ci_seeds: int, run_kwargs: dict):
    """The ``ci_seeds``-session stability screen grading one scenario."""
    from ..analysis.stability import environment_stability, stability_seed_plan
    from .runner import persistent_store
    from .scenarios import default_duration_scale

    scale = run_kwargs.get("duration_scale")
    scale = default_duration_scale() if scale is None else scale
    return environment_stability(
        sc.profile(scale),
        seeds=stability_seed_plan(sc.seed, ci_seeds),
        n_runs=run_kwargs.get("n_runs", 5),
        jobs=run_kwargs.get("jobs"),
        store=persistent_store(),
    )


def validate_against_paper(
    *,
    kappa_abs_tol: float = 0.08,
    i_rel_tol: float = 0.5,
    ci: bool = False,
    ci_seeds: int = 4,
    **run_kwargs,
) -> ValidationResult:
    """Rerun all nine environments and grade them against Table 2.

    Requires ``duration_scale >= 0.05``: the dual-replayer environment's
    inter-replayer start offsets are duration-*independent* (milliseconds
    of scheduling latency), so below ~15 ms captures they dominate the
    window and O/L leave the paper's regime.  Shorter scales are fine for
    structural tests, not for grading magnitudes.

    ``ci=True`` grades each environment against a ``ci_seeds``-session
    stability screen instead of one series: κ must bring its whole
    bootstrap interval within tolerance of the paper value (measured from
    the nearest interval edge), and every verdict carries the interval
    columns.  This is both stricter (a wobbly environment whose point
    estimate lands in tolerance by luck now fails) and fairer (a stable
    environment is not failed for one unlucky realization).
    """
    scale = run_kwargs.get("duration_scale")
    if scale is not None and scale < 0.05:
        raise ValueError(
            f"validation needs duration_scale >= 0.05 (got {scale}); "
            "the dual-replayer offsets do not shrink with the window"
        )
    verdicts = []
    measured_k = {}
    for sc in SCENARIOS:
        stability = _scenario_stability(sc, ci_seeds, run_kwargs) if ci else None
        verdict, k = _check_one(
            sc, kappa_abs_tol=kappa_abs_tol, i_rel_tol=i_rel_tol,
            stability=stability, **run_kwargs
        )
        verdicts.append(verdict)
        measured_k[sc.key] = k

    paper_order = sorted(SCENARIOS, key=lambda s: s.paper.kappa)
    measured_order = sorted(SCENARIOS, key=lambda s: measured_k[s.key])
    # Grade ordering on the well-separated groups: environments whose
    # paper kappas differ by < 0.01 (e.g. the three quiet 80G rows) may
    # legitimately swap.
    ordering_ok = True
    for a, b in zip(paper_order[:-1], paper_order[1:]):
        if b.paper.kappa - a.paper.kappa < 0.01:
            continue
        if measured_k[b.key] <= measured_k[a.key]:
            ordering_ok = False
    del measured_order
    return ValidationResult(verdicts=tuple(verdicts), ordering_ok=ordering_ok)
