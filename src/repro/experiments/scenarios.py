"""The evaluation scenario registry: one entry per Table-2 environment.

Each :class:`Scenario` binds an environment constructor to its paper
provenance (section, figure/table ids) and the values the paper reports,
so experiment drivers and EXPERIMENTS.md can print paper-vs-measured side
by side.

Scale control: the paper's captures are 0.3 s (~1.05M packets at
3.52 Mpps).  Full scale takes ~10-25 s of simulation per environment;
``duration_scale`` shrinks the window at identical rates, which preserves
every metric expectation except the clock-step share of L (∝ 1/duration,
see :meth:`repro.testbeds.profiles.EnvironmentProfile.at_duration`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from ..testbeds import (
    EnvironmentProfile,
    fabric_dedicated_40g,
    fabric_dedicated_40g_retest,
    fabric_dedicated_80g,
    fabric_dedicated_80g_noisy,
    fabric_shared_40g,
    fabric_shared_40g_noisy,
    fabric_shared_80g,
    local_dual_replayer,
    local_single_replayer,
)

__all__ = ["PaperRow", "Scenario", "SCENARIOS", "scenario", "default_duration_scale"]


def default_duration_scale() -> float:
    """Duration scale from ``REPRO_SCALE`` (default 0.25; 1.0 = paper scale)."""
    raw = os.environ.get("REPRO_SCALE", "0.25")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SCALE must be a number, got {raw!r}") from exc
    if not 0 < scale <= 4:
        raise ValueError(f"REPRO_SCALE must be in (0, 4], got {scale}")
    return scale


@dataclass(frozen=True)
class PaperRow:
    """The paper-reported mean metrics for one environment (Table 2)."""

    u: float
    o: float
    i: float
    l: float
    kappa: float
    pct10_low: float | None = None
    pct10_high: float | None = None


@dataclass(frozen=True)
class Scenario:
    """One evaluation scenario and its paper provenance."""

    key: str
    build: Callable[[], EnvironmentProfile]
    paper: PaperRow
    figures: tuple[str, ...]
    tables: tuple[str, ...]
    seed: int
    description: str

    def profile(self, duration_scale: float | None = None) -> EnvironmentProfile:
        """The environment profile at the requested duration scale."""
        p = self.build()
        scale = duration_scale if duration_scale is not None else default_duration_scale()
        if scale != 1.0:
            p = p.at_duration(p.duration_ns * scale)
        return p


#: The nine environments in the paper's presentation order (Table 2).
SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        key="local-single",
        build=local_single_replayer,
        paper=PaperRow(0.0, 0.0, 0.0294, 4.27e-6, 0.9853, 92.23, 92.51),
        figures=("4a", "4b"),
        tables=("2",),
        seed=11,
        description="Local bare-metal testbed, single replayer, 40 Gbps.",
    ),
    Scenario(
        key="local-dual",
        build=local_dual_replayer,
        paper=PaperRow(0.0, 0.0259, 0.2022, 9.68e-3, 0.9282, 92.75, 92.90),
        figures=("5",),
        tables=("1", "2"),
        seed=13,
        description="Local testbed, two parallel replayers (Figure 1), 40 Gbps total.",
    ),
    Scenario(
        key="fabric-dedicated-40g",
        build=fabric_dedicated_40g,
        paper=PaperRow(0.0, 0.0, 0.4996, 3.07e-5, 0.7426, 30.64, 48.44),
        figures=("6a", "6b"),
        tables=("2",),
        seed=17,
        description="FABRIC, dedicated ConnectX-6 pair, 40 Gbps (anomalous test 1).",
    ),
    Scenario(
        key="fabric-shared-40g",
        build=fabric_shared_40g,
        paper=PaperRow(0.0, 0.0, 0.0662, 2.24e-5, 0.9669, 26.44, 29.15),
        figures=("7a", "7b"),
        tables=("2",),
        seed=19,
        description="FABRIC, shared SR-IOV NICs, 40 Gbps, idle site.",
    ),
    Scenario(
        key="fabric-dedicated-40g-2",
        build=fabric_dedicated_40g_retest,
        paper=PaperRow(0.0, 0.0, 0.4998, 4.20e-4, 0.7502, 24.01, 27.18),
        figures=("8a", "8b"),
        tables=("2",),
        seed=23,
        description="FABRIC, dedicated NICs re-test (confirms the anomaly).",
    ),
    Scenario(
        key="fabric-dedicated-80g",
        build=fabric_dedicated_80g,
        paper=PaperRow(0.0, 0.0, 0.1073, 8.20e-6, 0.9463, 30.11, 30.19),
        figures=("9a",),
        tables=("2",),
        seed=29,
        description="FABRIC, dedicated NICs, 80 Gbps (6.97 Mpps).",
    ),
    Scenario(
        key="fabric-shared-80g",
        build=fabric_shared_80g,
        paper=PaperRow(0.0, 0.0, 0.1105, 2.26e-5, 0.9448, 30.12, 30.20),
        figures=("9b",),
        tables=("2",),
        seed=31,
        description="FABRIC, shared NICs, 80 Gbps.",
    ),
    Scenario(
        key="fabric-dedicated-80g-noisy",
        build=fabric_dedicated_80g_noisy,
        paper=PaperRow(0.0, 0.0, 0.1085, 1.37e-5, 0.9458, 30.15, 32.16),
        figures=(),
        tables=("2",),
        seed=37,
        description="FABRIC, dedicated NICs, 80 Gbps, with co-located iperf3 noise.",
    ),
    Scenario(
        key="fabric-shared-40g-noisy",
        build=fabric_shared_40g_noisy,
        paper=PaperRow(1.99e-4, 0.0, 0.5024, 2.04e-5, 0.7488, 9.31, 13.81),
        figures=("10a", "10b"),
        tables=("2",),
        seed=41,
        description="FABRIC, shared NICs, 40 Gbps, against an 8-stream iperf3 co-tenant.",
    ),
)

_BY_KEY = {s.key: s for s in SCENARIOS}


def scenario(key: str) -> Scenario:
    """Look up a scenario by key; raises ``KeyError`` with the valid keys."""
    try:
        return _BY_KEY[key]
    except KeyError:
        raise KeyError(
            f"unknown scenario {key!r}; valid keys: {sorted(_BY_KEY)}"
        ) from None
