"""Experiment drivers: scenarios, runners, figures, tables.

The per-figure/table reproduction index lives in DESIGN.md; this package
implements it.  Typical use::

    from repro.experiments import run_scenario, table2, fig4

    report = run_scenario("local-single")      # Section 6.1 series
    print(report.mean_row())
    rows = table2()                            # all nine environments
    fig4a, fig4b = fig4()
    print(fig4a.render())
"""

from .figures import (
    ALL_FIGURES,
    FigureSeries,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
)
from .runner import analyze_trials, run_scenario, run_scenario_trials, run_trials
from .scenarios import SCENARIOS, PaperRow, Scenario, default_duration_scale, scenario
from .tables import render_table1_text, render_table2_text, table1, table2
from .validation import ScenarioVerdict, ValidationResult, validate_against_paper

__all__ = [
    "Scenario",
    "PaperRow",
    "SCENARIOS",
    "scenario",
    "default_duration_scale",
    "run_trials",
    "run_scenario",
    "run_scenario_trials",
    "analyze_trials",
    "FigureSeries",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ALL_FIGURES",
    "table1",
    "table2",
    "render_table1_text",
    "render_table2_text",
    "validate_against_paper",
    "ValidationResult",
    "ScenarioVerdict",
]
