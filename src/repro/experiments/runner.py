"""Experiment execution: run scenarios, cache series reports per process.

Several figures and both tables draw on the same underlying trial series
(e.g. Table 2 needs all nine environments; Figures 4a and 4b share the
local-single series).  ``run_scenario`` memoizes by (scenario, scale,
n_runs, seed) so a full benchmark session simulates each environment once.

Fan-out: ``run_scenario(..., jobs=N)`` (or ``REPRO_JOBS=N`` in the
environment) parallelizes **both** stages on the shared worker pool — the
simulation through :class:`repro.parallel.SimFarm` and the comparison
through :func:`repro.parallel.compare_series_parallel` (whose every
stage shards, the global-LCS ordering metric included via the
prefix-patience blocks of :mod:`repro.parallel.ordershard`) — and both
are exactly equal to their serial paths, so figure and table reproductions are
byte-stable under any job count.  The series cache is therefore keyed
*without* the job count: trials simulated at any ``jobs`` are
interchangeable bit-for-bit.

Persistence: the in-process cache dies with the process; ``--store DIR``
(or ``REPRO_STORE=DIR``, or :func:`configure_store`) backs it with the
content-addressed artifact store of :mod:`repro.sweep.store`, so a
Table-2 / figure / validation driver reuses any series ever simulated
for the same content digest — including entries written by ``repro
sweep`` — and feeds its own misses back in.  The digest is jobs-free and
start-method-free, like the in-process key.
"""

from __future__ import annotations

import os

from ..core.report import RunSeriesReport, compare_series
from ..core.trial import Trial
from ..obs import metrics
from ..obs.trace import span
from ..testbeds import EnvironmentProfile, Testbed
from .scenarios import scenario

__all__ = [
    "run_trials",
    "run_scenario",
    "run_scenario_trials",
    "analyze_trials",
    "configure_store",
    "persistent_store",
]


def analyze_trials(
    trials: list[Trial], environment: str = "", jobs: int | None = None
) -> RunSeriesReport:
    """Compare a trial series, fanning analysis across ``jobs`` processes.

    ``jobs=None`` honors ``REPRO_JOBS`` (default 1 — the serial path);
    any value produces the identical report.
    """
    from ..parallel import compare_series_parallel, default_jobs

    jobs = default_jobs() if jobs is None else int(jobs)
    with span(
        "experiment.analyze",
        environment=environment,
        n_trials=len(trials),
        jobs=jobs,
    ):
        if jobs > 1:
            return compare_series_parallel(
                trials, environment=environment, jobs=jobs
            )
        return compare_series(trials, environment=environment)


def run_trials(
    profile: EnvironmentProfile,
    n_runs: int = 5,
    seed: int = 0,
    jobs: int | None = None,
) -> list[Trial]:
    """Run a trial series on an ad-hoc profile (the quickstart entry point).

    ``jobs`` fans the independent replays across the shared worker pool;
    the trials are bit-identical at any value.
    """
    return Testbed(profile, seed=seed).run_series(n_runs, jobs=jobs)


#: Memoized series per (scenario, scale, n_runs, seed).  A plain dict, not
#: ``lru_cache``: the job count must NOT be part of the key (output is
#: jobs-invariant, and a jobs-keyed cache would re-simulate — and break the
#: identity guarantee tests rely on — when a caller switches job counts).
_series_cache: dict = {}
_SERIES_CACHE_MAX = 32

#: The persistent artifact store behind the in-process cache:
#: ``configure_store`` (or ``--store`` / ``REPRO_STORE``) makes scenario
#: series durable across invocations.  ``False`` = not yet resolved.
_store = False


def configure_store(store) -> None:
    """Install the persistent series store used on in-process cache misses.

    ``store`` is an :class:`repro.sweep.ArtifactStore`, a directory path
    to create one over, or ``None`` to disable persistence (which also
    stops ``REPRO_STORE`` from being consulted this process).  The store
    is keyed by content digest — scenario profile × seed scheme × series
    length — never by job count or pool start method, so any invocation
    shape shares entries (see :mod:`repro.sweep.store`).
    """
    global _store
    if store is None or hasattr(store, "get"):
        _store = store
    else:
        from ..sweep.store import ArtifactStore

        _store = ArtifactStore(store)


def _persistent_store():
    """The configured store, resolving ``REPRO_STORE`` lazily once."""
    global _store
    if _store is False:
        path = os.environ.get("REPRO_STORE")
        configure_store(path if path else None)
    return _store


def persistent_store():
    """The live persistent series store, or ``None``.

    The public face of the ``--store`` / ``REPRO_STORE`` resolution: other
    drivers that fan work out through the sweep coordinator (e.g. the
    stability screen behind ``table2(ci=True)``) call this so their units
    land in — and are satisfied from — the same store as the scenario
    runner's.
    """
    return _persistent_store()


def _cached_series(
    key: str,
    duration_scale: float,
    n_runs: int,
    seed_override: int | None,
    jobs: int | None = None,
) -> tuple[tuple[Trial, ...], str]:
    cache_key = (key, duration_scale, n_runs, seed_override)
    hit = _series_cache.get(cache_key)
    if hit is not None:
        metrics.counter("runner.cache_hits").add()
        return hit
    metrics.counter("runner.cache_misses").add()
    sc = scenario(key)
    profile = sc.profile(duration_scale)
    seed = sc.seed if seed_override is None else seed_override

    store = _persistent_store()
    digest = None
    if store is not None:
        from ..sweep.store import compute_digest

        digest = compute_digest(profile, seed, n_runs)
        entry = store.get(digest)
        if entry is not None:
            metrics.counter("runner.store_hits").add()
            result = (entry.trials, profile.name)
            if len(_series_cache) >= _SERIES_CACHE_MAX:
                _series_cache.pop(next(iter(_series_cache)))
            _series_cache[cache_key] = result
            return result
        metrics.counter("runner.store_misses").add()

    with span(
        "experiment.scenario", key=key, seed=seed, n_runs=n_runs
    ):
        trials = Testbed(profile, seed=seed).run_series(n_runs, jobs=jobs)
    result = (tuple(trials), profile.name)
    if digest is not None:
        from ..sweep.store import digest_key_doc

        store.put(
            digest, result[0], key=digest_key_doc(profile, seed, n_runs)
        )
    if len(_series_cache) >= _SERIES_CACHE_MAX:
        _series_cache.pop(next(iter(_series_cache)))
    _series_cache[cache_key] = result
    return result


def run_scenario_trials(
    key: str,
    *,
    duration_scale: float | None = None,
    n_runs: int = 5,
    seed: int | None = None,
    jobs: int | None = None,
) -> list[Trial]:
    """The raw trials of a registered scenario (memoized per process).

    ``jobs`` only affects how a cache *miss* is simulated (serially or on
    the pool); hits return the identical cached tuple either way.
    """
    sc = scenario(key)  # validate the key before touching the cache
    scale = duration_scale if duration_scale is not None else _default_scale()
    trials, _ = _cached_series(sc.key, scale, n_runs, seed, jobs)
    return list(trials)


def run_scenario(
    key: str,
    *,
    duration_scale: float | None = None,
    n_runs: int = 5,
    seed: int | None = None,
    jobs: int | None = None,
) -> RunSeriesReport:
    """Run (or reuse) a scenario's series and return its analysis report.

    ``jobs`` fans both the simulation (on a cache miss) and the Section-3
    analysis out across the shared pool (default: ``REPRO_JOBS`` or
    serial); the report is identical either way.
    """
    sc = scenario(key)
    scale = duration_scale if duration_scale is not None else _default_scale()
    trials, env_name = _cached_series(sc.key, scale, n_runs, seed, jobs)
    return analyze_trials(list(trials), environment=env_name, jobs=jobs)


def _default_scale() -> float:
    from .scenarios import default_duration_scale

    return default_duration_scale()
