"""Experiment execution: run scenarios, cache series reports per process.

Several figures and both tables draw on the same underlying trial series
(e.g. Table 2 needs all nine environments; Figures 4a and 4b share the
local-single series).  ``run_scenario`` memoizes by (scenario, scale,
n_runs, seed) so a full benchmark session simulates each environment once.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.report import RunSeriesReport, compare_series
from ..core.trial import Trial
from ..testbeds import EnvironmentProfile, Testbed
from .scenarios import scenario

__all__ = ["run_trials", "run_scenario", "run_scenario_trials"]


def run_trials(
    profile: EnvironmentProfile, n_runs: int = 5, seed: int = 0
) -> list[Trial]:
    """Run a trial series on an ad-hoc profile (the quickstart entry point)."""
    return Testbed(profile, seed=seed).run_series(n_runs)


@lru_cache(maxsize=32)
def _cached_series(
    key: str, duration_scale: float, n_runs: int, seed_override: int | None
) -> tuple[tuple[Trial, ...], str]:
    sc = scenario(key)
    profile = sc.profile(duration_scale)
    seed = sc.seed if seed_override is None else seed_override
    trials = Testbed(profile, seed=seed).run_series(n_runs)
    return tuple(trials), profile.name


def run_scenario_trials(
    key: str,
    *,
    duration_scale: float | None = None,
    n_runs: int = 5,
    seed: int | None = None,
) -> list[Trial]:
    """The raw trials of a registered scenario (memoized per process)."""
    sc = scenario(key)  # validate the key before touching the cache
    scale = duration_scale if duration_scale is not None else _default_scale()
    trials, _ = _cached_series(sc.key, scale, n_runs, seed)
    return list(trials)


def run_scenario(
    key: str,
    *,
    duration_scale: float | None = None,
    n_runs: int = 5,
    seed: int | None = None,
) -> RunSeriesReport:
    """Run (or reuse) a scenario's series and return its analysis report."""
    sc = scenario(key)
    scale = duration_scale if duration_scale is not None else _default_scale()
    trials, env_name = _cached_series(sc.key, scale, n_runs, seed)
    return compare_series(list(trials), environment=env_name)


def _default_scale() -> float:
    from .scenarios import default_duration_scale

    return default_duration_scale()
