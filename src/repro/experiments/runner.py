"""Experiment execution: run scenarios, cache series reports per process.

Several figures and both tables draw on the same underlying trial series
(e.g. Table 2 needs all nine environments; Figures 4a and 4b share the
local-single series).  ``run_scenario`` memoizes by (scenario, scale,
n_runs, seed) so a full benchmark session simulates each environment once.

Analysis fan-out: ``run_scenario(..., jobs=N)`` (or ``REPRO_JOBS=N`` in
the environment) routes the comparison through
:func:`repro.parallel.compare_series_parallel`, which is exactly equal to
the serial path — figure and table reproductions are byte-stable under any
job count.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.report import RunSeriesReport, compare_series
from ..core.trial import Trial
from ..testbeds import EnvironmentProfile, Testbed
from .scenarios import scenario

__all__ = ["run_trials", "run_scenario", "run_scenario_trials", "analyze_trials"]


def analyze_trials(
    trials: list[Trial], environment: str = "", jobs: int | None = None
) -> RunSeriesReport:
    """Compare a trial series, fanning analysis across ``jobs`` processes.

    ``jobs=None`` honors ``REPRO_JOBS`` (default 1 — the serial path);
    any value produces the identical report.
    """
    from ..parallel import compare_series_parallel, default_jobs

    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs > 1:
        return compare_series_parallel(trials, environment=environment, jobs=jobs)
    return compare_series(trials, environment=environment)


def run_trials(
    profile: EnvironmentProfile, n_runs: int = 5, seed: int = 0
) -> list[Trial]:
    """Run a trial series on an ad-hoc profile (the quickstart entry point)."""
    return Testbed(profile, seed=seed).run_series(n_runs)


@lru_cache(maxsize=32)
def _cached_series(
    key: str, duration_scale: float, n_runs: int, seed_override: int | None
) -> tuple[tuple[Trial, ...], str]:
    sc = scenario(key)
    profile = sc.profile(duration_scale)
    seed = sc.seed if seed_override is None else seed_override
    trials = Testbed(profile, seed=seed).run_series(n_runs)
    return tuple(trials), profile.name


def run_scenario_trials(
    key: str,
    *,
    duration_scale: float | None = None,
    n_runs: int = 5,
    seed: int | None = None,
) -> list[Trial]:
    """The raw trials of a registered scenario (memoized per process)."""
    sc = scenario(key)  # validate the key before touching the cache
    scale = duration_scale if duration_scale is not None else _default_scale()
    trials, _ = _cached_series(sc.key, scale, n_runs, seed)
    return list(trials)


def run_scenario(
    key: str,
    *,
    duration_scale: float | None = None,
    n_runs: int = 5,
    seed: int | None = None,
    jobs: int | None = None,
) -> RunSeriesReport:
    """Run (or reuse) a scenario's series and return its analysis report.

    ``jobs`` fans the Section-3 analysis out across processes (default:
    ``REPRO_JOBS`` or serial); the report is identical either way.
    """
    sc = scenario(key)
    scale = duration_scale if duration_scale is not None else _default_scale()
    trials, env_name = _cached_series(sc.key, scale, n_runs, seed)
    return analyze_trials(list(trials), environment=env_name, jobs=jobs)


def _default_scale() -> float:
    from .scenarios import default_duration_scale

    return default_duration_scale()
