"""Per-figure drivers: regenerate every histogram figure's data series.

Each ``fig*`` function returns a :class:`FigureSeries` holding the per-run
delta histograms (runs B-E against run A) exactly as the corresponding
paper figure plots them, plus a renderer to text.  Figure → scenario
mapping follows DESIGN.md's experiment index:

====== ============================ ==========================
Figure Content                      Scenario
====== ============================ ==========================
4a/4b  IAT / latency deltas         local-single
5      IAT deltas                   local-dual
6a/6b  IAT / latency deltas         fabric-dedicated-40g
7a/7b  IAT / latency deltas         fabric-shared-40g
8a/8b  IAT / latency deltas         fabric-dedicated-40g-2
9a     IAT deltas at 80 Gbps        fabric-dedicated-80g
9b     IAT deltas at 80 Gbps        fabric-shared-80g
10a/b  IAT / latency deltas, noisy  fabric-shared-40g-noisy
====== ============================ ==========================

(Figures 2 and 3 are the analytic worst-case constructions; they live in
:func:`repro.core.latency.max_latency_construction` and
:func:`repro.core.iat.max_iat_construction` and are exercised by the
metric property tests and ``benchmarks/bench_metrics.py``.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.textplot import render_histogram, render_series_table
from ..core.histograms import DeltaHistogram
from .runner import run_scenario

__all__ = [
    "FigureSeries",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "ALL_FIGURES",
]


@dataclass(frozen=True)
class FigureSeries:
    """One paper figure's regenerated data."""

    figure_id: str
    scenario_key: str
    kind: str  # "iat" or "latency"
    histograms: tuple[DeltaHistogram, ...]
    caption: str

    def to_svg(self, path=None):
        """Render the figure as a publication-style SVG.

        Returns the :class:`~repro.viz.svg.SvgDocument`; with ``path`` it
        is also written to disk.
        """
        from ..viz import histogram_figure

        kind = "IAT delta" if self.kind == "iat" else "latency delta"
        doc = histogram_figure(
            list(self.histograms),
            title=f"Figure {self.figure_id}: {self.caption}",
            xlabel=f"{kind} (ns)",
        )
        if path is not None:
            doc.save(path)
        return doc

    def render(self) -> str:
        """The figure as stacked text histograms plus the series table."""
        parts = [f"Figure {self.figure_id}: {self.caption}", ""]
        for h in self.histograms:
            parts.append(render_histogram(h, title=f"run {h.label} vs A:"))
        parts.append("series table (percent of packets per bin):")
        parts.append(render_series_table(list(self.histograms)))
        return "\n".join(parts)


def _series(
    figure_id: str, key: str, kind: str, caption: str, **run_kwargs
) -> FigureSeries:
    report = run_scenario(key, **run_kwargs)
    attr = "iat_hist" if kind == "iat" else "latency_hist"
    return FigureSeries(
        figure_id=figure_id,
        scenario_key=key,
        kind=kind,
        histograms=tuple(getattr(p, attr) for p in report.pairs),
        caption=caption,
    )


def fig4(**kw) -> tuple[FigureSeries, FigureSeries]:
    """Figures 4a/4b: local single-replayer IAT and latency deltas."""
    return (
        _series("4a", "local-single", "iat", "IAT deltas, local testbed, 1 replayer.", **kw),
        _series("4b", "local-single", "latency", "Latency deltas, local testbed, 1 replayer.", **kw),
    )


def fig5(**kw) -> FigureSeries:
    """Figure 5: local dual-replayer IAT deltas (longer tails than Fig 4a)."""
    return _series("5", "local-dual", "iat", "IAT deltas, local testbed, 2 parallel replayers.", **kw)


def fig6(**kw) -> tuple[FigureSeries, FigureSeries]:
    """Figures 6a/6b: FABRIC dedicated NICs at 40 Gbps."""
    return (
        _series("6a", "fabric-dedicated-40g", "iat", "IAT deltas, FABRIC dedicated NICs, 40 Gbps.", **kw),
        _series("6b", "fabric-dedicated-40g", "latency", "Latency deltas, FABRIC dedicated NICs, 40 Gbps.", **kw),
    )


def fig7(**kw) -> tuple[FigureSeries, FigureSeries]:
    """Figures 7a/7b: FABRIC shared NICs at 40 Gbps."""
    return (
        _series("7a", "fabric-shared-40g", "iat", "IAT deltas, FABRIC shared NICs, 40 Gbps.", **kw),
        _series("7b", "fabric-shared-40g", "latency", "Latency deltas, FABRIC shared NICs, 40 Gbps.", **kw),
    )


def fig8(**kw) -> tuple[FigureSeries, FigureSeries]:
    """Figures 8a/8b: the FABRIC dedicated-NIC retest at 40 Gbps."""
    return (
        _series("8a", "fabric-dedicated-40g-2", "iat", "IAT deltas, FABRIC dedicated NICs retest.", **kw),
        _series("8b", "fabric-dedicated-40g-2", "latency", "Latency deltas, FABRIC dedicated NICs retest.", **kw),
    )


def fig9(**kw) -> tuple[FigureSeries, FigureSeries]:
    """Figures 9a/9b: FABRIC at 80 Gbps, dedicated and shared NICs (IAT)."""
    return (
        _series("9a", "fabric-dedicated-80g", "iat", "IAT deltas, FABRIC dedicated NICs, 80 Gbps.", **kw),
        _series("9b", "fabric-shared-80g", "iat", "IAT deltas, FABRIC shared NICs, 80 Gbps.", **kw),
    )


def fig10(**kw) -> tuple[FigureSeries, FigureSeries]:
    """Figures 10a/10b: FABRIC shared NICs at 40 Gbps under co-tenant noise."""
    return (
        _series("10a", "fabric-shared-40g-noisy", "iat", "IAT deltas, shared NICs under iperf3 noise.", **kw),
        _series("10b", "fabric-shared-40g-noisy", "latency", "Latency deltas, shared NICs under iperf3 noise.", **kw),
    )


#: figure id → zero-arg generator returning that figure's series.
ALL_FIGURES = {
    "4a": lambda **kw: fig4(**kw)[0],
    "4b": lambda **kw: fig4(**kw)[1],
    "5": fig5,
    "6a": lambda **kw: fig6(**kw)[0],
    "6b": lambda **kw: fig6(**kw)[1],
    "7a": lambda **kw: fig7(**kw)[0],
    "7b": lambda **kw: fig7(**kw)[1],
    "8a": lambda **kw: fig8(**kw)[0],
    "8b": lambda **kw: fig8(**kw)[1],
    "9a": lambda **kw: fig9(**kw)[0],
    "9b": lambda **kw: fig9(**kw)[1],
    "10a": lambda **kw: fig10(**kw)[0],
    "10b": lambda **kw: fig10(**kw)[1],
}
