"""Shard partials and the exact merge/reduce algebra.

Exactness model — why parallel equals serial *bit for bit*:

1. Every per-row quantity (a latency delta, an IAT delta, a histogram bin
   hit, a ±10 ns hit) is computed **elementwise** by the same IEEE-754
   operations the batch path runs; which shard a row lands in cannot change
   its value.
2. All *integer* reductions (histogram counts, within-bound counts, row
   counts) are exact and associative, so per-shard counts summed in any
   order equal the whole-array counts.
3. All *floating-point* reductions (the L and I numerators) are **deferred
   to the merge**: shards return their delta slices (or write them into a
   shared output buffer), the merge reassembles the full arrays in row
   order, and the final ``Σ|Δ|`` runs once over the assembled array —
   executing the identical reduction (NumPy pairwise summation over the
   identical array) the serial path runs.  Merging per-shard *float sums*
   instead would tie the result to the partition because IEEE addition is
   not associative; that design is deliberately rejected here.

Consequently :func:`merge_partials` is invariant under the shard partition
and, because partials are keyed by their row ranges, invariant under the
order they are merged in; :meth:`ShardPartial.combine` of adjacent shards
is associative.  The property suite (``tests/test_properties_parallel.py``)
pins all three claims.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.histograms import SymlogBins

__all__ = ["ShardPartial", "MergedTimings", "compute_shard_partial", "merge_partials"]


@dataclass(frozen=True)
class ShardPartial:
    """One shard's contribution to a pair's timing metrics.

    Integer fields are exact partial reductions; the delta slices carry the
    not-yet-reduced float data (``None`` when the shard wrote them into a
    shared output buffer instead — the pool-transport form).
    """

    lo: int
    hi: int
    iat_within: int
    iat_counts: np.ndarray
    lat_counts: np.ndarray
    dlat: np.ndarray | None = None
    diat: np.ndarray | None = None

    @property
    def n_rows(self) -> int:
        """Common-packet rows this shard covers."""
        return self.hi - self.lo

    def combine(self, other: "ShardPartial") -> "ShardPartial":
        """Merge two *adjacent* shard partials into one.

        Counts add (exact); delta slices concatenate in row order, so the
        result is indistinguishable from a partial computed over the
        combined range directly — which is what makes this operation
        associative and the reducer partition-invariant.
        """
        first, second = (self, other) if self.lo <= other.lo else (other, self)
        if first.hi != second.lo:
            raise ValueError(
                f"can only combine adjacent shards, got [{first.lo},{first.hi}) "
                f"+ [{second.lo},{second.hi})"
            )
        if (first.dlat is None) != (second.dlat is None):
            raise ValueError("cannot combine buffered and unbuffered partials")
        cat = (
            None
            if first.dlat is None
            else (
                np.concatenate([first.dlat, second.dlat]),
                np.concatenate([first.diat, second.diat]),
            )
        )
        return ShardPartial(
            lo=first.lo,
            hi=second.hi,
            iat_within=first.iat_within + second.iat_within,
            iat_counts=first.iat_counts + second.iat_counts,
            lat_counts=first.lat_counts + second.lat_counts,
            dlat=None if cat is None else cat[0],
            diat=None if cat is None else cat[1],
        )


@dataclass(frozen=True)
class MergedTimings:
    """The fully merged timing data of one pair, ready for the reductions."""

    n_common: int
    iat_within: int
    iat_counts: np.ndarray
    lat_counts: np.ndarray
    dlat: np.ndarray
    diat: np.ndarray


def compute_shard_partial(
    times_a: np.ndarray,
    times_b: np.ndarray,
    idx_a: np.ndarray,
    idx_b: np.ndarray,
    lo: int,
    hi: int,
    bins: SymlogBins,
    within_ns: float,
    out_dlat: np.ndarray | None = None,
    out_diat: np.ndarray | None = None,
) -> ShardPartial:
    """The timing contribution of common rows ``[lo, hi)``.

    ``times_*`` are the *full* trial timestamp arrays (gaps reach back to
    each packet's predecessor in the full trial, exactly as
    :meth:`repro.core.trial.Trial.iats_ns` defines them); ``idx_*`` are the
    full matching index arrays.  When output buffers are given the delta
    slices are written there (shared-memory transport) and not carried on
    the partial.
    """
    ja = idx_a[lo:hi]
    jb = idx_b[lo:hi]

    # Latency deltas: relative arrival in B minus relative arrival in A
    # (identical expression to core.latency.latency_deltas_ns).
    dlat = (times_b[jb] - times_b[0]) - (times_a[ja] - times_a[0])

    # IAT deltas: per-packet gap in B minus gap in A, where the gap of the
    # first packet of a trial is 0 (core.trial.Trial.iats_ns semantics).
    # ja - 1 may wrap to -1 for row 0; the masked store below overwrites
    # those lanes with the base case before anyone reads them.
    g_a = times_a[ja] - times_a[ja - 1]
    g_a[ja == 0] = 0.0
    g_b = times_b[jb] - times_b[jb - 1]
    g_b[jb == 0] = 0.0
    diat = g_b - g_a

    edges = bins.edges()
    iat_counts, _ = np.histogram(diat, bins=edges)
    lat_counts, _ = np.histogram(dlat, bins=edges)
    iat_within = int(np.count_nonzero(np.abs(diat) <= within_ns))

    buffered = out_dlat is not None
    if buffered:
        out_dlat[lo:hi] = dlat
        out_diat[lo:hi] = diat
    return ShardPartial(
        lo=int(lo),
        hi=int(hi),
        iat_within=iat_within,
        iat_counts=iat_counts.astype(np.int64),
        lat_counts=lat_counts.astype(np.int64),
        dlat=None if buffered else dlat,
        diat=None if buffered else diat,
    )


def merge_partials(
    partials: list[ShardPartial],
    n_common: int,
    bins: SymlogBins,
    dlat_buffer: np.ndarray | None = None,
    diat_buffer: np.ndarray | None = None,
) -> MergedTimings:
    """Recombine shard partials into the whole pair's timing data.

    Accepts the partials in any order (they are keyed by row range) and
    any partition granularity; validates that together they tile
    ``[0, n_common)`` exactly.  Buffered partials read their assembled
    delta arrays from the shared output buffers the shards wrote.
    """
    ordered = sorted(partials, key=lambda p: p.lo)
    cursor = 0
    for p in ordered:
        if p.lo != cursor:
            raise ValueError(
                f"partials do not tile [0, {n_common}): gap/overlap at row {cursor}"
            )
        cursor = p.hi
    if cursor != n_common:
        raise ValueError(f"partials cover [0, {cursor}) but n_common is {n_common}")

    n_bins = bins.edges().size - 1
    iat_counts = np.zeros(n_bins, dtype=np.int64)
    lat_counts = np.zeros(n_bins, dtype=np.int64)
    iat_within = 0
    for p in ordered:
        iat_counts += p.iat_counts
        lat_counts += p.lat_counts
        iat_within += p.iat_within

    if dlat_buffer is not None:
        dlat, diat = dlat_buffer, diat_buffer
    elif ordered and ordered[0].dlat is not None:
        dlat = np.concatenate([p.dlat for p in ordered])
        diat = np.concatenate([p.diat for p in ordered])
    else:
        dlat = np.empty(0, dtype=np.float64)
        diat = np.empty(0, dtype=np.float64)

    return MergedTimings(
        n_common=n_common,
        iat_within=iat_within,
        iat_counts=iat_counts,
        lat_counts=lat_counts,
        dlat=np.asarray(dlat, dtype=np.float64),
        diat=np.asarray(diat, dtype=np.float64),
    )
