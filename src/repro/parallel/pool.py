"""The persistent, process-global worker pool.

One ``repro report`` regenerates both tables and all thirteen figures:
before this module existed every series comparison (and every simulated
series) spun up its own :class:`~concurrent.futures.ProcessPoolExecutor`,
paying pool startup — fork, import, allocator warm-up — dozens of times
per invocation, and an exception between two series could leave a pool
running with no owner to shut it down.

This module owns exactly one pool per process instead:

* :func:`get_pool` creates it **lazily** on first use and hands the same
  executor to every caller — the simulation fan-out
  (:mod:`repro.parallel.simfarm`), the comparison engine
  (:mod:`repro.parallel.engine`) and the sharded matching
  (:mod:`repro.parallel.matchshard`) all draw from it;
* :func:`shutdown_pool` tears it down; the CLI calls it in a ``finally``
  so error exits cannot leak workers, and an ``atexit`` hook covers
  library users who never call it;
* :func:`pool_stats` exposes the lifecycle counters the tests assert on
  ("exactly one pool per invocation" is a tested property, not a hope).

Requesting a different worker count than the live pool has is a
**resize**: the old pool is drained and a fresh one created (job counts
never change mid-invocation in real use; tests sweep them).  Exactness is
never at stake — every consumer of the pool is bit-identical to its
serial path at any worker count — only startup cost is.

:func:`gather` is the companion error-path helper: it waits on a batch of
futures *in submission order* and, when one fails, cancels the rest and
drains the pool before re-raising.  Without the drain, sibling tasks of a
failed batch would still be running when the caller's ``ShmArena``
unlinks their input segments — under the old pool-per-series design that
stalled the pool's own teardown; under a shared pool it would poison the
*next* batch.  Failures are counted (``pool.task_failures``) and the
re-raised exception carries the remote worker traceback string
(``remote_traceback``) so a drained batch never swallows the original
cause.

Observability: :func:`submit_task` is the telemetry-aware front door —
every fan-out site names its stage (``analysis.shard.timing``,
``sim.run``, ...) and, when tracing is enabled
(:mod:`repro.obs.trace`), the task runs wrapped in
:func:`repro.obs.worker.run_traced` so its spans and metric deltas ride
back on the result; :func:`gather` unwraps those envelopes and merges
them parent-side.  With tracing off, ``submit_task`` degenerates to a
bare ``pool.submit`` plus one counter increment.

Start method: workers start via **forkserver** by default — the server
process pre-imports NumPy and the engine modules once
(:func:`multiprocessing.set_forkserver_preload`), so each worker forks
from a warm template instead of re-running imports (``spawn``) or
copying the parent's full heap of trial arrays (``fork``).  The
``REPRO_POOL_START`` environment variable overrides the choice
(``forkserver``/``fork``/``spawn``); unknown values fall back to the
platform default.  :func:`pool_stats` reports the live method, and every
benchmark JSON records it (:mod:`benchmarks._emit`).

Dispatch cost: :func:`submit_batch` coalesces many small tasks (ordering
blocks, timing shards) into one pool dispatch per worker — one pickle,
one queue hop, one result envelope for the whole run of tasks, while
per-task spans are preserved under tracing
(:func:`repro.obs.worker.run_traced_batch`).  :func:`batch_chunks` is
the companion splitter: contiguous, balanced runs so that flattening
batch results preserves task order.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, wait
from dataclasses import dataclass

from ..obs import metrics, trace
from ..obs.worker import TaskEnvelope, absorb, run_traced, run_traced_batch

__all__ = [
    "get_pool",
    "shutdown_pool",
    "pool_stats",
    "pool_scope",
    "submit_task",
    "submit_batch",
    "batch_chunks",
    "gather",
    "PoolStats",
]


_lock = threading.Lock()
_executor: ProcessPoolExecutor | None = None
_executor_jobs: int = 0
_executor_start: str = ""
_created_total: int = 0

# Live task depth for the pool.tasks_inflight gauge: bumped at submit,
# decremented by a done-callback, so a /metrics scrape or counter track
# shows the pool's instantaneous backlog.
_inflight_lock = threading.Lock()
_inflight: int = 0


def _inflight_add(n: int) -> None:
    global _inflight
    with _inflight_lock:
        _inflight += n
        metrics.gauge("pool.tasks_inflight").set(_inflight)

#: Modules the forkserver template imports once; every worker forks with
#: them warm.  ``repro.parallel.engine`` transitively pulls in the core
#: metric kernels, the shard workers and the shm transport — the whole
#: import graph a comparison task touches.
_FORKSERVER_PRELOAD = ["numpy", "repro.parallel.engine", "repro.parallel.simfarm"]


@dataclass(frozen=True)
class PoolStats:
    """Lifecycle snapshot of the global pool (for tests and diagnostics)."""

    active: bool
    jobs: int
    created_total: int
    start_method: str = ""


def pool_start_method() -> str:
    """The start method the next pool will use (``REPRO_POOL_START`` aware)."""
    method = os.environ.get("REPRO_POOL_START", "forkserver").strip().lower()
    if method not in multiprocessing.get_all_start_methods():
        return multiprocessing.get_start_method()
    return method


def _pool_context(method: str):
    """A multiprocessing context for ``method``, preloaded when forkserver."""
    ctx = multiprocessing.get_context(method)
    if method == "forkserver":
        # Harmless if the server is already running: the preload list only
        # applies when the server process starts.  Import failures inside
        # the server are ignored by multiprocessing itself.
        ctx.set_forkserver_preload(_FORKSERVER_PRELOAD)
    return ctx


def get_pool(jobs: int) -> ProcessPoolExecutor:
    """The process-global executor, created lazily with ``jobs`` workers.

    Serial paths (``jobs=1``) never touch the pool — callers must only
    ask for one when they actually fan out.
    """
    global _executor, _executor_jobs, _executor_start, _created_total
    jobs = int(jobs)
    if jobs < 2:
        raise ValueError("the worker pool is for fan-out; serial paths run in-process")
    method = pool_start_method()
    with _lock:
        if _executor is not None and (
            _executor_jobs != jobs
            or _executor_start != method
            or getattr(_executor, "_broken", False)
        ):
            _executor.shutdown(wait=True)
            _executor = None
        if _executor is None:
            _executor = ProcessPoolExecutor(
                max_workers=jobs, mp_context=_pool_context(method)
            )
            _executor_jobs = jobs
            _executor_start = method
            _created_total += 1
            metrics.counter("pool.created").add()
            metrics.gauge("pool.workers").set(jobs)
        return _executor


def shutdown_pool() -> None:
    """Drain and discard the global pool (idempotent, safe to call always)."""
    global _executor
    with _lock:
        if _executor is not None:
            _executor.shutdown(wait=True)
            _executor = None


# Library users (no CLI ``finally``) still get a clean interpreter exit.
atexit.register(shutdown_pool)


def pool_stats() -> PoolStats:
    """Current lifecycle counters."""
    with _lock:
        return PoolStats(
            active=_executor is not None,
            jobs=_executor_jobs if _executor is not None else 0,
            created_total=_created_total,
            start_method=_executor_start if _executor is not None else "",
        )


class pool_scope:
    """``with pool_scope():`` — guarantee teardown at scope exit.

    The CLI wraps each command in one so that both clean exits and
    exceptions drain the pool; nesting is harmless (teardown is
    idempotent, and an outer scope simply finds the pool already gone).
    """

    def __enter__(self) -> "pool_scope":
        return self

    def __exit__(self, *exc) -> None:
        shutdown_pool()


def submit_task(
    pool: ProcessPoolExecutor, fn, task, *, name: str | None = None, **attrs
) -> Future:
    """Submit one engine task, wrapped for telemetry when tracing is on.

    ``name`` is the task's span name (``package.stage.substage``);
    ``attrs`` annotate it (shard bounds, run index).  With tracing
    disabled — the default — this is ``pool.submit(fn, task)`` plus one
    counter increment, and results cross the pool unwrapped.
    """
    metrics.counter("pool.tasks_submitted").add()
    if name is not None and trace.is_enabled():
        fut = pool.submit(run_traced, fn, task, name, attrs, time.time_ns())
    else:
        fut = pool.submit(fn, task)
    _inflight_add(1)
    fut.add_done_callback(lambda _f: _inflight_add(-1))
    return fut


def batch_chunks(items: list, n_batches: int) -> list[list]:
    """Split ``items`` into at most ``n_batches`` contiguous balanced runs.

    Chunks are contiguous, so flattening per-chunk results in order
    reproduces the original item order — the property the engine's merge
    steps rely on.  Never returns an empty chunk.
    """
    n = len(items)
    k = max(1, min(int(n_batches), n))
    bounds = [round(j * n / k) for j in range(k + 1)]
    return [items[bounds[j] : bounds[j + 1]] for j in range(k)]


def _run_batch(fn, tasks: list) -> list:
    """Worker-side untraced batch body: run every task, return all results."""
    return [fn(t) for t in tasks]


def submit_batch(
    pool: ProcessPoolExecutor,
    fn,
    tasks: list,
    *,
    name: str | None = None,
    attrs_list: list | None = None,
) -> Future:
    """Submit a run of small tasks as **one** pool dispatch.

    The future resolves to the list of per-task results in task order.
    Fixed costs — pickling, queue hops, future bookkeeping, telemetry
    envelopes — are paid once per batch instead of once per task; with
    ~129 ordering blocks per paper-scale pair that is the difference
    between dispatch overhead rivaling the compute and it disappearing.

    When tracing is on, every task still gets its own span (``name`` with
    its entry from ``attrs_list``), stamped with the worker pid — batch
    submission is invisible in the trace except for the shared envelope.
    """
    metrics.counter("pool.tasks_submitted").add(len(tasks))
    metrics.counter("pool.batches_submitted").add()
    if name is not None and trace.is_enabled():
        fut = pool.submit(
            run_traced_batch, fn, tasks, name, attrs_list, time.time_ns()
        )
    else:
        fut = pool.submit(_run_batch, fn, tasks)
    n = len(tasks)
    _inflight_add(n)
    fut.add_done_callback(lambda _f: _inflight_add(-n))
    return fut


def _unwrap(result):
    """Absorb a traced task's telemetry; hand back the bare payload."""
    if type(result) is TaskEnvelope:
        absorb(result.telemetry)
        return result.payload
    return result


def gather(futures: list[Future]) -> list:
    """Results of ``futures`` in list order; on error, drain before raising.

    Cancels everything still pending, then waits for the already-running
    tasks to finish, so no worker is still reading a shared-memory segment
    the caller is about to unlink — the failure mode that used to leave a
    doomed pool (and its segments) behind when one task of a series
    raised.

    Telemetry envelopes from traced tasks (see :func:`submit_task`) are
    unwrapped here, so every call site keeps receiving the bare payloads.
    On failure, every failed future of the batch is counted in
    ``pool.task_failures`` and the first failure is re-raised with the
    remote worker traceback string attached as ``remote_traceback`` (and
    as an exception note on Python >= 3.11) — the drain must never
    swallow the original cause.
    """
    try:
        return [_unwrap(f.result()) for f in futures]
    except BaseException as exc:
        for f in futures:
            f.cancel()
        wait(futures)
        n_failed = 0
        for f in futures:
            if not f.cancelled() and f.done() and f.exception() is not None:
                n_failed += 1
        if n_failed:
            metrics.counter("pool.task_failures").add(n_failed)
        # ProcessPoolExecutor chains the worker traceback as a
        # _RemoteTraceback cause; surface it as a plain string so the
        # error report names the worker-side frames even after the
        # batch has been drained and its segments unlinked.
        cause = exc.__cause__
        if cause is not None and type(cause).__name__ == "_RemoteTraceback":
            remote = str(cause)
            exc.remote_traceback = remote
            if hasattr(exc, "add_note"):  # Python >= 3.11
                exc.add_note(f"remote worker traceback:\n{remote}")
        raise
