"""Parallel sharded comparison engine for the Section-3 metrics.

The batch drivers in :mod:`repro.core.report` analyze one trial pair per
process; the paper's artifact notes analysis time "scales with the length
of the packet captures", and repeated-trial methodologies multiply that
cost across many pairs.  This package fans the work out across cores while
staying **bit-identical** to the serial path:

* :class:`~repro.parallel.shard.ShardPlanner` — splits a matched pair's
  common-packet rows into aligned, contiguous shards (L/I/U parallelize
  per row; the global-LCS ordering metric O parallelizes by prefix
  blocks whose patience states a prefix-patience merge folds back into
  the exact serial LIS — see :mod:`~repro.parallel.ordershard`).
* :mod:`~repro.parallel.shm` — ``multiprocessing.shared_memory`` transport
  of the packet arrays; workers never pickle payloads.
* :mod:`~repro.parallel.partials` — the merge/reduce algebra: exact
  integer partials, deferred float reductions.
* :class:`~repro.parallel.engine.ParallelComparator` and the
  :func:`~repro.parallel.engine.compare_series_parallel` /
  :func:`~repro.parallel.engine.compare_trials_parallel` drop-ins.

The *simulation* stage fans out through the same machinery:

* :mod:`~repro.parallel.pool` — the persistent, process-global worker
  pool every fan-out draws from (one pool per ``repro`` invocation);
* :class:`~repro.parallel.simfarm.SimFarm` — per-run ``SeedSequence``
  fan-out of ``Testbed.run_series`` replays, bit-identical to serial;
* :func:`~repro.parallel.matchshard.match_trials_sharded` — bucket-
  parallel packet matching, exactly equal to the serial matcher.

See ``docs/parallel.md`` for the sharding model and the exactness
argument, and ``tests/test_parallel_differential.py`` /
``tests/test_sim_differential.py`` for the differential harnesses that
prove parallel == serial.
"""

from .engine import (
    ParallelComparator,
    compare_series_parallel,
    compare_trials_parallel,
)
from .matchshard import DEFAULT_MIN_MATCH_PACKETS, match_trials_sharded
from .ordershard import (
    PatienceBlock,
    PatienceState,
    edit_script_from_matching_sharded,
    lis_mask_sharded,
    mask_from_state,
    merge_block_inplace,
    merge_blocks,
    patience_block,
    patience_block_values,
    plan_order_blocks,
)
from .partials import MergedTimings, ShardPartial, compute_shard_partial, merge_partials
from .pool import PoolStats, gather, get_pool, pool_scope, pool_stats, shutdown_pool
from .shard import (
    DEFAULT_MIN_ORDER_PACKETS,
    DEFAULT_MIN_SHARD_PACKETS,
    DEFAULT_ORDER_BLOCK_PACKETS,
    ShardPlan,
    ShardPlanner,
    default_jobs,
)
from .shm import ArraySpec, ShmArena
from .simfarm import SimFarm, run_series_parallel

__all__ = [
    "ParallelComparator",
    "compare_trials_parallel",
    "compare_series_parallel",
    "SimFarm",
    "run_series_parallel",
    "match_trials_sharded",
    "edit_script_from_matching_sharded",
    "lis_mask_sharded",
    "patience_block",
    "patience_block_values",
    "merge_blocks",
    "merge_block_inplace",
    "mask_from_state",
    "plan_order_blocks",
    "PatienceBlock",
    "PatienceState",
    "get_pool",
    "shutdown_pool",
    "pool_stats",
    "pool_scope",
    "gather",
    "PoolStats",
    "ShardPlanner",
    "ShardPlan",
    "ShardPartial",
    "MergedTimings",
    "compute_shard_partial",
    "merge_partials",
    "ArraySpec",
    "ShmArena",
    "DEFAULT_MIN_SHARD_PACKETS",
    "DEFAULT_MIN_MATCH_PACKETS",
    "DEFAULT_ORDER_BLOCK_PACKETS",
    "DEFAULT_MIN_ORDER_PACKETS",
    "default_jobs",
]
