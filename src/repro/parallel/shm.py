"""Shared-memory transport of packet arrays between comparison processes.

Workers of the parallel comparison engine never pickle packet payloads: the
parent copies each NumPy array (timestamps, matching indices) once into a
POSIX shared-memory segment and ships only a tiny :class:`ArraySpec` handle
— segment name, shape, dtype — through the process pool.  Workers attach a
zero-copy view, compute, optionally write results into a shared *output*
buffer the parent allocated, and detach.  For a paper-scale trial (~1M
packets, 8 MB of timestamps) this turns per-task IPC from megabytes of
pickle into a few hundred bytes.

The same :class:`ArraySpec` also has an *inline* form carrying the ndarray
directly.  The single-process (``jobs=1``) engine path uses it so that the
exact same worker code runs with or without a pool; inline specs are never
pickled.

Ownership note: the parent's arena is the sole owner of every segment it
creates.  CPython < 3.13 also registers *attached* segments with the
``resource_tracker`` (bpo-39959); under the ``fork`` and ``forkserver``
start methods workers share the parent's tracker daemon (the forkserver
starts the tracker before it launches, so its children inherit the fd),
so that duplicate registration is a harmless set-add and must be left
alone — unregistering from a worker would erase the parent's own
registration.  Under ``spawn`` each worker has a private tracker that
would unlink the parent's segments at worker exit, so there the
attachment is unregistered (or, on 3.13+, never tracked via
``track=False``).
"""

from __future__ import annotations

import inspect
import multiprocessing
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..obs import metrics

__all__ = ["ArraySpec", "ShmArena", "attach_view", "detach_all"]


@dataclass(frozen=True)
class ArraySpec:
    """A pickle-light handle to a 1-D array for worker tasks.

    Either ``shm_name`` names a shared-memory segment holding the data, or
    ``array`` carries the ndarray inline (single-process execution only;
    an inline spec crossing a process boundary would defeat the transport,
    so the engine never submits one to a pool).
    """

    shape: tuple[int, ...]
    dtype: str
    shm_name: str | None = None
    array: np.ndarray | None = field(default=None, repr=False)

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class ShmArena:
    """Parent-side owner of the shared-memory segments of one comparison.

    ``share`` copies an existing array in; ``allocate`` creates a zeroed
    writable buffer (for worker outputs).  With ``enabled=False`` every
    spec is inline and no segments are created — the single-process path.
    The arena owns its segments: :meth:`close` (or the context manager)
    closes and unlinks them all, after which worker views are invalid.

    With ``reuse=True`` the arena additionally recycles segments across
    *phases* of work (the engine's phases are trial pairs): between
    phases the caller invokes :meth:`recycle`, which returns every
    non-pinned live segment to a free pool; the next ``share``/``allocate``
    of a size that fits an idle segment reuses it (smallest sufficient
    capacity first) instead of paying ``shm_open``+``mmap``+``ftruncate``
    again.  A NumPy view of the requested shape over a larger buffer is
    exact — the spec's shape bounds every access.  Arrays that stay live
    across phases (a series' baseline) are shared with ``pin=True`` and
    survive every recycle.  Reuses are counted (``shm.segments_reused``).

    Safety invariant (caller's): :meth:`recycle` may only run when no
    worker task of the finished phase is still in flight — the engine
    guarantees this by gathering (or draining, on error) every future of
    a pair before recycling.
    """

    def __init__(self, enabled: bool = True, reuse: bool = False) -> None:
        self.enabled = enabled
        self.reuse = reuse
        self._segments: list[shared_memory.SharedMemory] = []
        self._views: dict[str, np.ndarray] = {}
        self._free: list[shared_memory.SharedMemory] = []
        self._live: list[tuple[shared_memory.SharedMemory, bool]] = []

    # -- construction ----------------------------------------------------
    def share(self, array: np.ndarray, *, pin: bool = False) -> ArraySpec:
        """Copy ``array`` into a (possibly recycled) segment; return its spec."""
        array = np.ascontiguousarray(array)
        spec, view = self._new(array.shape, array.dtype, pin=pin)
        if view is not None:
            view[...] = array
            return spec
        return ArraySpec(array.shape, array.dtype.str, array=array)

    def allocate(
        self, n: int, dtype=np.float64, *, pin: bool = False
    ) -> tuple[ArraySpec, np.ndarray]:
        """A zero-initialized writable buffer of ``n`` elements.

        Returns the spec to ship to workers and the parent's view of the
        same memory (workers write shard slices; the parent reads the
        assembled whole).
        """
        spec, view = self._new((int(n),), np.dtype(dtype), pin=pin)
        if view is None:
            inline = np.zeros(int(n), dtype=dtype)
            return ArraySpec(inline.shape, inline.dtype.str, array=inline), inline
        view[...] = 0
        return spec, view

    def _new(self, shape, dtype, pin: bool = False) -> tuple[ArraySpec, np.ndarray | None]:
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        # Zero-length arrays cannot back a segment; ship them inline (a
        # 0-byte pickle is not a payload).
        if not self.enabled or nbytes == 0:
            return ArraySpec(tuple(shape), dtype.str), None
        seg = self._take_free(nbytes)
        if seg is None:
            seg = shared_memory.SharedMemory(create=True, size=nbytes)
            self._segments.append(seg)
            metrics.counter("shm.segments").add()
            metrics.counter("shm.bytes_shared").add(nbytes)
        if self.reuse:
            self._live.append((seg, pin))
        view = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
        spec = ArraySpec(tuple(shape), dtype.str, shm_name=seg.name)
        self._views[seg.name] = view
        return spec, view

    def _take_free(self, nbytes: int) -> shared_memory.SharedMemory | None:
        """The smallest idle segment of capacity ≥ ``nbytes``, if any."""
        best = -1
        for k, seg in enumerate(self._free):
            if seg.size >= nbytes and (best < 0 or seg.size < self._free[best].size):
                best = k
        if best < 0:
            return None
        metrics.counter("shm.segments_reused").add()
        return self._free.pop(best)

    def recycle(self) -> None:
        """Return every non-pinned live segment to the free pool.

        Only meaningful on a ``reuse=True`` arena; otherwise a no-op.
        The caller must guarantee no in-flight worker still reads the
        recycled segments (see the class docstring).
        """
        if not self.reuse:
            return
        keep = []
        for seg, pinned in self._live:
            if pinned:
                keep.append((seg, pinned))
            else:
                self._views.pop(seg.name, None)
                self._free.append(seg)
        self._live = keep

    # -- parent-side access ----------------------------------------------
    def view(self, spec: ArraySpec) -> np.ndarray:
        """The parent's view of a spec created by this arena."""
        if spec.shm_name is None:
            if spec.array is not None:
                return spec.array
            return np.empty(spec.shape, dtype=np.dtype(spec.dtype))
        return self._views[spec.shm_name]

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Close and unlink every segment this arena created."""
        self._views.clear()
        self._free.clear()
        self._live.clear()
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_view(spec: ArraySpec, attachments: dict) -> np.ndarray:
    """Worker-side: resolve a spec to an ndarray view.

    Shared-memory handles are cached in ``attachments`` (name →
    ``SharedMemory``) so several arrays of one task can be resolved and
    later released together with :func:`detach_all`.  The view is only
    valid until then.
    """
    if spec.shm_name is None:
        if spec.array is not None:
            return spec.array
        return np.empty(spec.shape, dtype=np.dtype(spec.dtype))
    seg = attachments.get(spec.shm_name)
    if seg is None:
        seg = _attach_segment(spec.shm_name)
        attachments[spec.shm_name] = seg
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf)


#: 3.13+ can attach without touching the resource tracker at all.
_HAS_TRACK_KW = "track" in inspect.signature(shared_memory.SharedMemory.__init__).parameters


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without stealing its ownership."""
    if _HAS_TRACK_KW:
        return shared_memory.SharedMemory(name=name, track=False)
    seg = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method() == "spawn":
        # Private tracker (spawn): drop the attach-side registration so a
        # worker exit cannot unlink the parent's segment.  Under fork *and*
        # forkserver the tracker is shared and the registration is the
        # parent's — leave it.
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
    return seg


def detach_all(attachments: dict) -> None:
    """Worker-side: release every attachment of one task (views die here)."""
    for seg in attachments.values():
        seg.close()
    attachments.clear()
