"""Shared-memory transport of packet arrays between comparison processes.

Workers of the parallel comparison engine never pickle packet payloads: the
parent copies each NumPy array (timestamps, matching indices) once into a
POSIX shared-memory segment and ships only a tiny :class:`ArraySpec` handle
— segment name, shape, dtype — through the process pool.  Workers attach a
zero-copy view, compute, optionally write results into a shared *output*
buffer the parent allocated, and detach.  For a paper-scale trial (~1M
packets, 8 MB of timestamps) this turns per-task IPC from megabytes of
pickle into a few hundred bytes.

The same :class:`ArraySpec` also has an *inline* form carrying the ndarray
directly.  The single-process (``jobs=1``) engine path uses it so that the
exact same worker code runs with or without a pool; inline specs are never
pickled.

Ownership note: the parent's arena is the sole owner of every segment it
creates.  CPython < 3.13 also registers *attached* segments with the
``resource_tracker`` (bpo-39959); under the default ``fork`` start method
workers share the parent's tracker daemon, so that duplicate registration
is a harmless set-add and must be left alone — unregistering from a worker
would erase the parent's own registration.  Under ``spawn`` each worker
has a private tracker that would unlink the parent's segments at worker
exit, so there the attachment is unregistered (or, on 3.13+, never
tracked via ``track=False``).
"""

from __future__ import annotations

import inspect
import multiprocessing
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..obs import metrics

__all__ = ["ArraySpec", "ShmArena", "attach_view", "detach_all"]


@dataclass(frozen=True)
class ArraySpec:
    """A pickle-light handle to a 1-D array for worker tasks.

    Either ``shm_name`` names a shared-memory segment holding the data, or
    ``array`` carries the ndarray inline (single-process execution only;
    an inline spec crossing a process boundary would defeat the transport,
    so the engine never submits one to a pool).
    """

    shape: tuple[int, ...]
    dtype: str
    shm_name: str | None = None
    array: np.ndarray | None = field(default=None, repr=False)

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class ShmArena:
    """Parent-side owner of the shared-memory segments of one comparison.

    ``share`` copies an existing array in; ``allocate`` creates a zeroed
    writable buffer (for worker outputs).  With ``enabled=False`` every
    spec is inline and no segments are created — the single-process path.
    The arena owns its segments: :meth:`close` (or the context manager)
    closes and unlinks them all, after which worker views are invalid.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._segments: list[shared_memory.SharedMemory] = []
        self._views: dict[str, np.ndarray] = {}

    # -- construction ----------------------------------------------------
    def share(self, array: np.ndarray) -> ArraySpec:
        """Copy ``array`` into a new segment and return its spec."""
        array = np.ascontiguousarray(array)
        spec, view = self._new(array.shape, array.dtype)
        if view is not None:
            view[...] = array
            return spec
        return ArraySpec(array.shape, array.dtype.str, array=array)

    def allocate(self, n: int, dtype=np.float64) -> tuple[ArraySpec, np.ndarray]:
        """A zero-initialized writable buffer of ``n`` elements.

        Returns the spec to ship to workers and the parent's view of the
        same memory (workers write shard slices; the parent reads the
        assembled whole).
        """
        spec, view = self._new((int(n),), np.dtype(dtype))
        if view is None:
            inline = np.zeros(int(n), dtype=dtype)
            return ArraySpec(inline.shape, inline.dtype.str, array=inline), inline
        view[...] = 0
        return spec, view

    def _new(self, shape, dtype) -> tuple[ArraySpec, np.ndarray | None]:
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        # Zero-length arrays cannot back a segment; ship them inline (a
        # 0-byte pickle is not a payload).
        if not self.enabled or nbytes == 0:
            return ArraySpec(tuple(shape), dtype.str), None
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
        self._segments.append(seg)
        view = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
        spec = ArraySpec(tuple(shape), dtype.str, shm_name=seg.name)
        self._views[seg.name] = view
        metrics.counter("shm.segments").add()
        metrics.counter("shm.bytes_shared").add(nbytes)
        return spec, view

    # -- parent-side access ----------------------------------------------
    def view(self, spec: ArraySpec) -> np.ndarray:
        """The parent's view of a spec created by this arena."""
        if spec.shm_name is None:
            if spec.array is not None:
                return spec.array
            return np.empty(spec.shape, dtype=np.dtype(spec.dtype))
        return self._views[spec.shm_name]

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Close and unlink every segment this arena created."""
        self._views.clear()
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_view(spec: ArraySpec, attachments: dict) -> np.ndarray:
    """Worker-side: resolve a spec to an ndarray view.

    Shared-memory handles are cached in ``attachments`` (name →
    ``SharedMemory``) so several arrays of one task can be resolved and
    later released together with :func:`detach_all`.  The view is only
    valid until then.
    """
    if spec.shm_name is None:
        if spec.array is not None:
            return spec.array
        return np.empty(spec.shape, dtype=np.dtype(spec.dtype))
    seg = attachments.get(spec.shm_name)
    if seg is None:
        seg = _attach_segment(spec.shm_name)
        attachments[spec.shm_name] = seg
    return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=seg.buf)


#: 3.13+ can attach without touching the resource tracker at all.
_HAS_TRACK_KW = "track" in inspect.signature(shared_memory.SharedMemory.__init__).parameters


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without stealing its ownership."""
    if _HAS_TRACK_KW:
        return shared_memory.SharedMemory(name=name, track=False)
    seg = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method() != "fork":
        # Private tracker (spawn): drop the attach-side registration so a
        # worker exit cannot unlink the parent's segment.  Under fork the
        # tracker is shared and the registration is the parent's — leave it.
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
    return seg


def detach_all(attachments: dict) -> None:
    """Worker-side: release every attachment of one task (views die here)."""
    for seg in attachments.values():
        seg.close()
    attachments.clear()
