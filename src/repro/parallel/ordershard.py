"""Sharded ordering metric: a prefix-patience LIS merge, bit-exact.

The ordering metric ``O`` (Equation 2) is built from the canonical
patience-sorting LIS of the B-order rank permutation
(:mod:`repro.core.ordering`), and used to be the one remaining
*whole-pair* serial task of the parallel engine: every other metric
shards by row, but a single far-moved packet invalidates any chunk-local
LCS bound, so the LIS ran as one long pool task gating the pair's wall
time.

This module breaks that task up while reproducing the serial algorithm's
output *exactly* — the same canonical LIS mask, element for element, at
any job count and block size.  The construction:

**Workers** split the permutation into contiguous blocks ``[lo, hi)`` and
run the identical patience loop (:func:`repro.core.ordering.patience_fill`)
on their block in isolation, producing a *local* pile state: tail values,
tail element indices (already globalized to ``lo + i``), per-element
predecessor links (``-1`` for elements that landed on local pile 0), and
the block's value extrema.

**The merge** folds blocks left to right into the accumulated prefix
state — by construction *the* serial state after ``lo`` elements — with
one of two moves per block:

* **Splice** — applicable when the block's value interval nests into a
  single gap of the accumulated tails array ``T``: with
  ``c = bisect_left(T, vmin)``, when ``c == len(T)`` or ``vmax <= T[c]``.
  Then replaying the block's elements one by one against the accumulated
  state provably touches only piles ``c .. c + L_local``: every element
  ``v`` satisfies ``T[c-1] < v`` (so its pile index is at least ``c``,
  and piles below ``c`` are never modified) and ``v <= T[c] <= T[c+s]``
  (so the first untouched accumulated tail always stops the bisect at
  exactly ``c`` plus the block-local position).  Element ``lo + i``
  therefore lands on pile ``c + pos_local(i)``; its predecessor is the
  block-local predecessor when ``pos_local > 0`` (that pile was already
  overwritten by a block element) and the *fixed* accumulated tail
  ``T_idx[c - 1]`` when ``pos_local == 0`` (piles below ``c`` never move
  during the block).  The whole replay collapses to O(L_local) array
  splices: ``T[c : c + L_local] = local tails``, same for ``T_idx``, and
  a vectorized predecessor fix-up of the ``-1`` sentinels.
* **Replay** — otherwise the merge falls back to running
  :func:`~repro.core.ordering.patience_fill` over the block's raw
  elements against the accumulated state, which *is* the serial
  algorithm on those elements.  Exact by identity; costs serial time for
  that block only.  The replay runs against the tails *suffix* from pile
  ``c`` up (``c = bisect_left(T, vmin)``): every element's pile index is
  at least ``c`` (its value exceeds ``T[c-1]``), so lower piles are
  read-only and only appear as the fixed predecessor of elements landing
  on global pile ``c`` — the same ``-1``-sentinel fix-up the splice move
  applies.

Either move establishes the invariant "accumulated state == serial state
over the processed prefix", so by induction the final tails/predecessor
state — and the LIS mask walked out of it — is bit-identical to
:func:`repro.core.ordering.lis_membership`.  The tie-break rule that
makes this work is the canonical one the serial code already uses:
``bisect_left`` places equal values on the *same* pile (strict LIS) and
the most recent element on a pile is its tail, so "which LIS" is pinned
by pile positions plus most-recent-predecessor links — both of which the
merge reproduces exactly.

Near-sorted permutations (the paper's regime: light jitter, rare
reorders) splice almost every block — only blocks whose values straddle
an earlier block's range pay the replay — so the patience work genuinely
parallelizes; adversarial permutations (reversed, organ-pipe descents)
degrade gracefully to serial-speed replay while staying exact, which is
what the corpus suite (`tests/test_ordershard_corpus.py`) pins.

Transport mirrors the rest of the engine: workers read the permutation
from shared memory and write predecessor links and pile tails into
pre-offset slices of shared output buffers; only ``(lo, hi, length,
vmin, vmax)`` scalars cross the pickle boundary.

The same construction doubles as an **incremental LIS**: because the
merge's invariant is "accumulated state == serial state over the
processed prefix", feeding blocks one at a time — each arriving chunk of
a stream becomes a :func:`patience_block_values` block folded in via
:func:`merge_block_inplace` — keeps the exact serial patience state live
at every chunk boundary.  That is what makes the ordering metric ``O``
streamable (:mod:`repro.analysis.streamkappa`); the state grows by
amortized doubling (:meth:`PatienceState.ensure_capacity`) since a
stream's final length is unknown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.matching import Matching
from ..core.ordering import (
    EditScript,
    b_order_ranks,
    edit_script_from_keep,
    lis_indices_from_state,
    patience_fill,
)
from ..obs import metrics
from ..obs.trace import span
from ..obs.worker import run_local
from .pool import batch_chunks, gather, get_pool, submit_batch
from .shard import (
    DEFAULT_MIN_ORDER_PACKETS,
    DEFAULT_ORDER_BLOCK_PACKETS,
    ShardPlan,
    default_jobs,
)
from .shm import ShmArena, attach_view, detach_all

__all__ = [
    "PatienceBlock",
    "PatienceState",
    "patience_block",
    "patience_block_values",
    "merge_blocks",
    "merge_block_inplace",
    "mask_from_state",
    "plan_order_blocks",
    "lis_mask_sharded",
    "edit_script_from_matching_sharded",
    "DEFAULT_ORDER_BLOCK_PACKETS",
    "DEFAULT_MIN_ORDER_PACKETS",
]


@dataclass(frozen=True)
class PatienceBlock:
    """One block's local patience state over rows ``[lo, hi)``.

    ``tails_vals``/``tails_idx`` are the block-local pile tails
    (``tails_idx`` in *global* element indices); ``prev`` covers the
    block's elements with global predecessor links, ``-1`` marking
    elements that landed on local pile 0 (their true predecessor, if any,
    is resolved by the merge).  ``vmin``/``vmax`` are the block's value
    extrema — the splice-eligibility test needs the true extrema, not the
    tails (a non-tail maximum can still collide with an accumulated
    pile).
    """

    lo: int
    hi: int
    tails_vals: np.ndarray
    tails_idx: np.ndarray
    prev: np.ndarray
    vmin: int
    vmax: int

    @property
    def length(self) -> int:
        """Local LIS length (number of local piles)."""
        return int(self.tails_vals.shape[0])


@dataclass
class PatienceState:
    """The accumulated prefix-patience state over rows ``[0, hi)``.

    Invariant (the merge's whole contract): ``tails_vals[:tlen]``,
    ``tails_idx[:tlen]`` and ``prev[:hi]`` equal — element for element —
    the state the serial patience loop holds after processing the first
    ``hi`` elements of the permutation.  The tails live in preallocated
    capacity-``n`` arrays (a pile count never exceeds the element count)
    so the splice move is a pure array copy; ``spliced``/``replayed``
    count the merge moves taken — observability only, never influencing
    results.
    """

    n: int
    hi: int = 0
    tlen: int = 0
    tails_vals: np.ndarray | None = None
    tails_idx: np.ndarray | None = None
    prev: np.ndarray | None = None
    spliced: int = 0
    replayed: int = 0

    def __post_init__(self) -> None:
        if self.tails_vals is None:
            self.tails_vals = np.empty(self.n, dtype=np.int64)
        if self.tails_idx is None:
            self.tails_idx = np.empty(self.n, dtype=np.int64)
        if self.prev is None:
            self.prev = np.full(self.n, -1, dtype=np.intp)

    def copy(self) -> "PatienceState":
        """An independent snapshot (for reassociated merges in tests)."""
        return PatienceState(
            n=self.n,
            hi=self.hi,
            tlen=self.tlen,
            tails_vals=self.tails_vals.copy(),
            tails_idx=self.tails_idx.copy(),
            prev=self.prev.copy(),
            spliced=self.spliced,
            replayed=self.replayed,
        )

    def ensure_capacity(self, n_new: int) -> None:
        """Grow the preallocated arrays to hold ``n_new`` rows.

        The batch path knows the permutation length up front and never
        needs this; the streaming driver
        (:mod:`repro.analysis.streamkappa`) appends blocks to an
        open-ended prefix, so capacity grows by amortized doubling.
        Growth never touches the valid prefixes (``tails_*[:tlen]``,
        ``prev[:hi]``), so a grown state is the same serial state.
        """
        if n_new <= self.n:
            return
        cap = max(int(n_new), 2 * self.n, 16)
        tails_vals = np.empty(cap, dtype=np.int64)
        tails_vals[: self.tlen] = self.tails_vals[: self.tlen]
        tails_idx = np.empty(cap, dtype=np.int64)
        tails_idx[: self.tlen] = self.tails_idx[: self.tlen]
        prev = np.full(cap, -1, dtype=np.intp)
        prev[: self.hi] = self.prev[: self.hi]
        self.tails_vals, self.tails_idx, self.prev = tails_vals, tails_idx, prev
        self.n = cap


def patience_block_values(values: np.ndarray, lo: int) -> PatienceBlock:
    """Run the canonical patience loop over a chunk of raw values.

    ``values`` are the block's elements (rows ``[lo, lo + len(values))``
    of the conceptual full permutation).  This is the entry point for
    callers that never materialize the whole sequence — the streaming
    comparator feeds each arriving chunk here; :func:`patience_block`
    delegates for the batch path.
    """
    seg = np.asarray(values)
    n_local = seg.shape[0]
    if n_local == 0:
        raise ValueError("ordering blocks must be non-empty")
    tails_vals: list = []
    tails_idx: list[int] = []
    prev = np.full(n_local, -1, dtype=np.intp)
    patience_fill(seg.tolist(), tails_vals, tails_idx, prev, offset=lo)
    return PatienceBlock(
        lo=int(lo),
        hi=int(lo) + n_local,
        tails_vals=np.asarray(tails_vals, dtype=np.int64),
        tails_idx=np.asarray(tails_idx, dtype=np.int64),
        prev=prev,
        vmin=int(seg.min()),
        vmax=int(seg.max()),
    )


def patience_block(seq: np.ndarray, lo: int, hi: int) -> PatienceBlock:
    """Run the canonical patience loop over ``seq[lo:hi]`` in isolation."""
    return patience_block_values(np.asarray(seq)[lo:hi], lo)


def merge_block_inplace(
    st: PatienceState, blk: PatienceBlock, block_values: np.ndarray
) -> None:
    """Fold one block into ``st`` in place: the single merge step.

    ``block_values`` are the block's raw elements (``seq[blk.lo:blk.hi]``
    for a materialized sequence) — read only on the replay fallback.
    Mutating in place is what makes the streaming driver O(chunk) per
    chunk: the batch :func:`merge_blocks` wrapper preserves its
    copy-on-entry contract on top of this.
    """
    if blk.lo != st.hi:
        raise ValueError(
            f"blocks must tile the prefix contiguously: expected a block "
            f"at row {st.hi}, got [{blk.lo}, {blk.hi})"
        )
    st.ensure_capacity(blk.hi)
    tails_vals, tails_idx, prev = st.tails_vals, st.tails_idx, st.prev
    tlen = st.tlen
    # searchsorted(side="left") == bisect_left, on the valid prefix.
    c = int(np.searchsorted(tails_vals[:tlen], blk.vmin, side="left"))
    if c == tlen or blk.vmax <= tails_vals[c]:
        # Splice: the block's replay provably stays inside the pile
        # gap at c (see module docstring), so its local state drops
        # in as a pure array copy.  Piles at and above c + length
        # keep their tails — no block element can reach them.
        length = blk.length
        tails_vals[c : c + length] = blk.tails_vals
        tails_idx[c : c + length] = blk.tails_idx
        block_prev = blk.prev
        if c > 0:
            # Local pile-0 elements extend the fixed accumulated pile
            # c-1; its tail cannot move while this block replays.
            block_prev = np.where(blk.prev == -1, tails_idx[c - 1], blk.prev)
        prev[blk.lo : blk.hi] = block_prev
        st.tlen = max(tlen, c + length)
        st.spliced += 1
    else:
        # Replay — but only against the tails suffix the block can
        # touch: every element's value is >= vmin > tails_vals[c-1],
        # so its pile index is at least c and piles below c are
        # read-only.  Running the canonical loop on the suffix is the
        # serial algorithm with pile indices shifted by c; elements
        # landing on suffix pile 0 (global pile c) keep the -1
        # sentinel and get the fixed pile-(c-1) tail as predecessor,
        # exactly as in the splice move.
        sub_vals = tails_vals[c:tlen].tolist()
        sub_idx = tails_idx[c:tlen].tolist()
        prev_slice = prev[blk.lo : blk.hi]
        patience_fill(
            np.asarray(block_values).tolist(),
            sub_vals,
            sub_idx,
            prev_slice,
            offset=blk.lo,
        )
        if c > 0:
            np.copyto(prev_slice, tails_idx[c - 1], where=prev_slice == -1)
        new_len = len(sub_vals)  # patience never shrinks the pile count
        tails_vals[c : c + new_len] = sub_vals
        tails_idx[c : c + new_len] = sub_idx
        st.tlen = c + new_len
        st.replayed += 1
    st.hi = blk.hi


def merge_blocks(
    seq: np.ndarray,
    blocks: list[PatienceBlock],
    state: PatienceState | None = None,
) -> PatienceState:
    """Fold block states left-to-right into the serial prefix state.

    ``blocks`` must tile ``[state.hi, hi_last)`` contiguously in order
    (any granularity).  ``state=None`` starts from the empty prefix; a
    given ``state`` is not mutated — the merge continues from an
    independent copy, so prefix-merges can be reused and reassociated
    (the property suite leans on this).  ``seq`` is the *full*
    permutation; it is only read on the replay fallback.
    """
    seq = np.asarray(seq)
    st = PatienceState(n=seq.shape[0]) if state is None else state.copy()
    for blk in blocks:
        merge_block_inplace(st, blk, seq[blk.lo : blk.hi])
    # Observability only: how the merge went, never what it produced.
    # Deltas against the input state, so resumed prefix-merges (tests
    # reassociate them) don't recount earlier calls' moves.
    metrics.counter("order.blocks_merged").add(len(blocks))
    metrics.counter("order.blocks_spliced").add(
        st.spliced - (state.spliced if state is not None else 0)
    )
    metrics.counter("order.blocks_replayed").add(
        st.replayed - (state.replayed if state is not None else 0)
    )
    return st


def mask_from_state(st: PatienceState) -> np.ndarray:
    """The canonical LIS membership mask walked out of a merged state.

    Identical to :func:`repro.core.ordering.lis_membership` on the full
    sequence: the walk starts at the tail of the longest pile and follows
    the same predecessor links the serial loop would have recorded.
    """
    if st.hi != st.n:
        raise ValueError(f"state covers [0, {st.hi}) but the sequence has {st.n}")
    mask = np.zeros(st.n, dtype=bool)
    mask[lis_indices_from_state(st.tails_idx[: st.tlen], st.prev)] = True
    return mask


def plan_order_blocks(
    n: int, block_packets: int | None = None
) -> tuple[tuple[int, int], ...]:
    """Contiguous ordering-block bounds tiling ``[0, n)``."""
    if n == 0:
        return ()
    step = DEFAULT_ORDER_BLOCK_PACKETS if block_packets is None else int(block_packets)
    if step < 1:
        raise ValueError("block_packets must be >= 1")
    return ShardPlan(
        n, tuple((lo, min(lo + step, n)) for lo in range(0, n, step))
    ).bounds


# ----------------------------------------------------------------------
# Pool transport: the worker body and its task/collect helpers.
# ----------------------------------------------------------------------

def _order_block_worker(task: dict):
    """Compute one block's patience state; write it at the block offsets.

    Predecessor links land in ``out_prev[lo:hi]``; pile tails (values and
    global indices) in ``out_tvals``/``out_tidx`` at ``[lo, lo + L)`` —
    a block's pile count never exceeds its row count, so the block's own
    row range is always capacity enough.  Only scalars are returned.
    """
    attachments: dict = {}
    try:
        seq = attach_view(task["seq"], attachments)
        out_prev = attach_view(task["out_prev"], attachments)
        out_tvals = attach_view(task["out_tvals"], attachments)
        out_tidx = attach_view(task["out_tidx"], attachments)
        lo, hi = task["lo"], task["hi"]
        blk = patience_block(seq, lo, hi)
        length = blk.length
        out_prev[lo:hi] = blk.prev
        out_tvals[lo : lo + length] = blk.tails_vals
        out_tidx[lo : lo + length] = blk.tails_idx
        return lo, hi, length, blk.vmin, blk.vmax
    finally:
        detach_all(attachments)


def order_block_tasks(
    seq_spec, bounds, out_prev, out_tvals, out_tidx
) -> list[dict]:
    """Worker task dicts for every ordering block of a pair."""
    return [
        {
            "seq": seq_spec,
            "out_prev": out_prev,
            "out_tvals": out_tvals,
            "out_tidx": out_tidx,
            "lo": lo,
            "hi": hi,
        }
        for lo, hi in bounds
    ]


def blocks_from_results(
    results, prev_buf: np.ndarray, tvals_buf: np.ndarray, tidx_buf: np.ndarray
) -> list[PatienceBlock]:
    """Reconstitute ordered :class:`PatienceBlock` views from worker returns.

    The arrays are zero-copy views into the shared output buffers, so the
    merge must finish before the owning arena closes.
    """
    blocks = []
    for lo, hi, length, vmin, vmax in sorted(results):
        blocks.append(
            PatienceBlock(
                lo=lo,
                hi=hi,
                tails_vals=tvals_buf[lo : lo + length],
                tails_idx=tidx_buf[lo : lo + length],
                prev=prev_buf[lo:hi],
                vmin=vmin,
                vmax=vmax,
            )
        )
    return blocks


def lis_mask_sharded(
    seq: np.ndarray,
    *,
    jobs: int | None = None,
    block_packets: int | None = None,
) -> np.ndarray:
    """Block-parallel :func:`repro.core.ordering.lis_membership` — exact.

    ``jobs=None`` honors ``REPRO_JOBS``; at ``jobs=1`` the identical
    block pipeline (workers, buffers, merge) runs in-process with inline
    specs, so tests can pin sharded == serial without a pool.
    """
    seq = np.ascontiguousarray(np.asarray(seq, dtype=np.int64))
    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    n = seq.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    bounds = plan_order_blocks(n, block_packets)
    use_pool = jobs > 1
    with ShmArena(enabled=use_pool) as arena:
        seq_spec = arena.share(seq)
        out_prev, prev_buf = arena.allocate(n, np.int64)
        out_tvals, tvals_buf = arena.allocate(n, np.int64)
        out_tidx, tidx_buf = arena.allocate(n, np.int64)
        tasks = order_block_tasks(seq_spec, bounds, out_prev, out_tvals, out_tidx)
        if use_pool:
            pool = get_pool(jobs)
            # One dispatch per worker: blocks are coalesced into
            # contiguous chunks, and the merge below needs all of them
            # anyway, so batching trades nothing for the saved fan-out
            # fixed costs.
            batches = gather(
                [
                    submit_batch(
                        pool, _order_block_worker, chunk,
                        name="analysis.order.block",
                        attrs_list=[{"lo": t["lo"], "hi": t["hi"]} for t in chunk],
                    )
                    for chunk in batch_chunks(tasks, jobs)
                ]
            )
            results = [r for batch in batches for r in batch]
        else:
            results = [
                run_local(
                    _order_block_worker, t,
                    name="analysis.order.block", lo=t["lo"], hi=t["hi"],
                )
                for t in tasks
            ]
        with span("analysis.merge.order", n_blocks=len(results)):
            blocks = blocks_from_results(results, prev_buf, tvals_buf, tidx_buf)
            state = merge_blocks(seq, blocks)
            return mask_from_state(state)


def edit_script_from_matching_sharded(
    m: Matching,
    *,
    jobs: int | None = None,
    block_packets: int | None = None,
) -> EditScript:
    """Block-parallel :func:`repro.core.ordering.edit_script_from_matching`.

    Every field — ``lcs_mask_b_order``, ``signed_distances``,
    ``deletions_b``, ``insertions_a`` and the derived ``moved_distances``
    and ``O`` — is bit-identical to the serial script: the sharded path
    reproduces the canonical LIS mask exactly and then runs the identical
    vectorized assembly (:func:`~repro.core.ordering.edit_script_from_keep`).
    """
    a_ranks_in_b = b_order_ranks(m)
    keep = lis_mask_sharded(a_ranks_in_b, jobs=jobs, block_packets=block_packets)
    return edit_script_from_keep(m, a_ranks_in_b, keep)
