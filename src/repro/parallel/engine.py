"""The process-pool comparison engine: ``ParallelComparator``.

Fan-out happens at two grains, chosen by the :class:`~.shard.ShardPlanner`:

* **Whole pairs** — each worker runs the unmodified serial
  :func:`repro.core.report.compare_trials` on one (baseline, run) pair
  whose packet arrays it reads from shared memory.  Used whenever a series
  has at least one pair per worker; bit-identical to serial by
  construction (it *is* the serial code).
* **Within-pair shards** — the parent computes the matching once, then
  fans the common-packet rows out as contiguous shards; workers return
  integer partials and write delta slices into shared output buffers.
  The ordering metric's global LCS fans out too: patience blocks run as
  their own pool tasks and a prefix-patience merge reconstructs the
  exact serial LIS (see :mod:`repro.parallel.ordershard`), overlapping
  the timing shards instead of gating them; small pairs keep the single
  whole-pair ordering task.  The merge assembles the full delta arrays
  and runs the identical final reductions the batch path runs (see
  :mod:`repro.parallel.partials` for the exactness model).

Either way the engine's reports are exactly equal — every float bit — to
:func:`repro.core.report.compare_trials` / ``compare_series``; the
differential suite (``tests/test_parallel_differential.py``) enforces this
over randomized drops, reorders and latency noise.

Workers receive only :class:`~.shm.ArraySpec` handles plus scalars; packet
arrays travel through ``multiprocessing.shared_memory`` (see
:mod:`repro.parallel.shm`), never through pickle.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from ..core.histograms import DeltaHistogram, SymlogBins, pct_within_from_counts
from ..core.iat import iat_denominator_ns, iat_from_deltas
from ..core.kappa import MetricVector
from ..core.latency import latency_from_deltas, latency_span_ns
from ..core.matching import Matching, match_trials
from ..core.ordering import (
    MoveDistanceStats,
    b_order_ranks,
    edit_script_from_keep,
    edit_script_from_matching,
    ordering_from_matching,
)
from ..core.report import PairReport, RunSeriesReport, compare_trials
from ..core.trial import Trial
from ..core.uniqueness import uniqueness_from_matching
from ..obs import metrics
from ..obs.trace import span
from ..obs.worker import run_local
from .matchshard import DEFAULT_MIN_MATCH_PACKETS, match_trials_sharded
from .ordershard import (
    _order_block_worker,
    blocks_from_results,
    mask_from_state,
    merge_blocks,
    order_block_tasks,
)
from .partials import compute_shard_partial, merge_partials
from .pool import batch_chunks, gather, get_pool, submit_batch, submit_task
from .shard import (
    DEFAULT_MIN_ORDER_PACKETS,
    DEFAULT_MIN_SHARD_PACKETS,
    ShardPlanner,
    default_jobs,
)
from .shm import ShmArena, attach_view, detach_all

__all__ = [
    "ParallelComparator",
    "compare_trials_parallel",
    "compare_series_parallel",
]


# ----------------------------------------------------------------------
# Worker task bodies (module level: picklable by the process pool).
# Each resolves its ArraySpecs, computes, and detaches before returning;
# return values never reference shared-memory views.
# ----------------------------------------------------------------------

def _timing_shard_worker(task: dict):
    """Compute one shard's timing partial (counts out, deltas to buffer)."""
    attachments: dict = {}
    try:
        times_a = attach_view(task["times_a"], attachments)
        times_b = attach_view(task["times_b"], attachments)
        idx_a = attach_view(task["idx_a"], attachments)
        idx_b = attach_view(task["idx_b"], attachments)
        out_dlat = attach_view(task["out_dlat"], attachments)
        out_diat = attach_view(task["out_diat"], attachments)
        return compute_shard_partial(
            times_a,
            times_b,
            idx_a,
            idx_b,
            task["lo"],
            task["hi"],
            task["bins"],
            task["within_ns"],
            out_dlat=out_dlat,
            out_diat=out_diat,
        )
    finally:
        detach_all(attachments)


def _ordering_worker(task: dict):
    """Compute O and the Table-1 move statistics for one whole pair."""
    attachments: dict = {}
    try:
        idx_a = attach_view(task["idx_a"], attachments)
        idx_b = attach_view(task["idx_b"], attachments)
        m = Matching(
            idx_a.astype(np.intp, copy=False),
            idx_b.astype(np.intp, copy=False),
            task["len_a"],
            task["len_b"],
        )
        script = edit_script_from_matching(m)
        o_val = ordering_from_matching(m, script)
        stats = MoveDistanceStats.from_distances(script.moved_distances)
        return o_val, stats
    finally:
        detach_all(attachments)


def _whole_pair_worker(task: dict):
    """Run the unmodified serial comparison on one (baseline, run) pair."""
    attachments: dict = {}
    try:
        baseline = Trial(
            attach_view(task["tags_a"], attachments),
            attach_view(task["times_a"], attachments),
            label=task["label_a"],
            meta=task["meta_a"],
        )
        run = Trial(
            attach_view(task["tags_b"], attachments),
            attach_view(task["times_b"], attachments),
            label=task["label_b"],
            meta=task["meta_b"],
        )
        return compare_trials(
            baseline, run, bins=task["bins"], within_ns=task["within_ns"]
        )
    finally:
        detach_all(attachments)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class ParallelComparator:
    """Sharded, process-pooled drop-in for the Section-3 comparison drivers.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` reads ``REPRO_JOBS`` (default 1).
        With ``jobs=1`` everything runs in-process — no pool, no shared
        memory — through the same code paths.
    shard_packets:
        Force within-pair shards to this many common rows (tests and
        benchmarks; forces the sharded path even at ``jobs=1``).
    min_shard_packets:
        Smallest auto-sized shard worth a task dispatch.
    order_block_packets:
        Force ordering blocks to this many rows — the sharded-LIS path
        (:mod:`repro.parallel.ordershard`) then runs even at ``jobs=1``
        (tests pin exactness with it).  ``None`` auto-shards the ordering
        metric when a pool is in use and the pair has at least
        ``min_order_packets`` common rows; small pairs keep the single
        whole-pair ordering task.
    min_order_packets:
        Smallest pair (common rows) worth sharding the ordering metric.
    within_ns:
        Bound for the headline ±IAT statistic (as in ``compare_trials``).
    match_buckets:
        Sharded-matching control.  ``None`` (default) auto-enables bucket
        matching when a pool is in use and the pair is large enough to
        repay the dispatch; ``0`` disables it; any value ``>= 2`` forces
        that many buckets (tests pin exactness with it).

    The comparator draws on the process-global worker pool
    (:func:`repro.parallel.pool.get_pool`) — pool startup is paid once per
    invocation, not per comparator.  :meth:`close` is retained for
    API compatibility but no longer tears the shared pool down; the CLI
    (or :func:`repro.parallel.pool.shutdown_pool`) owns that.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        shard_packets: int | None = None,
        min_shard_packets: int = DEFAULT_MIN_SHARD_PACKETS,
        order_block_packets: int | None = None,
        min_order_packets: int = DEFAULT_MIN_ORDER_PACKETS,
        within_ns: float = 10.0,
        match_buckets: int | None = None,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else int(jobs)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if match_buckets is not None and match_buckets not in (0,) and match_buckets < 2:
            raise ValueError("match_buckets must be None, 0, or >= 2")
        self.shard_packets = shard_packets
        self.min_shard_packets = min_shard_packets
        self.order_block_packets = order_block_packets
        self.min_order_packets = min_order_packets
        self.within_ns = within_ns
        self.match_buckets = match_buckets

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """No-op: the pool is process-global and outlives the comparator."""

    def __enter__(self) -> "ParallelComparator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _match(self, baseline: Trial, run: Trial) -> Matching:
        """The pair's matching — bucket-sharded across the pool when it pays.

        The result is bit-identical to :func:`match_trials` in every
        configuration (see :mod:`repro.parallel.matchshard` for why), so
        this choice is purely a scheduling decision.
        """
        with span("analysis.match", n_a=len(baseline), n_b=len(run)):
            if self.match_buckets == 0:
                return match_trials(baseline, run)
            if self.match_buckets is not None:
                return match_trials_sharded(
                    baseline, run, jobs=self.jobs, n_buckets=self.match_buckets
                )
            if (
                self.jobs > 1
                and min(len(baseline), len(run)) >= DEFAULT_MIN_MATCH_PACKETS
            ):
                return match_trials_sharded(baseline, run, jobs=self.jobs)
            return match_trials(baseline, run)

    def _planner(self) -> ShardPlanner:
        return ShardPlanner(
            self.jobs,
            shard_packets=self.shard_packets,
            min_shard_packets=self.min_shard_packets,
            order_block_packets=self.order_block_packets,
            min_order_packets=self.min_order_packets,
        )

    # -- public API ------------------------------------------------------
    def compare(self, baseline: Trial, run: Trial, bins: SymlogBins | None = None) -> PairReport:
        """Sharded :func:`repro.core.report.compare_trials` — exactly equal output."""
        bins = bins if bins is not None else SymlogBins()
        planner = self._planner()
        metrics.counter("engine.pairs_compared").add()
        if (
            self.jobs == 1
            and planner.shard_packets is None
            and planner.order_block_packets is None
        ):
            with span("analysis.pair", run=run.label, mode="serial"):
                return compare_trials(
                    baseline, run, bins=bins, within_ns=self.within_ns
                )
        return self._compare_pair_sharded(baseline, run, bins, planner, slots=None)

    def compare_series(
        self,
        trials: list[Trial],
        environment: str = "",
        bins: SymlogBins | None = None,
    ) -> RunSeriesReport:
        """Sharded :func:`repro.core.report.compare_series` — exactly equal output.

        Labeling mirrors the serial driver: the first trial is the
        baseline (relabelled ``A`` if unlabelled), repeats get ``B``,
        ``C``, ... in run order.
        """
        if len(trials) < 2:
            raise ValueError("need a baseline plus at least one repeat run")
        bins = bins if bins is not None else SymlogBins()
        baseline = trials[0]
        if not baseline.label:
            baseline = baseline.relabel("A")
        runs = []
        for k, run in enumerate(trials[1:]):
            if not run.label:
                run = run.relabel(chr(ord("B") + k) if k < 25 else f"run{k + 1}")
            runs.append(run)

        planner = self._planner()
        metrics.counter("engine.pairs_compared").add(len(runs))
        with span("analysis.series", n_pairs=len(runs), jobs=self.jobs):
            if (
                self.jobs == 1
                and planner.shard_packets is None
                and planner.order_block_packets is None
            ):
                pairs = []
                for r in runs:
                    with span("analysis.pair", run=r.label, mode="serial"):
                        pairs.append(
                            compare_trials(
                                baseline, r, bins=bins, within_ns=self.within_ns
                            )
                        )
            elif self.jobs > 1 and planner.use_whole_pairs(len(runs)):
                pairs = self._compare_pairs_whole(baseline, runs, bins)
            else:
                # Sharded pairs run sequentially against one reuse arena:
                # the baseline arrays are shared (pinned) once for the
                # whole series, and each pair's working segments are
                # recycled for the next pair instead of re-created —
                # safe because every pair gathers (or drains) all its
                # futures before returning.
                slots = planner.pair_slots(len(runs))
                use_pool = self.jobs > 1
                with ShmArena(enabled=use_pool, reuse=True) as arena:
                    times_a_spec = arena.share(baseline.times_ns, pin=True)
                    pairs = []
                    for r in runs:
                        pairs.append(
                            self._compare_pair_sharded(
                                baseline, r, bins, planner, slots=slots,
                                arena=arena, times_a_spec=times_a_spec,
                            )
                        )
                        arena.recycle()
        return RunSeriesReport(
            environment=environment,
            baseline_label=baseline.label,
            pairs=tuple(pairs),
        )

    # -- execution strategies --------------------------------------------
    def _compare_pairs_whole(
        self, baseline: Trial, runs: list[Trial], bins: SymlogBins
    ) -> list[PairReport]:
        """Pair-level fan-out: one serial comparison per worker task."""
        pool = get_pool(self.jobs)
        metrics.counter("engine.whole_pair_tasks").add(len(runs))
        with ShmArena(enabled=True) as arena:
            tags_a = arena.share(baseline.tags)
            times_a = arena.share(baseline.times_ns)
            futures = []
            for run in runs:
                task = {
                    "tags_a": tags_a,
                    "times_a": times_a,
                    "tags_b": arena.share(run.tags),
                    "times_b": arena.share(run.times_ns),
                    "label_a": baseline.label,
                    "label_b": run.label,
                    "meta_a": dict(baseline.meta),
                    "meta_b": dict(run.meta),
                    "bins": bins,
                    "within_ns": self.within_ns,
                }
                futures.append(
                    submit_task(
                        pool, _whole_pair_worker, task,
                        name="analysis.pair.whole", run=run.label,
                    )
                )
            return gather(futures)

    @staticmethod
    def _merge_ordering(
        m: Matching,
        a_ranks_in_b: np.ndarray,
        order_results,
        prev_buf: np.ndarray,
        tvals_buf: np.ndarray,
        tidx_buf: np.ndarray,
    ) -> tuple[float, MoveDistanceStats]:
        """Fold block worker results into the pair's O and move stats."""
        with span("analysis.merge.order", n_blocks=len(order_results)):
            blocks = blocks_from_results(order_results, prev_buf, tvals_buf, tidx_buf)
            state = merge_blocks(a_ranks_in_b, blocks)
            keep = mask_from_state(state)
            script = edit_script_from_keep(m, a_ranks_in_b, keep)
            o_val = ordering_from_matching(m, script)
            return o_val, MoveDistanceStats.from_distances(script.moved_distances)

    def _compare_pair_sharded(
        self,
        baseline: Trial,
        run: Trial,
        bins: SymlogBins,
        planner: ShardPlanner,
        slots: int | None,
        arena: ShmArena | None = None,
        times_a_spec=None,
    ) -> PairReport:
        """Within-pair fan-out: timing shards + sharded ordering, merged."""
        with span("analysis.pair", run=run.label, mode="sharded"):
            return self._compare_pair_sharded_inner(
                baseline, run, bins, planner, slots, arena, times_a_spec
            )

    def _compare_pair_sharded_inner(
        self,
        baseline: Trial,
        run: Trial,
        bins: SymlogBins,
        planner: ShardPlanner,
        slots: int | None,
        series_arena: ShmArena | None = None,
        times_a_spec=None,
    ) -> PairReport:
        m = self._match(baseline, run)
        plan = planner.plan_pair(m.n_common, slots=slots)
        order_plan = planner.plan_ordering(m.n_common)
        use_pool = self.jobs > 1
        metrics.counter("engine.timing_shards").add(plan.n_shards)
        metrics.counter("engine.order_blocks").add(
            1 if order_plan is None else order_plan.n_shards
        )
        # A series hands in its reuse arena (baseline pinned, segments
        # recycled between pairs); a lone pair owns a throwaway one.
        own_arena = series_arena is None
        arena_ctx = (
            ShmArena(enabled=use_pool) if own_arena else nullcontext(series_arena)
        )
        with arena_ctx as arena:
            idx_a = arena.share(m.idx_a)
            idx_b = arena.share(m.idx_b)
            times_a = (
                times_a_spec
                if times_a_spec is not None
                else arena.share(baseline.times_ns)
            )
            times_b = arena.share(run.times_ns)
            out_dlat, dlat_buf = arena.allocate(m.n_common)
            out_diat, diat_buf = arena.allocate(m.n_common)

            if order_plan is None:
                ordering_tasks = None
                ordering_task = {
                    "idx_a": idx_a,
                    "idx_b": idx_b,
                    "len_a": m.len_a,
                    "len_b": m.len_b,
                }
            else:
                # Sharded ordering: the parent derives the permutation the
                # LIS runs on (vectorized argsort), block workers patience-
                # sort their slices, and the prefix-patience merge below
                # reconstructs the exact serial pile state.
                a_ranks_in_b = b_order_ranks(m)
                seq_spec = arena.share(a_ranks_in_b)
                out_prev, prev_buf = arena.allocate(m.n_common, np.int64)
                out_tvals, tvals_buf = arena.allocate(m.n_common, np.int64)
                out_tidx, tidx_buf = arena.allocate(m.n_common, np.int64)
                ordering_tasks = order_block_tasks(
                    seq_spec, order_plan.bounds, out_prev, out_tvals, out_tidx
                )
            shard_tasks = [
                {
                    "times_a": times_a,
                    "times_b": times_b,
                    "idx_a": idx_a,
                    "idx_b": idx_b,
                    "lo": lo,
                    "hi": hi,
                    "bins": bins,
                    "within_ns": self.within_ns,
                    "out_dlat": out_dlat,
                    "out_diat": out_diat,
                }
                for lo, hi in plan.bounds
            ]
            if use_pool:
                pool = get_pool(self.jobs)
                # Ordering work is the long pole; launch it first so it
                # overlaps all the timing shards.  With block tasks the
                # parent additionally merges the ordering result while
                # the timing shards are still running.  Small tasks are
                # coalesced into one dispatch per worker (contiguous
                # chunks, so flattening keeps task order); the ordering
                # merge waits on *all* blocks anyway, so coalescing
                # forfeits no overlap.
                if ordering_tasks is None:
                    ordering_futures = [
                        submit_task(
                            pool, _ordering_worker, ordering_task,
                            name="analysis.order.pair", run=run.label,
                        )
                    ]
                else:
                    ordering_futures = [
                        submit_batch(
                            pool, _order_block_worker, chunk,
                            name="analysis.order.block",
                            attrs_list=[
                                {"lo": t["lo"], "hi": t["hi"]} for t in chunk
                            ],
                        )
                        for chunk in batch_chunks(ordering_tasks, self.jobs)
                    ]
                shard_futures = [
                    submit_batch(
                        pool, _timing_shard_worker, chunk,
                        name="analysis.shard.timing",
                        attrs_list=[{"lo": t["lo"], "hi": t["hi"]} for t in chunk],
                    )
                    for chunk in batch_chunks(shard_tasks, self.jobs)
                ]
                try:
                    if ordering_tasks is None:
                        o_val, move_stats = gather(ordering_futures)[0]
                    else:
                        order_results = [
                            r for batch in gather(ordering_futures) for r in batch
                        ]
                        o_val, move_stats = self._merge_ordering(
                            m, a_ranks_in_b, order_results,
                            prev_buf, tvals_buf, tidx_buf,
                        )
                except BaseException:
                    # Drain the timing shards before the arena unlinks the
                    # segments they are reading (gather only drains its
                    # own batch).
                    try:
                        gather(shard_futures)
                    except BaseException:
                        pass
                    raise
                partials = [r for batch in gather(shard_futures) for r in batch]
            else:
                if ordering_tasks is None:
                    o_val, move_stats = run_local(
                        _ordering_worker, ordering_task,
                        name="analysis.order.pair", run=run.label,
                    )
                else:
                    order_results = [
                        run_local(
                            _order_block_worker, t,
                            name="analysis.order.block", lo=t["lo"], hi=t["hi"],
                        )
                        for t in ordering_tasks
                    ]
                    o_val, move_stats = self._merge_ordering(
                        m, a_ranks_in_b, order_results,
                        prev_buf, tvals_buf, tidx_buf,
                    )
                partials = [
                    run_local(
                        _timing_shard_worker, t,
                        name="analysis.shard.timing", lo=t["lo"], hi=t["hi"],
                    )
                    for t in shard_tasks
                ]

            with span("analysis.merge.timings", n_shards=len(partials)):
                merged = merge_partials(
                    partials, m.n_common, bins,
                    dlat_buffer=dlat_buf, diat_buffer=diat_buf,
                )
            u_val = uniqueness_from_matching(m)
            if m.n_common == 0:
                # Mirror the batch path's short-circuits: the spans are
                # never evaluated (they would need non-empty trials).
                l_val, i_val = 0.0, 0.0
            else:
                l_val = latency_from_deltas(
                    merged.dlat, m.n_common, latency_span_ns(baseline, run)
                )
                i_val = iat_from_deltas(
                    merged.diat, m.n_common, iat_denominator_ns(baseline, run)
                )
            report = PairReport(
                baseline_label=baseline.label,
                run_label=run.label,
                metrics=MetricVector(u_val, o_val, l_val, i_val),
                n_baseline=len(baseline),
                n_run=len(run),
                n_common=m.n_common,
                pct_iat_within_10ns=pct_within_from_counts(
                    merged.iat_within, m.n_common
                ),
                move_stats=move_stats,
                iat_hist=DeltaHistogram.from_counts(
                    merged.iat_counts, m.n_common, bins, label=run.label
                ),
                latency_hist=DeltaHistogram.from_counts(
                    merged.lat_counts, m.n_common, bins, label=run.label
                ),
                meta={"baseline": dict(baseline.meta), "run": dict(run.meta)},
            )
        return report


def compare_trials_parallel(
    baseline: Trial,
    run: Trial,
    bins: SymlogBins | None = None,
    within_ns: float = 10.0,
    *,
    jobs: int | None = None,
    shard_packets: int | None = None,
    order_block_packets: int | None = None,
) -> PairReport:
    """One-shot parallel :func:`repro.core.report.compare_trials`.

    Spins a comparator (and pool) up and down around a single pair; prefer
    a long-lived :class:`ParallelComparator` when comparing many pairs.
    """
    with ParallelComparator(
        jobs=jobs,
        shard_packets=shard_packets,
        order_block_packets=order_block_packets,
        within_ns=within_ns,
    ) as pc:
        return pc.compare(baseline, run, bins=bins)


def compare_series_parallel(
    trials: list[Trial],
    environment: str = "",
    bins: SymlogBins | None = None,
    *,
    jobs: int | None = None,
    shard_packets: int | None = None,
    order_block_packets: int | None = None,
) -> RunSeriesReport:
    """Drop-in for :func:`repro.core.report.compare_series` with fan-out.

    Exactly equal output (every float bit) for any ``jobs``, shard size
    and ordering block size; ``jobs=None`` honors ``REPRO_JOBS`` and
    defaults to serial.
    """
    with ParallelComparator(
        jobs=jobs, shard_packets=shard_packets, order_block_packets=order_block_packets
    ) as pc:
        return pc.compare_series(trials, environment=environment, bins=bins)
