"""Sharded packet matching: fan the ``A ∩ B`` step across the pool.

``docs/parallel.md`` identifies the matching step as the dominant serial
fraction of whole-pair fan-out: every other metric shards, but the parent
used to compute :func:`repro.core.matching.match_trials` alone before any
timing shard could launch.

Matching *is* shardable, with the right partition.  Occurrence ranks — the
disambiguator for repeated tags — are computed **among equal tag values
only**, and the intersection pairs keys of the form ``(tag, occurrence)``.
So partition packets by a function of the tag value alone (here
``tag mod n_buckets``, on the unsigned view so negative tags land in a
bucket too): every packet with a given tag, in both trials, lands in the
same bucket; each bucket sees *all* occurrences of its tags and none of
any other bucket's.  Running the identical
:func:`~repro.core.matching.match_tag_arrays` on one bucket's packets
therefore yields exactly the rows of the full matching whose tags fall in
that bucket — same pairs, same occurrence ranks.  The union over buckets
is the full row set, and re-sorting by the A-side index (unique across
rows) reproduces the canonical row order bit-for-bit.

Workers read tag arrays from shared memory and write global ``(ia, ib)``
rows into pre-offset slices of shared output buffers (per-bucket capacity
``min(|bucket in A|, |bucket in B|)``, an upper bound on common rows), so
the only pickled traffic is a row count per bucket.

Downstream, the matching's common rows feed both sharded stages of
:meth:`~repro.parallel.engine.ParallelComparator._compare_pair_sharded`:
the per-row timing shards and the ordering blocks of
:mod:`repro.parallel.ordershard` — the B-order rank permutation the LIS
runs on is ``argsort(idx_b)``, so bucket matching's bit-exact row order
is what makes the sharded ordering input identical to serial's.
"""

from __future__ import annotations

import numpy as np

from ..core.matching import Matching, match_tag_arrays
from ..core.trial import Trial
from ..obs import metrics
from ..obs.worker import run_local
from .pool import gather, get_pool, submit_task
from .shard import default_jobs
from .shm import ShmArena, attach_view, detach_all

__all__ = ["match_trials_sharded", "DEFAULT_MIN_MATCH_PACKETS"]

#: Below this many packets (smaller trial) the serial matcher wins — task
#: dispatch plus per-bucket scans cost more than the intersection saves.
DEFAULT_MIN_MATCH_PACKETS = 100_000


def _bucket_ids(tags: np.ndarray, n_buckets: int) -> np.ndarray:
    """Per-packet bucket: a pure function of the tag value."""
    return (tags.view(np.uint64) % np.uint64(n_buckets)).astype(np.int64)


def _match_bucket_worker(task: dict):
    """Match one bucket's packets; write global rows at the bucket offset."""
    attachments: dict = {}
    try:
        tags_a = attach_view(task["tags_a"], attachments)
        tags_b = attach_view(task["tags_b"], attachments)
        out_ia = attach_view(task["out_ia"], attachments)
        out_ib = attach_view(task["out_ib"], attachments)
        k = task["bucket"]
        n_buckets = task["n_buckets"]
        sel_a = np.flatnonzero(_bucket_ids(tags_a, n_buckets) == k)
        sel_b = np.flatnonzero(_bucket_ids(tags_b, n_buckets) == k)
        ia_local, ib_local = match_tag_arrays(tags_a[sel_a], tags_b[sel_b])
        n = ia_local.shape[0]
        lo = task["offset"]
        # sel_a is ascending and ia_local is sorted, so the global rows
        # written here are already sorted by ia within the bucket.
        out_ia[lo : lo + n] = sel_a[ia_local]
        out_ib[lo : lo + n] = sel_b[ib_local]
        return n
    finally:
        detach_all(attachments)


def match_trials_sharded(
    a: Trial,
    b: Trial,
    *,
    jobs: int | None = None,
    n_buckets: int | None = None,
) -> Matching:
    """Bucket-parallel :func:`~repro.core.matching.match_trials` — exact.

    ``jobs=None`` honors ``REPRO_JOBS``; at ``jobs=1`` the identical
    bucket pipeline runs in-process (inline specs, no pool) so tests can
    pin sharded == serial without a pool.  ``n_buckets`` defaults to
    ``2 * jobs`` (enough slack that an uneven tag distribution cannot
    serialize the pool) and is forced to at least 1.
    """
    jobs = default_jobs() if jobs is None else int(jobs)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if n_buckets is None:
        n_buckets = max(2 * jobs, 1)
    n_buckets = int(n_buckets)
    if n_buckets < 1:
        raise ValueError("n_buckets must be >= 1")

    tags_a, tags_b = a.tags, b.tags
    na, nb = tags_a.shape[0], tags_b.shape[0]
    if na == 0 or nb == 0 or n_buckets == 1:
        ia, ib = match_tag_arrays(tags_a, tags_b)
        return Matching(ia, ib, na, nb)

    # Per-bucket capacity: common rows cannot exceed the smaller side's
    # bucket population.  Offsets carve one output buffer into slices.
    counts_a = np.bincount(_bucket_ids(tags_a, n_buckets), minlength=n_buckets)
    counts_b = np.bincount(_bucket_ids(tags_b, n_buckets), minlength=n_buckets)
    caps = np.minimum(counts_a, counts_b)
    offsets = np.concatenate([[0], np.cumsum(caps)])
    total_cap = int(offsets[-1])

    use_pool = jobs > 1
    with ShmArena(enabled=use_pool) as arena:
        spec_a = arena.share(tags_a)
        spec_b = arena.share(tags_b)
        out_ia, ia_buf = arena.allocate(total_cap, np.int64)
        out_ib, ib_buf = arena.allocate(total_cap, np.int64)
        tasks = [
            {
                "tags_a": spec_a,
                "tags_b": spec_b,
                "out_ia": out_ia,
                "out_ib": out_ib,
                "bucket": k,
                "n_buckets": n_buckets,
                "offset": int(offsets[k]),
            }
            for k in range(n_buckets)
            if caps[k] > 0
        ]
        metrics.counter("match.bucket_tasks").add(len(tasks))
        if use_pool:
            pool = get_pool(jobs)
            ns = gather(
                [
                    submit_task(
                        pool, _match_bucket_worker, t,
                        name="analysis.match.bucket", bucket=t["bucket"],
                    )
                    for t in tasks
                ]
            )
        else:
            ns = [
                run_local(
                    _match_bucket_worker, t,
                    name="analysis.match.bucket", bucket=t["bucket"],
                )
                for t in tasks
            ]

        segments_ia = [
            ia_buf[t["offset"] : t["offset"] + n] for t, n in zip(tasks, ns)
        ]
        segments_ib = [
            ib_buf[t["offset"] : t["offset"] + n] for t, n in zip(tasks, ns)
        ]
        ia = np.concatenate(segments_ia) if segments_ia else np.empty(0, np.int64)
        ib = np.concatenate(segments_ib) if segments_ib else np.empty(0, np.int64)

    # Canonical row order: sorted by the A-side index (unique across
    # buckets, so the sort is a permutation with no ties to break).
    order = np.argsort(ia, kind="stable")
    return Matching(
        ia[order].astype(np.intp, copy=False),
        ib[order].astype(np.intp, copy=False),
        na,
        nb,
    )
