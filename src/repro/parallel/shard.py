"""Shard planning for the parallel comparison engine.

A *shard* is a contiguous range ``[lo, hi)`` of the common-packet rows of a
matched trial pair — the rows of :class:`repro.core.matching.Matching`,
which lists the same packets of both trials aligned in A's arrival order.
This is exactly the aligned-chunk precondition
:class:`repro.analysis.streaming.StreamingComparison` imposes on its
inputs, generalized: instead of requiring the whole captures to be aligned
(U = O = 0), the matching *makes* the common rows aligned for any pair, so
every per-row quantity (latency deltas, IAT deltas, histogram bin hits,
±10 ns counts) splits exactly across any contiguous partition.

What is and is not shardable:

* ``U`` — shardable: it is a function of the row count and the trial
  lengths; each shard contributes ``hi − lo`` rows.
* ``L``, ``I`` — shardable: per-row deltas, reduced once after assembly.
* ``O`` — shardable *by prefix blocks, not by chunk-local metrics*: the
  LCS underlying Equation 2 is a global property of the permutation (a
  single far-moved packet invalidates any chunk-local bound), so blocks
  carry mergeable patience-pile states instead of partial metrics and a
  left-to-right prefix-patience merge reconstructs the exact serial LIS
  (see :mod:`repro.parallel.ordershard`).  :meth:`ShardPlanner.plan_ordering`
  sizes those blocks; for small pairs it falls back to one whole-pair
  ordering task.

The planner also decides the fan-out *shape* for a run series: when there
are at least as many trial pairs as workers, whole-pair tasks (each worker
runs the full serial comparison on its pair) dominate — no merge step, no
parent-side matching.  Only when pairs are scarcer than workers does
within-pair sharding buy wall-time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..obs import metrics

__all__ = [
    "ShardPlan",
    "ShardPlanner",
    "DEFAULT_MIN_SHARD_PACKETS",
    "DEFAULT_ORDER_BLOCK_PACKETS",
    "DEFAULT_MIN_ORDER_PACKETS",
    "default_jobs",
]

#: Below this many common rows a shard is not worth a task dispatch; the
#: default matches the chunk size of :func:`repro.analysis.streaming.stream_compare`.
DEFAULT_MIN_SHARD_PACKETS = 65536

#: Auto-sized ordering block: small enough that one block's patience loop
#: (~0.6 us/element) stays below one timing shard's vectorized pass even
#: at jobs=8 on the paper-scale pair, so ordering is never the longest
#: single pool task; large enough to amortize task dispatch.
DEFAULT_ORDER_BLOCK_PACKETS = 8192

#: Below this many common rows the whole-pair ordering task wins — block
#: dispatch plus merge bookkeeping cost more than the loop they split.
DEFAULT_MIN_ORDER_PACKETS = 65536


@dataclass(frozen=True)
class ShardPlan:
    """The contiguous partition of one pair's common rows.

    ``bounds`` is a tuple of ``(lo, hi)`` ranges that exactly tile
    ``[0, n_common)`` in order; it is empty when there are no common
    packets (nothing to shard — the metrics' degenerate branches apply).
    """

    n_common: int
    bounds: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        cursor = 0
        for lo, hi in self.bounds:
            if lo != cursor or hi <= lo:
                raise ValueError(
                    f"bounds must tile [0, {self.n_common}) contiguously; "
                    f"got {self.bounds}"
                )
            cursor = hi
        if cursor != self.n_common:
            raise ValueError(
                f"bounds cover [0, {cursor}) but n_common is {self.n_common}"
            )

    @property
    def n_shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.bounds)


class ShardPlanner:
    """Splits comparison work into pool tasks.

    Parameters
    ----------
    jobs:
        Worker processes available (≥ 1).
    shard_packets:
        Force every shard to this many rows (the last shard takes the
        remainder).  Mainly for tests and benchmarks; when ``None`` the
        planner sizes shards to fill ``jobs`` slots without dropping below
        ``min_shard_packets`` rows each.
    min_shard_packets:
        Smallest shard worth a task dispatch when auto-sizing.
    order_block_packets:
        Force ordering blocks to this many rows (tests and benchmarks;
        forces the sharded-ordering path even at ``jobs=1``).  ``None``
        auto-sizes to ``DEFAULT_ORDER_BLOCK_PACKETS`` when a pool is in
        use and the pair is big enough to repay block dispatch.
    min_order_packets:
        Smallest pair (common rows) worth sharding the ordering metric.
    """

    def __init__(
        self,
        jobs: int,
        *,
        shard_packets: int | None = None,
        min_shard_packets: int = DEFAULT_MIN_SHARD_PACKETS,
        order_block_packets: int | None = None,
        min_order_packets: int = DEFAULT_MIN_ORDER_PACKETS,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if shard_packets is not None and shard_packets < 1:
            raise ValueError("shard_packets must be >= 1")
        if min_shard_packets < 1:
            raise ValueError("min_shard_packets must be >= 1")
        if order_block_packets is not None and order_block_packets < 1:
            raise ValueError("order_block_packets must be >= 1")
        if min_order_packets < 1:
            raise ValueError("min_order_packets must be >= 1")
        self.jobs = jobs
        self.shard_packets = shard_packets
        self.min_shard_packets = min_shard_packets
        self.order_block_packets = order_block_packets
        self.min_order_packets = min_order_packets

    def plan_pair(self, n_common: int, slots: int | None = None) -> ShardPlan:
        """Partition one pair's ``n_common`` rows into shards.

        ``slots`` caps the shard count (defaults to ``jobs``); a forced
        ``shard_packets`` overrides the cap — tests use that to drive
        shard sizes from 1 to n+1.
        """
        if n_common == 0:
            return ShardPlan(0, ())
        if self.shard_packets is not None:
            step = self.shard_packets
        else:
            slots = self.jobs if slots is None else max(1, slots)
            n_shards = min(slots, max(1, n_common // self.min_shard_packets))
            step = -(-n_common // n_shards)  # ceil division
        bounds = tuple(
            (lo, min(lo + step, n_common)) for lo in range(0, n_common, step)
        )
        metrics.counter("planner.timing_shards_planned").add(len(bounds))
        return ShardPlan(n_common, bounds)

    def plan_ordering(self, n_common: int) -> ShardPlan | None:
        """Ordering-block bounds for one pair, or ``None`` for whole-pair.

        ``None`` means the ordering metric should run as a single
        whole-pair task (small pair, or serial without a forced block
        size); otherwise the returned plan tiles ``[0, n_common)`` into
        the blocks the prefix-patience merge consumes
        (:mod:`repro.parallel.ordershard`).
        """
        if n_common == 0:
            return None
        if self.order_block_packets is not None:
            step = self.order_block_packets
        elif self.jobs > 1 and n_common >= self.min_order_packets:
            step = DEFAULT_ORDER_BLOCK_PACKETS
        else:
            return None
        bounds = tuple(
            (lo, min(lo + step, n_common)) for lo in range(0, n_common, step)
        )
        metrics.counter("planner.order_blocks_planned").add(len(bounds))
        return ShardPlan(n_common, bounds)

    def use_whole_pairs(self, n_pairs: int) -> bool:
        """Whether a series should fan out whole pairs rather than shards.

        With at least one pair per worker, pair-level tasks keep every
        worker busy with zero merge overhead; otherwise within-pair shards
        are needed to occupy the idle workers.  A forced ``shard_packets``
        or ``order_block_packets`` always shards (the caller asked for
        that shape explicitly).
        """
        if self.shard_packets is not None or self.order_block_packets is not None:
            return False
        return n_pairs >= self.jobs

    def pair_slots(self, n_pairs: int) -> int:
        """Shard slots to give each pair when sharding a series."""
        return max(1, self.jobs // max(1, n_pairs))


def default_jobs() -> int:
    """The worker count used when none is given: ``REPRO_JOBS`` or 1.

    Serial remains the default — parallelism is opt-in via ``--jobs`` or
    the environment — so existing workflows keep their exact performance
    and process profile.
    """
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1
